"""Fig. 9b: energy efficiency versus model size."""

from repro.bench import fig9b_energy_efficiency, format_series


def test_fig9b_energy_efficiency(benchmark, save_output):
    series = benchmark.pedantic(fig9b_energy_efficiency, rounds=1, iterations=1)
    text = format_series(
        series, x_label="model", title="Fig. 9b: energy efficiency (tokens/J) vs model size"
    )
    save_output("fig9b_energy_efficiency", text)

    # The paper reports 6.06x / 4.65x average improvement over the RTX 2070 /
    # RTX 4090; the shape (a multiple-times win on every model size) must hold.
    ratios_2070 = list(series["ratio vs RTX 2070"].values())
    ratios_4090 = list(series["ratio vs RTX 4090"].values())
    assert min(ratios_2070) > 3.0
    assert min(ratios_4090) > 3.0
    assert sum(ratios_2070) / len(ratios_2070) > sum(ratios_4090) / len(ratios_4090)
