"""Table III: perplexity and zero-shot accuracy for every method / precision."""

import numpy as np

from repro.bench import format_rows, table3_accuracy


def test_table3_accuracy(benchmark, reference_setup, save_output):
    rows = benchmark.pedantic(
        table3_accuracy, args=(reference_setup,), rounds=1, iterations=1
    )
    text = format_rows(
        rows,
        title="Table III: perplexity + synthetic zero-shot accuracy "
        "(synthetic reference model; see EXPERIMENTS.md for the paper values)",
    )
    save_output("table3_accuracy", text)

    by_key = {(row["method"], row["precision"]): row for row in rows}
    fp = by_key[("FP16", "FP16")]

    # W8A8 keeps accuracy close to FP16 for every method (paper: <=0.6 points).
    for method in ("RTN", "SQ", "OS+", "LightMamba", "LightMamba*"):
        assert by_key[(method, "W8A8")]["average"] >= fp["average"] - 8.0

    # W4A4 hurts; the rotation-assisted method stays much closer to the FP16
    # distribution than every channel-wise baseline (the paper's Table III
    # ordering, measured here as KL divergence to FP16).
    for baseline in ("RTN", "SQ", "OS+"):
        assert (
            by_key[("LightMamba", "W4A4")]["kl_vs_fp16"]
            < by_key[(baseline, "W4A4")]["kl_vs_fp16"]
        )
    # Every configuration stays above chance on average (chance is ~35% for
    # the synthetic task mix).
    chance = 100.0 * np.mean([task.chance_accuracy for task in reference_setup.tasks])
    for row in rows:
        assert row["average"] > chance - 5.0
