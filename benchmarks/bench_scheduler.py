"""Admission scheduling: FIFO vs priority vs paged under a mixed workload.

LightMamba's hardware pipeline overlaps prefill and decode so the SSMU/MMU
units never idle; the serving layer's equivalent knob is the *admission
policy* -- which waiting request gets the next prompt tokens, and how many.
This benchmark drives the three shipped policies
(:class:`~repro.serving.scheduler.FIFOScheduler`,
:class:`~repro.serving.scheduler.PriorityScheduler`,
:class:`~repro.serving.scheduler.PagedScheduler`) through an identical
*seeded* mixed workload -- mostly short high-priority "interactive" prompts
with a tail of long low-priority "batch" prompts arriving over time -- and
measures, per policy:

- **p50 / p99 time-to-first-token**, both in engine iterations and in *token
  time* -- the number of model tokens (prompt + decode) the engine processed
  between submission and the request's first generated token.  Token time is
  the wall-time proxy on hardware where every token costs one datapath beat:
  iteration counts flatter unbounded admission (one iteration may hide a
  300-token prompt), token time does not.  Both are deterministic: they
  depend only on the workload seed and the policy, never the machine;
- **p50 / p99 queue wait** in engine iterations, plus short-request-class
  splits (the latency class interactive serving cares about);
- **decode-stall iterations** -- iterations that charged more than one page of
  prompt tokens while decodes were in flight (an unbounded FIFO admission
  stalls the running batch for the whole prompt; the paged ledger bounds it);
- wall-clock tokens/sec (informational only -- machine-dependent, excluded
  from the CI regression gate).

Results are printed as a table, saved to ``benchmarks/output/`` and recorded
in the repo-root ``BENCH_scheduler.json``.  Because the iteration-space
metrics are deterministic, the committed JSON doubles as an exact regression
baseline: ``benchmarks/check_regression.py`` compares a fresh ``--smoke`` run
against it in CI.

Run directly::

    PYTHONPATH=src python benchmarks/bench_scheduler.py [--smoke]

or through the benchmark harness
(``pytest benchmarks/bench_scheduler.py``).
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence

import numpy as np

from repro.bench import format_rows
from repro.mamba import InitConfig, Mamba2Model, get_preset
from repro.serving import (
    FIFOScheduler,
    InferenceEngine,
    PagedScheduler,
    PriorityScheduler,
    Request,
)

#: Page budget of the paged policy, and the stall threshold all policies are
#: judged against: an iteration that consumes more prompt tokens than this
#: while decodes are in flight counts as a decode stall.
PAGE_TOKENS = 64

#: Prompts shorter than this belong to the "short" (interactive) class.
SHORT_PROMPT_TOKENS = 32

MAX_BATCH_SIZE = 4
WORKLOAD_SEED = 0


@dataclass(frozen=True)
class WorkloadItem:
    """One arrival: submit ``request`` once the engine reaches ``submit_step``."""

    submit_step: int
    request: Request
    priority: int


def make_workload(
    vocab_size: int,
    n_requests: int,
    seed: int = WORKLOAD_SEED,
    short_fraction: float = 0.75,
) -> List[WorkloadItem]:
    """Seeded mixed short/long workload (deterministic for a given seed).

    Short requests model interactive traffic: small prompts (4-12 tokens),
    moderate decode budgets, high priority.  Long requests model batch
    traffic: 96-192 token prompts, small decode budgets, low priority.
    Arrivals are spread over engine iterations with seeded inter-arrival gaps.
    """
    rng = np.random.default_rng(seed)
    items: List[WorkloadItem] = []
    step = 0
    for _ in range(n_requests):
        step += int(rng.integers(0, 3))
        if rng.random() < short_fraction:
            size = int(rng.integers(4, 13))
            budget = int(rng.integers(6, 17))
            priority = 2
        else:
            size = int(rng.integers(96, 193))
            budget = int(rng.integers(3, 9))
            priority = 0
        prompt = tuple(int(t) for t in rng.integers(0, vocab_size, size=size))
        items.append(
            WorkloadItem(
                submit_step=step,
                request=Request(prompt=prompt, max_new_tokens=budget),
                priority=priority,
            )
        )
    return items


def run_policy(
    model: Mamba2Model,
    scheduler,
    workload: Sequence[WorkloadItem],
    max_batch_size: int = MAX_BATCH_SIZE,
    stall_page_tokens: int = PAGE_TOKENS,
) -> Dict[str, object]:
    """Serve one workload under one policy; returns metrics + admission trace.

    The ``metrics`` dict contains only iteration-space (machine-independent)
    quantities; wall-clock throughput is reported separately.
    """
    engine = InferenceEngine(model, max_batch_size=max_batch_size, scheduler=scheduler)
    idx = 0
    stall_iterations = 0
    max_prefill_per_iteration = 0
    # token_clock[s] = cumulative model tokens (prompt + decode) after step s;
    # differences of it convert engine-step intervals into token time.
    token_clock = [0]
    start = time.perf_counter()
    while idx < len(workload) or engine.has_work:
        while idx < len(workload) and workload[idx].submit_step <= engine.stats.engine_steps:
            engine.submit(workload[idx].request, priority=workload[idx].priority)
            idx += 1
        decoding_before = engine.num_active
        prefilled_before = engine.stats.prefilled_tokens
        engine.step()
        token_clock.append(engine.stats.prefilled_tokens + engine.stats.decoded_tokens)
        prefill_delta = engine.stats.prefilled_tokens - prefilled_before
        if decoding_before > 0:
            max_prefill_per_iteration = max(max_prefill_per_iteration, prefill_delta)
            if prefill_delta > stall_page_tokens:
                stall_iterations += 1
    elapsed = time.perf_counter() - start

    latencies = [engine.latency(item_id) for item_id in range(len(workload))]
    short = [
        lat
        for lat, item in zip(latencies, workload)
        if len(item.request.prompt) < SHORT_PROMPT_TOKENS
    ]

    def pct(values: List[int], q: float) -> float:
        return float(np.percentile(np.asarray(values, dtype=np.float64), q))

    def token_time(lat) -> int:
        return token_clock[lat.first_token_step] - token_clock[lat.submitted_step]

    ttft = [lat.ttft_iterations for lat in latencies]
    wait = [lat.queue_wait_iterations for lat in latencies]
    ttft_short = [lat.ttft_iterations for lat in short]
    ttft_tok = [token_time(lat) for lat in latencies]
    ttft_tok_short = [token_time(lat) for lat in short]
    metrics = {
        "ttft_p50_iters": pct(ttft, 50),
        "ttft_p99_iters": pct(ttft, 99),
        "ttft_short_p50_iters": pct(ttft_short, 50),
        "ttft_short_p99_iters": pct(ttft_short, 99),
        "ttft_p50_tokens": pct(ttft_tok, 50),
        "ttft_p99_tokens": pct(ttft_tok, 99),
        "ttft_short_p50_tokens": pct(ttft_tok_short, 50),
        "ttft_short_p99_tokens": pct(ttft_tok_short, 99),
        "queue_wait_p50_iters": pct(wait, 50),
        "queue_wait_p99_iters": pct(wait, 99),
        "decode_stall_iterations": stall_iterations,
        "max_prefill_tokens_per_iteration": max_prefill_per_iteration,
        "engine_steps": engine.stats.engine_steps,
    }
    return {
        "metrics": metrics,
        "wallclock_tokens_per_sec": engine.stats.decoded_tokens / elapsed,
        "admission_trace": [
            (lat.request_id, lat.admitted_step, lat.first_token_step)
            for lat in latencies
        ],
    }


def _policies() -> Dict[str, object]:
    return {
        "fifo": FIFOScheduler(),
        "priority": PriorityScheduler(),
        "paged": PagedScheduler(page_tokens=PAGE_TOKENS),
    }


def bench_scheduler(modes: Dict[str, int], seed: int = WORKLOAD_SEED) -> Dict[str, object]:
    """Run every policy over every mode's workload size.

    ``modes`` maps a mode name (``"smoke"``, ``"full"``) to its request count;
    the committed JSON carries both modes so the CI smoke run can be compared
    exactly against its committed counterpart.
    """
    model = Mamba2Model.from_config(get_preset("mamba2-tiny"), InitConfig(seed=0))
    results: Dict[str, object] = {
        "benchmark": "scheduler",
        "seed": seed,
        "max_batch_size": MAX_BATCH_SIZE,
        "page_tokens": PAGE_TOKENS,
        "short_prompt_tokens": SHORT_PROMPT_TOKENS,
        "modes": {},
    }
    for mode, n_requests in modes.items():
        workload = make_workload(model.config.vocab_size, n_requests, seed=seed)
        policies = {}
        for name, scheduler in _policies().items():
            run = run_policy(model, scheduler, workload)
            policies[name] = {
                "metrics": run["metrics"],
                "wallclock_tokens_per_sec": run["wallclock_tokens_per_sec"],
            }
        results["modes"][mode] = {"n_requests": n_requests, "policies": policies}
    return results


def format_results(results) -> str:
    blocks = []
    for mode, payload in results["modes"].items():
        rows = []
        for policy, entry in payload["policies"].items():
            row = {"policy": policy}
            row.update(entry["metrics"])
            row["tok/s (wallclock)"] = entry["wallclock_tokens_per_sec"]
            rows.append(row)
        blocks.append(
            format_rows(
                rows,
                title=(
                    f"Scheduler policies, {mode} workload "
                    f"({payload['n_requests']} requests, seed {results['seed']}, "
                    f"page {results['page_tokens']} tokens, "
                    f"{results['max_batch_size']} slots)"
                ),
            )
        )
    return "\n\n".join(blocks)


def write_json(results, path) -> None:
    Path(path).write_text(json.dumps(results, indent=2) + "\n")


def test_scheduler_policies(benchmark, save_output):
    results = benchmark.pedantic(
        lambda: bench_scheduler({"smoke": 12, "full": 48}), rounds=1, iterations=1
    )
    text = format_results(results)
    save_output("scheduler_policies", text)
    write_json(results, Path(__file__).parent.parent / "BENCH_scheduler.json")

    full = results["modes"]["full"]["policies"]
    # The paged ledger bounds per-iteration prompt work to the page, so it
    # never stalls a running decode; unbounded FIFO admission does.
    assert full["paged"]["metrics"]["decode_stall_iterations"] == 0
    assert full["paged"]["metrics"]["max_prefill_tokens_per_iteration"] <= PAGE_TOKENS
    assert full["fifo"]["metrics"]["decode_stall_iterations"] > 0
    # Priorities front-run the long batch prompts: the short (interactive)
    # class sees no worse tail latency than arrival-order admission.
    assert (
        full["priority"]["metrics"]["ttft_short_p99_iters"]
        <= full["fifo"]["metrics"]["ttft_short_p99_iters"]
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI mode: smoke workload only, no acceptance assertions",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).parent.parent / "BENCH_scheduler.json",
        help="where to write the JSON record",
    )
    args = parser.parse_args()

    modes = {"smoke": 12} if args.smoke else {"smoke": 12, "full": 48}
    results = bench_scheduler(modes)
    print(format_results(results))
    # Smoke runs keep their artifacts next to their JSON (benchmarks/output/
    # fresh/ in CI) so they never clobber the committed full-run records.
    out_dir = args.output.parent if args.smoke else Path(__file__).parent / "output"
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "scheduler_policies.txt").write_text(format_results(results) + "\n")
    args.output.parent.mkdir(parents=True, exist_ok=True)
    write_json(results, args.output)
    print(f"[saved to {args.output}]")
