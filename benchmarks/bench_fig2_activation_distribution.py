"""Fig. 2: out-proj activation distribution before / after rotation."""

from repro.bench import fig2_activation_distribution, format_rows


def test_fig2_activation_distribution(benchmark, reference_setup, save_output):
    result = benchmark.pedantic(
        fig2_activation_distribution, args=(reference_setup,), rounds=1, iterations=1
    )
    rows = [
        {"distribution": "before rotation", **result["before"]},
        {"distribution": "after rotation", **result["after"]},
    ]
    text = format_rows(
        rows,
        title=f"Fig. 2: out-proj input activation statistics (layer {result['layer']})",
    )
    save_output("fig2_activation_distribution", text)

    before, after = result["before"], result["after"]
    # Rotation amortises the scattered outliers: smaller peaks, near-Gaussian
    # kurtosis, energy preserved.
    assert after["absmax"] < before["absmax"] / 2
    assert after["kurtosis"] < before["kurtosis"] / 4
    assert abs(after["rms"] - before["rms"]) / before["rms"] < 1e-6
    # Scattered outliers: the per-token outlier channel moves around before
    # rotation (many distinct argmax channels).
    assert before["distinct_outlier_channels"] > 4
