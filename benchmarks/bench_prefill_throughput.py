"""Prefill throughput: chunked SSD scan vs the sequential recurrence.

LightMamba (and the FastMamba / SpecMamba accelerator line) draws its prefill
throughput from the chunked SSD formulation of the scan: within a chunk the
output is a dense decay-weighted matrix-matrix interaction, with a single
recurrent state hand-off per chunk.  This benchmark measures that win at two
granularities on the prefill-bound bench config (paper-style state dims,
``d_state = 128``):

- **scan kernel** -- :func:`repro.mamba.ssm.ssd_chunked_scan` against
  :func:`repro.mamba.ssm.ssm_scan` on one layer's SSM inputs (the compute
  core this PR promotes to the production path);
- **end-to-end prefill** -- ``model.prefill(scan_impl="chunked")`` against
  ``scan_impl="sequential"``, which dilutes the kernel win with the work both
  paths share (projections, convolution, norms).

Results are printed as a table, saved to ``benchmarks/output/`` and recorded
in the repo-root ``BENCH_prefill.json`` -- the single canonical record of the
prefill-performance trajectory.

Run directly::

    PYTHONPATH=src python benchmarks/bench_prefill_throughput.py [--smoke]

or through the benchmark harness
(``pytest benchmarks/bench_prefill_throughput.py``).
"""

import argparse
import json
import time
from functools import partial
from pathlib import Path

import numpy as np

from repro.bench import format_series
from repro.mamba import InitConfig, Mamba2Config, Mamba2Model
from repro.mamba.ssm import ssd_chunked_scan, ssm_scan

#: Prefill-bound benchmark configuration: published-scale SSM state dims
#: (d_state 128, headdim 64 -- the shapes of the Mamba2 family), with a layer
#: count / width small enough to run quickly on a CPU.
PREFILL_BENCH_CONFIG = Mamba2Config(
    name="prefill-bench",
    d_model=256,
    n_layer=4,
    vocab_size=512,
    d_state=128,
    headdim=64,
    chunk_size=32,
)


def _best_of(fn, repeats):
    """Fastest wall-clock of ``repeats`` runs (damps scheduler noise).

    One untimed warmup call precedes the timed runs: allocator and BLAS
    thread-pool state otherwise make the first-measured configuration look
    slower, which skews speedup ratios between runs of different shapes
    (e.g. the CI smoke run vs the committed full run).
    """
    fn()
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _scan_inputs(config: Mamba2Config, seq_len: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    h, p, n = config.nheads, config.headdim, config.d_state
    from repro.mamba.ssm import SSMParams

    params = SSMParams(
        A_log=np.log(rng.uniform(1, 8, size=h)),
        D=rng.normal(1.0, 0.1, size=h),
        dt_bias=rng.normal(size=h),
    )
    x = rng.normal(size=(seq_len, h, p))
    B = rng.normal(size=(seq_len, n))
    C = rng.normal(size=(seq_len, n))
    dt = rng.normal(size=(seq_len, h))
    return params, x, B, C, dt


def bench_prefill_throughput(
    seq_lens=(128, 256, 512),
    config: Mamba2Config = PREFILL_BENCH_CONFIG,
    chunk_size: int | None = None,
    repeats: int = 3,
):
    """Measure sequential vs chunked prefill tokens/sec.

    Returns a dict with a ``series`` entry per measurement (tokens/sec keyed
    by sequence length) and ``speedup`` entries for the kernel and the
    end-to-end prefill (chunked over sequential at equal sequence length).
    """
    chunk = chunk_size if chunk_size is not None else config.chunk_size
    model = Mamba2Model.from_config(config, InitConfig(seed=0))
    rng = np.random.default_rng(0)

    kernel_seq, kernel_chunk = {}, {}
    prefill_seq, prefill_chunk = {}, {}
    for seq_len in seq_lens:
        params, x, B, C, dt = _scan_inputs(config, seq_len)
        kernel_seq[seq_len] = seq_len / _best_of(
            partial(ssm_scan, params, x, B, C, dt), repeats
        )
        kernel_chunk[seq_len] = seq_len / _best_of(
            partial(ssd_chunked_scan, params, x, B, C, dt, chunk_size=chunk), repeats
        )

        tokens = rng.integers(0, config.vocab_size, size=seq_len)
        prefill_seq[seq_len] = seq_len / _best_of(
            partial(model.prefill, tokens, scan_impl="sequential"), repeats
        )
        prefill_chunk[seq_len] = seq_len / _best_of(
            partial(model.prefill, tokens, scan_impl="chunked", chunk_size=chunk), repeats
        )

    return {
        "config": config.name,
        "chunk_size": chunk,
        "series": {
            "scan kernel sequential (tok/s)": kernel_seq,
            "scan kernel chunked (tok/s)": kernel_chunk,
            "prefill sequential (tok/s)": prefill_seq,
            "prefill chunked (tok/s)": prefill_chunk,
        },
        "speedup": {
            "scan kernel": {t: kernel_chunk[t] / kernel_seq[t] for t in seq_lens},
            "prefill end-to-end": {t: prefill_chunk[t] / prefill_seq[t] for t in seq_lens},
        },
    }


def format_results(results) -> str:
    series = dict(results["series"])
    for name, speedups in results["speedup"].items():
        series[f"{name} speedup (x)"] = speedups
    return format_series(
        series,
        x_label="seq_len",
        title=(
            "Prefill throughput: chunked SSD vs sequential scan "
            f"({results['config']}, chunk_size={results['chunk_size']})"
        ),
    )


#: Measurement shape of the CI smoke runs.  The committed JSON stores a
#: smoke-shaped ``smoke_speedup`` section next to the full-run numbers so the
#: regression gate (benchmarks/check_regression.py) always compares
#: like-shaped runs: warmup order biases the sequential baseline, so a smoke
#: measurement is only comparable to another smoke measurement.
SMOKE_SEQ_LENS = (64, 128)
SMOKE_REPEATS = 3


def write_json(results, path, smoke_speedup=None) -> None:
    path = Path(path)
    payload = {
        "benchmark": "prefill_throughput",
        "config": results["config"],
        "chunk_size": results["chunk_size"],
        "series": {
            name: {str(k): v for k, v in points.items()}
            for name, points in results["series"].items()
        },
        "speedup": {
            name: {str(k): v for k, v in points.items()}
            for name, points in results["speedup"].items()
        },
    }
    if smoke_speedup is not None:
        payload["smoke_speedup"] = {
            name: {str(k): v for k, v in points.items()}
            for name, points in smoke_speedup.items()
        }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def test_prefill_throughput(benchmark, save_output):
    results = benchmark.pedantic(bench_prefill_throughput, rounds=1, iterations=1)
    text = format_results(results)
    save_output("prefill_throughput", text)
    smoke = bench_prefill_throughput(seq_lens=SMOKE_SEQ_LENS, repeats=SMOKE_REPEATS)
    write_json(
        results,
        Path(__file__).parent.parent / "BENCH_prefill.json",
        smoke_speedup=smoke["speedup"],
    )

    # The chunked scan is the production prefill engine: the acceptance bar is
    # 5x over the sequential recurrence at the longest measured prompt.  The
    # end-to-end prefill shares projection / convolution / norm work between
    # both paths, diluting the kernel win; 2x is its regression floor.
    longest = max(results["speedup"]["scan kernel"])
    assert longest >= 512
    assert results["speedup"]["scan kernel"][longest] >= 5.0, results["speedup"]
    assert results["speedup"]["prefill end-to-end"][longest] >= 2.0, results["speedup"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI mode: short sequences, single repeat, no acceptance gate",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=None, help="chunk length of the chunked scan"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).parent.parent / "BENCH_prefill.json",
        help="where to write the JSON record",
    )
    args = parser.parse_args()

    if args.smoke:
        results = bench_prefill_throughput(
            seq_lens=SMOKE_SEQ_LENS, chunk_size=args.chunk_size, repeats=SMOKE_REPEATS
        )
        smoke_speedup = results["speedup"]
    else:
        results = bench_prefill_throughput(chunk_size=args.chunk_size)
        smoke_speedup = bench_prefill_throughput(
            seq_lens=SMOKE_SEQ_LENS, chunk_size=args.chunk_size, repeats=SMOKE_REPEATS
        )["speedup"]
    print(format_results(results))
    # Smoke runs keep their artifacts next to their JSON (benchmarks/output/
    # fresh/ in CI) so they never clobber the committed full-run records.
    out_dir = args.output.parent if args.smoke else Path(__file__).parent / "output"
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "prefill_throughput.txt").write_text(format_results(results) + "\n")
    args.output.parent.mkdir(parents=True, exist_ok=True)
    write_json(results, args.output, smoke_speedup=smoke_speedup)
    print(f"[saved to {args.output}]")
