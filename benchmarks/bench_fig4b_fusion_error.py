"""Fig. 4b: out-proj weight quantization error, only-rotate vs fuse-and-rotate."""

import numpy as np

from repro.bench import fig4b_fusion_error, format_rows


def test_fig4b_fusion_error(benchmark, reference_setup, save_output):
    rows = benchmark.pedantic(
        fig4b_fusion_error, args=(reference_setup,), rounds=1, iterations=1
    )
    text = format_rows(
        rows,
        title="Fig. 4b: per-layer 4-bit out-proj weight quantization error "
        "(only rotate vs fuse-and-rotate the gated-RMSNorm scale)",
    )
    save_output("fig4b_fusion_error", text)

    assert len(rows) == reference_setup.config.n_layer
    only = np.array([row["only_rotate"] for row in rows])
    fused = np.array([row["fuse_and_rotate"] for row in rows])
    # Fusing the norm scale into the weight increases the quantization error
    # on average and for the large majority of layers.
    assert fused.mean() > only.mean()
    assert np.mean(fused > only) > 0.7
