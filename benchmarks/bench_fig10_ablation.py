"""Fig. 10: impact of each technique on throughput, accuracy and URAM."""

import os

from repro.bench import fig10_ablation, format_rows


def test_fig10_ablation_hardware(benchmark, save_output):
    rows = benchmark.pedantic(
        fig10_ablation, kwargs={"include_accuracy": False}, rounds=1, iterations=1
    )
    text = format_rows(rows, title="Fig. 10: technique ablation (hardware columns)")
    save_output("fig10_ablation", text)

    tps = [row["tokens_per_s"] for row in rows]
    uram = [row["uram"] for row in rows]
    # Quantization speeds decode up, the matrix-multiply rotation costs
    # throughput, the FHT recovers it, reordering pushes to the final
    # operating point, and tiling only reduces URAM.
    assert tps[1] > tps[0] and tps[2] > tps[1]
    assert tps[3] < tps[2]
    assert tps[4] > tps[3]
    assert tps[5] > tps[4]
    assert abs(tps[6] - tps[5]) / tps[5] < 0.02
    assert uram[6] < uram[5] / 3


def test_fig10_ablation_with_accuracy(benchmark, reference_setup, save_output):
    """The accuracy column of Fig. 10 (slower; uses the reference setup)."""
    if os.environ.get("LIGHTMAMBA_SKIP_SLOW_BENCH") == "1":
        import pytest

        pytest.skip("slow accuracy ablation disabled via LIGHTMAMBA_SKIP_SLOW_BENCH")
    rows = benchmark.pedantic(
        fig10_ablation,
        kwargs={"include_accuracy": True, "setup": reference_setup},
        rounds=1,
        iterations=1,
    )
    text = format_rows(rows, title="Fig. 10: technique ablation (with accuracy column)")
    save_output("fig10_ablation_accuracy", text)

    by_name = {row["step"]: row for row in rows}
    fp16 = by_name["Original network (FP16)"]["accuracy_%"]
    rtn_w4a4 = by_name["+ 4-bit activation quantization"]["accuracy_%"]
    rotated = by_name["+ rotation quantization (MM Hadamard)"]["accuracy_%"]
    # Quantizing to W4A4 costs accuracy; the rotation-assisted algorithm
    # recovers a large part of it (paper: 51.6% -> 55.9% vs FP 60.2%).
    assert rtn_w4a4 <= fp16
    assert rotated >= rtn_w4a4 - 3.0
