"""Batched decode throughput versus batch size.

Mamba decode reads the full weight set once per token regardless of how many
requests advance (the fixed-size recurrent cache, Fig. 9a of the paper), so a
batched decode step amortises both the weight traffic and the per-step
dispatch overhead across the batch.  This benchmark decodes the same request
set (a) request-by-request with the single-sequence decoder and (b) as one
batch with :class:`repro.serving.BatchedGenerator`, and reports tokens/sec.

Run directly (``PYTHONPATH=src python benchmarks/bench_batched_decode.py``) or
through the benchmark harness (``pytest benchmarks/bench_batched_decode.py``).
"""

import time

import numpy as np

from repro.bench import format_series
from repro.mamba import InitConfig, Mamba2Config, Mamba2Model, greedy_decode
from repro.serving import BatchedGenerator

#: Decode-bound serving configuration: deep and narrow, so per-token cost is
#: dominated by the per-step weight reads and dispatch overhead that batching
#: amortises (the regime of Fig. 9a), not by batch-proportional state math.
SERVING_BENCH_CONFIG = Mamba2Config(
    name="serving-bench",
    d_model=32,
    n_layer=24,
    vocab_size=256,
    d_state=8,
    headdim=8,
)


def _make_requests(model, batch_size, prompt_len, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, model.config.vocab_size, size=prompt_len)
        for _ in range(batch_size)
    ]


def bench_batched_decode(
    batch_sizes=(1, 2, 4, 8),
    max_new_tokens=64,
    prompt_len=4,
    config: Mamba2Config = SERVING_BENCH_CONFIG,
    repeats=3,
):
    """Measure sequential-loop vs batched decode throughput.

    Returns ``{"series": {...}, "speedup": {batch_size: x}}`` where throughput
    counts generated tokens per wall-clock second (prefill included, as a
    request would experience it) and ``speedup`` is batched over sequential at
    equal batch size.  ``repeats`` runs are taken per point and the fastest is
    kept, damping scheduler noise.
    """
    model = Mamba2Model.from_config(config, InitConfig(seed=0))
    generator = BatchedGenerator(model)
    sequential = {}
    batched = {}
    for batch_size in batch_sizes:
        prompts = _make_requests(model, batch_size, prompt_len)
        total_tokens = batch_size * max_new_tokens

        best = np.inf
        for _ in range(repeats):
            start = time.perf_counter()
            results = [greedy_decode(model, p, max_new_tokens) for p in prompts]
            best = min(best, time.perf_counter() - start)
        assert sum(len(r) for r in results) == total_tokens
        sequential[batch_size] = total_tokens / best

        best = np.inf
        for _ in range(repeats):
            start = time.perf_counter()
            results = generator.generate(prompts, max_new_tokens)
            best = min(best, time.perf_counter() - start)
        assert sum(len(r) for r in results) == total_tokens
        batched[batch_size] = total_tokens / best

    return {
        "series": {
            "sequential loop (tok/s)": sequential,
            "batched decode (tok/s)": batched,
        },
        "speedup": {bs: batched[bs] / sequential[bs] for bs in batch_sizes},
    }


def test_batched_decode_throughput(benchmark, save_output):
    results = benchmark.pedantic(bench_batched_decode, rounds=1, iterations=1)
    series = dict(results["series"])
    series["speedup (x)"] = results["speedup"]
    text = format_series(
        series, x_label="batch_size", title="Batched decode throughput vs batch size"
    )
    save_output("batched_decode_throughput", text)

    # Batching must amortise the per-step cost: the acceptance bar is 4x at
    # batch size 8 over looping eight single-sequence decodes.
    assert results["speedup"][8] >= 4.0, results["speedup"]


if __name__ == "__main__":
    results = bench_batched_decode()
    series = dict(results["series"])
    series["speedup (x)"] = results["speedup"]
    print(
        format_series(
            series, x_label="batch_size", title="Batched decode throughput vs batch size"
        )
    )
