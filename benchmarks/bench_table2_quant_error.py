"""Table II: 4-bit quantization error of the out-proj activation per PTQ method."""

from repro.bench import format_rows, table2_quant_error


def test_table2_quant_error(benchmark, reference_setup, save_output):
    rows = benchmark.pedantic(
        table2_quant_error, args=(reference_setup,), rounds=1, iterations=1
    )
    text = format_rows(
        rows,
        title="Table II: 4-bit out-proj activation quantization error "
        "(synthetic reference model; paper values for Mamba2-2.7B shown alongside)",
    )
    save_output("table2_quant_error", text)

    errors = {row["method"]: row["quant_error"] for row in rows}
    # Shape of the paper's result: rotation-assisted quantization has the
    # lowest error, channel-wise shifting/scaling (OS+) the highest.
    assert errors["LightMamba"] < errors["RTN"]
    assert errors["LightMamba"] < errors["SQ"]
    assert errors["OS+"] > errors["RTN"]
