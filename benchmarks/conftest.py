"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section (see DESIGN.md for the experiment index).  Heavy fixtures are session
scoped so the reference evaluation model and its calibration data are built
once; each benchmark writes its formatted output to ``benchmarks/output/`` so
the regenerated tables can be inspected after the run (and are quoted in
EXPERIMENTS.md).

Set the environment variable ``LIGHTMAMBA_BENCH_SCALE`` (default ``1``) to an
integer to multiply the number of task examples / evaluation sequences used
by the algorithm-level benchmarks.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.eval import build_reference_setup

OUTPUT_DIR = Path(__file__).parent / "output"


def bench_scale() -> int:
    """User-controlled scale factor for the algorithm-level benchmarks."""
    try:
        return max(1, int(os.environ.get("LIGHTMAMBA_BENCH_SCALE", "1")))
    except ValueError:
        return 1


@pytest.fixture(scope="session")
def reference_setup():
    """The shared synthetic evaluation setup (model + calibration + tasks)."""
    scale = bench_scale()
    return build_reference_setup(
        num_calibration_sequences=8,
        calibration_seq_len=32,
        num_eval_sequences=2 * scale,
        eval_seq_len=32,
        num_task_examples=8 * scale,
    )


@pytest.fixture(scope="session")
def save_output():
    """Callable writing a named benchmark artefact to benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
