"""Chaos soak driver: randomized fault schedules against the engine supervisor.

Runs the :mod:`repro.serving.chaos` soak matrix -- seeded random workloads
under seeded random :class:`~repro.serving.resilience.FaultPlan` schedules,
across every shipped scheduler policy -- and checks the supervisor's
conservation invariants on each cell:

- every submitted request terminates exactly once with a valid
  ``finish_reason`` (``stop``/``length``, or ``error`` for quarantines);
- the engine drains completely (no slot, queue, or recovery leaks);
- every non-degraded successful request's token stream is bit-identical to a
  fault-free reference run of the same workload under the same scheduler.

The full per-run fault traces and supervisor event logs are written to the
JSON output -- CI uploads it as the ``chaos-fault-trace`` artifact, so a red
run is replayable from its ``(scheduler, seed)`` pair alone.  Exit status is
non-zero iff any invariant was violated; there is no performance number here
to regression-gate.

Run directly::

    PYTHONPATH=src python benchmarks/chaos_soak.py [--smoke] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.bench import format_rows
from repro.mamba import InitConfig, Mamba2Model, get_preset
from repro.serving.chaos import SCHEDULER_NAMES, run_chaos_soak

#: Fault-schedule seeds: 7 x 3 schedulers = 21 cells in full mode (the
#: acceptance floor is 20), 2 x 3 = 6 cells in CI smoke mode.
FULL_SEEDS = range(7)
SMOKE_SEEDS = range(2)


def run_soak(*, smoke: bool) -> dict:
    model = Mamba2Model.from_config(get_preset("mamba2-tiny"), InitConfig(seed=0))
    seeds = list(SMOKE_SEEDS if smoke else FULL_SEEDS)
    start = time.perf_counter()
    reports = run_chaos_soak(model, seeds=seeds, schedulers=SCHEDULER_NAMES)
    elapsed = time.perf_counter() - start
    return {
        "benchmark": "chaos_soak",
        "mode": "smoke" if smoke else "full",
        "seeds": seeds,
        "schedulers": list(SCHEDULER_NAMES),
        "runs": len(reports),
        "failures": sum(not r.ok for r in reports),
        "elapsed_s": elapsed,
        "totals": {
            key: sum(r.stats[key] for r in reports)
            for key in (
                "faults",
                "rollbacks",
                "retries",
                "recovered",
                "requeued_faults",
                "quarantined",
                "degraded",
                "watchdog_timeouts",
                "callback_drops",
            )
        },
        "reports": [r.to_json() for r in reports],
    }


def format_summary(payload: dict) -> str:
    rows = []
    for report in payload["reports"]:
        stats = report["stats"]
        rows.append(
            {
                "scheduler": report["scheduler"],
                "seed": report["seed"],
                "ok": "yes" if report["ok"] else "NO",
                "faults": int(stats["faults"]),
                "recovered": int(stats["recovered"]),
                "requeued": int(stats["requeued_faults"]),
                "quarantined": int(stats["quarantined"]),
                "degraded": int(stats["degraded"]),
                "watchdog": int(stats["watchdog_timeouts"]),
            }
        )
    totals = payload["totals"]
    lines = [
        format_rows(rows),
        "",
        f"{payload['runs']} runs, {payload['failures']} failures; totals: "
        + ", ".join(f"{k}={v}" for k, v in totals.items()),
    ]
    for report in payload["reports"]:
        for violation in report["violations"]:
            lines.append(
                f"VIOLATION [{report['scheduler']} seed={report['seed']}]: {violation}"
            )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI mode: fewer fault-schedule seeds per scheduler",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).parent / "output" / "chaos_soak.json",
        help="where to write the JSON report (the CI fault-trace artifact)",
    )
    args = parser.parse_args(argv)

    payload = run_soak(smoke=args.smoke)
    print(format_summary(payload))
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    print(f"[saved to {args.output}]")
    return 1 if payload["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
