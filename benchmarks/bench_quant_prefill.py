"""Quantized prefill throughput: chunk-parallel scan vs token-by-token.

PR 2 made the chunked SSD scan the default prefill engine, but the quantized
(LightMamba*) models kept stepping token by token because their custom
``ssm_impl`` had no chunk-parallel form.  This benchmark measures what the
quantized SSD scan (:class:`repro.quant.QuantizedChunkedScan`) buys back, at
two granularities on the prefill-bound bench shapes (``d_state = 128``,
``headdim = 64``):

- **scan kernel** -- ``prefill_scan`` against the sequential per-token
  quantized stepping (its own ``chunk_size=1`` oracle path) on one layer's
  SSM inputs;
- **end-to-end prefill** -- ``model.prefill()`` (default chunked) against
  ``model.prefill(scan_impl="sequential")`` for the lightmamba* W8A8 and
  W4A4 configurations, which dilutes the kernel win with the work both paths
  share (projections, convolution, norms, activation-quantization hooks).

Results are printed as a table, saved to ``benchmarks/output/`` and recorded
in the repo-root ``BENCH_quant_prefill.json`` -- the canonical record of the
quantized-prefill performance trajectory.

Run directly::

    PYTHONPATH=src python benchmarks/bench_quant_prefill.py [--smoke]

or through the benchmark harness
(``pytest benchmarks/bench_quant_prefill.py``).
"""

import argparse
import json
import time
from functools import partial
from pathlib import Path

import numpy as np

from repro.bench import format_series
from repro.mamba import InitConfig, Mamba2Config, Mamba2Model
from repro.mamba.ssm import SSMParams
from repro.quant import QuantConfig, QuantMethod, QuantizedChunkedScan, quantize_model

#: Prefill-bound benchmark configuration with the published-scale SSM state
#: dims; two layers keep the token-by-token quantized baseline affordable.
QUANT_PREFILL_BENCH_CONFIG = Mamba2Config(
    name="quant-prefill-bench",
    d_model=256,
    n_layer=2,
    vocab_size=512,
    d_state=128,
    headdim=64,
    chunk_size=32,
)

#: The quantized configurations under test (the paper's lightmamba* points).
QUANT_CONFIGS = (
    ("W8A8", lambda: QuantConfig.w8a8(QuantMethod.LIGHTMAMBA_STAR)),
    ("W4A4", lambda: QuantConfig.w4a4(QuantMethod.LIGHTMAMBA_STAR)),
)


def _best_of(fn, repeats):
    """Fastest wall-clock of ``repeats`` runs (damps scheduler noise).

    One untimed warmup call precedes the timed runs: allocator and BLAS
    thread-pool state otherwise make the first-measured configuration look
    slower, which skews speedup ratios between runs of different shapes
    (e.g. the CI smoke run vs the committed full run).
    """
    fn()
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _scan_inputs(config: Mamba2Config, seq_len: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    h, p, n = config.nheads, config.headdim, config.d_state
    params = SSMParams(
        A_log=np.log(rng.uniform(1, 8, size=h)),
        D=rng.normal(1.0, 0.1, size=h),
        dt_bias=rng.normal(size=h),
    )
    x = rng.normal(size=(seq_len, h, p))
    B = rng.normal(size=(seq_len, n))
    C = rng.normal(size=(seq_len, n))
    dt = rng.normal(size=(seq_len, h))
    return params, x, B, C, dt


def bench_quant_prefill(
    seq_lens=(128, 256, 512),
    config: Mamba2Config = QUANT_PREFILL_BENCH_CONFIG,
    chunk_size: int | None = None,
    repeats: int = 2,
):
    """Measure token-by-token vs chunk-parallel quantized prefill tokens/sec.

    Returns a dict with a ``series`` entry per measurement (tokens/sec keyed
    by sequence length) and a ``speedup`` entry per granularity (chunked over
    sequential at equal sequence length).
    """
    chunk = chunk_size if chunk_size is not None else config.chunk_size
    model = Mamba2Model.from_config(config, InitConfig(seed=0))
    rng = np.random.default_rng(0)

    series: dict = {}
    speedup: dict = {}

    # Scan kernel: the quantized SSD chunk body vs its chunk_size=1 oracle.
    scan = QuantizedChunkedScan()
    kernel_seq, kernel_chunk = {}, {}
    for seq_len in seq_lens:
        params, x, B, C, dt = _scan_inputs(config, seq_len)
        kernel_seq[seq_len] = seq_len / _best_of(
            partial(scan.prefill_scan, params, x, B, C, dt, chunk_size=1), repeats
        )
        kernel_chunk[seq_len] = seq_len / _best_of(
            partial(scan.prefill_scan, params, x, B, C, dt, chunk_size=chunk), repeats
        )
    series["scan kernel token-by-token (tok/s)"] = kernel_seq
    series["scan kernel chunked (tok/s)"] = kernel_chunk
    speedup["scan kernel"] = {t: kernel_chunk[t] / kernel_seq[t] for t in seq_lens}

    # End-to-end quantized prefill per lightmamba* configuration.
    for label, make_config in QUANT_CONFIGS:
        quantized = quantize_model(model, make_config())
        prefill_seq, prefill_chunk = {}, {}
        for seq_len in seq_lens:
            tokens = rng.integers(0, config.vocab_size, size=seq_len)
            prefill_seq[seq_len] = seq_len / _best_of(
                partial(quantized.prefill, tokens, scan_impl="sequential"), repeats
            )
            prefill_chunk[seq_len] = seq_len / _best_of(
                partial(quantized.prefill, tokens, scan_impl="chunked", chunk_size=chunk),
                repeats,
            )
        series[f"prefill {label} token-by-token (tok/s)"] = prefill_seq
        series[f"prefill {label} chunked (tok/s)"] = prefill_chunk
        speedup[f"prefill {label}"] = {
            t: prefill_chunk[t] / prefill_seq[t] for t in seq_lens
        }

    return {
        "config": config.name,
        "chunk_size": chunk,
        "series": series,
        "speedup": speedup,
    }


def format_results(results) -> str:
    series = dict(results["series"])
    for name, speedups in results["speedup"].items():
        series[f"{name} speedup (x)"] = speedups
    return format_series(
        series,
        x_label="seq_len",
        title=(
            "Quantized prefill: chunk-parallel scan vs token-by-token "
            f"({results['config']}, chunk_size={results['chunk_size']})"
        ),
    )


#: Measurement shape of the CI smoke runs; the committed JSON carries a
#: smoke-shaped ``smoke_speedup`` section so the regression gate compares
#: like-shaped runs (warmup order biases the token-by-token baseline).
SMOKE_SEQ_LENS = (64, 128)
SMOKE_REPEATS = 1


def write_json(results, path, smoke_speedup=None) -> None:
    path = Path(path)
    payload = {
        "benchmark": "quant_prefill",
        "config": results["config"],
        "chunk_size": results["chunk_size"],
        "series": {
            name: {str(k): v for k, v in points.items()}
            for name, points in results["series"].items()
        },
        "speedup": {
            name: {str(k): v for k, v in points.items()}
            for name, points in results["speedup"].items()
        },
    }
    if smoke_speedup is not None:
        payload["smoke_speedup"] = {
            name: {str(k): v for k, v in points.items()}
            for name, points in smoke_speedup.items()
        }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def test_quant_prefill(benchmark, save_output):
    results = benchmark.pedantic(bench_quant_prefill, rounds=1, iterations=1)
    text = format_results(results)
    save_output("quant_prefill", text)
    smoke = bench_quant_prefill(seq_lens=SMOKE_SEQ_LENS, repeats=SMOKE_REPEATS)
    write_json(
        results,
        Path(__file__).parent.parent / "BENCH_quant_prefill.json",
        smoke_speedup=smoke["speedup"],
    )

    # Acceptance bar: the quantized chunk-parallel prefill must deliver at
    # least 3x over the token-by-token baseline at the longest measured
    # prompt, for both lightmamba* bit-width configurations.
    longest = max(results["speedup"]["scan kernel"])
    assert longest >= 512
    for label, _ in QUANT_CONFIGS:
        assert results["speedup"][f"prefill {label}"][longest] >= 3.0, results["speedup"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI mode: short sequences, single repeat, no acceptance gate",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=None, help="chunk length of the chunked scan"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).parent.parent / "BENCH_quant_prefill.json",
        help="where to write the JSON record",
    )
    args = parser.parse_args()

    if args.smoke:
        results = bench_quant_prefill(
            seq_lens=SMOKE_SEQ_LENS, chunk_size=args.chunk_size, repeats=SMOKE_REPEATS
        )
        smoke_speedup = results["speedup"]
    else:
        results = bench_quant_prefill(chunk_size=args.chunk_size)
        smoke_speedup = bench_quant_prefill(
            seq_lens=SMOKE_SEQ_LENS, chunk_size=args.chunk_size, repeats=SMOKE_REPEATS
        )["speedup"]
    print(format_results(results))
    # Smoke runs keep their artifacts next to their JSON (benchmarks/output/
    # fresh/ in CI) so they never clobber the committed full-run records.
    out_dir = args.output.parent if args.smoke else Path(__file__).parent / "output"
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "quant_prefill.txt").write_text(format_results(results) + "\n")
    args.output.parent.mkdir(parents=True, exist_ok=True)
    write_json(results, args.output, smoke_speedup=smoke_speedup)
    print(f"[saved to {args.output}]")
