"""Fig. 6: naive vs computation-reordered vs fine-grained block schedules."""

from repro.bench import fig6_pipeline_schedules, format_rows


def test_fig6_pipeline_schedules(benchmark, save_output):
    rows = benchmark.pedantic(fig6_pipeline_schedules, rounds=1, iterations=1)
    text = format_rows(
        rows, title="Fig. 6: block schedule comparison (Mamba2-2.7B on VCK190, W4A4)"
    )
    save_output("fig6_pipeline_schedules", text)

    by_mode = {row["schedule"]: row for row in rows}
    # The paper reports a ~32% latency reduction and a utilisation jump from
    # the naive to the reordered schedule.
    assert by_mode["reordered"]["latency_reduction_vs_naive_%"] > 20
    assert (
        by_mode["reordered"]["bottleneck_utilisation_%"]
        > by_mode["sequential"]["bottleneck_utilisation_%"] + 15
    )
    # Fine-grained tiling preserves the reordered throughput.
    assert by_mode["fine_grained"]["tokens_per_s"] >= by_mode["reordered"]["tokens_per_s"] * 0.99
