"""All-integer decode iteration throughput vs fake-quant decode.

The quantized decode path used to round-trip every per-token tensor through
fake-quant floats: quantize the incoming float state, compute in float,
quantize the outgoing state, store floats.  The persistent-state mode
(``SSMQuantConfig.persistent_state=True``) now runs the *all-integer*
iteration: the recurrent state ``h`` stays resident as INT codes + PoT shift
exponents between steps (the FPGA's on-chip state buffer execution model),
and every per-token requantization -- the ``delta (*) B`` and ``D (*) x``
scalar folds and the product regrids between them -- is a
``shift_requantize`` on resident codes instead of a dequantize / absmax /
round pass over float tensors.  No float tensor is materialized between
in-projection and readout (enforced by the ``repro.analysis`` DT20x lint and
its sanction-budget ratchet).  Outputs are bit-identical to the fake-quant
oracle under PoT scaling (scaling commutes with rounding for power-of-two
grids; pinned by ``tests/test_int_state.py``), so the entire difference
between the two series is decode speed.

This benchmark measures pure decode tokens/sec (prefill excluded: the prompt
is summarised once untimed, then a fresh copy of the cache is advanced
``decode_tokens`` steps) for the lightmamba* configurations at paper-scale
SSM dims, fake-quant vs persistent, across batch sizes.  Speedups are ratios
on the same machine, so the committed record is portable and feeds the CI
regression gate (``check_regression.py``).

Run directly::

    PYTHONPATH=src python benchmarks/bench_int_decode.py [--smoke]

or through the benchmark harness
(``pytest benchmarks/bench_int_decode.py``).
"""

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.bench import format_series
from repro.mamba import InitConfig, Mamba2Config, Mamba2Model
from repro.quant import QuantConfig, QuantMethod, SSMQuantConfig, quantize_model

#: Decode benchmark configuration with the published-scale SSM state dims
#: (d_state 128, headdim 64): the recurrent state is the largest per-step
#: tensor, which is exactly what the persistent mode stops re-quantizing.
INT_DECODE_BENCH_CONFIG = Mamba2Config(
    name="int-decode-bench",
    d_model=256,
    n_layer=2,
    vocab_size=512,
    d_state=128,
    headdim=64,
)

#: The quantized configurations under test (the paper's lightmamba* points).
#: The SSM itself is INT8 in both; the persistent variant only changes where
#: the state lives between steps.
QUANT_CONFIGS = (
    ("W8A8", lambda ssm: QuantConfig.w8a8(QuantMethod.LIGHTMAMBA_STAR, ssm=ssm)),
    ("W4A4", lambda ssm: QuantConfig.w4a4(QuantMethod.LIGHTMAMBA_STAR, ssm=ssm)),
)


def _paired_best_step(models, batch_size, decode_tokens, repeats, seed=0):
    """Best per-step decode seconds for each model, interleaved step by step.

    Each model's prompt batch is prefilled once (untimed) and its cache then
    advances continuously; the timed region is exactly one ``model.step``
    call -- the decode hot path the persistent state changes.  The models
    take turns *every step* (A, B, A, B, ...), so both sample the same
    machine conditions at millisecond granularity: the paths differ by only
    ~1.1-1.3x, which sustained CPU-frequency / scheduler drift between two
    coarser back-to-back measurement blocks would swamp.  One untimed warmup
    step per model precedes the clock (allocator and BLAS thread-pool
    state otherwise bias whichever path is measured first).
    """
    rng = np.random.default_rng(seed)
    prompts = np.stack(
        [rng.integers(0, models[0].config.vocab_size, size=8) for _ in range(batch_size)]
    )
    lanes = []
    for model in models:
        logits, cache = model.prefill(prompts)
        lanes.append({"model": model, "tokens": np.argmax(logits, axis=-1), "cache": cache})
    for lane in lanes:  # untimed warmup
        lane["model"].step(lane["tokens"], lane["cache"])
    best = [np.inf] * len(models)
    for _ in range(repeats * decode_tokens):
        for i, lane in enumerate(lanes):
            start = time.perf_counter()
            logits = lane["model"].step(lane["tokens"], lane["cache"])
            best[i] = min(best[i], time.perf_counter() - start)
            lane["tokens"] = np.argmax(logits, axis=-1)
    return best


def bench_int_decode(
    batch_sizes=(1, 4, 8),
    decode_tokens=32,
    config: Mamba2Config = INT_DECODE_BENCH_CONFIG,
    repeats: int = 3,
):
    """Measure fake-quant vs persistent integer-state decode tokens/sec.

    Returns a dict with a ``series`` entry per measurement (tokens/sec keyed
    by batch size) and a ``speedup`` entry per quantized configuration
    (persistent over fake-quant at equal batch size).
    """
    model = Mamba2Model.from_config(config, InitConfig(seed=0))

    series: dict = {}
    speedup: dict = {}
    for label, make_config in QUANT_CONFIGS:
        fake = quantize_model(model, make_config(SSMQuantConfig()))
        persistent = quantize_model(
            model, make_config(SSMQuantConfig(persistent_state=True))
        )
        fake_tps, persistent_tps = {}, {}
        for batch_size in batch_sizes:
            fake_s, persistent_s = _paired_best_step(
                (fake, persistent), batch_size, decode_tokens, repeats
            )
            # Steady-state decode throughput: batch tokens per best step.
            fake_tps[batch_size] = batch_size / fake_s
            persistent_tps[batch_size] = batch_size / persistent_s
        series[f"decode {label} fake-quant state (tok/s)"] = fake_tps
        series[f"decode {label} persistent int state (tok/s)"] = persistent_tps
        speedup[f"decode {label}"] = {
            b: persistent_tps[b] / fake_tps[b] for b in batch_sizes
        }

    return {
        "config": config.name,
        "decode_tokens": decode_tokens,
        "series": series,
        "speedup": speedup,
    }


def format_results(results) -> str:
    series = dict(results["series"])
    for name, speedups in results["speedup"].items():
        series[f"{name} speedup (x)"] = speedups
    return format_series(
        series,
        x_label="batch",
        title=(
            "Quantized decode: persistent integer state vs fake-quant state "
            f"({results['config']}, {results['decode_tokens']} decode tokens)"
        ),
    )


#: Measurement shape of the CI smoke runs; the committed JSON carries a
#: smoke-shaped ``smoke_speedup`` section so the regression gate compares
#: like-shaped runs.
SMOKE_BATCH_SIZES = (1, 4)
SMOKE_DECODE_TOKENS = 12
SMOKE_REPEATS = 1


def write_json(results, path, smoke_speedup=None) -> None:
    path = Path(path)
    payload = {
        "benchmark": "int_decode",
        "config": results["config"],
        "decode_tokens": results["decode_tokens"],
        "series": {
            name: {str(k): v for k, v in points.items()}
            for name, points in results["series"].items()
        },
        "speedup": {
            name: {str(k): v for k, v in points.items()}
            for name, points in results["speedup"].items()
        },
    }
    if smoke_speedup is not None:
        payload["smoke_speedup"] = {
            name: {str(k): v for k, v in points.items()}
            for name, points in smoke_speedup.items()
        }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def test_int_decode(benchmark, save_output):
    results = benchmark.pedantic(bench_int_decode, rounds=1, iterations=1)
    text = format_results(results)
    save_output("int_decode", text)
    smoke = bench_int_decode(
        batch_sizes=SMOKE_BATCH_SIZES,
        decode_tokens=SMOKE_DECODE_TOKENS,
        repeats=SMOKE_REPEATS,
    )
    write_json(
        results,
        Path(__file__).parent.parent / "BENCH_int_decode.json",
        smoke_speedup=smoke["speedup"],
    )

    # Acceptance bar: removing the per-token state round trip must buy a
    # measurable decode win at every configuration for some batch size.
    for label, _ in QUANT_CONFIGS:
        best = max(results["speedup"][f"decode {label}"].values())
        assert best >= 1.05, results["speedup"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI mode: fewer batches and decode tokens, single repeat",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).parent.parent / "BENCH_int_decode.json",
        help="where to write the JSON record",
    )
    args = parser.parse_args()

    if args.smoke:
        results = bench_int_decode(
            batch_sizes=SMOKE_BATCH_SIZES,
            decode_tokens=SMOKE_DECODE_TOKENS,
            repeats=SMOKE_REPEATS,
        )
        smoke_speedup = results["speedup"]
    else:
        results = bench_int_decode()
        smoke_speedup = bench_int_decode(
            batch_sizes=SMOKE_BATCH_SIZES,
            decode_tokens=SMOKE_DECODE_TOKENS,
            repeats=SMOKE_REPEATS,
        )["speedup"]
    print(format_results(results))
    # Smoke runs keep their artifacts next to their JSON (benchmarks/output/
    # fresh/ in CI) so they never clobber the committed full-run records.
    out_dir = args.output.parent if args.smoke else Path(__file__).parent / "output"
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "int_decode.txt").write_text(format_results(results) + "\n")
    args.output.parent.mkdir(parents=True, exist_ok=True)
    write_json(results, args.output, smoke_speedup=smoke_speedup)
    print(f"[saved to {args.output}]")
