"""Fig. 7: URAM saved by fine-grained tiling and fusion."""

from repro.bench import fig7_tiling_uram, format_rows


def test_fig7_tiling_uram(benchmark, save_output):
    result = benchmark.pedantic(fig7_tiling_uram, rounds=1, iterations=1)
    text = format_rows(
        [result], title="Fig. 7: on-chip buffer usage, tensor-by-tensor vs tile-by-tile"
    )
    save_output("fig7_tiling_uram", text)

    # The paper reports a ~4x URAM reduction (246 -> 61).
    assert result["reduction_factor"] > 3.0
    assert result["tile_by_tile_uram"] < 120
