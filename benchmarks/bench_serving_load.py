"""Traffic-scale serving load: live HTTP/SSE server + in-process engine.

LightMamba's claim is end-to-end serving efficiency -- latency and tokens/s
under real request streams, not single-prompt microbenchmarks.  This
benchmark drives the three shipped admission policies
(:class:`~repro.serving.scheduler.FIFOScheduler`,
:class:`~repro.serving.scheduler.PriorityScheduler`,
:class:`~repro.serving.scheduler.PagedScheduler`) through seeded workloads
from :mod:`repro.serving.loadgen` -- Poisson and bursty arrivals,
heavy-tailed prompt/output lengths, priority mixes, admission deadlines and
mid-stream client disconnects -- through two drivers:

- **in-process** (``smoke_*`` / ``full_*`` modes): the engine is called
  directly, one workload per policy per arrival shape;
- **live** (``live_smoke`` mode): a real :class:`~repro.serving.server.
  MambaServer` on an ephemeral localhost port, spoken to over raw TCP
  sockets with SSE streaming -- submissions are ``POST /v1/generate`` with
  priority/deadline headers, disconnects are sockets closed mid-stream, and
  the engine advances in lockstep via ``POST /bench/step``.  The live leg
  runs **twice per policy** and fails unless both runs produce bit-identical
  admission/completion traces (the determinism acceptance criterion).

Per mode and policy it reports p50/p99 TTFT, p50/p99 queue wait (engine
iterations), p50/p99 time-per-output-token in *token time* (model tokens the
engine processed between consecutive tokens of a request), finish-reason
counts and total engine steps -- all deterministic given the seed, so the
committed ``BENCH_serving_load.json`` is an exact regression baseline for
``benchmarks/check_regression.py``.  Wall-clock tokens/sec-per-slot is
reported as information only.  Every run is also checked token-for-token
against the single-sequence reference decoders
(:func:`~repro.serving.loadgen.verify_against_solo`): completed requests
must match solo decode exactly and disconnected requests must be exact
prefixes, end to end through the wire path.

Run directly::

    PYTHONPATH=src python benchmarks/bench_serving_load.py [--smoke]

or through the benchmark harness
(``pytest benchmarks/bench_serving_load.py``).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict, Sequence

from repro.bench import format_rows
from repro.mamba import InitConfig, Mamba2Model, get_preset
from repro.serving import (
    FIFOScheduler,
    InferenceEngine,
    PagedScheduler,
    PriorityScheduler,
)
from repro.serving.loadgen import (
    HarnessResult,
    LoadItem,
    TrafficShape,
    make_traffic,
    run_inprocess,
    run_live,
    verify_against_solo,
)
from repro.serving.resilience import ManualClock
from repro.serving.server import ServerConfig, serve_in_thread

PAGE_TOKENS = 64
MAX_BATCH_SIZE = 4
WORKLOAD_SEED = 0

#: Live-leg repeat count: every live mode runs each policy this many times
#: and requires bit-identical traces across runs.
LIVE_RUNS = 2

SHAPES: Dict[str, TrafficShape] = {
    "poisson": TrafficShape(arrival="poisson"),
    "bursty": TrafficShape(arrival="bursty"),
}

#: mode name -> (driver, arrival shape, request count).  ``smoke_*`` and
#: ``live_smoke`` run in CI; ``full_*`` additionally in the committed runs,
#: so the committed JSON carries the smoke modes for exact comparison.
SMOKE_MODES = {
    "smoke_poisson": ("inprocess", "poisson", 24),
    "smoke_bursty": ("inprocess", "bursty", 24),
    "live_smoke": ("live", "poisson", 12),
}
FULL_MODES = {
    **SMOKE_MODES,
    "full_poisson": ("inprocess", "poisson", 96),
    "full_bursty": ("inprocess", "bursty", 96),
}


def _policies() -> Dict[str, object]:
    return {
        "fifo": FIFOScheduler(),
        "priority": PriorityScheduler(),
        "paged": PagedScheduler(page_tokens=PAGE_TOKENS),
    }


def _verify_solo(
    model: Mamba2Model, items: Sequence[LoadItem], result: HarnessResult, where: str
) -> None:
    mismatches = verify_against_solo(model, items, result.records)
    if mismatches:
        raise RuntimeError(
            f"{where}: {len(mismatches)} request(s) diverged from solo decode: "
            + "; ".join(mismatches[:3])
        )


def _run_live_policy(
    model: Mamba2Model, scheduler_name: str, items: Sequence[LoadItem]
) -> HarnessResult:
    """One live-server run: fresh engine + server on an ephemeral port."""
    engine = InferenceEngine(
        model,
        max_batch_size=MAX_BATCH_SIZE,
        scheduler=_policies()[scheduler_name],
        clock=ManualClock(),
    )
    config = ServerConfig(bench_mode=True, manual_clock_step=1.0)
    with serve_in_thread(engine, config=config) as handle:
        return run_live(handle.host, handle.port, items, max_batch_size=MAX_BATCH_SIZE)


def bench_serving_load(
    modes: Dict[str, tuple], seed: int = WORKLOAD_SEED
) -> Dict[str, object]:
    """Run every policy over every mode; see module docstring for the modes."""
    model = Mamba2Model.from_config(get_preset("mamba2-tiny"), InitConfig(seed=0))
    results: Dict[str, object] = {
        "benchmark": "serving_load",
        "seed": seed,
        "max_batch_size": MAX_BATCH_SIZE,
        "page_tokens": PAGE_TOKENS,
        "live_runs": LIVE_RUNS,
        "modes": {},
    }
    for mode, (driver, arrival, n_requests) in modes.items():
        items = make_traffic(
            SHAPES[arrival], n_requests, model.config.vocab_size, seed=seed
        )
        policies: Dict[str, object] = {}
        for name in _policies():
            if driver == "live":
                runs = [_run_live_policy(model, name, items) for _ in range(LIVE_RUNS)]
                hashes = {run.trace_hash for run in runs}
                if len(hashes) != 1:
                    raise RuntimeError(
                        f"{mode}/{name}: live traces diverged across same-seed "
                        f"runs: {sorted(hashes)}"
                    )
                result = runs[0]
            else:
                result = run_inprocess(
                    model, _policies()[name], items, max_batch_size=MAX_BATCH_SIZE
                )
            _verify_solo(model, items, result, f"{mode}/{name}")
            policies[name] = {
                "metrics": result.metrics,
                "trace_hash": result.trace_hash,
                "tokens_per_slot_iteration": result.info["tokens_per_slot_iteration"],
                "wallclock_tokens_per_sec_per_slot": result.info[
                    "wallclock_tokens_per_sec_per_slot"
                ],
                "finish_reasons": result.info["finish_reasons"],
            }
        results["modes"][mode] = {
            "n_requests": n_requests,
            "driver": driver,
            "arrival": arrival,
            "policies": policies,
        }
    return results


def format_results(results) -> str:
    blocks = []
    for mode, payload in results["modes"].items():
        rows = []
        for policy, entry in payload["policies"].items():
            row = {"policy": policy}
            row.update(entry["metrics"])
            row["tok/slot-iter"] = entry["tokens_per_slot_iteration"]
            row["tok/s/slot (wallclock)"] = entry["wallclock_tokens_per_sec_per_slot"]
            rows.append(row)
        blocks.append(
            format_rows(
                rows,
                title=(
                    f"Serving load, {mode} ({payload['driver']} driver, "
                    f"{payload['arrival']} arrivals, {payload['n_requests']} requests, "
                    f"seed {results['seed']}, {results['max_batch_size']} slots)"
                ),
            )
        )
    return "\n\n".join(blocks)


def write_json(results, path) -> None:
    Path(path).write_text(json.dumps(results, indent=2) + "\n")


def test_serving_load(benchmark, save_output):
    results = benchmark.pedantic(
        lambda: bench_serving_load(FULL_MODES), rounds=1, iterations=1
    )
    text = format_results(results)
    save_output("serving_load", text)
    write_json(results, Path(__file__).parent.parent / "BENCH_serving_load.json")

    for mode, payload in results["modes"].items():
        policies = payload["policies"]
        for policy, entry in policies.items():
            reasons = entry["finish_reasons"]
            # Exactly-once: every arrival retires with a terminal reason.
            assert sum(reasons.values()) == payload["n_requests"], (mode, policy)
        # The seeded disconnect mix must actually exercise the cancel path.
        assert any(
            entry["metrics"]["cancelled_count"] > 0 for entry in policies.values()
        ), mode
    # Cross-driver parity: the wire path adds no scheduling perturbation --
    # the live server run of a workload matches the in-process run of the
    # same workload on every gated latency metric (engine_steps may differ
    # by trailing drain iterations around a final disconnect).
    model = Mamba2Model.from_config(get_preset("mamba2-tiny"), InitConfig(seed=0))
    live_mode = results["modes"]["live_smoke"]
    items = make_traffic(
        SHAPES[live_mode["arrival"]],
        live_mode["n_requests"],
        model.config.vocab_size,
        seed=results["seed"],
    )
    for policy, entry in live_mode["policies"].items():
        reference = run_inprocess(
            model, _policies()[policy], items, max_batch_size=MAX_BATCH_SIZE
        )
        for metric, value in entry["metrics"].items():
            if metric == "engine_steps":
                assert abs(value - reference.metrics[metric]) <= 2, (policy, metric)
            else:
                assert value == reference.metrics[metric], (policy, metric, value)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI mode: smoke + live workloads only, no acceptance assertions",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).parent.parent / "BENCH_serving_load.json",
        help="where to write the JSON record",
    )
    args = parser.parse_args()

    results = bench_serving_load(SMOKE_MODES if args.smoke else FULL_MODES)
    print(format_results(results))
    # Smoke runs keep their artifacts next to their JSON (benchmarks/output/
    # fresh/ in CI) so they never clobber the committed full-run records.
    out_dir = args.output.parent if args.smoke else Path(__file__).parent / "output"
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "serving_load.txt").write_text(format_results(results) + "\n")
    args.output.parent.mkdir(parents=True, exist_ok=True)
    write_json(results, args.output)
    print(f"[saved to {args.output}]")
