"""Fig. 3: hardware cost of the SSM element-wise operators, non-PoT vs PoT."""

from repro.bench import fig3_ssm_requant_cost, format_rows


def test_fig3_ssm_requant_cost(benchmark, save_output):
    rows = benchmark.pedantic(fig3_ssm_requant_cost, rounds=1, iterations=1)
    text = format_rows(
        rows, title="Fig. 3: SSM operator cost with naive vs PoT re-quantization"
    )
    save_output("fig3_ssm_requant_cost", text)

    assert len(rows) == 6
    total_dsp_non_pot = sum(row["dsp_non_pot"] for row in rows)
    total_dsp_pot = sum(row["dsp_pot"] for row in rows)
    total_lut_non_pot = sum(row["lut_non_pot"] for row in rows)
    total_lut_pot = sum(row["lut_pot"] for row in rows)
    # PoT re-quantization removes the per-lane rescale multipliers and most of
    # the rounding logic (paper: roughly 2-3x cheaper).
    assert total_dsp_pot < total_dsp_non_pot / 1.5
    assert total_lut_pot < total_lut_non_pot / 1.5
