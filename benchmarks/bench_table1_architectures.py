"""Table I: qualitative comparison of FPGA LLM-accelerator paradigms."""

from repro.bench import format_rows, table1_architecture_comparison


def test_table1_architecture_comparison(benchmark, save_output):
    rows = benchmark.pedantic(table1_architecture_comparison, rounds=1, iterations=1)
    text = format_rows(rows, title="Table I: accelerator paradigm comparison")
    save_output("table1_architectures", text)

    ours = next(row for row in rows if "LightMamba" in row["design"])
    assert ours["architecture"] == "Partial Spatial"
    assert ours["bit_precision"] == "W4A4"
    assert ours["latency"] == "Low" and ours["mm_parallelism"] == "High"
