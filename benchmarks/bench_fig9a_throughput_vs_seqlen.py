"""Fig. 9a: decode throughput versus output sequence length."""

from repro.bench import fig9a_throughput_vs_seqlen, format_series


def test_fig9a_throughput_vs_seqlen(benchmark, save_output):
    seq_lens = (128, 1024, 4096, 8192)
    series = benchmark.pedantic(
        fig9a_throughput_vs_seqlen, kwargs={"seq_lens": seq_lens}, rounds=1, iterations=1
    )
    text = format_series(
        series, x_label="output_tokens", title="Fig. 9a: throughput vs output sequence length"
    )
    save_output("fig9a_throughput_vs_seqlen", text)

    ours = series["LightMamba U280 (Mamba2-2.7B)"]
    gpu = series["RTX 2070 (Mamba2-2.7B)"]
    flightllm = series["FlightLLM (LLaMA2-7B)"]
    dfx = series["DFX (GPT2-1.5B)"]

    # Mamba keeps a fixed-size state: our throughput does not decay with the
    # output length, while the Transformer accelerators' does.
    assert ours[8192] >= ours[1024] * 0.95
    assert flightllm[8192] < flightllm[128]
    assert dfx[8192] < dfx[128]
    # Headline: ~1.43x the RTX 2070 at long outputs.
    assert ours[4096] / gpu[4096] > 1.2
