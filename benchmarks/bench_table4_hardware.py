"""Table IV: platforms, resources, throughput and energy efficiency."""

import pytest

from repro.bench import format_rows, table4_hardware


def test_table4_hardware(benchmark, save_output):
    rows = benchmark.pedantic(table4_hardware, rounds=1, iterations=1)
    text = format_rows(rows, title="Table IV: hardware comparison (Mamba2-2.7B decode)")
    save_output("table4_hardware", text)

    by_platform = {row["platform"]: row for row in rows}
    assert by_platform["VCK190 W4A4"]["tokens_per_s"] == pytest.approx(7.21, rel=0.15)
    assert by_platform["VCK190 W8A8"]["tokens_per_s"] == pytest.approx(3.61, rel=0.15)
    assert by_platform["U280 W4A4"]["tokens_per_s"] == pytest.approx(93, rel=0.15)
    assert by_platform["RTX 2070"]["tokens_per_s"] == pytest.approx(65, rel=0.1)
    assert by_platform["RTX 4090"]["tokens_per_s"] == pytest.approx(138, rel=0.1)
    # Energy-efficiency headline: the FPGA beats both GPUs by a wide margin.
    assert (
        by_platform["VCK190 W4A4"]["tokens_per_j"]
        > 4 * by_platform["RTX 4090"]["tokens_per_j"]
    )
