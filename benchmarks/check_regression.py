"""CI benchmark-regression gate.

Compares a fresh ``--smoke`` benchmark run against the committed repo-root
``BENCH_*.json`` records and exits non-zero when a metric regresses by more
than the threshold (default 30%).  Wired into ``.github/workflows/ci.yml``
after the smoke benchmark steps, so a PR that slows a serving hot path fails
its checks instead of silently eroding the committed trajectory.

What is compared -- only machine-portable quantities, so the gate is
meaningful on any CI runner:

- ``BENCH_prefill.json`` / ``BENCH_quant_prefill.json`` /
  ``BENCH_int_decode.json``: speedup ratios (fast path over baseline on the
  same machine -- a ratio, so the runner's absolute speed divides out).
  When both records carry a ``smoke_speedup`` section (the committed full
  runs store one precisely for this), those like-shaped measurements are
  compared -- warmup order biases the baseline, so a smoke run is only
  comparable to another smoke-shaped run; otherwise the ``speedup`` sections
  are compared at their shared x-keys.  Higher is better; the fresh value
  must stay above ``speedup_floor`` (relative band for ordinary positive
  values, absolute-slack fallback for degenerate zero/negative committed
  values, which carry no meaningful ratio).
- ``BENCH_scheduler.json``: the per-policy ``metrics`` sections of the modes
  both records carry (the committed file stores the ``smoke`` workload next
  to ``full`` for exactly this reason).  These are iteration-space scheduler
  metrics -- fully deterministic given the workload seed -- so any drift at
  all means behavior changed; the gate still allows the threshold, but a
  green run normally matches exactly.  Lower is better; the fresh value must
  stay below ``metric_ceiling`` -- the relative band widened by an absolute
  slack, so a clean committed ``0`` (e.g. the paged policy's
  ``decode_stall_iterations``) can never make CI throw on its own.

Run locally::

    PYTHONPATH=src python benchmarks/bench_prefill_throughput.py --smoke \
        --output benchmarks/output/fresh/BENCH_prefill.json
    PYTHONPATH=src python benchmarks/bench_quant_prefill.py --smoke \
        --output benchmarks/output/fresh/BENCH_quant_prefill.json
    PYTHONPATH=src python benchmarks/bench_scheduler.py --smoke \
        --output benchmarks/output/fresh/BENCH_scheduler.json
    PYTHONPATH=src python benchmarks/bench_int_decode.py --smoke \
        --output benchmarks/output/fresh/BENCH_int_decode.json
    python benchmarks/check_regression.py
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_FRESH_DIR = REPO_ROOT / "benchmarks" / "output" / "fresh"
CANONICAL = (
    "BENCH_prefill.json",
    "BENCH_quant_prefill.json",
    "BENCH_scheduler.json",
    "BENCH_int_decode.json",
    "BENCH_serving_load.json",
)

#: Absolute slack applied when a committed metric is too small (or zero) for a
#: ratio comparison to be meaningful.  A committed ``0`` (e.g. the paged
#: policy's ``decode_stall_iterations``) makes ``committed * threshold`` a
#: zero-width band -- any fresh nonzero value would fail, and a naive
#: fresh/committed ratio would divide by zero -- so the gate falls back to
#: ``|fresh - committed| <= ABSOLUTE_SLACK`` instead.
ABSOLUTE_SLACK = 1.0


def speedup_floor(committed_value: float, threshold: float) -> float:
    """Lowest acceptable fresh value for a higher-is-better ratio metric.

    For an ordinary positive committed value this is the relative band
    ``committed * (1 - threshold)``.  A zero or negative committed value
    carries no meaningful ratio (and must never make the gate *stricter*
    than the committed run, which a sign-blind multiply would): those fall
    back to the absolute band ``committed - ABSOLUTE_SLACK``.
    """
    if committed_value <= 0.0:
        return committed_value - ABSOLUTE_SLACK
    return committed_value * (1.0 - threshold)


def metric_ceiling(committed_value: float, threshold: float) -> float:
    """Highest acceptable fresh value for a lower-is-better count metric.

    Relative band plus the absolute slack for near-zero counters; a negative
    committed value (should not happen for counts, but the gate must not
    crash or silently tighten on one) widens with ``|committed|`` so the
    band stays on the correct side.
    """
    return committed_value + abs(committed_value) * threshold + ABSOLUTE_SLACK


def compare_speedups(
    name: str, committed: dict, fresh: dict, threshold: float
) -> Tuple[List[str], int]:
    """Higher-is-better speedup ratios at the x-keys both runs measured.

    Returns the failure messages plus the number of metric points actually
    compared, so :func:`check_pair` can reject a comparison that silently
    matched nothing.
    """
    section = (
        "smoke_speedup"
        if "smoke_speedup" in committed and "smoke_speedup" in fresh
        else "speedup"
    )
    failures = []
    compared = 0
    for metric, committed_points in committed.get(section, {}).items():
        fresh_points = fresh.get(section, {}).get(metric, {})
        for key, committed_value in committed_points.items():
            if key not in fresh_points:
                continue
            compared += 1
            floor = speedup_floor(committed_value, threshold)
            if fresh_points[key] < floor:
                failures.append(
                    f"{name}: {section}[{metric!r}][{key}] regressed: "
                    f"{fresh_points[key]:.3f} < {floor:.3f} "
                    f"(committed {committed_value:.3f}, threshold {threshold:.0%})"
                )
    return failures, compared


def compare_scheduler_metrics(
    name: str, committed: dict, fresh: dict, threshold: float
) -> Tuple[List[str], int]:
    """Lower-is-better deterministic scheduler metrics, per shared mode/policy.

    Returns the failure messages plus the number of metric points compared.
    """
    failures = []
    compared = 0
    for mode, committed_mode in committed.get("modes", {}).items():
        fresh_mode = fresh.get("modes", {}).get(mode)
        if fresh_mode is None:
            continue
        for policy, committed_entry in committed_mode.get("policies", {}).items():
            fresh_metrics = (
                fresh_mode.get("policies", {}).get(policy, {}).get("metrics", {})
            )
            for metric, committed_value in committed_entry.get("metrics", {}).items():
                if metric not in fresh_metrics:
                    continue
                compared += 1
                ceiling = metric_ceiling(committed_value, threshold)
                if fresh_metrics[metric] > ceiling:
                    failures.append(
                        f"{name}: modes[{mode!r}][{policy!r}].{metric} regressed: "
                        f"{fresh_metrics[metric]:.3f} > {ceiling:.3f} "
                        f"(committed {committed_value:.3f}, threshold {threshold:.0%})"
                    )
    return failures, compared


def check_pair(committed_path: Path, fresh_path: Path, threshold: float) -> List[str]:
    if not committed_path.exists():
        return [f"missing committed baseline: {committed_path}"]
    if not fresh_path.exists():
        return [f"missing fresh benchmark record: {fresh_path} (did the smoke step run?)"]
    committed = json.loads(committed_path.read_text())
    fresh = json.loads(fresh_path.read_text())
    failures, compared = compare_speedups(
        committed_path.name, committed, fresh, threshold
    )
    metric_failures, metric_compared = compare_scheduler_metrics(
        committed_path.name, committed, fresh, threshold
    )
    failures += metric_failures
    compared += metric_compared
    if compared == 0 and not failures:
        # Both records exist but share no comparable points: a renamed mode,
        # policy or metric would otherwise disarm the gate silently.
        failures.append(
            f"{committed_path.name}: zero metric points compared -- the fresh "
            f"record's shape no longer overlaps the committed baseline"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--fresh-dir",
        type=Path,
        default=DEFAULT_FRESH_DIR,
        help="directory holding the fresh smoke-run BENCH_*.json records",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed fractional regression before the gate fails (default 0.30)",
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=REPO_ROOT,
        help="directory holding the committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--only",
        action="append",
        choices=CANONICAL,
        metavar="BENCH_NAME.json",
        help=(
            "check only this canonical record (repeatable); lets CI jobs that "
            "produce a subset of the fresh records gate just their own"
        ),
    )
    args = parser.parse_args(argv)

    names = tuple(args.only) if args.only else CANONICAL
    failures: List[str] = []
    compared = 0
    for name in names:
        pair_failures = check_pair(
            args.baseline_dir / name, args.fresh_dir / name, args.threshold
        )
        failures.extend(pair_failures)
        if not pair_failures:
            compared += 1
            print(f"ok: {name} within {args.threshold:.0%} of the committed baseline")
    if failures:
        print(f"\nBENCHMARK REGRESSION GATE FAILED ({len(failures)} finding(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nbenchmark regression gate passed ({compared} records checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
