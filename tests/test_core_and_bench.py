"""Tests for the co-design layer (repro.core) and the table/figure generators."""

import numpy as np
import pytest

from repro.bench import (
    fig2_activation_distribution,
    fig3_ssm_requant_cost,
    fig4b_fusion_error,
    fig6_pipeline_schedules,
    fig7_tiling_uram,
    fig9a_throughput_vs_seqlen,
    fig9b_energy_efficiency,
    fig10_ablation,
    format_rows,
    format_series,
    table1_architecture_comparison,
    table2_quant_error,
    table3_accuracy,
    table4_hardware,
)
from repro.core import (
    ABLATION_STEPS,
    CoDesignConfig,
    LightMambaPipeline,
    run_hardware_ablation,
)
from repro.eval import build_reference_setup
from repro.hardware import ScheduleMode, U280
from repro.quant import QuantConfig, QuantMethod


@pytest.fixture(scope="module")
def small_setup():
    """A scaled-down reference setup shared by the algorithm-level benches."""
    return build_reference_setup(
        preset="mamba2-tiny",
        n_layer=4,
        num_calibration_sequences=3,
        calibration_seq_len=16,
        num_eval_sequences=2,
        eval_seq_len=16,
        num_task_examples=3,
    )


class TestCoDesignConfig:
    def test_presets(self):
        w4 = CoDesignConfig.vck190_w4a4()
        w8 = CoDesignConfig.vck190_w8a8()
        u280 = CoDesignConfig.u280_w4a4()
        assert w4.accelerator.weight_bits == 4 and w4.accelerator.act_bits == 4
        assert w8.accelerator.weight_bits == 8
        assert u280.accelerator.platform is U280
        assert w4.accelerator.use_rotation  # LightMamba* uses rotation

    def test_accelerator_synced_with_quant(self):
        config = CoDesignConfig(
            model_preset="mamba2-130m",
            quant=QuantConfig.w8a8(QuantMethod.RTN),
        )
        assert config.accelerator.weight_bits == 8
        assert not config.accelerator.use_rotation   # RTN has no online rotation
        assert config.accelerator.ssm_bits == 16     # RTN leaves the SSM in FP

    def test_invalid_preset_rejected(self):
        with pytest.raises(KeyError):
            CoDesignConfig(model_preset="mamba9-99b")

    def test_label_and_overrides(self):
        config = CoDesignConfig.vck190_w4a4().with_accelerator(schedule=ScheduleMode.SEQUENTIAL)
        assert "mamba2-2.7b" in config.label
        assert config.accelerator.schedule is ScheduleMode.SEQUENTIAL


class TestPipeline:
    def test_hardware_only_report(self):
        report = LightMambaPipeline(CoDesignConfig.vck190_w4a4()).run()
        assert report.hardware.tokens_per_second > 5.0
        assert report.fidelity == {}
        assert "tokens_per_s" in report.as_dict()

    def test_report_with_reference_setup(self, small_setup):
        config = CoDesignConfig(
            model_preset="mamba2-130m",
            quant=QuantConfig.w4a4(QuantMethod.LIGHTMAMBA, group_size=32),
        )
        report = LightMambaPipeline(config).run(setup=small_setup)
        assert 0.0 < report.fidelity["top1_agreement"] <= 1.0
        assert report.fidelity["kl_divergence"] >= 0.0

    def test_quantize_helper(self, small_setup):
        pipeline = LightMambaPipeline(
            CoDesignConfig(quant=QuantConfig.w4a4(QuantMethod.RTN, group_size=32))
        )
        quantized = pipeline.quantize(small_setup.model, calibration=small_setup.calibration)
        assert quantized is not small_setup.model


class TestAblation:
    def test_steps_cover_paper_rows(self):
        assert len(ABLATION_STEPS) == 7
        assert ABLATION_STEPS[0].quant is None
        assert ABLATION_STEPS[-1].accelerator_overrides["schedule"] is ScheduleMode.FINE_GRAINED

    def test_hardware_ablation_monotone_story(self):
        results = run_hardware_ablation()
        tps = [r.tokens_per_second for r in results]
        uram = [r.uram for r in results]
        # Quantization steps speed things up; the MM rotation slows down; FHT
        # recovers; reordering improves further; tiling keeps throughput but
        # cuts URAM.
        assert tps[1] > tps[0]
        assert tps[2] > tps[1]
        assert tps[3] < tps[2]
        assert tps[4] > tps[3]
        assert tps[5] > tps[4]
        assert tps[6] >= tps[5] * 0.99
        assert uram[6] < uram[5] / 3
        # Final operating point near the paper's 7.21 tokens/s.
        assert tps[6] == pytest.approx(7.21, rel=0.15)

    def test_accuracy_attachment(self):
        accuracies = {ABLATION_STEPS[0].name: 0.75}
        results = run_hardware_ablation(accuracies=accuracies)
        assert results[0].as_dict()["accuracy_%"] == 75.0
        assert "accuracy_%" not in results[1].as_dict()


class TestFormatting:
    def test_format_rows_alignment_and_columns(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "c": "x"}]
        text = format_rows(rows, title="T")
        assert text.splitlines()[0] == "T"
        assert "a" in text and "b" in text and "c" in text

    def test_format_rows_empty(self):
        assert format_rows([], title="nothing") == "nothing"

    def test_format_series(self):
        text = format_series({"s1": {1: 0.5, 2: 0.25}, "s2": {1: 1.0}}, x_label="n")
        assert "s1" in text and "s2" in text and "n" in text


class TestTableGenerators:
    def test_table1(self):
        rows = table1_architecture_comparison()
        assert any("LightMamba" in row["design"] for row in rows)
        assert format_rows(rows)  # formats without error

    def test_table2_ordering(self, small_setup):
        rows = table2_quant_error(small_setup, group_size=32)
        errors = {row["method"]: row["quant_error"] for row in rows}
        assert set(errors) == {"RTN", "SQ", "OS+", "LightMamba"}
        # The paper's qualitative ordering: rotation best, OS+ worst.
        assert errors["LightMamba"] < errors["RTN"]
        assert errors["OS+"] > errors["RTN"]

    def test_table3_small(self, small_setup):
        configs = [
            ("FP16", None, None),
            ("RTN", QuantMethod.RTN, "w4a4"),
            ("LightMamba", QuantMethod.LIGHTMAMBA, "w4a4"),
        ]
        rows = table3_accuracy(small_setup, configs=configs)
        assert len(rows) == 3
        fp_row = rows[0]
        assert fp_row["precision"] == "FP16"
        for row in rows:
            assert 0.0 <= row["average"] <= 100.0
            assert row["ppl"] > 0

    def test_table4_contains_all_platforms(self):
        rows = table4_hardware()
        platforms = {row["platform"] for row in rows}
        assert platforms == {"VCK190 W4A4", "VCK190 W8A8", "U280 W4A4", "RTX 2070", "RTX 4090"}
        ours = next(r for r in rows if r["platform"] == "VCK190 W4A4")
        assert ours["tokens_per_s"] == pytest.approx(7.21, rel=0.15)
        gpu = next(r for r in rows if r["platform"] == "RTX 2070")
        assert gpu["tokens_per_s"] == pytest.approx(65, rel=0.1)


class TestFigureGenerators:
    def test_fig2_rotation_removes_outliers(self, small_setup):
        result = fig2_activation_distribution(small_setup)
        assert result["after"]["peak_to_rms"] < result["before"]["peak_to_rms"]
        assert result["after"]["kurtosis"] < result["before"]["kurtosis"]
        assert result["histogram_before"].sum() == result["histogram_after"].sum()

    def test_fig3_pot_cheaper(self):
        rows = fig3_ssm_requant_cost()
        assert len(rows) == 6
        for row in rows:
            assert row["dsp_pot"] <= row["dsp_non_pot"]
            assert row["lut_pot"] < row["lut_non_pot"]

    def test_fig4b_fusion_hurts(self, small_setup):
        rows = fig4b_fusion_error(small_setup, group_size=32)
        assert len(rows) == small_setup.config.n_layer
        mean_only = np.mean([r["only_rotate"] for r in rows])
        mean_fused = np.mean([r["fuse_and_rotate"] for r in rows])
        assert mean_fused > mean_only

    def test_fig6_reordering_gains(self):
        rows = fig6_pipeline_schedules()
        by_mode = {row["schedule"]: row for row in rows}
        assert by_mode["reordered"]["block_cycles"] < by_mode["sequential"]["block_cycles"]
        assert by_mode["reordered"]["latency_reduction_vs_naive_%"] > 20
        assert (
            by_mode["fine_grained"]["bottleneck_utilisation_%"]
            > by_mode["sequential"]["bottleneck_utilisation_%"]
        )

    def test_fig7_uram_reduction(self):
        result = fig7_tiling_uram()
        assert result["reduction_factor"] > 3.0

    def test_fig9a_series_shapes(self):
        series = fig9a_throughput_vs_seqlen(seq_lens=(128, 4096))
        ours = series["LightMamba U280 (Mamba2-2.7B)"]
        flight = series["FlightLLM (LLaMA2-7B)"]
        assert ours[4096] >= ours[128]            # Mamba stays flat / improves
        assert flight[4096] < flight[128]          # Transformers decay
        assert ours[4096] > series["RTX 2070 (Mamba2-2.7B)"][4096]

    def test_fig9b_ratios(self):
        series = fig9b_energy_efficiency(model_presets=("mamba2-130m", "mamba2-2.7b"))
        for preset in ("mamba2-130m", "mamba2-2.7b"):
            assert series["ratio vs RTX 2070"][preset] > 3.0
            assert series["ratio vs RTX 4090"][preset] > 3.0

    def test_fig10_rows(self):
        rows = fig10_ablation(include_accuracy=False)
        assert len(rows) == 7
        assert rows[-1]["uram"] < rows[-2]["uram"]
        text = format_rows(rows)
        assert "tiling" in text
