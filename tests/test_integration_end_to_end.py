"""End-to-end integration tests crossing package boundaries."""

import numpy as np
import pytest

from repro.eval import ZipfCorpusGenerator, build_reference_setup, top1_agreement
from repro.hardware import AcceleratorConfig, LightMambaAccelerator, VCK190
from repro.mamba import InitConfig, Mamba2Model, get_preset, greedy_decode
from repro.quant import QuantConfig, QuantMethod, quantize_model
from repro.quant.rotation import RotationConfig, rotate_model


@pytest.fixture(scope="module")
def model():
    return Mamba2Model.from_config(get_preset("mamba2-tiny"), InitConfig(seed=42))


class TestQuantizedDecodePath:
    """The quantized models must behave consistently across prefill and decode."""

    @pytest.mark.parametrize(
        "method", [QuantMethod.RTN, QuantMethod.LIGHTMAMBA, QuantMethod.LIGHTMAMBA_STAR]
    )
    def test_prefill_step_matches_forward(self, model, method):
        quantized = quantize_model(model, QuantConfig.w4a4(method, group_size=32))
        rng = np.random.default_rng(0)
        tokens = rng.integers(0, model.config.vocab_size, size=10)

        # Sequential oracle: prefill + decode step reproduce forward exactly
        # (token-by-token numerics are shared between the three entry points).
        full = quantized.forward(tokens, scan_impl="sequential")
        logits, cache = quantized.prefill(tokens[:-1], scan_impl="sequential")
        step = quantized.step(int(tokens[-1]), cache)
        np.testing.assert_allclose(logits, full[-2], rtol=1e-7, atol=1e-7)
        np.testing.assert_allclose(step, full[-1], rtol=1e-7, atol=1e-7)

        # Default (chunked) path: prefill logits still match forward tightly
        # (same scan, causal prefix).  The decode step after a chunked prefill
        # matches forward tightly for FP-scan models; for lightmamba* the
        # per-token step re-quantizes products the chunk body accumulates at
        # high precision, so the agreement is at quantization-noise scale.
        full = quantized.forward(tokens)
        logits, cache = quantized.prefill(tokens[:-1])
        step = quantized.step(int(tokens[-1]), cache)
        np.testing.assert_allclose(logits, full[-2], rtol=1e-7, atol=1e-7)
        if method is QuantMethod.LIGHTMAMBA_STAR:
            np.testing.assert_allclose(step, full[-1], rtol=5e-2, atol=5e-2)
        else:
            np.testing.assert_allclose(step, full[-1], rtol=1e-7, atol=1e-7)

    def test_greedy_decode_deterministic_for_quantized(self, model):
        quantized = quantize_model(
            model, QuantConfig.w4a4(QuantMethod.LIGHTMAMBA_STAR, group_size=32)
        )
        a = greedy_decode(quantized, [3, 1, 4], max_new_tokens=6)
        b = greedy_decode(quantized, [3, 1, 4], max_new_tokens=6)
        assert a.tokens == b.tokens

    def test_rotated_then_quantized_tracks_fp(self, model):
        """Rotation before quantization must not hurt FP-agreement badly."""
        sequences = ZipfCorpusGenerator(model.config.vocab_size, seed=9).sequences(3, 24)
        q_rtn = quantize_model(model, QuantConfig.w8a8(QuantMethod.RTN, group_size=32))
        q_rot = quantize_model(model, QuantConfig.w8a8(QuantMethod.LIGHTMAMBA, group_size=32))
        assert top1_agreement(model, q_rot, sequences) >= 0.95
        assert top1_agreement(model, q_rtn, sequences) >= 0.95

    def test_rotation_with_distinct_seeds_stays_equivalent(self, model):
        """Each rotation seed produces a different but equivalent FP model."""
        tokens = np.arange(6)
        reference = model.forward(tokens)
        for seed in (1, 2, 3):
            rotated = rotate_model(model, RotationConfig(seed=seed)).model
            np.testing.assert_allclose(rotated.forward(tokens), reference, rtol=1e-5, atol=1e-5)


class TestCoDesignConsistency:
    def test_accelerator_matches_quant_precision(self):
        """The hardware model must be evaluated at the algorithm's precision."""
        from repro.core import CoDesignConfig

        for factory, bits in [
            (CoDesignConfig.vck190_w4a4, 4),
            (CoDesignConfig.vck190_w8a8, 8),
        ]:
            config = factory()
            assert config.accelerator.weight_bits == bits
            assert config.accelerator.act_bits == bits

    def test_throughput_scales_with_model_size(self):
        """Smaller Mamba2 models decode faster on the same accelerator."""
        config = AcceleratorConfig(platform=VCK190)
        tps = {
            name: LightMambaAccelerator(config, get_preset(name)).tokens_per_second()
            for name in ("mamba2-130m", "mamba2-780m", "mamba2-2.7b")
        }
        assert tps["mamba2-130m"] > tps["mamba2-780m"] > tps["mamba2-2.7b"]

    def test_memory_bound_throughput_tracks_weight_bytes(self):
        """On the bandwidth-bound VCK190 the W8A8/W4A4 throughput ratio is ~2."""
        model = get_preset("mamba2-2.7b")
        w4 = LightMambaAccelerator(AcceleratorConfig(platform=VCK190), model)
        w8 = LightMambaAccelerator(
            AcceleratorConfig(platform=VCK190, weight_bits=8, act_bits=8), model
        )
        ratio = w4.tokens_per_second() / w8.tokens_per_second()
        assert 1.6 < ratio < 2.2


class TestReferenceSetup:
    def test_small_setup_is_complete_and_deterministic(self):
        a = build_reference_setup(
            preset="mamba2-tiny", n_layer=2, num_calibration_sequences=2,
            calibration_seq_len=12, num_eval_sequences=1, eval_seq_len=12,
            num_task_examples=2, seed=5,
        )
        b = build_reference_setup(
            preset="mamba2-tiny", n_layer=2, num_calibration_sequences=2,
            calibration_seq_len=12, num_eval_sequences=1, eval_seq_len=12,
            num_task_examples=2, seed=5,
        )
        np.testing.assert_array_equal(a.model.embedding, b.model.embedding)
        np.testing.assert_array_equal(
            a.calibration_sequences[0], b.calibration_sequences[0]
        )
        assert a.config.n_layer == 2
        assert a.calibration.num_layers == 2
        assert len(a.tasks) == 7  # one stand-in per paper benchmark

    def test_reference_model_has_scattered_outliers(self):
        setup = build_reference_setup(
            preset="mamba2-tiny", n_layer=3, num_calibration_sequences=2,
            calibration_seq_len=16, num_eval_sequences=1, eval_seq_len=16,
            num_task_examples=2,
        )
        collect = []
        setup.model.forward(setup.evaluation_sequences[0], collect=collect)
        acts = collect[1]["out_proj_input"]
        kurtosis = np.mean(acts**4) / np.mean(acts**2) ** 2
        assert kurtosis > 10.0
