"""Shared pytest fixtures for the LightMamba reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mamba import InitConfig, Mamba2Model, get_preset


@pytest.fixture(scope="session")
def tiny_config():
    """The smallest structurally-complete Mamba2 configuration."""
    return get_preset("mamba2-tiny")


@pytest.fixture(scope="session")
def small_config():
    return get_preset("mamba2-small")


@pytest.fixture(scope="session")
def tiny_model(tiny_config):
    """A deterministic tiny model with the default outlier profile."""
    return Mamba2Model.from_config(tiny_config, InitConfig(seed=0))


@pytest.fixture(scope="session")
def small_model(small_config):
    return Mamba2Model.from_config(small_config, InitConfig(seed=1))


@pytest.fixture()
def rng():
    """A per-test deterministic random generator."""
    return np.random.default_rng(1234)
