"""Integration tests for whole-model quantization (calibration + qmodel)."""

import numpy as np
import pytest

from repro.mamba import InitConfig, Mamba2Model, get_preset, greedy_decode
from repro.quant import (
    QuantConfig,
    QuantMethod,
    collect_activation_stats,
    quantize_model,
)
from repro.quant.qmodel import _ActivationQuant, _Chain
from repro.quant.rotation import OnlineHadamard
from repro.quant.ssm_quant import QuantizedSSMStep


@pytest.fixture(scope="module")
def model():
    return Mamba2Model.from_config(get_preset("mamba2-tiny"), InitConfig(seed=11))


@pytest.fixture(scope="module")
def calib_sequences(model):
    rng = np.random.default_rng(21)
    return [rng.integers(0, model.config.vocab_size, size=32) for _ in range(4)]


@pytest.fixture(scope="module")
def calibration(model, calib_sequences):
    return collect_activation_stats(model, calib_sequences, store_samples=True)


@pytest.fixture(scope="module")
def eval_tokens(model):
    rng = np.random.default_rng(99)
    return rng.integers(0, model.config.vocab_size, size=48)


ALL_METHODS = [
    QuantMethod.RTN,
    QuantMethod.SMOOTHQUANT,
    QuantMethod.OSPLUS,
    QuantMethod.LIGHTMAMBA,
    QuantMethod.LIGHTMAMBA_STAR,
]


class TestCalibration:
    def test_result_shapes(self, model, calibration):
        cfg = model.config
        assert calibration.num_layers == cfg.n_layer
        assert calibration.in_proj_absmax(0).shape == (cfg.d_model,)
        assert calibration.out_proj_absmax(0).shape == (cfg.d_inner,)
        lo, hi = calibration.out_proj_minmax(1)
        assert np.all(hi >= lo)

    def test_token_count(self, calibration, calib_sequences):
        assert calibration.num_tokens == sum(len(s) for s in calib_sequences)

    def test_samples_stored(self, model, calibration):
        sample = calibration.sample("out_proj_input", 0)
        assert sample.shape[1] == model.config.d_inner
        assert sample.shape[0] == calibration.num_tokens

    def test_requires_sequences(self, model):
        with pytest.raises(ValueError):
            collect_activation_stats(model, [])


class TestQuantizeModel:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_w8a8_close_to_fp(self, model, calibration, eval_tokens, method):
        """All methods keep W8A8 logits close to FP (Table III, top half)."""
        config = QuantConfig.w8a8(method, group_size=32)
        qmodel = quantize_model(model, config, calibration=calibration)
        fp = model.forward(eval_tokens)
        q = qmodel.forward(eval_tokens)
        # Compare next-token prediction agreement rather than raw logits.
        agreement = np.mean(np.argmax(fp, axis=1) == np.argmax(q, axis=1))
        assert agreement > 0.85

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_w4a4_produces_finite_output(self, model, calibration, eval_tokens, method):
        config = QuantConfig.w4a4(method, group_size=32)
        qmodel = quantize_model(model, config, calibration=calibration)
        out = qmodel.forward(eval_tokens)
        assert np.all(np.isfinite(out))

    def test_lightmamba_w4a4_beats_rtn(self, model, calibration, eval_tokens):
        """Rotation-assisted W4A4 tracks the FP model better than RTN W4A4.

        Fidelity is the mean KL divergence between the FP and the quantized
        next-token distributions (lower is better); the rotated model must be
        strictly closer to the FP reference.
        """
        from repro.mamba.ops import softmax

        fp_probs = softmax(model.forward(eval_tokens), axis=-1)

        def kl_to_fp(method):
            qmodel = quantize_model(
                model, QuantConfig.w4a4(method, group_size=32), calibration=calibration
            )
            q_probs = softmax(qmodel.forward(eval_tokens), axis=-1)
            kl = np.sum(fp_probs * (np.log(fp_probs + 1e-12) - np.log(q_probs + 1e-12)), axis=1)
            return float(np.mean(kl))

        assert kl_to_fp(QuantMethod.LIGHTMAMBA) < kl_to_fp(QuantMethod.RTN)

    def test_fp16_method_is_identity(self, model, eval_tokens):
        q = quantize_model(model, QuantConfig(method=QuantMethod.FP16))
        np.testing.assert_allclose(q.forward(eval_tokens), model.forward(eval_tokens))

    def test_original_model_not_modified(self, model, calibration, eval_tokens):
        before = model.forward(eval_tokens)
        quantize_model(model, QuantConfig.w4a4(QuantMethod.LIGHTMAMBA_STAR, group_size=32))
        quantize_model(
            model,
            QuantConfig.w4a4(QuantMethod.OSPLUS, group_size=32),
            calibration=calibration,
        )
        np.testing.assert_array_equal(model.forward(eval_tokens), before)

    def test_calibration_required_for_sq(self, model):
        with pytest.raises(ValueError):
            quantize_model(model, QuantConfig.w8a8(QuantMethod.SMOOTHQUANT))

    def test_calibration_from_sequences(self, model, calib_sequences, eval_tokens):
        q = quantize_model(
            model,
            QuantConfig.w8a8(QuantMethod.SMOOTHQUANT, group_size=32),
            calib_sequences=calib_sequences,
        )
        assert np.all(np.isfinite(q.forward(eval_tokens)))

    def test_lightmamba_installs_hadamard_hook(self, model):
        q = quantize_model(model, QuantConfig.w4a4(QuantMethod.LIGHTMAMBA, group_size=32))
        hook = q.blocks[0].pre_out_proj
        assert isinstance(hook, _Chain)
        assert any(isinstance(h, OnlineHadamard) for h in hook.hooks)
        assert any(isinstance(h, _ActivationQuant) for h in hook.hooks)

    def test_star_quantizes_ssm(self, model):
        star = quantize_model(model, QuantConfig.w4a4(QuantMethod.LIGHTMAMBA_STAR, group_size=32))
        plain = quantize_model(model, QuantConfig.w4a4(QuantMethod.LIGHTMAMBA, group_size=32))
        assert all(isinstance(b.ssm_impl, QuantizedSSMStep) for b in star.blocks)
        assert all(b.ssm_impl is None for b in plain.blocks)

    def test_osplus_installs_bias_compensation(self, model, calibration):
        q = quantize_model(
            model, QuantConfig.w8a8(QuantMethod.OSPLUS, group_size=32), calibration=calibration
        )
        assert q.blocks[0].in_proj_bias is not None
        assert q.blocks[0].out_proj_bias is not None

    def test_quantized_weights_are_on_grid(self, model):
        """Weights of the quantized model must take at most 2^bits distinct levels per group."""
        q = quantize_model(model, QuantConfig.w4a4(QuantMethod.RTN, group_size=32))
        w = q.blocks[0].out_proj_weight
        group = w[0, :32]
        scale = np.max(np.abs(group)) / 7.0
        codes = group / max(scale, 1e-12)
        np.testing.assert_allclose(codes, np.round(codes), atol=1e-6)

    def test_quantized_model_decodes(self, model):
        q = quantize_model(model, QuantConfig.w4a4(QuantMethod.LIGHTMAMBA_STAR, group_size=32))
        result = greedy_decode(q, [1, 2, 3], max_new_tokens=4)
        assert len(result) == 4

    def test_label(self):
        assert QuantConfig.w4a4(QuantMethod.LIGHTMAMBA).label == "lightmamba W4A4"
