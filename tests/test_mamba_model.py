"""Tests of the Mamba2 model substrate: config, layers, block, model, decode."""

import numpy as np
import pytest

from repro.mamba import (
    ByteTokenizer,
    CausalConv1d,
    GatedRMSNorm,
    InferenceCache,
    InitConfig,
    Mamba2Config,
    Mamba2Model,
    OutlierProfile,
    RMSNorm,
    SSMParams,
    get_preset,
    greedy_decode,
    sample_decode,
    ssm_scan,
    ssm_step,
)
from repro.mamba.ssm import ssm_step_trace


class TestConfig:
    def test_preset_2p7b_dimensions(self):
        """The 2.7B preset must match the dimensions the paper's HTU implies."""
        cfg = get_preset("mamba2-2.7b")
        assert cfg.d_model == 2560
        assert cfg.n_layer == 64
        assert cfg.d_inner == 5120
        assert cfg.nheads == 80
        # d_inner = 5120 = 128 * 40: the paper's 128-point and 40-point HTUs.
        assert cfg.d_inner == 128 * 40

    def test_parameter_counts_are_roughly_model_names(self):
        """Parameter counts should land near the nominal model sizes."""
        approx = {
            "mamba2-130m": 130e6,
            "mamba2-370m": 370e6,
            "mamba2-780m": 780e6,
            "mamba2-1.3b": 1.3e9,
            "mamba2-2.7b": 2.7e9,
        }
        for name, nominal in approx.items():
            count = get_preset(name).num_parameters()
            assert 0.6 * nominal < count < 1.6 * nominal, (name, count)

    def test_derived_dimensions(self):
        cfg = Mamba2Config(d_model=64, n_layer=2, vocab_size=100, d_state=16, headdim=16)
        assert cfg.d_inner == 128
        assert cfg.nheads == 8
        assert cfg.conv_dim == 128 + 2 * 16
        assert cfg.d_in_proj == 2 * 128 + 2 * 16 + 8

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            Mamba2Config(d_model=0)
        with pytest.raises(ValueError):
            Mamba2Config(d_model=100, headdim=64)  # d_inner not divisible

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            get_preset("mamba2-9000b")

    def test_with_overrides(self):
        cfg = get_preset("mamba2-tiny").with_overrides(n_layer=5)
        assert cfg.n_layer == 5
        assert cfg.d_model == get_preset("mamba2-tiny").d_model


class TestNorms:
    def test_rmsnorm_scale_applied(self):
        norm = RMSNorm(weight=np.full(8, 2.0), eps=0.0)
        x = np.ones((3, 8))
        np.testing.assert_allclose(norm(x), np.full((3, 8), 2.0), rtol=1e-12)

    def test_rmsnorm_rejects_wrong_dim(self):
        norm = RMSNorm(weight=np.ones(8))
        with pytest.raises(ValueError):
            norm(np.ones((2, 9)))

    def test_gated_norm_zero_gate_zeroes_output(self):
        norm = GatedRMSNorm(weight=np.ones(8))
        x = np.random.default_rng(0).normal(size=(4, 8))
        out = norm(x, np.zeros_like(x))
        np.testing.assert_allclose(out, np.zeros_like(x), atol=1e-12)

    def test_gated_norm_shape_mismatch(self):
        norm = GatedRMSNorm(weight=np.ones(8))
        with pytest.raises(ValueError):
            norm(np.ones((2, 8)), np.ones((3, 8)))


class TestConv1d:
    def _conv(self, channels=6, k=4, seed=0):
        rng = np.random.default_rng(seed)
        return CausalConv1d(
            weight=rng.normal(size=(channels, k)),
            bias=rng.normal(size=channels),
            activation=False,
        )

    def test_causality(self):
        """Output at time t must not depend on inputs after t."""
        conv = self._conv()
        rng = np.random.default_rng(1)
        x = rng.normal(size=(10, 6))
        base = conv.forward(x)
        x2 = x.copy()
        x2[7:] += 100.0
        out2 = conv.forward(x2)
        np.testing.assert_allclose(base[:7], out2[:7], rtol=1e-12)

    def test_step_matches_forward(self):
        """Incremental decode must reproduce the full-sequence convolution."""
        conv = self._conv()
        rng = np.random.default_rng(2)
        x = rng.normal(size=(12, 6))
        full = conv.forward(x)
        state = conv.initial_state()
        for t in range(12):
            out, state = conv.step(x[t], state)
            np.testing.assert_allclose(out, full[t], rtol=1e-10, atol=1e-12)

    def test_activation_applied(self):
        convA = self._conv()
        convB = CausalConv1d(convA.weight, convA.bias, activation=True)
        x = np.random.default_rng(3).normal(size=(5, 6))
        a = convA.forward(x)
        b = convB.forward(x)
        np.testing.assert_allclose(b, a / (1 + np.exp(-a)), rtol=1e-10)

    def test_shape_validation(self):
        conv = self._conv()
        with pytest.raises(ValueError):
            conv.forward(np.ones((5, 7)))
        with pytest.raises(ValueError):
            conv.step(np.ones(7), conv.initial_state())


class TestSSM:
    def _params(self, nheads=4, seed=0):
        rng = np.random.default_rng(seed)
        return SSMParams(
            A_log=np.log(rng.uniform(1, 8, size=nheads)),
            D=rng.normal(1.0, 0.1, size=nheads),
            dt_bias=rng.normal(size=nheads),
        )

    def test_step_shapes(self):
        params = self._params()
        x = np.random.default_rng(1).normal(size=(4, 8))
        B = np.random.default_rng(2).normal(size=16)
        C = np.random.default_rng(3).normal(size=16)
        dt = np.random.default_rng(4).normal(size=4)
        state = np.zeros((4, 8, 16))
        y, new_state = ssm_step(params, x, B, C, dt, state)
        assert y.shape == (4, 8)
        assert new_state.shape == (4, 8, 16)

    def test_scan_equals_repeated_steps(self):
        params = self._params()
        rng = np.random.default_rng(5)
        T, H, P, N = 7, 4, 8, 16
        x = rng.normal(size=(T, H, P))
        B = rng.normal(size=(T, N))
        C = rng.normal(size=(T, N))
        dt = rng.normal(size=(T, H))
        y_scan, final = ssm_scan(params, x, B, C, dt)
        state = np.zeros((H, P, N))
        for t in range(T):
            y_t, state = ssm_step(params, x[t], B[t], C[t], dt[t], state)
            np.testing.assert_allclose(y_scan[t], y_t, rtol=1e-12)
        np.testing.assert_allclose(final, state, rtol=1e-12)

    def test_state_decays_without_input(self):
        """With zero input the hidden state must contract (|A_bar| < 1)."""
        params = self._params()
        rng = np.random.default_rng(6)
        state = rng.normal(size=(4, 8, 16))
        x = np.zeros((4, 8))
        B = np.zeros(16)
        C = np.zeros(16)
        dt = np.zeros(4)
        _, new_state = ssm_step(params, x, B, C, dt, state)
        assert np.all(np.abs(new_state) <= np.abs(state) + 1e-12)

    def test_trace_contains_all_elementwise_ops(self):
        from repro.mamba.ssm import SSM_ELEMENTWISE_OPS

        params = self._params()
        rng = np.random.default_rng(7)
        y, new_state, trace = ssm_step_trace(
            params,
            rng.normal(size=(4, 8)),
            rng.normal(size=16),
            rng.normal(size=16),
            rng.normal(size=4),
            np.zeros((4, 8, 16)),
        )
        for name in SSM_ELEMENTWISE_OPS:
            assert name in trace
        np.testing.assert_allclose(
            y, np.sum(trace["h_mul_C"], axis=-1) + trace["x_mul_D"], rtol=1e-12
        )

    def test_rotation_non_equivalence_elementwise(self):
        """Element-wise products do not commute with rotation (paper Eq. 1).

        Eq. 1c -> 1d of the paper requires ``(A_bar (.) h) H == A_bar (.) (h H)``,
        which only holds when ``A_bar`` is constant along the rotated axis.  For
        the general SSM update (the paper's Fig. 1 draws ``A_bar`` with shape
        ``(h, p, n)``) the equality fails, which is why the SSM layer cannot be
        rotated and is quantized with the PoT scheme instead.
        """
        rng = np.random.default_rng(11)
        N = 8
        a_bar = rng.uniform(0.1, 0.9, size=(4, N))    # varies along the state axis
        h = rng.normal(size=(4, N))
        q, _ = np.linalg.qr(rng.normal(size=(N, N)))
        lhs = (a_bar * h) @ q          # rotate after the element-wise product
        rhs = a_bar * (h @ q)          # element-wise product on the rotated state
        assert not np.allclose(lhs, rhs, rtol=1e-3)

    def test_rotation_non_equivalence_gating(self):
        """The silu gate before the output projection is not rotation-equivariant.

        ``silu(z H) (.) (y H) != (silu(z) (.) y) H`` -- hence the paper inserts an
        *online* Hadamard transform after the gated norm (rotation (3) in
        Fig. 4a) instead of fusing a rotation into the producers of ``y``/``z``.
        """
        from repro.mamba.ops import silu

        rng = np.random.default_rng(12)
        N = 16
        y = rng.normal(size=(5, N))
        z = rng.normal(size=(5, N))
        q, _ = np.linalg.qr(rng.normal(size=(N, N)))
        fused_then_rotate = (y * silu(z)) @ q
        rotate_then_fuse = (y @ q) * silu(z @ q)
        assert not np.allclose(fused_then_rotate, rotate_then_fuse, rtol=1e-3)

    def test_input_validation(self):
        params = self._params()
        with pytest.raises(ValueError):
            ssm_step(
                params,
                np.zeros((3, 8)),  # wrong head count
                np.zeros(16),
                np.zeros(16),
                np.zeros(4),
                np.zeros((4, 8, 16)),
            )


class TestBlockAndModel:
    def test_block_step_matches_forward(self, tiny_model):
        """Sequential decode must equal full-sequence prefill logits."""
        rng = np.random.default_rng(0)
        tokens = rng.integers(0, tiny_model.config.vocab_size, size=12)
        full_logits = tiny_model.forward(tokens)

        cache = InferenceCache.zeros(tiny_model.config)
        step_logits = []
        for t in tokens:
            hidden = tiny_model.embed(np.array([t]))[0]
            for i, block in enumerate(tiny_model.blocks):
                hidden = block.step(hidden, cache.layers[i])
            step_logits.append(tiny_model.logits_from_hidden(hidden))
        step_logits = np.stack(step_logits)
        np.testing.assert_allclose(step_logits, full_logits, rtol=1e-8, atol=1e-8)

    def test_prefill_then_step_consistency(self, tiny_model):
        """prefill(prompt) + step must equal forward on the extended sequence."""
        rng = np.random.default_rng(1)
        vocab = tiny_model.config.vocab_size
        prompt = rng.integers(0, vocab, size=9)
        next_token = int(rng.integers(0, vocab))
        logits_prefill, cache = tiny_model.prefill(prompt)
        logits_step = tiny_model.step(next_token, cache)

        extended = np.concatenate([prompt, [next_token]])
        full = tiny_model.forward(extended)
        np.testing.assert_allclose(logits_prefill, full[-2], rtol=1e-8, atol=1e-8)
        np.testing.assert_allclose(logits_step, full[-1], rtol=1e-8, atol=1e-8)

    def test_forward_output_shape(self, tiny_model):
        tokens = np.arange(5) % tiny_model.config.vocab_size
        logits = tiny_model.forward(tokens)
        assert logits.shape == (5, tiny_model.config.vocab_size)
        assert np.all(np.isfinite(logits))

    def test_collect_captures_activations(self, tiny_model):
        collect = []
        tokens = np.arange(4)
        tiny_model.forward(tokens, collect=collect)
        assert len(collect) == tiny_model.config.n_layer
        first = collect[0]
        assert first["out_proj_input"].shape == (4, tiny_model.config.d_inner)
        assert first["in_proj_input"].shape == (4, tiny_model.config.d_model)

    def test_model_copy_is_independent(self, tiny_model):
        clone = tiny_model.copy()
        clone.blocks[0].in_proj_weight[:] = 0.0
        assert not np.allclose(
            clone.blocks[0].in_proj_weight, tiny_model.blocks[0].in_proj_weight
        )

    def test_parameter_count_matches_config_estimate(self, tiny_model):
        estimate = tiny_model.config.num_parameters()
        actual = tiny_model.num_parameters()
        assert actual == estimate

    def test_token_range_validation(self, tiny_model):
        with pytest.raises(ValueError):
            tiny_model.forward(np.array([tiny_model.config.vocab_size + 5]))

    def test_outlier_profile_produces_scattered_outliers(self, small_model):
        """The synthetic init must reproduce the scattered-outlier phenomenon.

        We measure, per token, which channel of the out-proj input holds the
        largest magnitude; with scattered outliers the argmax channel varies
        across tokens (unlike fixed-channel Transformer outliers).
        """
        rng = np.random.default_rng(3)
        tokens = rng.integers(0, small_model.config.vocab_size, size=48)
        collect = []
        small_model.forward(tokens, collect=collect)
        acts = collect[len(collect) // 2]["out_proj_input"]
        kurtosis = np.mean(acts**4) / np.mean(acts**2) ** 2
        assert kurtosis > 6.0  # heavy-tailed (Gaussian would be ~3)
        argmax_channels = np.argmax(np.abs(acts), axis=1)
        assert len(np.unique(argmax_channels)) > 4  # outlier channel moves around

    def test_outlier_profile_increases_outlier_severity(self, small_config, small_model):
        """Disabling the outlier profile must reduce the activation outlier ratio.

        The relevant statistic for quantization difficulty is the ratio of the
        maximum activation magnitude to the per-token RMS at the out-proj input;
        the injected profile should make it clearly larger than the plain
        Gaussian initialisation.
        """
        plain = Mamba2Model.from_config(
            small_config, InitConfig(seed=1, outliers=OutlierProfile.none())
        )
        tokens = np.random.default_rng(4).integers(0, small_config.vocab_size, size=32)

        def outlier_ratio(model):
            collect = []
            model.forward(tokens, collect=collect)
            acts = collect[len(collect) // 2]["out_proj_input"]
            rms = np.sqrt(np.mean(acts**2, axis=1, keepdims=True))
            return float(np.median(np.max(np.abs(acts), axis=1) / (rms[:, 0] + 1e-12)))

        assert outlier_ratio(small_model) > outlier_ratio(plain)


class TestGeneration:
    def test_greedy_decode_length_and_determinism(self, tiny_model):
        prompt = [1, 2, 3]
        r1 = greedy_decode(tiny_model, prompt, max_new_tokens=6)
        r2 = greedy_decode(tiny_model, prompt, max_new_tokens=6)
        assert len(r1) == 6
        assert r1.tokens == r2.tokens
        assert r1.full_sequence[:3] == prompt

    def test_greedy_matches_forward_argmax(self, tiny_model):
        """The first generated token must equal argmax of the prompt logits."""
        prompt = np.array([5, 9, 2, 7])
        logits = tiny_model.forward(prompt)
        expected = int(np.argmax(logits[-1]))
        result = greedy_decode(tiny_model, prompt, max_new_tokens=1)
        assert result.tokens[0] == expected

    def test_sample_decode_reproducible_with_seed(self, tiny_model):
        r1 = sample_decode(tiny_model, [1, 2], max_new_tokens=5, seed=42)
        r2 = sample_decode(tiny_model, [1, 2], max_new_tokens=5, seed=42)
        assert r1.tokens == r2.tokens

    def test_sample_decode_topk_and_temperature_validation(self, tiny_model):
        with pytest.raises(ValueError):
            sample_decode(tiny_model, [1], 3, temperature=0.0)
        with pytest.raises(ValueError):
            sample_decode(tiny_model, [1], 3, top_k=0)

    def test_stop_token(self, tiny_model):
        result = greedy_decode(tiny_model, [1, 2, 3], max_new_tokens=10, stop_token=None)
        stop = result.tokens[0]
        stopped = greedy_decode(tiny_model, [1, 2, 3], max_new_tokens=10, stop_token=stop)
        assert stopped.tokens[-1] == stop
        assert len(stopped) <= len(result)

    def test_empty_prompt_rejected(self, tiny_model):
        with pytest.raises(ValueError):
            greedy_decode(tiny_model, [], max_new_tokens=2)


class TestCache:
    def test_cache_size_independent_of_sequence(self, tiny_model):
        """Mamba's recurrent cache is fixed-size (unlike a KV cache)."""
        _, cache_short = tiny_model.prefill(np.arange(4))
        _, cache_long = tiny_model.prefill(np.arange(32) % tiny_model.config.vocab_size)
        assert cache_short.num_elements() == cache_long.num_elements()

    def test_cache_elements_formula(self, tiny_config):
        cache = InferenceCache.zeros(tiny_config)
        expected = tiny_config.n_layer * (
            tiny_config.conv_state_elements() + tiny_config.ssm_state_elements()
        )
        assert cache.num_elements() == expected
        assert cache.num_bytes(2) == expected * 2


class TestTokenizer:
    def test_round_trip(self):
        tok = ByteTokenizer()
        text = "LightMamba on FPGA!"
        ids = tok.encode(text, add_bos=True, add_eos=True)
        assert ids[0] == tok.bos_id and ids[-1] == tok.eos_id
        assert tok.decode(ids) == text

    def test_vocab_size(self):
        tok = ByteTokenizer()
        assert len(tok) == 259
        assert max(tok.encode("\xff")) < len(tok)
