"""Tests for the :mod:`repro.analysis` static-verification subsystem.

Every rule family is pinned by a paired firing / non-firing fixture under
``tests/fixtures/analysis/``; the overflow prover is pinned against the
*runtime* guard of :func:`repro.quant.qlinear.grouped_integer_matmul` (the
two must agree configuration-by-configuration); and the live repository must
analyze clean modulo the committed baseline -- the same gate CI applies.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import numpy as np

from repro.analysis import (
    AnalysisReport,
    Baseline,
    ContractionSpec,
    analyze_paths,
    analyze_repo,
    default_registry,
    prove,
    prove_default_registry,
    repo_root,
)
from repro.analysis.cli import main
from repro.quant.qlinear import grouped_integer_matmul

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "analysis"


# ----------------------------------------------------------------------
# Guarded-by lock discipline (GB1xx)
# ----------------------------------------------------------------------
def test_guarded_bad_fixture_fires_every_lock_rule():
    findings = analyze_paths([FIXTURES / "guarded_bad.py"])
    active = [f for f in findings if not f.suppressed]
    assert sorted(f.code for f in active) == ["GB101", "GB102", "GB103", "GB104"]

    gb101 = next(f for f in active if f.code == "GB101")
    assert gb101.symbol == "BadCounter.bump"
    assert "_count" in gb101.message and "_lock" in gb101.message

    gb102 = next(f for f in active if f.code == "GB102")
    assert gb102.symbol == "BadCounter.bad_wait"

    gb103 = next(f for f in active if f.code == "GB103")
    assert gb103.symbol == "BadCounter.bad_notify"

    gb104 = next(f for f in active if f.code == "GB104")
    assert "ghost" in gb104.message and "_missing_lock" in gb104.message


def test_guarded_bad_fixture_inline_suppression():
    findings = analyze_paths([FIXTURES / "guarded_bad.py"])
    suppressed = [f for f in findings if f.suppressed]
    assert [f.code for f in suppressed] == ["GB101"]
    assert suppressed[0].symbol == "BadCounter.bump_suppressed"


def test_guarded_ok_fixture_is_quiet():
    assert analyze_paths([FIXTURES / "guarded_ok.py"]) == []


def test_checker_rediscovers_unguarded_latency_pattern(tmp_path):
    """The original engine gap: `_latency` written under `_submit_lock` in
    submit() but read without it elsewhere must produce a GB101."""
    source = textwrap.dedent(
        """
        import threading

        class EngineLike:
            def __init__(self):
                self._submit_lock = threading.Lock()
                self._latency = {}  # guarded-by: _submit_lock

            def submit(self, rid, record):
                with self._submit_lock:
                    self._latency[rid] = record

            def latency(self, rid):
                return self._latency[rid]
        """
    )
    path = tmp_path / "engine_like.py"
    path.write_text(source, encoding="utf-8")
    findings = analyze_paths([path])
    assert [f.code for f in findings] == ["GB101"]
    assert findings[0].symbol == "EngineLike.latency"
    assert "_latency" in findings[0].message


# ----------------------------------------------------------------------
# User-callback lock discipline (CB401)
# ----------------------------------------------------------------------
def test_callback_bad_fixture_fires_cb401_for_every_shape():
    findings = analyze_paths([FIXTURES / "callback_bad.py"])
    active = [f for f in findings if not f.suppressed]
    assert [f.code for f in active] == ["CB401", "CB401", "CB401"]
    assert {f.symbol for f in active} == {
        "BadStreamer.step",
        "BadStreamer.fire",
        "BadStreamer.step_held",
    }
    step = next(f for f in active if f.symbol == "BadStreamer.step")
    assert "on_token" in step.message and "_lock" in step.message

    suppressed = [f for f in findings if f.suppressed]
    assert [f.code for f in suppressed] == ["CB401"]
    assert suppressed[0].symbol == "BadStreamer.step_suppressed"


def test_callback_ok_fixture_is_quiet():
    assert analyze_paths([FIXTURES / "callback_ok.py"]) == []


def test_cb401_rediscovers_callback_under_submit_lock(tmp_path):
    """The shape the rule exists for: streaming a token to user code while
    the engine still holds its submit lock."""
    source = textwrap.dedent(
        """
        import threading

        class EngineLike:
            def __init__(self):
                self._submit_lock = threading.Lock()
                self._latency = {}  # guarded-by: _submit_lock

            # user-callback: on_token
            def step(self, on_token):
                with self._submit_lock:
                    self._latency[0] = 1
                    on_token(0)
        """
    )
    path = tmp_path / "engine_like.py"
    path.write_text(source, encoding="utf-8")
    findings = analyze_paths([path])
    assert [f.code for f in findings] == ["CB401"]
    assert findings[0].symbol == "EngineLike.step"


# ----------------------------------------------------------------------
# Integer-path dtype flow (DT2xx)
# ----------------------------------------------------------------------
def test_dtype_bad_fixture_fires_every_dtype_rule():
    findings = analyze_paths([FIXTURES / "dtype_bad.py"])
    active = [f for f in findings if not f.suppressed]
    assert sorted(f.code for f in active) == ["DT201", "DT201", "DT202", "DT203"]
    symbols = {f.symbol for f in active}
    assert symbols == {"leaky_kernel", "round_trip"}

    suppressed = [f for f in findings if f.suppressed]
    assert [f.code for f in suppressed] == ["DT201"]
    assert suppressed[0].symbol == "leaky_suppressed"


def test_dtype_ok_fixture_is_quiet():
    """Sanctioned quant-points and unregistered functions produce nothing."""
    assert analyze_paths([FIXTURES / "dtype_ok.py"]) == []


# ----------------------------------------------------------------------
# Baseline workflow
# ----------------------------------------------------------------------
def test_baseline_roundtrip_and_partition(tmp_path):
    findings = analyze_paths([FIXTURES / "guarded_bad.py"])
    active = [f for f in findings if not f.suppressed]
    baseline_path = tmp_path / "baseline.json"
    Baseline.write(baseline_path, active)

    baseline = Baseline.load(baseline_path)
    assert all(baseline.contains(f) for f in active)

    report = AnalysisReport(findings=findings)
    now_active, inline, baselined = report.partition(baseline)
    assert now_active == []
    assert len(baselined) == len(active)
    assert [f.code for f in inline] == ["GB101"]

    # The baseline is keyed by fingerprint, not line: unrelated findings of
    # another module never match it.
    other = analyze_paths([FIXTURES / "dtype_bad.py"])
    assert not any(baseline.contains(f) for f in other)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_json_report_and_exit_codes(tmp_path, capsys):
    out_file = tmp_path / "report.json"
    rc = main(
        [
            str(FIXTURES / "guarded_bad.py"),
            "--format",
            "json",
            "--no-overflow",
            "--output",
            str(out_file),
        ]
    )
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"] == {
        "active": 4,
        "suppressed": 1,
        "baselined": 0,
        "sanction_count": 0,  # the fixture registers no integer-resident region
    }
    assert json.loads(out_file.read_text(encoding="utf-8")) == payload

    assert main([str(FIXTURES / "guarded_ok.py"), "--no-overflow"]) == 0
    capsys.readouterr()


def test_cli_write_baseline_accepts_findings(tmp_path, capsys):
    baseline = tmp_path / "bl.json"
    args = [str(FIXTURES / "dtype_bad.py"), "--no-overflow", "--baseline", str(baseline)]
    assert main(args + ["--write-baseline"]) == 0
    assert baseline.exists()
    assert main(args) == 0  # everything is baselined now
    capsys.readouterr()


def test_cli_list_codes(capsys):
    assert main(["--list-codes"]) == 0
    out = capsys.readouterr().out
    for code in ("GB101", "DT201", "OV301"):
        assert code in out


# ----------------------------------------------------------------------
# Static overflow prover (OV3xx)
# ----------------------------------------------------------------------
def test_prover_agrees_with_runtime_guard():
    """`ContractionSpec.overflows` must be true exactly for the
    configurations on which `grouped_integer_matmul` raises OverflowError."""
    rng = np.random.default_rng(0)
    cases = [(4, 128), (8, 32), (8, 128), (16, 32), (16, 128)]
    seen = {True: 0, False: 0}
    for bits, group in cases:
        spec = ContractionSpec(
            name=f"test INT{bits} g{group}",
            origin="test",
            x_bits=bits,
            w_bits=bits,
            group_len=group,
        )
        qmax = spec.x_qmax
        x_codes = rng.integers(-qmax, qmax + 1, size=(2, group))
        w_codes = rng.integers(-qmax, qmax + 1, size=(3, group))
        raised = False
        try:
            grouped_integer_matmul(
                x_codes,
                np.ones((2, 1)),
                w_codes,
                np.ones((3, 1)),
                group_size=group,
                x_qmax=qmax,
                w_qmax=qmax,
            )
        except OverflowError:
            raised = True
        assert raised == spec.overflows, (bits, group)
        seen[spec.overflows] += 1
    # Both verdicts must actually be exercised (INT16 overflows, INT8/4 fit).
    assert seen[True] >= 1 and seen[False] >= 1


def test_prove_emits_ov301_for_provable_overflow():
    unsafe = ContractionSpec(
        name="unsafe INT16 g128", origin="test", x_bits=16, w_bits=16, group_len=128
    )
    findings, margins = prove([unsafe])
    assert [f.code for f in findings] == ["OV301"]
    assert findings[0].symbol == unsafe.name
    assert margins[0]["overflows"] is True
    assert margins[0]["headroom_bits"] < 0

    safe = ContractionSpec(
        name="safe INT8 g32", origin="test", x_bits=8, w_bits=8, group_len=32
    )
    findings, margins = prove([safe])
    assert findings == []
    assert margins[0]["margin"] > 1


def test_default_registry_is_proven_safe_with_margin():
    specs = default_registry()
    assert {s.origin for s in specs} == {"ssm-chunk-body", "qlinear", "mmu"}
    findings, margins = prove_default_registry()
    assert findings == []
    assert len(margins) == len(specs)
    assert all(m["margin"] > 1 for m in margins)


def test_full_chunk_contractions_registered_and_agree_with_guard():
    """The `integer_full_chunk` matmuls (gate @ x and the state hand-off) are
    in the registry at every committed group size, and for each one the
    static verdict matches the runtime guard case-by-case -- including an
    INT16-widened variant that must overflow on both sides."""
    specs = [
        s
        for s in default_registry()
        if s.origin == "ssm-chunk-body"
        and ("gate@x" in s.name or "state hand-off" in s.name)
    ]
    assert len(specs) == 6  # two contractions x three committed group sizes
    assert {s.group_len for s in specs} == {8, 32, 128}
    rng = np.random.default_rng(2)
    verdicts = {True: 0, False: 0}
    for spec in specs:
        widened = ContractionSpec(
            name=f"{spec.name} INT16-widened",
            origin=spec.origin,
            x_bits=16,
            w_bits=16,
            group_len=spec.group_len,
        )
        for candidate in (spec, widened):
            x_codes = rng.integers(
                -candidate.x_qmax, candidate.x_qmax + 1, size=(2, candidate.group_len)
            )
            w_codes = rng.integers(
                -candidate.w_qmax, candidate.w_qmax + 1, size=(3, candidate.group_len)
            )
            raised = False
            try:
                grouped_integer_matmul(
                    x_codes,
                    np.ones((2, 1)),
                    w_codes,
                    np.ones((3, 1)),
                    group_size=candidate.group_len,
                    x_qmax=candidate.x_qmax,
                    w_qmax=candidate.w_qmax,
                )
            except OverflowError:
                raised = True
            assert raised == candidate.overflows, candidate.name
            verdicts[candidate.overflows] += 1
    assert verdicts[True] == 6 and verdicts[False] == 6


# ----------------------------------------------------------------------
# Sanction-budget ratchet (DT204)
# ----------------------------------------------------------------------
def test_count_quant_points_counts_only_registered_regions(tmp_path):
    source = textwrap.dedent(
        """
        def unregistered():
            a = 1  # quant-point: outside any region, never counted

        def resident():  # integer-resident
            b = 2  # quant-point: one
            c = 3  # quant-point: two

            def nested():
                d = 4  # quant-point: three (nested shares the region)
        """
    )
    path = tmp_path / "mod.py"
    path.write_text(source, encoding="utf-8")
    from repro.analysis import SourceModule, count_quant_points

    assert count_quant_points(SourceModule.parse(path, root=tmp_path)) == 3


def test_sanction_budget_finding_is_a_one_way_ratchet():
    from repro.analysis import sanction_budget_finding

    # At or under budget (or with either side unknown): no finding.
    assert sanction_budget_finding(33, 33) is None
    assert sanction_budget_finding(20, 33) is None
    assert sanction_budget_finding(None, 33) is None
    assert sanction_budget_finding(33, None) is None
    finding = sanction_budget_finding(34, 33)
    assert finding is not None
    assert finding.code == "DT204"
    assert "34" in finding.message and "33" in finding.message


def test_live_sanction_count_matches_committed_budget():
    """The live `# quant-point:` count equals the committed budget exactly
    (so any new sanction trips DT204) and sits strictly below the
    pre-refactor surface of 39 -- the all-integer decode iteration must
    *shrink* the sanctioned float surface, not move it around."""
    report = analyze_repo()
    baseline = Baseline.load(repo_root() / "analysis-baseline.json")
    assert baseline.sanction_budget is not None
    assert report.sanction_count == baseline.sanction_budget
    assert baseline.sanction_budget < 39


def test_cli_gate_fires_dt204_when_budget_exceeded(tmp_path, capsys):
    """A baseline with a smaller budget than the live count must fail the
    CLI gate with a DT204 finding that cannot be baselined away."""
    shrunk = {"version": 1, "findings": [], "sanction_budget": 0}
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(shrunk), encoding="utf-8")
    exit_code = main(
        ["--no-overflow", "--baseline", str(baseline), "--format", "json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 1
    assert any(f["code"] == "DT204" for f in payload["findings"])


# ----------------------------------------------------------------------
# Live-repo self-check (the CI gate)
# ----------------------------------------------------------------------
def test_live_repo_is_clean_modulo_baseline():
    report = analyze_repo()
    baseline_path = repo_root() / "analysis-baseline.json"
    baseline = Baseline.load(baseline_path) if baseline_path.exists() else None
    active, _, _ = report.partition(baseline)
    assert active == [], "\n".join(f.format() for f in active)
