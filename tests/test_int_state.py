"""Tests of the persistent integer-state decode and integer-exact chunk body.

Pins the PR's contracts:

- persistent-state decode (``SSMQuantConfig.persistent_state``) is
  *bit-identical* to the fake-quant decode under PoT while keeping the
  recurrent state resident as codes (``QuantizedSSMState`` inside a
  ``QuantizedLayerCache``);
- the integer-resident cache survives the full serving lifecycle --
  gather / scatter / stack / row under admission, eviction and
  preempted-then-resumed prefills -- bit-identically to solo decode;
- the integer-exact chunk body matches the float chunk body bit-for-bit
  under PoT scales and trips the shared INT32 overflow guard on unsafe
  configurations;
- all-zero quantization groups are well-defined everywhere (no warnings,
  exact-zero reconstruction);
- the quantized-state memory model sizes the URAM/BRAM residency;
- the serving edge cases of this PR (empty prompts, cancel racing the final
  decode iteration, the regression gate's zero-metric fallback) behave.
"""

import importlib.util
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.mamba import InitConfig, Mamba2Model, greedy_decode
from repro.mamba.cache import (
    InferenceCache,
    LayerCache,
    QuantizedLayerCache,
    QuantizedSSMState,
)
from repro.mamba.ssm import SSMParams
from repro.quant import (
    QuantConfig,
    QuantMethod,
    QuantizedChunkedScan,
    QuantizedLinear,
    SSMQuantConfig,
    grouped_integer_matmul,
    quantize_model,
)
from repro.serving import BatchedGenerator, InferenceEngine, Request
from repro.serving.scheduler import PriorityScheduler


def _star(model, w_bits=8, a_bits=8, **ssm_kwargs):
    config = QuantConfig(
        method=QuantMethod.LIGHTMAMBA_STAR,
        w_bits=w_bits,
        a_bits=a_bits,
        ssm=SSMQuantConfig(**ssm_kwargs),
    )
    return quantize_model(model, config)


def _state_values(layer):
    state = layer.ssm_state
    return state.dequantize() if isinstance(state, QuantizedSSMState) else state


def _assert_states_equal(a: InferenceCache, b: InferenceCache):
    for layer_a, layer_b in zip(a.layers, b.layers):
        np.testing.assert_array_equal(layer_a.conv_state, layer_b.conv_state)
        np.testing.assert_array_equal(_state_values(layer_a), _state_values(layer_b))


@pytest.fixture(scope="module")
def fake_quant(tiny_model):
    return _star(tiny_model)


@pytest.fixture(scope="module")
def persistent(tiny_model):
    return _star(tiny_model, persistent_state=True)


class TestPersistentDecodeBitIdentity:
    def test_new_cache_is_integer_resident(self, persistent, fake_quant, tiny_model):
        cache = persistent.new_cache(batch_size=3)
        assert all(isinstance(layer, QuantizedLayerCache) for layer in cache.layers)
        state = cache.layers[0].ssm_state
        assert isinstance(state, QuantizedSSMState)
        assert np.issubdtype(state.codes.dtype, np.integer)
        np.testing.assert_array_equal(state.codes, 0)
        np.testing.assert_array_equal(state.dequantize(), 0.0)
        # Non-persistent models keep the float cache.
        assert all(
            type(layer) is LayerCache for layer in fake_quant.new_cache().layers
        )
        assert all(
            type(layer) is LayerCache for layer in tiny_model.new_cache().layers
        )

    @pytest.mark.parametrize("w_bits,a_bits", [(8, 8), (4, 4)])
    def test_decode_bit_identical_to_fake_quant(self, tiny_model, w_bits, a_bits):
        fake = _star(tiny_model, w_bits, a_bits)
        pers = _star(tiny_model, w_bits, a_bits, persistent_state=True)
        rng = np.random.default_rng(3)
        prompt = rng.integers(0, tiny_model.config.vocab_size, size=17)

        logits_f, cache_f = fake.prefill(prompt)
        logits_p, cache_p = pers.prefill(prompt)
        np.testing.assert_array_equal(logits_f, logits_p)
        _assert_states_equal(cache_f, cache_p)

        token = int(np.argmax(logits_f))
        for _ in range(12):
            step_f = fake.step(token, cache_f)
            step_p = pers.step(token, cache_p)
            np.testing.assert_array_equal(step_f, step_p)
            token = int(np.argmax(step_f))
        # The state stayed integer-resident the whole way.
        assert isinstance(cache_p.layers[0].ssm_state, QuantizedSSMState)

    def test_greedy_decode_end_to_end(self, fake_quant, persistent):
        rng = np.random.default_rng(5)
        prompt = rng.integers(0, fake_quant.config.vocab_size, size=9)
        ref = greedy_decode(fake_quant, prompt, 10)
        out = greedy_decode(persistent, prompt, 10)
        assert out.tokens == ref.tokens
        np.testing.assert_array_equal(out.logprobs, ref.logprobs)

    def test_sequential_oracle_prefill_stays_resident(self, fake_quant, persistent):
        rng = np.random.default_rng(7)
        prompt = rng.integers(0, fake_quant.config.vocab_size, size=11)
        logits_f, cache_f = fake_quant.prefill(prompt, scan_impl="sequential")
        logits_p, cache_p = persistent.prefill(prompt, scan_impl="sequential")
        np.testing.assert_array_equal(logits_f, logits_p)
        _assert_states_equal(cache_f, cache_p)
        assert isinstance(cache_p.layers[0].ssm_state, QuantizedSSMState)

    def test_ragged_batched_prefill_matches_fake(self, fake_quant, persistent):
        rng = np.random.default_rng(11)
        vocab = fake_quant.config.vocab_size
        lengths = np.array([4, 9, 6])
        padded = np.zeros((3, 9), dtype=np.int64)
        for i, n in enumerate(lengths):
            padded[i, :n] = rng.integers(0, vocab, size=n)
        logits_f, cache_f = fake_quant.prefill(padded, seq_lens=lengths)
        logits_p, cache_p = persistent.prefill(padded, seq_lens=lengths)
        np.testing.assert_array_equal(logits_f, logits_p)
        _assert_states_equal(cache_f, cache_p)

    def test_persistent_state_config_validation(self):
        with pytest.raises(ValueError, match="persistent_state"):
            SSMQuantConfig(persistent_state=True, pot_scale=False)
        with pytest.raises(ValueError, match="persistent_state"):
            SSMQuantConfig(persistent_state=True, quantize_state=False)


class TestQuantizedCacheLifecycle:
    def _batched_cache(self, persistent, batch=4, seed=2):
        rng = np.random.default_rng(seed)
        prompts = np.stack(
            [rng.integers(0, persistent.config.vocab_size, size=7) for _ in range(batch)]
        )
        _, cache = persistent.prefill(prompts)
        return cache

    def test_row_stack_roundtrip(self, persistent):
        cache = self._batched_cache(persistent)
        rows = [cache.row(i) for i in range(4)]
        stacked = InferenceCache.stack(rows)
        assert isinstance(stacked.layers[0], QuantizedLayerCache)
        for orig, back in zip(cache.layers, stacked.layers):
            np.testing.assert_array_equal(orig.ssm_state.codes, back.ssm_state.codes)
            np.testing.assert_array_equal(orig.ssm_state.scales, back.ssm_state.scales)
            np.testing.assert_array_equal(orig.conv_state, back.conv_state)

    def test_gather_scatter_roundtrip(self, persistent):
        cache = self._batched_cache(persistent)
        reference = cache.copy()
        swapped = cache.gather([1, 0, 3, 2])
        assert isinstance(swapped.layers[0], QuantizedLayerCache)
        cache.scatter([1, 0, 3, 2], swapped)  # swap back into place
        for orig, now in zip(reference.layers, cache.layers):
            np.testing.assert_array_equal(orig.ssm_state.codes, now.ssm_state.codes)
            np.testing.assert_array_equal(orig.ssm_state.scales, now.ssm_state.scales)

    def test_scatter_rejects_float_source(self, persistent, tiny_model):
        cache = self._batched_cache(persistent)
        with pytest.raises(TypeError, match="integer-resident"):
            cache.layers[0].scatter([0], LayerCache.zeros(tiny_model.config, batch_size=1))

    def test_engine_admission_eviction_matches_solo(self, persistent):
        rng = np.random.default_rng(23)
        vocab = persistent.config.vocab_size
        requests = [
            Request(prompt=tuple(rng.integers(0, vocab, size=size)), max_new_tokens=budget)
            for size, budget in ((9, 4), (3, 6), (14, 3), (5, 5), (2, 7))
        ]
        engine = InferenceEngine(persistent, max_batch_size=2)
        completions = engine.run(requests)
        assert len(completions) == len(requests)
        by_id = {c.request_id: c for c in completions}
        for rid, request in enumerate(requests):
            ref = greedy_decode(persistent, request.prompt, request.max_new_tokens)
            assert by_id[rid].result.tokens == ref.tokens
            # Batched BLAS kernels may round the last bits differently than
            # solo decode (the documented 1e-10 equivalence); the *bitwise*
            # claim of this PR is persistent-vs-fake at equal batching, pinned
            # in TestPersistentDecodeBitIdentity.
            np.testing.assert_allclose(by_id[rid].result.logprobs, ref.logprobs, atol=1e-10)

    def test_batched_generator_matches_solo(self, persistent, fake_quant):
        rng = np.random.default_rng(29)
        vocab = persistent.config.vocab_size
        prompts = [rng.integers(0, vocab, size=n) for n in (5, 11, 8)]
        results = BatchedGenerator(persistent).generate(prompts, 6)
        reference = BatchedGenerator(fake_quant).generate(prompts, 6)
        for got, ref in zip(results, reference):
            assert got.tokens == ref.tokens
            np.testing.assert_array_equal(got.logprobs, ref.logprobs)

    def test_preempted_prefill_resumes_bit_identical(self, tiny_config):
        # chunk_size=4 so the 4-token admission budget segments the prompt on
        # chunk boundaries: segmented quantized prefill is then bit-exact with
        # the solo one-shot prefill (PoT state re-quantization is idempotent
        # on chunk-aligned hand-offs).
        from dataclasses import replace

        config = replace(tiny_config, name="tiny-chunk4", chunk_size=4)
        model = Mamba2Model.from_config(config, InitConfig(seed=0))
        pers = _star(model, persistent_state=True)
        rng = np.random.default_rng(13)
        vocab = config.vocab_size
        engine = InferenceEngine(
            pers,
            max_batch_size=1,
            scheduler=PriorityScheduler(prefill_chunk_tokens=4, preempt=True),
        )
        long_req = Request(prompt=tuple(rng.integers(0, vocab, size=20)), max_new_tokens=2)
        short_req = Request(prompt=tuple(rng.integers(0, vocab, size=3)), max_new_tokens=2)
        long_id = engine.submit(long_req, priority=0)
        engine.step()
        assert engine.num_prefilling == 1
        short_id = engine.submit(short_req, priority=5)
        completions = []
        while engine.has_work:
            completions.extend(engine.step())
        assert engine.stats.preempted == 1
        by_id = {c.request_id: c for c in completions}
        for rid, request in ((long_id, long_req), (short_id, short_req)):
            ref = greedy_decode(pers, request.prompt, request.max_new_tokens)
            assert by_id[rid].result.tokens == ref.tokens
            np.testing.assert_allclose(by_id[rid].result.logprobs, ref.logprobs, atol=1e-10)


class TestZeroGroups:
    """All-zero quantization groups are well-defined end to end."""

    @pytest.mark.parametrize("pot_scale", [True, False])
    @pytest.mark.parametrize("quantize_state", [True, False])
    @pytest.mark.parametrize("quantize_products", [True, False])
    def test_all_zero_step_decodes_to_zero(
        self, pot_scale, quantize_state, quantize_products
    ):
        cfg = SSMQuantConfig(
            group_size=8,
            pot_scale=pot_scale,
            quantize_state=quantize_state,
            quantize_products=quantize_products,
        )
        step = QuantizedChunkedScan(cfg)
        params = SSMParams(A_log=np.zeros(2), D=np.ones(2), dt_bias=np.zeros(2))
        zeros = np.zeros((2, 3))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            y, state = step(
                params, zeros, np.zeros(16), np.zeros(16), np.zeros(2), np.zeros((2, 3, 16))
            )
            ys, states = step.prefill_scan(
                params,
                np.zeros((5, 2, 3)),
                np.zeros((5, 16)),
                np.zeros((5, 16)),
                np.zeros((5, 2)),
                chunk_size=2,
            )
        np.testing.assert_array_equal(y, 0.0)
        np.testing.assert_array_equal(np.asarray(state, dtype=np.float64), 0.0)
        np.testing.assert_array_equal(ys, 0.0)
        np.testing.assert_array_equal(states, 0.0)

    @pytest.mark.parametrize("w_bits,a_bits,group", [(4, 4, 8), (8, 8, 4), (3, 5, 16)])
    def test_qlinear_zero_rows_and_groups(self, w_bits, a_bits, group):
        weight = np.zeros((6, 32))
        weight[0, :16] = np.linspace(-1, 1, 16)  # one half-zero row
        layer = QuantizedLinear.from_weight(weight, w_bits, a_bits, group_size=group)
        x = np.zeros(32)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            out_fake = layer.forward(x)
            out_int = layer.forward_integer(x)
            mixed = np.zeros((3, 32))
            mixed[1, 20:] = 2.5
            out_mixed = layer.forward_integer(mixed)
        np.testing.assert_array_equal(out_fake, 0.0)
        np.testing.assert_array_equal(out_int, 0.0)
        assert np.all(np.isfinite(out_mixed))
        np.testing.assert_array_equal(out_mixed[0], 0.0)

    def test_zeros_cache_is_exact_zero(self, persistent):
        cache = persistent.new_cache(batch_size=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            values = cache.layers[0].ssm_state.dequantize()
        np.testing.assert_array_equal(values, 0.0)


def _scan_inputs(rng, T, h=4, p=8, n=24, lead=()):
    params = SSMParams(
        A_log=np.log(rng.uniform(1, 8, size=h)),
        D=rng.normal(1.0, 0.1, size=h),
        dt_bias=rng.normal(size=h),
    )
    x = rng.normal(size=lead + (T, h, p))
    B = rng.normal(size=lead + (T, n))
    C = rng.normal(size=lead + (T, n))
    dt = rng.normal(size=lead + (T, h))
    return params, x, B, C, dt


class TestIntegerChunkBody:
    @pytest.mark.parametrize("lead", [(), (3,)])
    def test_pot_integer_body_bit_identical_to_float(self, rng, lead):
        params, x, B, C, dt = _scan_inputs(rng, 37, lead=lead)
        float_body = QuantizedChunkedScan(SSMQuantConfig(group_size=8))
        int_body = QuantizedChunkedScan(
            SSMQuantConfig(group_size=8, integer_chunk_body=True)
        )
        yf, sf = float_body.prefill_scan(params, x, B, C, dt, chunk_size=16)
        yi, si = int_body.prefill_scan(params, x, B, C, dt, chunk_size=16)
        np.testing.assert_array_equal(yf, yi)
        np.testing.assert_array_equal(sf, si)

    def test_ragged_and_warm_state(self, rng):
        params, x, B, C, dt = _scan_inputs(rng, 30, lead=(3,))
        warm = rng.normal(size=(3, 4, 8, 24))
        seq_lens = np.array([6, 17, 30])
        float_body = QuantizedChunkedScan(SSMQuantConfig(group_size=8))
        int_body = QuantizedChunkedScan(
            SSMQuantConfig(group_size=8, integer_chunk_body=True)
        )
        yf, sf = float_body.prefill_scan(
            params, x, B, C, dt, initial_state=warm, chunk_size=8, seq_lens=seq_lens
        )
        yi, si = int_body.prefill_scan(
            params, x, B, C, dt, initial_state=warm, chunk_size=8, seq_lens=seq_lens
        )
        np.testing.assert_array_equal(yf, yi)
        np.testing.assert_array_equal(sf, si)

    def test_non_pot_integer_body_matches_closely(self, rng):
        params, x, B, C, dt = _scan_inputs(rng, 29)
        float_body = QuantizedChunkedScan(SSMQuantConfig(group_size=8, pot_scale=False))
        int_body = QuantizedChunkedScan(
            SSMQuantConfig(group_size=8, pot_scale=False, integer_chunk_body=True)
        )
        yf, _ = float_body.prefill_scan(params, x, B, C, dt, chunk_size=8)
        yi, _ = int_body.prefill_scan(params, x, B, C, dt, chunk_size=8)
        np.testing.assert_allclose(yi, yf, rtol=1e-12, atol=1e-12)

    def test_overflow_guard_trips_on_unsafe_configuration(self, rng):
        """INT16 codes with 128-long groups exceed the INT32 accumulator."""
        params, x, B, C, dt = _scan_inputs(rng, 16, n=128)
        unsafe = QuantizedChunkedScan(
            SSMQuantConfig(bits=16, group_size=128, integer_chunk_body=True)
        )
        with pytest.raises(OverflowError, match="INT32 accumulator"):
            unsafe.prefill_scan(params, x, B, C, dt, chunk_size=8)

    def test_shared_helper_matches_dense_matmul(self, rng):
        """grouped_integer_matmul == plain matmul once the scales are folded."""
        codes_a = rng.integers(-127, 128, size=(5, 32))
        codes_b = rng.integers(-127, 128, size=(7, 32))
        scales_a = 2.0 ** rng.integers(-8, 0, size=(5, 4))
        scales_b = 2.0 ** rng.integers(-8, 0, size=(7, 4))
        out = grouped_integer_matmul(
            codes_a, scales_a, codes_b, scales_b, group_size=8, x_qmax=127, w_qmax=127
        )
        dense_a = codes_a.reshape(5, 4, 8) * scales_a[:, :, None]
        dense_b = codes_b.reshape(7, 4, 8) * scales_b[:, :, None]
        expected = dense_a.reshape(5, 32) @ dense_b.reshape(7, 32).T
        np.testing.assert_allclose(out, expected, rtol=1e-12)

    def test_helper_validation(self):
        codes = np.zeros((2, 8), dtype=np.int32)
        scales = np.ones((2, 1))
        with pytest.raises(OverflowError):
            grouped_integer_matmul(
                codes, scales, codes, scales, group_size=8, x_qmax=2**15, w_qmax=2**15
            )
        with pytest.raises(ValueError, match="groups"):
            grouped_integer_matmul(
                codes, np.ones((2, 3)), codes, scales, group_size=8, x_qmax=127, w_qmax=127
            )

    def test_config_validation(self):
        with pytest.raises(ValueError, match="integer_chunk_body"):
            SSMQuantConfig(integer_chunk_body=True, quantize_products=False)
        with pytest.raises(ValueError, match="integer_chunk_body"):
            SSMQuantConfig(integer_chunk_body=True, quantize_state=False)

    def test_decode_step_unchanged_by_integer_body(self, rng):
        params, x, B, C, dt = _scan_inputs(rng, 1)
        plain = QuantizedChunkedScan(SSMQuantConfig(group_size=8))
        integer = QuantizedChunkedScan(SSMQuantConfig(group_size=8, integer_chunk_body=True))
        state = rng.normal(size=(4, 8, 24))
        y1, s1 = plain(params, x[0], B[0], C[0], dt[0], state)
        y2, s2 = integer(params, x[0], B[0], C[0], dt[0], state)
        np.testing.assert_array_equal(y1, y2)
        np.testing.assert_array_equal(s1, s2)


class TestQuantizedStateMemoryModel:
    def test_quantized_vs_fp16_footprint(self, tiny_config):
        from repro.hardware import QuantizedStateMemoryModel

        model = QuantizedStateMemoryModel(state_bits=8, group_size=32)
        quantized = model.quantized_footprint(tiny_config, batch_size=4)
        fp16 = model.fp16_footprint(tiny_config, batch_size=4)
        cfg = tiny_config
        state_elems = 4 * cfg.nheads * cfg.headdim * cfg.d_state * cfg.n_layer
        assert quantized.ssm_state_bytes == state_elems  # INT8: one byte each
        assert fp16.ssm_state_bytes == 2 * state_elems
        assert quantized.ssm_scale_bytes > 0
        assert fp16.ssm_scale_bytes == 0
        assert quantized.total_bytes < fp16.total_bytes
        ratio = model.compression_ratio(cfg, batch_size=4)
        assert 1.5 < ratio < 2.0  # codes halve, scales give a little back

    def test_matches_live_cache_accounting(self, persistent, tiny_config):
        """The model's byte count equals the serving cache's own accounting."""
        from repro.hardware import QuantizedStateMemoryModel

        model = QuantizedStateMemoryModel(state_bits=8, group_size=32)
        footprint = model.quantized_footprint(tiny_config, batch_size=3)
        cache = persistent.new_cache(batch_size=3)
        live_state_bytes = sum(
            layer.ssm_state.num_bytes() for layer in cache.layers
        )
        assert footprint.ssm_state_bytes + footprint.ssm_scale_bytes == live_state_bytes

    def test_allocations_and_max_batch(self, tiny_config):
        from repro.hardware import QuantizedStateMemoryModel, VCK190

        model = QuantizedStateMemoryModel()
        footprint = model.quantized_footprint(tiny_config, batch_size=64)
        assert footprint.uram + footprint.bram > 0
        assert len(footprint.allocations) == 2 * tiny_config.n_layer
        max_batch = model.max_resident_batch(tiny_config, VCK190)
        assert max_batch >= 1
        over = model.quantized_footprint(tiny_config, batch_size=max_batch + 1)
        budget = VCK190.uram * 0.7
        assert model.quantized_footprint(tiny_config, max_batch).uram <= budget
        assert over.uram > budget

    def test_validation(self, tiny_config):
        from repro.hardware import QuantizedStateMemoryModel

        with pytest.raises(ValueError):
            QuantizedStateMemoryModel(state_bits=0)
        with pytest.raises(ValueError):
            QuantizedStateMemoryModel().quantized_footprint(tiny_config, batch_size=0)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestCancelRace:
    def _stop_request(self, model, budget=8):
        """A request whose stop token fires before its budget (from solo)."""
        rng = np.random.default_rng(41)
        prompt = tuple(rng.integers(0, model.config.vocab_size, size=6))
        ref = greedy_decode(model, prompt, budget)
        # The first generated token is its own first occurrence, so using it
        # as the stop token retires the request on that very decode step --
        # exactly the iteration the cancel below races.
        stop = ref.tokens[0]
        expect_len = ref.tokens.index(stop) + 1
        assert expect_len < budget
        return Request(prompt=prompt, max_new_tokens=budget, stop_token=stop), expect_len

    def test_cancel_loses_race_against_stop_token(self, tiny_model):
        request, expect_len = self._stop_request(tiny_model)
        clock = FakeClock()
        engine = InferenceEngine(tiny_model, max_batch_size=2, clock=clock)
        request_id = engine.submit(request)
        outcome = {}

        def on_token(rid, token, logprob):
            clock.now += 1.0
            if token == request.stop_token:
                # The request just finished with its stop token: a cancel
                # arriving in the same iteration must lose the race.
                outcome["cancel_returned"] = engine.cancel(rid)

        completions = engine.run(on_token=on_token)
        assert outcome["cancel_returned"] is False
        assert len(completions) == 1  # no double retirement
        completion = completions[0]
        assert completion.finish_reason == "stop"
        assert len(completion.result.tokens) == expect_len
        assert completion.latency.finish_reason == "stop"
        assert engine.stats.cancelled == 0
        # The request is long gone: a later cancel still reports not-found.
        assert engine.cancel(request_id) is False

    def test_cancel_loses_race_against_length_budget(self, tiny_model):
        rng = np.random.default_rng(43)
        prompt = tuple(rng.integers(0, tiny_model.config.vocab_size, size=5))
        engine = InferenceEngine(tiny_model, max_batch_size=1, clock=FakeClock())
        engine.submit(Request(prompt=prompt, max_new_tokens=3))
        seen = []

        def on_token(rid, token, logprob):
            seen.append(token)
            if len(seen) == 3:  # the budget-exhausting token
                assert engine.cancel(rid) is False

        completions = engine.run(on_token=on_token)
        assert [c.finish_reason for c in completions] == ["length"]
        assert len(completions[0].result.tokens) == 3
        assert engine.stats.cancelled == 0

    def test_cancel_mid_decode_still_wins(self, tiny_model):
        """A cancel before the terminal token keeps its normal semantics."""
        rng = np.random.default_rng(47)
        prompt = tuple(rng.integers(0, tiny_model.config.vocab_size, size=5))
        engine = InferenceEngine(tiny_model, max_batch_size=1, clock=FakeClock())
        engine.submit(Request(prompt=prompt, max_new_tokens=10))
        seen = []

        def on_token(rid, token, logprob):
            seen.append(token)
            if len(seen) == 2:
                assert engine.cancel(rid) is True

        completions = engine.run(on_token=on_token)
        assert [c.finish_reason for c in completions] == ["cancelled"]
        assert len(completions[0].result.tokens) == 2
        assert engine.stats.cancelled == 1


class TestEmptyPrompts:
    def test_request_rejects_empty_prompt(self):
        with pytest.raises(ValueError, match="BOS"):
            Request(prompt=(), max_new_tokens=2)

    def test_generator_names_the_offending_request(self, tiny_model):
        generator = BatchedGenerator(tiny_model)
        with pytest.raises(ValueError, match=r"prompts\[1\]"):
            generator.generate([[1, 2], []], 2)

    def test_prefill_rejects_zero_length_with_clear_error(self, tiny_model):
        with pytest.raises(ValueError, match="BOS"):
            tiny_model.prefill(np.zeros(0, dtype=np.int64))
        with pytest.raises(ValueError, match="BOS"):
            tiny_model.prefill(np.zeros((2, 0), dtype=np.int64))

    def test_bos_only_prompt_flows_through_serving(self, tiny_model):
        """A whitespace-only input encoded as BOS-only decodes normally."""
        from repro.mamba.tokenizer import ByteTokenizer

        tokenizer = ByteTokenizer()
        prompt = tokenizer.encode("")  # add_bos=True -> [bos]
        assert prompt == [tokenizer.bos_id]
        engine = InferenceEngine(tiny_model, max_batch_size=1)
        engine.submit(Request(prompt=tuple(prompt), max_new_tokens=3))
        completions = engine.run()
        assert len(completions[0].result.tokens) == 3
        ref = greedy_decode(tiny_model, prompt, 3)
        assert completions[0].result.tokens == ref.tokens
        batched = BatchedGenerator(tiny_model).generate([prompt], 3)
        assert batched[0].tokens == ref.tokens


def _load_check_regression():
    path = Path(__file__).parent.parent / "benchmarks" / "check_regression.py"
    spec = importlib.util.spec_from_file_location("check_regression", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRegressionGateZeroMetrics:
    def test_speedup_floor_zero_and_negative_committed(self):
        gate = _load_check_regression()
        assert gate.speedup_floor(2.0, 0.30) == pytest.approx(1.4)
        # A committed 0 must not demand fresh > 0 (zero-width ratio band)...
        assert gate.speedup_floor(0.0, 0.30) == -1.0
        # ...and a negative committed value must not tighten via sign flip.
        assert gate.speedup_floor(-0.5, 0.30) == -1.5

    def test_metric_ceiling_zero_and_negative_committed(self):
        gate = _load_check_regression()
        assert gate.metric_ceiling(10.0, 0.30) == pytest.approx(14.0)
        assert gate.metric_ceiling(0.0, 0.30) == 1.0  # absolute fallback only
        # Negative committed: the band widens away from zero, never inverts.
        assert gate.metric_ceiling(-2.0, 0.30) == pytest.approx(-2.0 + 0.6 + 1.0)

    def test_zero_committed_speedup_cannot_fail_a_clean_run(self):
        gate = _load_check_regression()
        committed = {"speedup": {"decode": {"1": 0.0}}}
        fresh = {"speedup": {"decode": {"1": 0.0}}}
        failures, compared = gate.compare_speedups("x.json", committed, fresh, 0.30)
        assert failures == []
        assert compared == 1

    def test_zero_committed_metric_cannot_fail_a_clean_run(self):
        gate = _load_check_regression()
        stall = "decode_stall_iterations"
        committed = {
            "modes": {"smoke": {"policies": {"paged": {"metrics": {stall: 0.0}}}}}
        }
        fresh = {
            "modes": {"smoke": {"policies": {"paged": {"metrics": {stall: 0.0}}}}}
        }
        failures, compared = gate.compare_scheduler_metrics(
            "x.json", committed, fresh, 0.30
        )
        assert failures == []
        assert compared == 1
        # A genuine regression past the absolute slack still fails.
        bad = {
            "modes": {"smoke": {"policies": {"paged": {"metrics": {stall: 5.0}}}}}
        }
        failures, _ = gate.compare_scheduler_metrics("x.json", committed, bad, 0.30)
        assert failures

    def test_zero_compared_points_fails_loudly(self, tmp_path):
        gate = _load_check_regression()
        committed = tmp_path / "BENCH_x.json"
        fresh = tmp_path / "fresh.json"
        committed.write_text(
            '{"modes": {"smoke": {"policies": {"fifo": {"metrics": {"a": 1.0}}}}}}'
        )
        # Same file name exists on both sides but the mode was renamed away:
        # the pair must fail instead of silently disarming the gate.
        fresh.write_text(
            '{"modes": {"smoke2": {"policies": {"fifo": {"metrics": {"a": 1.0}}}}}}'
        )
        failures = gate.check_pair(committed, fresh, 0.30)
        assert any("zero metric points" in f for f in failures)
        # A shape that does overlap compares cleanly.
        fresh.write_text(committed.read_text())
        assert gate.check_pair(committed, fresh, 0.30) == []
