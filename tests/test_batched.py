"""Batched-vs-sequential equivalence of the core model decode path.

The batched inference path must be numerically indistinguishable from running
each request through the single-sequence API: same conv outputs, SSM states,
logits, and cache contents (to 1e-10 or better).
"""

import numpy as np
import pytest

from repro.mamba import (
    CausalConv1d,
    InferenceCache,
    SSMParams,
    ssm_scan,
    ssm_step,
)
from repro.mamba.cache import LayerCache
from repro.mamba.ssm import ssm_step_trace


class TestBatchedConv:
    def _conv(self, channels=6, k=4, seed=0):
        rng = np.random.default_rng(seed)
        return CausalConv1d(
            weight=rng.normal(size=(channels, k)),
            bias=rng.normal(size=channels),
        )

    def test_batched_forward_matches_per_row(self):
        conv = self._conv()
        rng = np.random.default_rng(1)
        x = rng.normal(size=(5, 12, 6))
        batched = conv.forward(x)
        for i in range(5):
            np.testing.assert_allclose(batched[i], conv.forward(x[i]), atol=1e-12)

    def test_batched_step_matches_per_row(self):
        conv = self._conv()
        rng = np.random.default_rng(2)
        x = rng.normal(size=(4, 6))
        state = rng.normal(size=(4, 6, 4))
        out, new_state = conv.step(x, state)
        for i in range(4):
            out_i, state_i = conv.step(x[i], state[i])
            np.testing.assert_allclose(out[i], out_i, atol=1e-12)
            np.testing.assert_allclose(new_state[i], state_i, atol=1e-12)

    def test_batched_initial_state(self):
        conv = self._conv()
        assert conv.initial_state().shape == (6, 4)
        assert conv.initial_state(batch_size=3).shape == (3, 6, 4)

    def test_batched_state_shape_mismatch_rejected(self):
        conv = self._conv()
        with pytest.raises(ValueError):
            conv.step(np.zeros((4, 6)), np.zeros((3, 6, 4)))


class TestBatchedSSM:
    def _params(self, nheads=4, seed=0):
        rng = np.random.default_rng(seed)
        return SSMParams(
            A_log=np.log(rng.uniform(1, 8, size=nheads)),
            D=rng.normal(1.0, 0.1, size=nheads),
            dt_bias=rng.normal(size=nheads),
        )

    def test_step_matches_trace(self):
        """The direct step must reproduce the instrumented trace step."""
        params = self._params()
        rng = np.random.default_rng(3)
        x = rng.normal(size=(4, 8))
        B, C = rng.normal(size=16), rng.normal(size=16)
        dt = rng.normal(size=4)
        state = rng.normal(size=(4, 8, 16))
        y, new_state = ssm_step(params, x, B, C, dt, state)
        y_t, state_t, _ = ssm_step_trace(params, x, B, C, dt, state)
        np.testing.assert_allclose(y, y_t, rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(new_state, state_t, rtol=1e-12, atol=1e-12)

    def test_batched_step_matches_per_row(self):
        params = self._params()
        rng = np.random.default_rng(4)
        bsz = 5
        x = rng.normal(size=(bsz, 4, 8))
        B = rng.normal(size=(bsz, 16))
        C = rng.normal(size=(bsz, 16))
        dt = rng.normal(size=(bsz, 4))
        state = rng.normal(size=(bsz, 4, 8, 16))
        y, new_state = ssm_step(params, x, B, C, dt, state)
        for i in range(bsz):
            y_i, state_i = ssm_step(params, x[i], B[i], C[i], dt[i], state[i])
            np.testing.assert_allclose(y[i], y_i, atol=1e-10)
            np.testing.assert_allclose(new_state[i], state_i, atol=1e-10)

    def test_batched_scan_matches_per_row(self):
        params = self._params()
        rng = np.random.default_rng(5)
        bsz, T = 3, 9
        x = rng.normal(size=(bsz, T, 4, 8))
        B = rng.normal(size=(bsz, T, 16))
        C = rng.normal(size=(bsz, T, 16))
        dt = rng.normal(size=(bsz, T, 4))
        init = rng.normal(size=(bsz, 4, 8, 16)) * 0.3
        y, final = ssm_scan(params, x, B, C, dt, init)
        for i in range(bsz):
            y_i, final_i = ssm_scan(params, x[i], B[i], C[i], dt[i], init[i])
            np.testing.assert_allclose(y[i], y_i, atol=1e-10)
            np.testing.assert_allclose(final[i], final_i, atol=1e-10)

    def test_chunked_scan_nonzero_initial_state_many_heads(self):
        """Einsum-vectorized SSD chunks must carry a nonzero state correctly.

        Exercises the head-parallel form with a head count larger than the
        chunk count, a nonzero carried-in state, and a ragged final chunk.
        """
        from repro.mamba.ssm import ssd_chunked_scan

        params = self._params(nheads=12, seed=10)
        rng = np.random.default_rng(11)
        T, H, P, N = 21, 12, 4, 16
        x = rng.normal(size=(T, H, P))
        B = rng.normal(size=(T, N))
        C = rng.normal(size=(T, N))
        dt = rng.normal(size=(T, H))
        init = rng.normal(size=(H, P, N)) * 0.5
        y_ref, final_ref = ssm_scan(params, x, B, C, dt, init)
        y, final = ssd_chunked_scan(params, x, B, C, dt, init, chunk_size=8)
        np.testing.assert_allclose(y, y_ref, rtol=1e-9, atol=1e-10)
        np.testing.assert_allclose(final, final_ref, rtol=1e-9, atol=1e-10)

    def test_trace_rejects_batched_input(self):
        params = self._params()
        with pytest.raises(ValueError):
            ssm_step_trace(
                params,
                np.zeros((2, 4, 8)),
                np.zeros((2, 16)),
                np.zeros((2, 16)),
                np.zeros((2, 4)),
                np.zeros((2, 4, 8, 16)),
            )

    def test_batch_mismatch_rejected(self):
        params = self._params()
        with pytest.raises(ValueError):
            ssm_step(
                params,
                np.zeros((2, 4, 8)),
                np.zeros((3, 16)),  # wrong batch size
                np.zeros((2, 16)),
                np.zeros((2, 4)),
                np.zeros((2, 4, 8, 16)),
            )


class TestBatchedModel:
    def test_batched_prefill_matches_per_request(self, tiny_model):
        rng = np.random.default_rng(6)
        prompts = rng.integers(0, tiny_model.config.vocab_size, size=(4, 7))
        logits, cache = tiny_model.prefill(prompts)
        assert cache.batch_size == 4
        for i in range(4):
            logits_i, cache_i = tiny_model.prefill(prompts[i])
            np.testing.assert_allclose(logits[i], logits_i, atol=1e-10)
            for layer, layer_i in zip(cache.layers, cache_i.layers):
                np.testing.assert_allclose(layer.conv_state[i], layer_i.conv_state, atol=1e-10)
                np.testing.assert_allclose(layer.ssm_state[i], layer_i.ssm_state, atol=1e-10)

    def test_batched_step_matches_per_request(self, tiny_model):
        rng = np.random.default_rng(7)
        vocab = tiny_model.config.vocab_size
        prompts = rng.integers(0, vocab, size=(4, 5))
        tokens = rng.integers(0, vocab, size=4)
        logits, cache = tiny_model.prefill(prompts)
        step_logits = tiny_model.step(tokens, cache)
        for i in range(4):
            _, cache_i = tiny_model.prefill(prompts[i])
            logits_i = tiny_model.step(int(tokens[i]), cache_i)
            np.testing.assert_allclose(step_logits[i], logits_i, atol=1e-10)

    def test_quantized_model_batched_step(self, tiny_model):
        """The batched path must run quantized models (custom ssm_impl)."""
        from repro.quant import QuantConfig, QuantMethod, quantize_model

        quantized = quantize_model(
            tiny_model, QuantConfig.w8a8(QuantMethod.LIGHTMAMBA_STAR)
        )
        rng = np.random.default_rng(8)
        vocab = quantized.config.vocab_size
        prompts = rng.integers(0, vocab, size=(3, 6))
        tokens = rng.integers(0, vocab, size=3)
        logits, cache = quantized.prefill(prompts)
        step_logits = quantized.step(tokens, cache)
        for i in range(3):
            logits_i, cache_i = quantized.prefill(prompts[i])
            np.testing.assert_allclose(logits[i], logits_i, atol=1e-10)
            step_i = quantized.step(int(tokens[i]), cache_i)
            np.testing.assert_allclose(step_logits[i], step_i, atol=1e-10)


class TestBatchedCache:
    def test_zeros_shapes(self, tiny_config):
        cache = InferenceCache.zeros(tiny_config, batch_size=3)
        assert cache.batch_size == 3
        layer = cache.layers[0]
        assert layer.conv_state.shape == (3, tiny_config.conv_dim, tiny_config.d_conv)
        assert layer.ssm_state.shape == (
            3, tiny_config.nheads, tiny_config.headdim, tiny_config.d_state
        )
        assert InferenceCache.zeros(tiny_config).batch_size is None

    def test_gather_scatter_row_stack_roundtrip(self, tiny_model):
        rng = np.random.default_rng(9)
        prompts = rng.integers(0, tiny_model.config.vocab_size, size=(4, 6))
        _, cache = tiny_model.prefill(prompts)

        picked = cache.gather([3, 1])
        np.testing.assert_allclose(
            picked.layers[0].ssm_state[0], cache.layers[0].ssm_state[3], atol=0
        )

        rows = [cache.row(i) for i in range(4)]
        assert rows[0].batch_size is None
        restacked = InferenceCache.stack(rows)
        np.testing.assert_allclose(
            restacked.layers[0].conv_state, cache.layers[0].conv_state, atol=0
        )

        target = InferenceCache.zeros(tiny_model.config, batch_size=4)
        target.scatter([2, 0], picked)
        np.testing.assert_allclose(
            target.layers[0].ssm_state[2], cache.layers[0].ssm_state[3], atol=0
        )
        np.testing.assert_allclose(
            target.layers[0].ssm_state[0], cache.layers[0].ssm_state[1], atol=0
        )
        np.testing.assert_allclose(target.layers[0].ssm_state[1], 0.0, atol=0)

    def test_gather_requires_batched(self, tiny_config):
        cache = InferenceCache.zeros(tiny_config)
        with pytest.raises(ValueError):
            cache.gather([0])

    def test_stack_rejects_batched_input(self, tiny_config):
        batched = LayerCache.zeros(tiny_config, batch_size=2)
        with pytest.raises(ValueError):
            LayerCache.stack([batched])
