"""Fixture: CB401 fires on every user-callback-under-lock shape.

Parsed by the analyzer in tests; never imported or executed.
"""

import threading


class BadStreamer:
    """User callbacks invoked while engine locks are held."""

    def __init__(self):
        self._lock = threading.Lock()
        self._state = 0  # guarded-by: _lock
        self.on_event = None

    # user-callback: on_token
    def step(self, on_token):
        with self._lock:
            self._state += 1
            on_token(self._state)  # CB401: parameter callback under _lock

    # user-callback: on_event
    def fire(self):
        with self._lock:
            self.on_event(self._state)  # CB401: attribute callback under _lock

    # user-callback: on_token
    def step_held(self, on_token):  # lock-held: _lock
        on_token(self._state)  # CB401: caller already holds _lock

    # user-callback: on_token
    def step_suppressed(self, on_token):
        with self._lock:
            on_token(self._state)  # repro-analysis: ignore[CB401]
