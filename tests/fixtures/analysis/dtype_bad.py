"""Fixture: unsanctioned float materializations in integer-resident regions.

Parsed by the analyzer in tests; never imported or executed.
"""

import numpy as np


def quantize(x, cfg):
    return x


def leaky_kernel(codes, scales):  # integer-resident
    acc = codes @ codes.T
    out = acc.astype(np.float64)  # DT201: unsanctioned float64 cast
    buf = np.zeros(out.shape)  # DT202: float-default allocation
    staged = np.asarray(scales, dtype=np.float64)  # DT201: float64 materialization
    return out + buf + staged


def leaky_suppressed(codes):  # integer-resident
    return codes.astype(np.float64)  # repro-analysis: ignore[DT201]


def round_trip(x, cfg):  # integer-resident
    return quantize(x, cfg)  # DT203: fake-quant round trip
