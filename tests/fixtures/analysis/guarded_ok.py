"""Fixture: lock discipline honoured -- the GB1xx family stays quiet.

Parsed by the analyzer in tests; never imported or executed.
"""

import threading


class GoodCounter:
    """Guarded attributes touched only under their declared locks."""

    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition()
        self._count = 0  # guarded-by: _lock
        self._items = []  # guarded-by: _cond

    def bump(self):
        with self._lock:
            self._count += 1

    def peek(self):  # lock-held: _lock
        return self._count

    def drain(self):  # loop-thread-only
        return self._count + 1

    def consume(self):
        with self._cond:
            while not self._items:
                self._cond.wait()
            return self._items.pop()

    def produce(self, item):
        with self._cond:
            self._items.append(item)
            self._cond.notify_all()
