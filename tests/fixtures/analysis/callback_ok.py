"""Fixture: user callbacks run outside every lock -- CB401 stays quiet.

Parsed by the analyzer in tests; never imported or executed.
"""

import threading


class GoodStreamer:
    """User callbacks invoked only after the engine drops its locks."""

    def __init__(self):
        self._lock = threading.Lock()
        self._state = 0  # guarded-by: _lock

    # user-callback: on_token
    def step(self, on_token):
        with self._lock:
            self._state += 1
            snapshot = self._state
        on_token(snapshot)  # lock dropped before user code runs

    # user-callback: on_token
    def step_errors(self, on_token):
        with self._lock:
            self._state += 1
            snapshot = self._state
        try:
            on_token(snapshot)
        except Exception:
            with self._lock:
                self._state -= 1

    def unrelated(self, on_token):
        # Not a declared callback method; plain calls are not flagged.
        with self._lock:
            return self._state
