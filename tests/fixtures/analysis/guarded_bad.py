"""Fixture: every GB1xx rule fires exactly where the tests expect.

Parsed by the analyzer in tests; never imported or executed.
"""

import threading


class BadCounter:
    """Guarded attributes accessed without their declared locks."""

    GUARDED_BY = {"ghost": "_missing_lock"}  # GB104: no such lock attribute

    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition()
        self._count = 0  # guarded-by: _lock
        self._items = []  # guarded-by: _cond

    def bump(self):
        self._count += 1  # GB101: lock not held

    def bump_suppressed(self):
        self._count += 1  # repro-analysis: ignore[GB101]

    def bad_wait(self):
        with self._cond:
            self._cond.wait()  # GB102: not inside a predicate while-loop

    def bad_notify(self):
        self._cond.notify()  # GB103: condition not held
