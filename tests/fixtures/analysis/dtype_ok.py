"""Fixture: an integer-resident region that keeps its residency contract.

Parsed by the analyzer in tests; never imported or executed.
"""

import numpy as np


def clean_kernel(codes, scales):  # integer-resident
    x32 = codes.astype(np.int32)
    acc = x32 @ x32.T
    out = acc.astype(np.float64)  # quant-point: scale-application epilogue
    mask = np.zeros(acc.shape, dtype=np.int64)
    return out * scales + mask


def unregistered_float_path(values):
    return np.asarray(values, dtype=np.float64)
