"""Tests for Hadamard construction, FWHT, and the PoT quantization helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quant.hadamard import (
    apply_hadamard,
    decompose_hadamard_order,
    fast_hadamard_transform,
    hadamard_matrix,
    is_hadamard,
    paley_construction,
    random_hadamard_matrix,
    randomized_hadamard,
    sylvester,
)
from repro.quant.pot import (
    pot_quantize_dequantize,
    pot_quantize_scale,
    requantize_reference,
    shift_requantize,
)

finite = st.floats(min_value=-100, max_value=100, allow_nan=False)


class TestConstruction:
    @pytest.mark.parametrize("order", [1, 2, 4, 8, 64, 128])
    def test_sylvester_is_hadamard(self, order):
        assert is_hadamard(sylvester(order))

    def test_sylvester_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            sylvester(12)

    @pytest.mark.parametrize("order", [4, 8, 12, 20, 24, 28, 44])
    def test_paley_is_hadamard(self, order):
        assert is_hadamard(paley_construction(order))

    def test_paley_rejects_unsupported(self):
        with pytest.raises(ValueError):
            paley_construction(40)  # 39 is not prime; needs Kronecker composition

    @pytest.mark.parametrize(
        "order",
        [2, 4, 12, 20, 40, 64, 128, 768, 1536, 2560, 5120],
    )
    def test_hadamard_matrix_paper_sizes(self, order):
        """All Mamba2-family dimensions (incl. 40 and 5120 from Fig. 5) work."""
        h = hadamard_matrix(order)
        assert is_hadamard(h)

    def test_hadamard_40_decomposition(self):
        """The paper's 40-point HTU: 40 = 2 x 20 with a Paley-20 base."""
        pow2, base = decompose_hadamard_order(40)
        assert pow2 * base == 40
        assert base in (20, 40)

    def test_normalized_is_orthogonal(self):
        h = hadamard_matrix(40, normalized=True)
        np.testing.assert_allclose(h @ h.T, np.eye(40), atol=1e-9)

    def test_unsupported_order_raises(self):
        with pytest.raises(ValueError):
            hadamard_matrix(46)  # odd part 23: 24 does not divide 46

    def test_random_hadamard_is_orthogonal_and_hadamard(self):
        h = random_hadamard_matrix(64, seed=3, normalized=False)
        assert is_hadamard(h)
        hn = random_hadamard_matrix(64, seed=3, normalized=True)
        np.testing.assert_allclose(hn @ hn.T, np.eye(64), atol=1e-9)

    def test_random_hadamard_seed_dependence(self):
        a = random_hadamard_matrix(32, seed=0)
        b = random_hadamard_matrix(32, seed=1)
        assert not np.allclose(a, b)


class TestTransforms:
    @pytest.mark.parametrize("n", [2, 8, 64, 128])
    def test_fwht_matches_matrix(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=(5, n))
        expected = x @ sylvester(n) / np.sqrt(n)
        np.testing.assert_allclose(fast_hadamard_transform(x), expected, atol=1e-9)

    def test_fwht_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            fast_hadamard_transform(np.zeros(12))

    def test_fwht_is_involution(self):
        """The normalised FWHT is its own inverse."""
        x = np.random.default_rng(0).normal(size=(3, 64))
        np.testing.assert_allclose(
            fast_hadamard_transform(fast_hadamard_transform(x)), x, atol=1e-9
        )

    @pytest.mark.parametrize("n", [40, 80, 160, 192])
    def test_apply_hadamard_composite_matches_matrix(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=(4, n))
        expected = x @ hadamard_matrix(n, normalized=True)
        np.testing.assert_allclose(apply_hadamard(x), expected, atol=1e-8)

    def test_apply_hadamard_preserves_norm(self):
        x = np.random.default_rng(1).normal(size=(6, 128))
        out = apply_hadamard(x)
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=1), np.linalg.norm(x, axis=1), rtol=1e-9
        )

    def test_apply_hadamard_order_mismatch(self):
        with pytest.raises(ValueError):
            apply_hadamard(np.zeros((2, 16)), order=32)

    def test_randomized_hadamard_preserves_norm(self):
        x = np.random.default_rng(2).normal(size=(3, 64))
        out = randomized_hadamard(x, seed=7)
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=1), np.linalg.norm(x, axis=1), rtol=1e-9
        )

    def test_rotation_spreads_outliers(self):
        """A single-channel outlier is amortised across channels (Fig. 2)."""
        x = np.zeros((1, 128))
        x[0, 17] = 100.0
        out = apply_hadamard(x)
        assert np.max(np.abs(out)) < np.max(np.abs(x)) / 5
        # Energy is preserved, just spread out.
        assert np.count_nonzero(np.abs(out) > 1.0) > 64

    @given(hnp.arrays(np.float64, (2, 32), elements=finite))
    @settings(max_examples=40, deadline=None)
    def test_fwht_linearity(self, x):
        a = fast_hadamard_transform(2.0 * x)
        b = 2.0 * fast_hadamard_transform(x)
        np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-9)


class TestPoT:
    def test_scale_snapped_to_power_of_two(self):
        scales = np.array([0.3, 1.0, 5.0])
        snapped = pot_quantize_scale(scales, rounding="ceil")
        np.testing.assert_allclose(snapped, [0.5, 1.0, 8.0])

    def test_nearest_rounding(self):
        snapped = pot_quantize_scale(np.array([0.3, 5.0]), rounding="nearest")
        np.testing.assert_allclose(snapped, [0.25, 4.0])

    def test_zero_scale_is_well_defined(self):
        """An all-zero group's absmax (0) snaps to the tiny floor PoT scale.

        Regression: this used to raise, which made all-zero quantization
        groups an error path instead of the benign zero-codes case.
        """
        snapped = pot_quantize_scale(np.array([0.0, 1.0]))
        assert snapped[0] == 2.0**-39
        assert snapped[1] == 1.0
        # The floor scale still decodes zero codes to exact zeros.
        assert 0.0 * snapped[0] == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            pot_quantize_scale(np.array([-1.0]))
        with pytest.raises(ValueError):
            pot_quantize_scale(np.array([1.0]), rounding="floor")

    def test_pot_quantize_dequantize_error_bounded(self):
        """PoT (ceil) scales at most double the step size vs exact scales."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(8, 64))
        from repro.quant.rtn import rtn_quantize_activation

        err_pot = np.max(np.abs(x - pot_quantize_dequantize(x, bits=8, group_size=16)))
        err_exact = np.max(np.abs(x - rtn_quantize_activation(x, 8, group_size=16)))
        assert err_pot <= 2.0 * err_exact + 1e-12

    def test_shift_requantize_matches_reference(self):
        """Shift-based re-quantization is exact for power-of-two scales."""
        rng = np.random.default_rng(1)
        values = rng.integers(-127, 128, size=1000)
        for src_exp, dst_exp in [(-6, -3), (-3, -6), (0, 0), (-8, -1)]:
            via_shift = shift_requantize(values, src_exp, dst_exp, bits=8)
            via_reference = requantize_reference(values, 2.0**src_exp, 2.0**dst_exp, bits=8)
            np.testing.assert_array_equal(via_shift, via_reference)

    @given(
        hnp.arrays(np.int64, (64,), elements=st.integers(min_value=-127, max_value=127)),
        st.integers(min_value=-10, max_value=0),
        st.integers(min_value=-10, max_value=0),
    )
    @settings(max_examples=60, deadline=None)
    def test_shift_requantize_property(self, values, src_exp, dst_exp):
        via_shift = shift_requantize(values, src_exp, dst_exp)
        via_reference = requantize_reference(values, 2.0**src_exp, 2.0**dst_exp)
        np.testing.assert_array_equal(via_shift, via_reference)
