"""Tests for the seeded traffic-scale load harness (repro.serving.loadgen)."""

from __future__ import annotations

import pytest

from repro.serving import FIFOScheduler, InferenceEngine, PagedScheduler, PriorityScheduler
from repro.serving.loadgen import (
    TrafficShape,
    make_traffic,
    run_inprocess,
    run_live,
    verify_against_solo,
)
from repro.serving.resilience import ManualClock
from repro.serving.server import ServerConfig, serve_in_thread

VOCAB = 512


class TestMakeTraffic:
    @pytest.mark.parametrize("arrival", ["poisson", "bursty"])
    def test_seeded_and_shaped(self, arrival):
        shape = TrafficShape(arrival=arrival)
        items = make_traffic(shape, 32, VOCAB, seed=7)
        again = make_traffic(shape, 32, VOCAB, seed=7)
        assert items == again
        assert items != make_traffic(shape, 32, VOCAB, seed=8)
        steps = [item.submit_step for item in items]
        assert steps == sorted(steps)
        for item in items:
            assert 1 <= len(item.request.prompt) <= shape.max_prompt_tokens
            assert 1 <= item.request.max_new_tokens <= shape.max_output_tokens
            assert all(0 <= t < VOCAB for t in item.request.prompt)
            if item.disconnect_after is not None:
                # disconnects are always mid-generation: strictly before the
                # request's own budget would finish it
                assert 1 <= item.disconnect_after < item.request.max_new_tokens
            if item.request.temperature is not None:
                assert item.request.seed is not None  # driver-independent sampling
            if item.deadline_iters is not None:
                assert item.deadline_iters >= shape.deadline_min_iters

    def test_unknown_arrival_rejected(self):
        with pytest.raises(ValueError):
            TrafficShape(arrival="thundering-herd")


class TestInprocessDriver:
    @pytest.mark.parametrize(
        "scheduler_factory",
        [FIFOScheduler, PriorityScheduler, lambda: PagedScheduler(page_tokens=64)],
        ids=["fifo", "priority", "paged"],
    )
    def test_exactly_once_and_solo_exact(self, tiny_model, scheduler_factory):
        items = make_traffic(TrafficShape(), 12, tiny_model.config.vocab_size, seed=3)
        result = run_inprocess(tiny_model, scheduler_factory(), items)
        assert result.n_requests == len(items)
        assert {r.item_index for r in result.records} == set(range(len(items)))
        assert verify_against_solo(tiny_model, items, result.records) == []
        again = run_inprocess(tiny_model, scheduler_factory(), items)
        assert result.trace_hash == again.trace_hash
        assert result.metrics == again.metrics

    def test_disconnects_cancel_and_deadlines_expire(self, tiny_model):
        shape = TrafficShape(
            disconnect_fraction=0.5,
            deadline_fraction=0.5,
            deadline_min_iters=1,
            deadline_max_iters=2,
            mean_interarrival_iters=0.5,
        )
        items = make_traffic(shape, 24, tiny_model.config.vocab_size, seed=5)
        result = run_inprocess(tiny_model, FIFOScheduler(), items, max_batch_size=1)
        assert result.metrics["cancelled_count"] > 0
        assert result.metrics["expired_count"] > 0
        for record in result.records:
            if record.finish_reason == "expired":
                assert record.n_tokens == 0
                assert record.first_token_step is None
            if record.finish_reason == "cancelled" and record.n_tokens:
                item = items[record.item_index]
                assert record.n_tokens == item.disconnect_after
        assert verify_against_solo(tiny_model, items, result.records) == []


class TestLiveDriver:
    def test_live_matches_inprocess_and_is_deterministic(self, tiny_model):
        items = make_traffic(TrafficShape(), 10, tiny_model.config.vocab_size, seed=2)
        reference = run_inprocess(tiny_model, FIFOScheduler(), items)
        live_results = []
        for _ in range(2):
            engine = InferenceEngine(
                tiny_model,
                max_batch_size=4,
                scheduler=FIFOScheduler(),
                clock=ManualClock(),
            )
            config = ServerConfig(bench_mode=True, manual_clock_step=1.0)
            with serve_in_thread(engine, config=config) as handle:
                live_results.append(run_live(handle.host, handle.port, items))
        first, second = live_results
        # Same-seed live runs produce bit-identical admission/completion traces.
        assert first.trace_hash == second.trace_hash
        assert first.metrics == second.metrics
        # The wire path preserves every token and all iteration-space latency
        # metrics of the in-process run of the same workload.
        assert verify_against_solo(tiny_model, items, first.records) == []
        for metric, value in first.metrics.items():
            if metric == "engine_steps":
                assert abs(value - reference.metrics[metric]) <= 2
            else:
                assert value == reference.metrics[metric], metric
        for live_record, ref_record in zip(first.records, reference.records):
            assert live_record.tokens == ref_record.tokens
            assert live_record.finish_reason == ref_record.finish_reason
