"""Unit tests for the elementary operators in repro.mamba.ops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.mamba.ops import (
    cross_entropy,
    rms_normalize,
    sigmoid,
    silu,
    softmax,
    softplus,
)

finite_floats = st.floats(min_value=-50, max_value=50, allow_nan=False)


class TestSigmoidSilu:
    def test_sigmoid_midpoint(self):
        assert sigmoid(np.array(0.0)) == pytest.approx(0.5)

    def test_sigmoid_extremes_are_finite(self):
        out = sigmoid(np.array([-1e4, 1e4]))
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)

    @given(hnp.arrays(np.float64, (16,), elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_sigmoid_bounded(self, x):
        out = sigmoid(x)
        assert np.all(out >= 0.0) and np.all(out <= 1.0)

    def test_silu_matches_definition(self):
        x = np.linspace(-5, 5, 11)
        np.testing.assert_allclose(silu(x), x / (1 + np.exp(-x)), rtol=1e-12)

    def test_silu_zero(self):
        assert silu(np.array(0.0)) == pytest.approx(0.0)


class TestSoftplus:
    def test_matches_naive_for_moderate_inputs(self):
        x = np.linspace(-10, 10, 41)
        np.testing.assert_allclose(softplus(x), np.log1p(np.exp(x)), rtol=1e-10)

    def test_large_input_is_linear(self):
        assert softplus(np.array(100.0)) == pytest.approx(100.0)

    @given(hnp.arrays(np.float64, (8,), elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_positive_and_monotone(self, x):
        out = softplus(x)
        assert np.all(out > 0)
        order = np.argsort(x)
        assert np.all(np.diff(out[order]) >= -1e-12)


class TestSoftmax:
    def test_sums_to_one(self):
        x = np.random.default_rng(0).normal(size=(5, 7))
        out = softmax(x, axis=-1)
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(5), rtol=1e-12)

    def test_shift_invariance(self):
        x = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0), rtol=1e-12)

    def test_handles_large_values(self):
        out = softmax(np.array([1e4, 0.0]))
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(1.0)


class TestRmsNormalize:
    def test_unit_rms(self):
        x = np.random.default_rng(1).normal(size=(3, 64)) * 10
        out = rms_normalize(x, eps=0.0)
        rms = np.sqrt(np.mean(out**2, axis=-1))
        np.testing.assert_allclose(rms, np.ones(3), rtol=1e-9)

    def test_rotation_invariance(self):
        """RMS normalisation commutes with orthogonal rotation (no scale).

        This is the property the rotation-assisted quantization relies on to
        fuse rotations through RMSNorm layers (Sec. IV-A of the paper).
        """
        rng = np.random.default_rng(2)
        x = rng.normal(size=(5, 16))
        q, _ = np.linalg.qr(rng.normal(size=(16, 16)))
        left = rms_normalize(x @ q, eps=0.0)
        right = rms_normalize(x, eps=0.0) @ q
        np.testing.assert_allclose(left, right, rtol=1e-9, atol=1e-12)

    def test_zero_input_is_finite(self):
        out = rms_normalize(np.zeros((2, 8)))
        assert np.all(np.isfinite(out))


class TestCrossEntropy:
    def test_perfect_prediction(self):
        logits = np.full((4, 10), -100.0)
        targets = np.array([1, 3, 5, 7])
        logits[np.arange(4), targets] = 100.0
        assert cross_entropy(logits, targets) == pytest.approx(0.0, abs=1e-9)

    def test_uniform_prediction(self):
        vocab = 32
        logits = np.zeros((6, vocab))
        targets = np.arange(6)
        assert cross_entropy(logits, targets) == pytest.approx(np.log(vocab), rel=1e-9)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(np.zeros((3, 4, 5)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            cross_entropy(np.zeros((3, 4)), np.zeros(2, dtype=int))
