"""Tests for SmoothQuant, OS+, the quantized linear layer and the SSM quantizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mamba.ssm import SSMParams, ssm_step
from repro.quant import (
    OSPlusConfig,
    QuantizedLinear,
    SmoothQuantConfig,
    SSMQuantConfig,
    QuantizedSSMStep,
    compute_shift_and_scale,
    compute_smoothing_scales,
)
from repro.quant.outlier_suppression import apply_shift_and_scale
from repro.quant.smoothquant import apply_smoothing
from repro.quant.error import relative_error
from repro.quant.rtn import rtn_quantize_activation, rtn_quantize_weight

finite = st.floats(min_value=-10, max_value=10, allow_nan=False)


class TestSmoothQuant:
    def _setup(self, seed=0, outlier_channel=True):
        rng = np.random.default_rng(seed)
        acts = rng.normal(size=(64, 32))
        if outlier_channel:
            acts[:, 5] *= 50.0  # token-stable outlier channel
        weight = rng.normal(size=(48, 32))
        return acts, weight

    def test_transformation_is_exact(self):
        acts, weight = self._setup()
        scales = compute_smoothing_scales(np.max(np.abs(acts), axis=0), weight)
        new_acts, new_weight = apply_smoothing(acts, weight, scales)
        np.testing.assert_allclose(new_acts @ new_weight.T, acts @ weight.T, rtol=1e-9)

    def test_reduces_activation_outliers(self):
        acts, weight = self._setup()
        scales = compute_smoothing_scales(np.max(np.abs(acts), axis=0), weight)
        new_acts, _ = apply_smoothing(acts, weight, scales)
        assert np.max(np.abs(new_acts)) < np.max(np.abs(acts))

    def test_improves_quant_error_for_fixed_channel_outliers(self):
        """SmoothQuant helps when outliers persist in fixed channels."""
        acts, weight = self._setup()
        scales = compute_smoothing_scales(np.max(np.abs(acts), axis=0), weight)
        new_acts, new_weight = apply_smoothing(acts, weight, scales)
        base = acts @ weight.T
        err_plain = relative_error(
            base, rtn_quantize_activation(acts, 4, 32) @ rtn_quantize_weight(weight, 4, 32).T
        )
        err_smooth = relative_error(
            base,
            rtn_quantize_activation(new_acts, 4, 32) @ rtn_quantize_weight(new_weight, 4, 32).T,
        )
        assert err_smooth < err_plain

    def test_alpha_zero_and_one(self):
        acts, weight = self._setup()
        absmax = np.max(np.abs(acts), axis=0)
        s0 = compute_smoothing_scales(absmax, weight, SmoothQuantConfig(alpha=0.0))
        s1 = compute_smoothing_scales(absmax, weight, SmoothQuantConfig(alpha=1.0))
        # alpha=0 ignores activations; alpha=1 ignores weights.
        w_absmax = np.max(np.abs(weight), axis=0)
        np.testing.assert_allclose(s0, np.maximum(1.0 / w_absmax, 1e-5), rtol=1e-9)
        np.testing.assert_allclose(s1, np.maximum(absmax, 1e-5), rtol=1e-9)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SmoothQuantConfig(alpha=1.5)
        with pytest.raises(ValueError):
            compute_smoothing_scales(np.ones(8), np.ones((4, 9)))

    def test_dead_channel_does_not_blow_up(self):
        acts, weight = self._setup()
        acts[:, 0] = 0.0
        scales = compute_smoothing_scales(np.max(np.abs(acts), axis=0), weight)
        assert np.all(np.isfinite(scales)) and np.all(scales > 0)


class TestOSPlus:
    def _setup(self, seed=1):
        rng = np.random.default_rng(seed)
        acts = rng.normal(size=(64, 32)) + 3.0  # asymmetric activations
        acts[:, 7] = acts[:, 7] * 20 + 40.0
        weight = rng.normal(size=(48, 32))
        return acts, weight

    def test_transformation_is_exact_with_bias(self):
        acts, weight = self._setup()
        shift, scale = compute_shift_and_scale(acts.min(axis=0), acts.max(axis=0), weight)
        new_acts, new_weight, bias = apply_shift_and_scale(acts, weight, shift, scale)
        np.testing.assert_allclose(
            new_acts @ new_weight.T + bias, acts @ weight.T, rtol=1e-9
        )

    def test_shift_centres_channels(self):
        acts, weight = self._setup()
        shift, scale = compute_shift_and_scale(acts.min(axis=0), acts.max(axis=0), weight)
        new_acts, _, _ = apply_shift_and_scale(acts, weight, shift, scale)
        hi = new_acts.max(axis=0)
        lo = new_acts.min(axis=0)
        np.testing.assert_allclose(hi, -lo, rtol=1e-9)

    def test_helps_on_calibration_distribution(self):
        acts, weight = self._setup()
        shift, scale = compute_shift_and_scale(acts.min(axis=0), acts.max(axis=0), weight)
        new_acts, new_weight, bias = apply_shift_and_scale(acts, weight, shift, scale)
        base = acts @ weight.T
        err_plain = relative_error(
            base, rtn_quantize_activation(acts, 4, 32) @ rtn_quantize_weight(weight, 4, 32).T
        )
        err_os = relative_error(
            base,
            rtn_quantize_activation(new_acts, 4, 32) @ rtn_quantize_weight(new_weight, 4, 32).T
            + bias,
        )
        assert err_os < err_plain

    def test_hurts_when_outliers_move_channels(self):
        """Scattered outliers defeat calibrated channel-wise scaling (Sec. III).

        The scale learnt on calibration data amplifies channels that were
        small during calibration; when an outlier later lands on such a
        channel the quantization error explodes -- the OS+ collapse in
        Table II / Table III.
        """
        rng = np.random.default_rng(3)
        weight = rng.normal(size=(48, 32))
        calib = rng.normal(size=(64, 32))
        calib[:, 4] *= 30.0                      # calibration-time outlier channel
        shift, scale = compute_shift_and_scale(calib.min(axis=0), calib.max(axis=0), weight)

        test = rng.normal(size=(64, 32))
        test[:, 20] *= 30.0                      # outlier moved to another channel
        new_test, new_weight, bias = apply_shift_and_scale(test, weight, shift, scale)
        base = test @ weight.T
        err_plain = relative_error(
            base, rtn_quantize_activation(test, 4, 32) @ rtn_quantize_weight(weight, 4, 32).T
        )
        err_os = relative_error(
            base,
            rtn_quantize_activation(new_test, 4, 32) @ rtn_quantize_weight(new_weight, 4, 32).T
            + bias,
        )
        assert err_os > err_plain

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OSPlusConfig(alpha=-0.1)
        with pytest.raises(ValueError):
            compute_shift_and_scale(np.zeros(4), np.zeros(5), np.ones((2, 4)))


class TestQuantizedLinear:
    @pytest.mark.parametrize("w_bits,a_bits", [(8, 8), (4, 4), (4, 8)])
    def test_integer_path_matches_fake_quant(self, w_bits, a_bits):
        """The INT-code matmul must agree with the fake-quant float path."""
        rng = np.random.default_rng(w_bits * 10 + a_bits)
        weight = rng.normal(size=(24, 64))
        layer = QuantizedLinear.from_weight(weight, w_bits, a_bits, group_size=16)
        x = rng.normal(size=(5, 64))
        np.testing.assert_allclose(layer.forward_integer(x), layer.forward(x), rtol=1e-9, atol=1e-9)

    def test_single_token_input(self):
        rng = np.random.default_rng(0)
        layer = QuantizedLinear.from_weight(rng.normal(size=(8, 16)), 8, 8)
        x = rng.normal(size=16)
        assert layer(x).shape == (8,)
        np.testing.assert_allclose(layer.forward_integer(x), layer(x), rtol=1e-9)

    def test_bias_applied(self):
        rng = np.random.default_rng(1)
        bias = rng.normal(size=8)
        layer = QuantizedLinear.from_weight(rng.normal(size=(8, 16)), 8, 8, bias=bias)
        x = np.zeros(16)
        np.testing.assert_allclose(layer(x), bias, atol=1e-9)

    def test_quantization_accuracy_8bit(self):
        rng = np.random.default_rng(2)
        weight = rng.normal(size=(32, 64))
        layer = QuantizedLinear.from_weight(weight, 8, 8)
        x = rng.normal(size=(10, 64))
        assert relative_error(x @ weight.T, layer(x)) < 0.02

    def test_memory_model_w4_smaller_than_w8(self):
        rng = np.random.default_rng(3)
        weight = rng.normal(size=(128, 128))
        w4 = QuantizedLinear.from_weight(weight, 4, 4).memory_bytes()
        w8 = QuantizedLinear.from_weight(weight, 8, 8).memory_bytes()
        assert w4 < w8

    def test_grouped_accumulation_is_int32(self):
        """The grouped path accumulates in a true int32, like the MMU.

        Regression pin: the accumulator dtype must stay int32 (not a silently
        wider int64), with the overflow pre-check making that safe.
        """
        rng = np.random.default_rng(4)
        layer = QuantizedLinear.from_weight(rng.normal(size=(8, 64)), 4, 4, group_size=16)
        x = rng.normal(size=(3, 64))

        seen_dtypes = []
        original_matmul = np.ndarray.__matmul__

        class _Spy(np.ndarray):
            def __matmul__(self, other):
                seen_dtypes.append((self.dtype, np.asarray(other).dtype))
                return original_matmul(np.asarray(self), np.asarray(other))

        original = QuantizedLinear._grouped_integer_matmul

        def spied(self, x_codes, act_qt, w_codes, w_qt):
            return original(self, x_codes.view(_Spy), act_qt, w_codes, w_qt)

        QuantizedLinear._grouped_integer_matmul = spied
        try:
            out = layer.forward_integer(x)
        finally:
            QuantizedLinear._grouped_integer_matmul = original
        np.testing.assert_allclose(out, layer.forward(x), rtol=1e-9, atol=1e-9)
        assert seen_dtypes and all(
            a == np.int32 and b == np.int32 for a, b in seen_dtypes
        ), seen_dtypes

    def test_grouped_accumulation_overflow_raises(self):
        """A configuration whose partial sums cannot fit int32 must refuse.

        128-length groups of 16-bit codes can reach 128 * 32767^2 > 2^31;
        the FPGA accumulator would wrap, so the model raises instead.
        """
        from repro.quant.dtypes import Granularity, IntSpec
        from repro.quant.quantizer import QuantizerConfig, quantize

        rng = np.random.default_rng(5)
        cfg = QuantizerConfig(
            spec=IntSpec(16), granularity=Granularity.PER_GROUP, group_size=128
        )
        layer = QuantizedLinear(
            weight_qt=quantize(rng.normal(size=(8, 256)), cfg), act_config=cfg
        )
        with pytest.raises(OverflowError):
            layer.forward_integer(rng.normal(size=(3, 256)))


class TestQuantizedSSM:
    def _inputs(self, seed=0, nheads=4, headdim=8, d_state=16):
        rng = np.random.default_rng(seed)
        params = SSMParams(
            A_log=np.log(rng.uniform(1, 8, size=nheads)),
            D=rng.normal(1.0, 0.1, size=nheads),
            dt_bias=rng.normal(size=nheads),
        )
        x = rng.normal(size=(nheads, headdim))
        B = rng.normal(size=d_state)
        C = rng.normal(size=d_state)
        dt = rng.normal(size=nheads)
        state = rng.normal(size=(nheads, headdim, d_state)) * 0.5
        return params, x, B, C, dt, state

    def test_output_close_to_fp(self):
        params, x, B, C, dt, state = self._inputs()
        y_fp, s_fp = ssm_step(params, x, B, C, dt, state)
        y_q, s_q = QuantizedSSMStep(SSMQuantConfig(bits=8, group_size=8))(
            params, x, B, C, dt, state
        )
        # The chain of INT8 re-quantizations keeps the state very accurate and
        # the output within a modest relative error.
        assert relative_error(y_fp, y_q) < 0.15
        assert relative_error(s_fp, s_q) < 0.05

    def test_shapes_match_reference(self):
        params, x, B, C, dt, state = self._inputs()
        y, s = QuantizedSSMStep()(params, x, B, C, dt, state)
        assert y.shape == x.shape
        assert s.shape == state.shape

    def test_pot_vs_non_pot_both_reasonable(self):
        """PoT scales lose little accuracy compared to exact scales (Sec. IV-B)."""
        params, x, B, C, dt, state = self._inputs(seed=5)
        y_fp, _ = ssm_step(params, x, B, C, dt, state)
        y_pot, _ = QuantizedSSMStep(SSMQuantConfig(pot_scale=True, group_size=8))(
            params, x, B, C, dt, state
        )
        y_exact, _ = QuantizedSSMStep(SSMQuantConfig(pot_scale=False, group_size=8))(
            params, x, B, C, dt, state
        )
        err_pot = relative_error(y_fp, y_pot)
        err_exact = relative_error(y_fp, y_exact)
        assert err_pot < 0.15
        # PoT (ceil) scales can cost up to 2x the step per re-quantization
        # stage; across the chained EMs the compounded factor stays small.
        assert err_pot <= 4.0 * err_exact + 1e-6

    def test_lower_bits_higher_error(self):
        params, x, B, C, dt, state = self._inputs(seed=6)
        y_fp, _ = ssm_step(params, x, B, C, dt, state)
        err4 = relative_error(
            y_fp,
            QuantizedSSMStep(SSMQuantConfig(bits=4, group_size=8))(
                params, x, B, C, dt, state
            )[0],
        )
        err8 = relative_error(
            y_fp,
            QuantizedSSMStep(SSMQuantConfig(bits=8, group_size=8))(
                params, x, B, C, dt, state
            )[0],
        )
        assert err8 < err4

    def test_recurrence_stays_bounded(self):
        """Repeated quantized steps must not diverge (state stays finite)."""
        params, x, B, C, dt, state = self._inputs(seed=7)
        step = QuantizedSSMStep(SSMQuantConfig(bits=8, group_size=8))
        rng = np.random.default_rng(8)
        for _ in range(50):
            x_t = rng.normal(size=x.shape)
            y, state = step(params, x_t, B, C, dt, state)
        assert np.all(np.isfinite(state))
        assert np.max(np.abs(state)) < 1e3

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_quantized_step_deterministic(self, seed):
        params, x, B, C, dt, state = self._inputs(seed=seed % 100)
        step = QuantizedSSMStep()
        y1, s1 = step(params, x, B, C, dt, state)
        y2, s2 = step(params, x, B, C, dt, state)
        np.testing.assert_array_equal(y1, y2)
        np.testing.assert_array_equal(s1, s2)
