"""Tests of the all-integer decode iteration and its PoT shift machinery.

Pins this PR's contracts:

- ``shift_requantize`` is well-defined at the edges: zero and negative
  (left) shifts, all-zero groups whose grid sits at the ``2**-39`` scale
  floor (arbitrarily large exponent gaps), and INT4 saturation-on-shift
  round trips;
- ``QuantizedSSMStep._step_integer`` -- the shift-requantized iteration on
  resident codes -- is *bit-identical* to the fake-quant oracle
  ``_step_oracle`` across bit widths, group sizes, batch shapes and
  compounding steps, and the resident-state ``__call__`` actually dispatches
  to it;
- a non-finite (fault-injected) operand routes the step to the float oracle
  so corruption stays attributable per row;
- ``integer_full_chunk`` extends INT32 accumulation to the ``gate @ x`` and
  state hand-off matmuls: the integer accumulation is exact (bit-identical
  to a float matmul over the same aligned codes), the mode requires the
  integer chunk body, and it stays close to the chunk-body scan;
- the quantized-state memory model accounts for the operand codes resident
  alongside the state codes.
"""

import numpy as np
import pytest

from repro.mamba.cache import QuantizedSSMState
from repro.mamba.ssm import SSMParams
from repro.quant import QuantizedChunkedScan, SSMQuantConfig
from repro.quant.pot import (
    absmax_requant_exponents,
    pot_exponent,
    requantize_reference,
    shift_requantize,
)


# ----------------------------------------------------------------------
# shift_requantize edge cases
# ----------------------------------------------------------------------
class TestShiftRequantizeEdgeCases:
    def test_zero_shift_is_identity(self):
        values = np.arange(-127, 128)
        for rounding in ("half_away", "half_even"):
            np.testing.assert_array_equal(
                shift_requantize(values, -5, -5, bits=8, rounding=rounding), values
            )

    def test_negative_shift_is_exact_left_shift_with_saturation(self):
        """dst below src: the codes grow by 2**(src-dst), clipped at qmax."""
        values = np.arange(-20, 21)
        out = shift_requantize(values, -3, -6, bits=8)
        np.testing.assert_array_equal(out, np.clip(values * 8, -127, 127))
        # Array exponents with mixed shift directions in one call.
        mixed = shift_requantize(
            np.array([16, 16, 16]),
            np.array([-6, -6, -6]),
            np.array([-8, -6, -4]),
            bits=8,
        )
        np.testing.assert_array_equal(mixed, [64, 16, 4])

    def test_all_zero_group_at_scale_floor(self):
        """An all-zero group's grid sits at the 2**-39 floor; shifting to or
        from it -- across arbitrarily large exponent gaps -- keeps zeros at
        zero and saturates nonzero codes exactly like the reference."""
        assert absmax_requant_exponents(np.array(0.0), bits=8) == -39
        assert absmax_requant_exponents(np.array(0.0), bits=4) == -39
        zeros = np.zeros(16, dtype=np.int64)
        for src, dst in [(-39, 40), (40, -39), (-39, -39), (100, -100)]:
            for rounding in ("half_away", "half_even"):
                np.testing.assert_array_equal(
                    shift_requantize(zeros, src, dst, bits=8, rounding=rounding), 0
                )
        # A huge downward gap rounds every representable code to zero ...
        np.testing.assert_array_equal(
            shift_requantize(np.arange(-127, 128), -39, 40, bits=8), 0
        )
        # ... and a huge upward gap saturates every nonzero code, matching
        # the float reference even though the raw shift count is capped.
        values = np.array([-3, -1, 0, 1, 3])
        out = shift_requantize(values, 30, -39, bits=8)
        np.testing.assert_array_equal(out, np.array([-127, -127, 0, 127, 127]))

    @pytest.mark.parametrize("rounding", ["half_away", "half_even"])
    def test_int4_saturation_on_shift_round_trip(self, rounding):
        """INT4 codes pushed onto a finer grid saturate at +-7; shifting back
        re-quantizes the saturated codes exactly like the float reference."""
        values = np.arange(-7, 8)
        down = shift_requantize(values, 0, -2, bits=4, rounding=rounding)
        np.testing.assert_array_equal(down, np.clip(values * 4, -7, 7))
        back = shift_requantize(down, -2, 0, bits=4, rounding=rounding)
        np.testing.assert_array_equal(
            back, requantize_reference(down, 2.0**-2, 2.0**0, bits=4)
        )
        # |v| >= 2 saturated on the way down, so the round trip contracts
        # them to round(7/4) = 2 -- pin the lossy-but-deterministic shape.
        np.testing.assert_array_equal(
            back, np.clip(np.round(down / 4.0), -7, 7).astype(np.int64)
        )

    def test_half_even_matches_np_round_reference(self):
        rng = np.random.default_rng(3)
        values = rng.integers(-127, 128, size=512)
        for src, dst in [(-8, -5), (-6, -2), (0, 3)]:
            via_shift = shift_requantize(values, src, dst, bits=8, rounding="half_even")
            expected = np.clip(
                np.round(values / 2.0 ** (dst - src)), -127, 127
            ).astype(np.int64)
            np.testing.assert_array_equal(via_shift, expected)

    def test_pot_exponent_validation(self):
        np.testing.assert_array_equal(
            pot_exponent(np.array([2.0**-39, 0.5, 1.0, 2.0])), [-39, -1, 0, 1]
        )
        with pytest.raises(ValueError, match="powers of two"):
            pot_exponent(np.array([3.0]))
        with pytest.raises(ValueError, match="powers of two"):
            pot_exponent(np.array([0.0]))


# ----------------------------------------------------------------------
# The all-integer decode iteration vs the fake-quant oracle
# ----------------------------------------------------------------------
def _step_inputs(rng, h=4, p=8, n=24, lead=()):
    params = SSMParams(
        A_log=np.log(rng.uniform(1, 8, size=h)),
        D=rng.normal(1.0, 0.1, size=h),
        dt_bias=rng.normal(size=h),
    )
    x = rng.normal(size=lead + (h, p))
    B = rng.normal(size=lead + (n,))
    C = rng.normal(size=lead + (n,))
    dt = rng.normal(size=lead + (h,))
    return params, x, B, C, dt


class TestIntegerStepBitIdentity:
    @pytest.mark.parametrize("bits,group", [(8, 8), (8, 32), (4, 8)])
    @pytest.mark.parametrize("lead", [(), (3,)])
    def test_bit_identical_to_oracle_over_compounding_steps(
        self, rng, bits, group, lead
    ):
        step = QuantizedChunkedScan(
            SSMQuantConfig(bits=bits, group_size=group, persistent_state=True)
        )
        params, *_ = _step_inputs(rng, lead=lead)
        state_int = step.quantize_state_codes(rng.normal(size=lead + (4, 8, 24)))
        state_orc = QuantizedSSMState(
            codes=state_int.codes.copy(),
            scales=state_int.scales.copy(),
            group_size=state_int.group_size,
            bits=state_int.bits,
        )
        for _ in range(7):
            _, x, B, C, dt = _step_inputs(rng, lead=lead)
            y_int, state_int = step._step_integer(params, x, B, C, dt, state_int)
            y_orc, state_orc = step._step_oracle(params, x, B, C, dt, state_orc)
            np.testing.assert_array_equal(y_int, y_orc)
            np.testing.assert_array_equal(state_int.codes, state_orc.codes)
            np.testing.assert_array_equal(state_int.scales, state_orc.scales)
        assert np.issubdtype(state_int.codes.dtype, np.integer)

    def test_zero_rows_stay_exactly_zero(self, rng):
        step = QuantizedChunkedScan(
            SSMQuantConfig(group_size=8, persistent_state=True)
        )
        params, x, B, C, dt = _step_inputs(rng, lead=(2,))
        x[0] = 0.0
        state = step.quantize_state_codes(
            np.concatenate([np.zeros((1, 4, 8, 24)), rng.normal(size=(1, 4, 8, 24))])
        )
        y, out = step._step_integer(params, x, B, C, dt, state)
        y_ref, out_ref = step._step_oracle(params, x, B, C, dt, state)
        np.testing.assert_array_equal(y, y_ref)
        np.testing.assert_array_equal(out.codes[0], 0)

    def test_resident_call_dispatches_to_integer_path(self, rng, monkeypatch):
        step = QuantizedChunkedScan(
            SSMQuantConfig(group_size=8, persistent_state=True)
        )
        params, x, B, C, dt = _step_inputs(rng)
        state = step.quantize_state_codes(rng.normal(size=(4, 8, 24)))
        calls = []
        original = type(step)._step_integer
        monkeypatch.setattr(
            type(step),
            "_step_integer",
            lambda self, *a, **k: calls.append(1) or original(self, *a, **k),
        )
        step(params, x, B, C, dt, state)
        assert calls == [1]
        # The degradation fallback and a float state both take the oracle.
        with step.fallback_fake_quant():
            step(params, x, B, C, dt, state)
        step(params, x, B, C, dt, rng.normal(size=(4, 8, 24)))
        assert calls == [1]

    def test_non_finite_operand_falls_back_to_oracle_per_row(self, rng):
        """A poisoned row (fault-injected NaN) must not raise batch-wide;
        the step degrades to the float oracle, which keeps healthy rows
        bit-identical and confines the poison to the corrupted row."""
        step = QuantizedChunkedScan(
            SSMQuantConfig(group_size=8, persistent_state=True)
        )
        params, x, B, C, dt = _step_inputs(rng, lead=(3,))
        state = step.quantize_state_codes(rng.normal(size=(3, 4, 8, 24)))
        y_clean, _ = step(params, x, B, C, dt, state)
        x_bad = x.copy()
        x_bad[1] = np.nan
        y, out = step(params, x_bad, B, C, dt, state)
        assert np.isnan(y[1]).any()
        np.testing.assert_array_equal(y[0], y_clean[0])
        np.testing.assert_array_equal(y[2], y_clean[2])
        assert isinstance(out, QuantizedSSMState)


# ----------------------------------------------------------------------
# integer_full_chunk: INT32 accumulation on gate @ x and the hand-off
# ----------------------------------------------------------------------
def _scan_inputs(rng, T, h=4, p=8, n=24, lead=()):
    params = SSMParams(
        A_log=np.log(rng.uniform(1, 8, size=h)),
        D=rng.normal(1.0, 0.1, size=h),
        dt_bias=rng.normal(size=h),
    )
    x = rng.normal(size=lead + (T, h, p))
    B = rng.normal(size=lead + (T, n))
    C = rng.normal(size=lead + (T, n))
    dt = rng.normal(size=lead + (T, h))
    return params, x, B, C, dt


def _float_matmul_reference(x_codes, x_scales, w_codes, w_scales, *, group_size, x_qmax, w_qmax):
    """Dequantize-then-matmul reference with the same per-group accumulation
    order as `grouped_integer_matmul` (INT32 exactness check)."""
    x_codes = np.asarray(x_codes, dtype=np.float64)
    w_codes = np.asarray(w_codes, dtype=np.float64)
    x_scales = np.asarray(x_scales, dtype=np.float64)
    w_scales = np.asarray(w_scales, dtype=np.float64)
    K = x_codes.shape[-1]
    group = min(group_size, K)
    acc = None
    for index, start in enumerate(range(0, K, group)):
        stop = min(start + group, K)
        xs = x_codes[..., :, start:stop] * x_scales[..., :, index : index + 1]
        ws = w_codes[..., :, start:stop] * w_scales[..., :, index : index + 1]
        term = xs @ np.swapaxes(ws, -1, -2)
        acc = term if acc is None else acc + term
    return acc


class TestIntegerFullChunk:
    def test_config_requires_integer_chunk_body(self):
        with pytest.raises(ValueError, match="integer_full_chunk"):
            SSMQuantConfig(integer_full_chunk=True)
        config = SSMQuantConfig(integer_chunk_body=True, integer_full_chunk=True)
        assert config.integer_full_chunk

    def test_int32_accumulation_is_exact(self, rng, monkeypatch):
        """Swapping the INT32 kernel for a float matmul over the identical
        aligned codes changes nothing: the integer accumulation is exact."""
        import repro.quant.ssm_quant as sq

        params, x, B, C, dt = _scan_inputs(rng, 37, lead=(2,))
        full = QuantizedChunkedScan(
            SSMQuantConfig(
                group_size=8, integer_chunk_body=True, integer_full_chunk=True
            )
        )
        y_int, s_int = full.prefill_scan(params, x, B, C, dt, chunk_size=16)
        monkeypatch.setattr(sq, "grouped_integer_matmul", _float_matmul_reference)
        y_ref, s_ref = full.prefill_scan(params, x, B, C, dt, chunk_size=16)
        np.testing.assert_array_equal(y_int, y_ref)
        np.testing.assert_array_equal(s_int, s_ref)

    def test_full_chunk_close_to_chunk_body(self, rng):
        """The gate requant and operand alignment are the mode's only new
        rounding points; the scan stays within quantization-level error."""
        params, x, B, C, dt = _scan_inputs(rng, 30, lead=(3,))
        seq_lens = np.array([6, 17, 30])
        body = QuantizedChunkedScan(
            SSMQuantConfig(group_size=8, integer_chunk_body=True)
        )
        full = QuantizedChunkedScan(
            SSMQuantConfig(
                group_size=8, integer_chunk_body=True, integer_full_chunk=True
            )
        )
        yb, sb = body.prefill_scan(params, x, B, C, dt, chunk_size=8, seq_lens=seq_lens)
        yf, sf = full.prefill_scan(params, x, B, C, dt, chunk_size=8, seq_lens=seq_lens)
        assert np.linalg.norm(yf - yb) / np.linalg.norm(yb) < 0.05
        assert np.linalg.norm(np.asarray(sf, dtype=np.float64) - np.asarray(sb, dtype=np.float64)) / max(
            np.linalg.norm(np.asarray(sb, dtype=np.float64)), 1e-12
        ) < 0.05

    def test_overflow_guard_trips_on_unsafe_full_chunk(self, rng):
        params, x, B, C, dt = _scan_inputs(rng, 16, n=128)
        unsafe = QuantizedChunkedScan(
            SSMQuantConfig(
                bits=16,
                group_size=128,
                integer_chunk_body=True,
                integer_full_chunk=True,
            )
        )
        with pytest.raises(OverflowError, match="INT32 accumulator"):
            unsafe.prefill_scan(params, x, B, C, dt, chunk_size=8)


# ----------------------------------------------------------------------
# Operand codes in the state memory model
# ----------------------------------------------------------------------
class TestOperandFootprint:
    def test_operand_accounting(self, tiny_config):
        from repro.hardware import QuantizedStateMemoryModel

        model = QuantizedStateMemoryModel(state_bits=8, group_size=32)
        bare = model.quantized_footprint(tiny_config, batch_size=4)
        with_ops = model.quantized_footprint(
            tiny_config, batch_size=4, include_operands=True
        )
        assert bare.operand_bytes == 0.0
        assert with_ops.operand_bytes > 0
        # State/scale/conv accounting is unchanged; only operands are added.
        assert with_ops.ssm_state_bytes == bare.ssm_state_bytes
        assert with_ops.ssm_scale_bytes == bare.ssm_scale_bytes
        assert with_ops.conv_bytes == bare.conv_bytes
        assert with_ops.total_bytes == bare.total_bytes + with_ops.operand_bytes
        # One ssm_operands buffer per layer joins the allocations.
        assert len(with_ops.allocations) == 3 * tiny_config.n_layer
        names = {a.name.split("[")[0] for a in with_ops.allocations}
        assert names == {"ssm_state_codes", "ssm_operands", "conv_window"}

    def test_operand_bytes_match_hand_count(self, tiny_config):
        from repro.hardware import QuantizedStateMemoryModel

        cfg = tiny_config
        model = QuantizedStateMemoryModel(state_bits=8, group_size=32)
        footprint = model.quantized_footprint(cfg, batch_size=2, include_operands=True)
        group_n = min(32, cfg.d_state)
        n_groups = -(-cfg.d_state // group_n)
        group_p = min(32, cfg.headdim)
        p_groups = -(-cfg.headdim // group_p)
        codes = 2 * (
            cfg.nheads * cfg.headdim + 2 * cfg.d_state + cfg.nheads * cfg.d_state
        )
        scales = 2 * (cfg.nheads * p_groups + 2 * n_groups + cfg.nheads * n_groups)
        expected = (codes * 8 / 8.0 + scales * 1.0) * cfg.n_layer
        assert footprint.operand_bytes == expected
