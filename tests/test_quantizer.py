"""Tests for the core quantizer, observers, RTN and error metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quant import (
    AbsMaxObserver,
    Granularity,
    INT4,
    INT8,
    IntSpec,
    MinMaxObserver,
    PercentileObserver,
    QuantizerConfig,
    compute_scales,
    quantization_error,
    quantize,
    quantize_dequantize,
    relative_error,
    rtn_quantize_activation,
    rtn_quantize_weight,
    sqnr_db,
)
from repro.quant.error import mse

finite = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)


class TestIntSpec:
    def test_ranges(self):
        assert INT8.qmax == 127
        assert INT8.qmin == -127
        assert INT4.qmax == 7
        assert INT4.num_levels == 15

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            IntSpec(1)
        with pytest.raises(ValueError):
            IntSpec(64)


class TestQuantizerRoundTrip:
    @pytest.mark.parametrize(
        "granularity", [Granularity.PER_TENSOR, Granularity.PER_TOKEN, Granularity.PER_GROUP]
    )
    def test_error_bounded_by_half_step(self, granularity):
        """No element's error may exceed half a quantization step."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(8, 64))
        cfg = QuantizerConfig(spec=INT8, granularity=granularity, group_size=16)
        xq = quantize_dequantize(x, cfg)
        scales = compute_scales(x, cfg)
        max_step = np.max(scales)
        assert np.max(np.abs(x - xq)) <= max_step / 2 + 1e-12

    def test_codes_within_range(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(4, 32)) * 100
        qt = quantize(
            x, QuantizerConfig(spec=INT4, granularity=Granularity.PER_GROUP, group_size=8)
        )
        assert qt.codes.max() <= 7 and qt.codes.min() >= -7

    def test_int8_precision_better_than_int4(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(16, 128))
        err8 = mse(x, rtn_quantize_activation(x, 8))
        err4 = mse(x, rtn_quantize_activation(x, 4))
        assert err8 < err4

    def test_per_group_handles_non_divisible_dim(self):
        x = np.random.default_rng(3).normal(size=(3, 37))
        cfg = QuantizerConfig(spec=INT8, granularity=Granularity.PER_GROUP, group_size=16)
        xq = quantize_dequantize(x, cfg)
        assert xq.shape == x.shape
        assert np.all(np.isfinite(xq))

    def test_zero_tensor(self):
        x = np.zeros((4, 8))
        cfg = QuantizerConfig(spec=INT8, granularity=Granularity.PER_TOKEN)
        np.testing.assert_allclose(quantize_dequantize(x, cfg), x)

    def test_1d_activation(self):
        x = np.random.default_rng(4).normal(size=64)
        out = rtn_quantize_activation(x, 8)
        assert out.shape == x.shape
        assert relative_error(x, out) < 0.02

    def test_per_group_isolates_outliers(self):
        """A single huge outlier must not destroy far-away groups' precision."""
        rng = np.random.default_rng(5)
        x = rng.normal(size=(1, 256))
        x[0, 3] = 1000.0
        per_tensor = quantize_dequantize(
            x, QuantizerConfig(spec=INT4, granularity=Granularity.PER_TENSOR)
        )
        per_group = quantize_dequantize(
            x, QuantizerConfig(spec=INT4, granularity=Granularity.PER_GROUP, group_size=32)
        )
        err_tensor = mse(x[0, 128:], per_tensor[0, 128:])
        err_group = mse(x[0, 128:], per_group[0, 128:])
        assert err_group < err_tensor / 10

    def test_pot_scale_is_power_of_two(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(4, 32))
        cfg = QuantizerConfig(
            spec=INT8, granularity=Granularity.PER_GROUP, group_size=8, pot_scale=True
        )
        scales = compute_scales(x, cfg)
        log2 = np.log2(scales)
        np.testing.assert_allclose(log2, np.round(log2), atol=1e-9)

    def test_clip_ratio_validation(self):
        with pytest.raises(ValueError):
            QuantizerConfig(clip_ratio=0.0)
        with pytest.raises(ValueError):
            QuantizerConfig(group_size=0)

    @given(
        hnp.arrays(np.float64, (4, 16), elements=finite),
        st.sampled_from([4, 8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_quantize_dequantize_idempotent(self, x, bits):
        """Quantizing an already-quantized tensor must be a fixed point."""
        cfg = QuantizerConfig(spec=IntSpec(bits), granularity=Granularity.PER_TOKEN)
        once = quantize_dequantize(x, cfg)
        twice = quantize_dequantize(once, cfg)
        np.testing.assert_allclose(once, twice, rtol=1e-9, atol=1e-12)

    @given(hnp.arrays(np.float64, (3, 24), elements=finite))
    @settings(max_examples=40, deadline=None)
    def test_memory_model(self, x):
        qt = quantize(
            x, QuantizerConfig(spec=INT4, granularity=Granularity.PER_GROUP, group_size=8)
        )
        assert qt.memory_bytes() == pytest.approx(x.size * 0.5 + qt.scales.size * 2)


class TestObservers:
    def test_absmax_accumulates_over_batches(self):
        obs = AbsMaxObserver()
        obs.update(np.array([[1.0, -2.0], [0.5, 1.0]]))
        obs.update(np.array([[-3.0, 0.1]]))
        np.testing.assert_allclose(obs.result(), [3.0, 2.0])
        assert obs.count == 3

    def test_absmax_channel_mismatch(self):
        obs = AbsMaxObserver()
        obs.update(np.zeros((2, 4)))
        with pytest.raises(ValueError):
            obs.update(np.zeros((2, 5)))

    def test_absmax_empty_raises(self):
        with pytest.raises(RuntimeError):
            AbsMaxObserver().result()

    def test_minmax_shift_and_range(self):
        obs = MinMaxObserver()
        obs.update(np.array([[0.0, -4.0], [2.0, 6.0]]))
        lo, hi = obs.result()
        np.testing.assert_allclose(lo, [0.0, -4.0])
        np.testing.assert_allclose(hi, [2.0, 6.0])
        np.testing.assert_allclose(obs.shift(), [1.0, 1.0])
        np.testing.assert_allclose(obs.half_range(), [1.0, 5.0])

    def test_percentile_observer(self):
        obs = PercentileObserver(percentile=50.0)
        obs.update(np.abs(np.arange(101, dtype=float))[:, None] * np.ones((1, 3)))
        np.testing.assert_allclose(obs.result(), [50.0, 50.0, 50.0])

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            PercentileObserver(percentile=0.0)

    def test_3d_input_flattened(self):
        obs = AbsMaxObserver()
        obs.update(np.ones((2, 3, 4)))
        assert obs.result().shape == (4,)


class TestErrorMetrics:
    def test_zero_error(self):
        x = np.random.default_rng(0).normal(size=(5, 6))
        assert quantization_error(x, x) == 0.0
        assert relative_error(x, x) == 0.0
        assert sqnr_db(x, x) == np.inf

    def test_relative_error_scale_invariance(self):
        x = np.random.default_rng(1).normal(size=(5, 6))
        y = x + 0.01
        assert relative_error(x, y) == pytest.approx(relative_error(10 * x, 10 * y), rel=1e-9)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            quantization_error(np.zeros((2, 3)), np.zeros((3, 2)))

    def test_sqnr_decreases_with_noise(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=1000)
        low_noise = x + 0.001 * rng.normal(size=1000)
        high_noise = x + 0.1 * rng.normal(size=1000)
        assert sqnr_db(x, low_noise) > sqnr_db(x, high_noise)

    def test_quantization_error_is_per_token_l2(self):
        x = np.zeros((2, 4))
        y = np.zeros((2, 4))
        y[0, 0] = 3.0
        y[0, 1] = 4.0
        assert quantization_error(x, y) == pytest.approx(2.5)  # (5 + 0) / 2


class TestRTNConfigs:
    def test_w8_uses_per_channel(self):
        from repro.quant.rtn import weight_quantizer_config

        cfg = weight_quantizer_config(8)
        assert cfg.granularity is Granularity.PER_CHANNEL

    def test_w4_uses_per_group(self):
        from repro.quant.rtn import weight_quantizer_config

        cfg = weight_quantizer_config(4)
        assert cfg.granularity is Granularity.PER_GROUP
        assert cfg.group_size == 128

    def test_weight_quantization_preserves_shape(self):
        w = np.random.default_rng(0).normal(size=(96, 64))
        for bits in (4, 8):
            assert rtn_quantize_weight(w, bits).shape == w.shape
