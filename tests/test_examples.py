"""Smoke tests for the example scripts (fast paths only)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, argv):
    old_argv = sys.argv
    sys.argv = [script] + argv
    try:
        runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart_runs(capsys):
    _run("quickstart.py", [])
    out = capsys.readouterr().out
    assert "decode throughput" in out
    assert "tokens/J" in out


def test_ablation_walkthrough_runs(capsys):
    _run("ablation_walkthrough.py", [])
    out = capsys.readouterr().out
    assert "Fig. 10" in out
    assert "Final design point" in out


def test_accelerator_design_space_runs(capsys):
    _run("accelerator_design_space.py", [])
    out = capsys.readouterr().out
    assert "Table IV" in out
    assert "Fig. 9a" in out
    assert "Fig. 9b" in out


def test_serving_demo_runs(capsys):
    _run("serving_demo.py", [])
    out = capsys.readouterr().out
    assert "batched greedy generation" in out
    assert "matches single-sequence decode" in out
    assert "MISMATCH" not in out
    assert "continuous batching" in out
    assert "tokens per decode call" in out


def test_server_demo_runs(capsys):
    _run("server_demo.py", [])
    out = capsys.readouterr().out
    assert "server listening on http://" in out
    assert "matches single-sequence decode" in out
    assert "MISMATCH" not in out
    assert "observed as cancel" in out
    assert "all requests bit-identical" in out


@pytest.mark.slow
def test_quantization_study_fast_mode(capsys):
    _run("quantization_study.py", ["--fast"])
    out = capsys.readouterr().out
    assert "Table II" in out
    assert "Table III" in out
