"""Tests of the chunk-parallel quantized prefill scan (QuantizedChunkedScan).

The LightMamba* configurations now serve ``scan_impl="chunked"`` prefills
through a quantized SSD-style scan instead of the per-token loop.  These
tests pin the contract at both granularities:

- kernel level: ``chunk_size=1`` is *bit-identical* to sequential
  :class:`QuantizedSSMStep` stepping; larger chunks keep the operand
  quantization points and deviate only at quantization-noise scale;
- model level: batched / ragged quantized prefill matches per-row prefill,
  segmented (chunk-aligned) prefill continues exactly through ``cache=``,
  ``scan_impl="sequential"`` stays the per-token oracle, and the perplexity
  of the chunked engine tracks the sequential oracle within 0.1.
"""

import numpy as np
import pytest

from repro.eval import ZipfCorpusGenerator, perplexity
from repro.mamba import greedy_decode
from repro.mamba.cache import InferenceCache
from repro.mamba.ssm import SSMParams
from repro.quant import (
    QuantConfig,
    QuantMethod,
    QuantizedChunkedScan,
    QuantizedSSMStep,
    SSMQuantConfig,
    quantize_model,
)
from repro.serving import InferenceEngine, Request


def _scan_inputs(rng, T, h=4, p=8, n=16, lead=()):
    params = SSMParams(
        A_log=np.log(rng.uniform(1, 8, size=h)),
        D=rng.normal(1.0, 0.1, size=h),
        dt_bias=rng.normal(size=h),
    )
    x = rng.normal(size=lead + (T, h, p))
    B = rng.normal(size=lead + (T, n))
    C = rng.normal(size=lead + (T, n))
    dt = rng.normal(size=lead + (T, h))
    return params, x, B, C, dt


def _step_reference(step, params, x, B, C, dt, state=None):
    """Sequential per-token reference via QuantizedSSMStep."""
    T, h, p = x.shape
    n = B.shape[-1]
    state = np.zeros((h, p, n)) if state is None else state.copy()
    y = np.zeros_like(x)
    for t in range(T):
        y[t], state = step(params, x[t], B[t], C[t], dt[t], state)
    return y, state


def _caches_allclose(a: InferenceCache, b: InferenceCache, atol=1e-10):
    for layer_a, layer_b in zip(a.layers, b.layers):
        np.testing.assert_allclose(layer_a.conv_state, layer_b.conv_state, atol=atol)
        np.testing.assert_allclose(layer_a.ssm_state, layer_b.ssm_state, atol=atol)


@pytest.fixture(scope="module")
def quantized(tiny_model):
    return quantize_model(tiny_model, QuantConfig.w8a8(QuantMethod.LIGHTMAMBA_STAR))


class TestKernelBitIdentity:
    @pytest.mark.parametrize("pot_scale", [True, False])
    @pytest.mark.parametrize("quantize_state", [True, False])
    @pytest.mark.parametrize("quantize_products", [True, False])
    def test_chunk_one_bit_identical_to_step(
        self, rng, pot_scale, quantize_state, quantize_products
    ):
        """chunk_size=1 must reduce *bit-identically* to sequential stepping."""
        cfg = SSMQuantConfig(
            group_size=8,
            pot_scale=pot_scale,
            quantize_state=quantize_state,
            quantize_products=quantize_products,
        )
        params, x, B, C, dt = _scan_inputs(rng, T=23)
        y_ref, s_ref = _step_reference(QuantizedSSMStep(cfg), params, x, B, C, dt)
        y, s = QuantizedChunkedScan(cfg).prefill_scan(params, x, B, C, dt, chunk_size=1)
        np.testing.assert_array_equal(y, y_ref)
        np.testing.assert_array_equal(s, s_ref)

    @pytest.mark.parametrize("chunk_size", [4, 8, 64])
    def test_larger_chunks_track_the_oracle(self, rng, chunk_size):
        """Chunked output deviates from the oracle only at quant-noise scale."""
        cfg = SSMQuantConfig(group_size=8)
        params, x, B, C, dt = _scan_inputs(rng, T=37)
        y_ref, s_ref = _step_reference(QuantizedSSMStep(cfg), params, x, B, C, dt)
        y, s = QuantizedChunkedScan(cfg).prefill_scan(
            params, x, B, C, dt, chunk_size=chunk_size
        )
        assert np.max(np.abs(y - y_ref)) <= 0.05 * np.max(np.abs(y_ref))
        assert np.max(np.abs(s - s_ref)) <= 0.05 * np.max(np.abs(s_ref))

    def test_no_requant_chunks_match_fp_decomposition_exactly(self, rng):
        """With products/state requant off, only operand quantization remains,
        and every chunk size computes the same recurrence (FP associativity
        differences only)."""
        cfg = SSMQuantConfig(group_size=8, quantize_state=False, quantize_products=False)
        params, x, B, C, dt = _scan_inputs(rng, T=29)
        scan = QuantizedChunkedScan(cfg)
        y1, s1 = scan.prefill_scan(params, x, B, C, dt, chunk_size=1)
        y8, s8 = scan.prefill_scan(params, x, B, C, dt, chunk_size=8)
        np.testing.assert_allclose(y8, y1, atol=1e-10)
        np.testing.assert_allclose(s8, s1, atol=1e-10)

    def test_warm_initial_state_continues(self, rng):
        """Chunk-aligned segmentation with initial_state is bit-exact (PoT)."""
        cfg = SSMQuantConfig(group_size=8)
        params, x, B, C, dt = _scan_inputs(rng, T=32)
        scan = QuantizedChunkedScan(cfg)
        y_full, s_full = scan.prefill_scan(params, x, B, C, dt, chunk_size=8)
        y_a, s_a = scan.prefill_scan(params, x[:16], B[:16], C[:16], dt[:16], chunk_size=8)
        y_b, s_b = scan.prefill_scan(
            params, x[16:], B[16:], C[16:], dt[16:], initial_state=s_a, chunk_size=8
        )
        np.testing.assert_array_equal(np.concatenate([y_a, y_b]), y_full)
        np.testing.assert_array_equal(s_b, s_full)

    def test_ragged_batched_scan_matches_per_row(self, rng):
        cfg = SSMQuantConfig(group_size=8)
        params, x, B, C, dt = _scan_inputs(rng, T=21, lead=(3,))
        lens = np.array([5, 21, 13])
        scan = QuantizedChunkedScan(cfg)
        y, snap = scan.prefill_scan(params, x, B, C, dt, chunk_size=8, seq_lens=lens)
        for i, L in enumerate(lens):
            y_i, s_i = scan.prefill_scan(
                params, x[i, :L], B[i, :L], C[i, :L], dt[i, :L], chunk_size=8
            )
            np.testing.assert_allclose(y[i, :L], y_i, atol=1e-10)
            np.testing.assert_allclose(snap[i], s_i, atol=1e-10)

    def test_validation(self, rng):
        params, x, B, C, dt = _scan_inputs(rng, T=5)
        scan = QuantizedChunkedScan(SSMQuantConfig(group_size=8))
        with pytest.raises(ValueError):
            scan.prefill_scan(params, x, B, C, dt, chunk_size=0)
        with pytest.raises(ValueError):
            scan.prefill_scan(params, x[0], B, C, dt)  # not a sequence
        with pytest.raises(ValueError):
            scan.prefill_scan(params, x[:, :2], B, C, dt)  # head count mismatch
        with pytest.raises(ValueError):
            scan.prefill_scan(
                params, x, B, C, dt, initial_state=np.zeros((2, 2, 2))
            )
        with pytest.raises(ValueError):
            scan.prefill_scan(params, x, B, C, dt, seq_lens=np.array([3]))

    def test_decode_step_inherited_bit_identical(self, rng):
        """The scan object decodes exactly like the plain quantized step."""
        cfg = SSMQuantConfig(group_size=8)
        params, x, B, C, dt = _scan_inputs(rng, T=1)
        state = rng.normal(size=(4, 8, 16))
        y_step, s_step = QuantizedSSMStep(cfg)(params, x[0], B[0], C[0], dt[0], state)
        y_scan, s_scan = QuantizedChunkedScan(cfg)(params, x[0], B[0], C[0], dt[0], state)
        np.testing.assert_array_equal(y_scan, y_step)
        np.testing.assert_array_equal(s_scan, s_step)


class TestModelRouting:
    def test_star_models_advertise_prefill_scan(self, quantized):
        assert all(
            getattr(b.ssm_impl, "supports_prefill_scan", False)
            for b in quantized.blocks
        )

    def test_chunk_one_prefill_bit_identical_to_sequential(self, quantized):
        rng = np.random.default_rng(0)
        prompt = rng.integers(0, quantized.config.vocab_size, size=17)
        logits_seq, cache_seq = quantized.prefill(prompt, scan_impl="sequential")
        logits_one, cache_one = quantized.prefill(prompt, chunk_size=1)
        np.testing.assert_array_equal(logits_one, logits_seq)
        for a, b in zip(cache_one.layers, cache_seq.layers):
            np.testing.assert_array_equal(a.ssm_state, b.ssm_state)
            np.testing.assert_array_equal(a.conv_state, b.conv_state)

    def test_sequential_oracle_still_steps_token_by_token(self, quantized):
        """scan_impl="sequential" must bypass prefill_scan entirely."""
        block = quantized.blocks[0]
        calls = []
        original = block.ssm_impl.prefill_scan

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        block.ssm_impl.prefill_scan = counting
        try:
            rng = np.random.default_rng(1)
            prompt = rng.integers(0, quantized.config.vocab_size, size=6)
            quantized.prefill(prompt, scan_impl="sequential")
            assert calls == []
            quantized.prefill(prompt)
            assert calls == [1]
        finally:
            del block.ssm_impl.prefill_scan

    def test_batched_prefill_matches_per_row(self, quantized):
        rng = np.random.default_rng(2)
        prompts = rng.integers(0, quantized.config.vocab_size, size=(3, 12))
        logits, cache = quantized.prefill(prompts)
        for i in range(3):
            logits_i, cache_i = quantized.prefill(prompts[i])
            np.testing.assert_allclose(logits[i], logits_i, atol=1e-10)
            _caches_allclose(cache.row(i), cache_i)

    def test_ragged_prefill_matches_per_row(self, quantized):
        rng = np.random.default_rng(3)
        vocab = quantized.config.vocab_size
        lens = np.array([3, 11, 7])
        padded = rng.integers(0, vocab, size=(3, 11))
        logits, cache = quantized.prefill(padded, seq_lens=lens)
        for i, n in enumerate(lens):
            logits_i, cache_i = quantized.prefill(padded[i, :n])
            np.testing.assert_allclose(logits[i], logits_i, atol=1e-10)
            _caches_allclose(cache.row(i), cache_i)

    def test_segmented_prefill_then_decode_continuation(self, quantized):
        """Chunk-aligned segmented prefill == one-shot, and decode continues.

        The tiny preset's chunk_size is 64 > prompt length, so segment at the
        explicit chunk used for both calls.
        """
        rng = np.random.default_rng(4)
        prompt = rng.integers(0, quantized.config.vocab_size, size=24)
        ref_logits, ref_cache = quantized.prefill(prompt, chunk_size=8)
        cache = InferenceCache.zeros(quantized.config)
        logits = None
        for start in range(0, 24, 8):
            logits, _ = quantized.prefill(
                prompt[start : start + 8], cache=cache, chunk_size=8
            )
        np.testing.assert_allclose(logits, ref_logits, atol=1e-12)
        for a, b in zip(cache.layers, ref_cache.layers):
            np.testing.assert_allclose(a.ssm_state, b.ssm_state, atol=1e-12)
            np.testing.assert_allclose(a.conv_state, b.conv_state, atol=1e-12)
        # Decode continuation through cache= reproduces greedy_decode when
        # started from the same (default-engine) prefill.
        base_logits, base_cache = quantized.prefill(prompt)
        decoded = []
        step_logits = base_logits
        for _ in range(4):
            token = int(np.argmax(step_logits))
            decoded.append(token)
            step_logits = quantized.step(token, base_cache)
        ref = greedy_decode(quantized, prompt, 4)
        assert decoded == ref.tokens

    def test_forward_prefill_consistency(self, quantized):
        """Causal prefix: prefill logits equal forward logits at that position."""
        rng = np.random.default_rng(5)
        tokens = rng.integers(0, quantized.config.vocab_size, size=14)
        full = quantized.forward(tokens)
        logits, _ = quantized.prefill(tokens)
        np.testing.assert_allclose(logits, full[-1], atol=1e-10)


class TestQuantizedPerplexityShift:
    def test_chunked_ppl_tracks_oracle(self, quantized):
        """Acceptance bar: eval-harness perplexity shift < 0.1 vs the oracle.

        The synthetic tiny model is untrained, so its absolute perplexity
        sits in the thousands; the bar is therefore applied *relatively* --
        a 0.1% relative shift corresponds to well under 0.1 absolute at the
        trained-model perplexity scales (~10-30) the paper reports.
        """
        sequences = ZipfCorpusGenerator(quantized.config.vocab_size, seed=7).sequences(3, 48)

        chunked = perplexity(quantized, sequences)
        oracle_model = quantized.copy()
        oracle_cfg = quantized.config.with_overrides(scan_impl="sequential")
        oracle_model.config = oracle_cfg
        for block in oracle_model.blocks:
            block.config = oracle_cfg  # blocks read the default engine here
        oracle = perplexity(oracle_model, sequences)
        assert abs(chunked - oracle) / oracle < 1e-3, (chunked, oracle)


class TestQuantizedServingFastPath:
    def test_engine_aligned_chunked_admission_matches_solo(self, quantized):
        """Chunk-aligned admission serves quantized requests exactly."""
        rng = np.random.default_rng(8)
        vocab = quantized.config.vocab_size
        chunk = quantized.config.chunk_size
        requests = [
            Request(prompt=tuple(rng.integers(0, vocab, size=s)), max_new_tokens=b)
            for s, b in zip((70, 5, 130), (3, 4, 2))
        ]
        engine = InferenceEngine(quantized, max_batch_size=2, prefill_chunk_tokens=chunk)
        completions = engine.run(requests)
        assert [c.request_id for c in completions] == [0, 1, 2]
        for request, completion in zip(requests, completions):
            ref = greedy_decode(quantized, request.prompt, request.max_new_tokens)
            assert completion.result.tokens == ref.tokens
            np.testing.assert_allclose(
                completion.result.logprobs, ref.logprobs, atol=1e-10
            )
