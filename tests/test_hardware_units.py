"""Unit tests for the hardware building blocks: platforms, resources, DSP,
memory, FIFO, pipeline, EMU, MMU, HTU, SSMU."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import (
    DramInterface,
    EMUConfig,
    ElementwiseMultiplyUnit,
    Fifo,
    HTUConfig,
    HadamardTransformUnit,
    MMUConfig,
    MatrixMultiplyUnit,
    OnChipBufferModel,
    ResourceReport,
    ResourceUsage,
    RTX2070,
    RTX4090,
    SSMUConfig,
    SSMUnit,
    U280,
    VCK190,
    dsp_packing_factor,
    dsps_for_macs,
    get_platform,
    matrix_hadamard_latency,
    ssm_operator_costs,
)
from repro.hardware.memory import URAM_BYTES
from repro.hardware.pipeline import LinearPipeline, PipelineStage


class TestPlatforms:
    def test_table4_parameters(self):
        """Platform specs must match Table IV of the paper."""
        assert VCK190.frequency_hz == 400e6
        assert VCK190.dram_bandwidth_bytes_per_s == 12e9
        assert U280.frequency_hz == 200e6
        assert U280.dram_bandwidth_bytes_per_s == 460e9
        assert RTX2070.dram_bandwidth_bytes_per_s == 468e9
        assert RTX4090.dram_bandwidth_bytes_per_s == 1008e9

    def test_lookup(self):
        assert get_platform("vck190") is VCK190
        assert get_platform("RTX 2070") is RTX2070
        with pytest.raises(KeyError):
            get_platform("stratix10")

    def test_bytes_per_cycle(self):
        assert VCK190.bytes_per_cycle == pytest.approx(12e9 / 400e6)


class TestResources:
    def test_addition_and_scale(self):
        a = ResourceUsage(lut=100, dsp=2)
        b = ResourceUsage(lut=50, bram=3)
        total = a + b
        assert total.lut == 150 and total.dsp == 2 and total.bram == 3
        assert a.scale(3).lut == 300

    def test_utilization_and_fits(self):
        usage = ResourceUsage(lut=VCK190.lut / 2, dsp=VCK190.dsp)
        util = usage.utilization(VCK190)
        assert util["lut"] == pytest.approx(0.5)
        assert usage.fits(VCK190)
        assert not ResourceUsage(dsp=VCK190.dsp + 1).fits(VCK190)

    def test_report_total_and_table(self):
        report = ResourceReport()
        report.add("MMU", ResourceUsage(dsp=64, lut=1000))
        report.add("SSMU", ResourceUsage(dsp=10, lut=500))
        report.add("MMU", ResourceUsage(lut=10))
        assert report.total.dsp == 74
        table = report.format_table(VCK190)
        assert "MMU" in table and "total" in table and "utilization" in table


class TestDSP:
    def test_packing_factor(self):
        assert dsp_packing_factor(8, 8) == 2.0
        assert dsp_packing_factor(4, 4) == 2.0
        assert dsp_packing_factor(16, 8) == 1.0

    def test_dsps_for_macs_int8_packing(self):
        """The paper: din x dout MACs need din x dout / 2 DSPs."""
        assert dsps_for_macs(128, 8, 8) == 64
        assert dsps_for_macs(128, 4, 4) == 64

    def test_fp16_costs_more(self):
        assert dsps_for_macs(64, 16, 16) > dsps_for_macs(64, 8, 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            dsps_for_macs(-1, 8, 8)
        with pytest.raises(ValueError):
            dsp_packing_factor(0, 8)


class TestMemory:
    def test_cycles_for_bytes(self):
        dram = DramInterface(bandwidth_bytes_per_s=12e9, frequency_hz=400e6, efficiency=1.0)
        # 30 bytes/cycle at full efficiency.
        assert dram.cycles_for_bytes(300) == pytest.approx(10.0)

    def test_efficiency_reduces_bandwidth(self):
        full = DramInterface(12e9, 400e6, efficiency=1.0)
        derated = DramInterface(12e9, 400e6, efficiency=0.5)
        assert derated.cycles_for_bytes(1e6) == pytest.approx(2 * full.cycles_for_bytes(1e6))

    def test_platform_constructor(self):
        dram = DramInterface.for_platform(VCK190)
        assert dram.frequency_hz == VCK190.frequency_hz

    def test_buffer_allocation_thresholds(self):
        model = OnChipBufferModel(uram_threshold_bytes=16 * 1024, banking_overhead=1.0)
        small = model.allocate("fifo", 2 * 1024)
        large = model.allocate("state", 1024 * 1024)
        assert small.uram == 0 and small.bram >= 1
        assert large.bram == 0 and large.uram == math.ceil(1024 * 1024 / URAM_BYTES)

    def test_zero_buffer(self):
        allocation = OnChipBufferModel().allocate("empty", 0)
        assert allocation.uram == 0 and allocation.bram == 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            DramInterface(0, 1)
        with pytest.raises(ValueError):
            OnChipBufferModel().allocate("x", -1)


class TestFifoAndPipeline:
    def test_fifo_push_pop(self):
        fifo = Fifo("f", capacity=4)
        assert fifo.push(3) == 3
        assert fifo.push(3) == 1  # only one slot left
        assert fifo.is_full
        assert fifo.pop(10) == 4
        assert fifo.is_empty
        assert fifo.max_occupancy == 4

    def test_fifo_validation(self):
        with pytest.raises(ValueError):
            Fifo("bad", capacity=0)

    def test_pipeline_throughput_matches_bottleneck(self):
        """Sustained throughput equals the slowest stage's rate."""
        stages = [
            PipelineStage("fast", rate=8),
            PipelineStage("slow", rate=2),
            PipelineStage("sink", rate=8),
        ]
        result = LinearPipeline(stages, fifo_capacity=32).run(400, source_rate=8)
        assert result.throughput == pytest.approx(2.0, rel=0.1)
        assert result.stage_utilisation["slow"] > 0.9

    def test_pipeline_balanced_stages_all_busy(self):
        stages = [PipelineStage(f"s{i}", rate=4) for i in range(5)]
        result = LinearPipeline(stages, fifo_capacity=16).run(1000, source_rate=4)
        for name, util in result.stage_utilisation.items():
            assert util > 0.9, name

    def test_pipeline_fifo_occupancy_small_when_balanced(self):
        """Balanced dataflow needs only minimal FIFO depth (Sec. V-A)."""
        stages = [PipelineStage(f"s{i}", rate=4) for i in range(4)]
        pipeline = LinearPipeline(stages, fifo_capacity=64)
        result = pipeline.run(800, source_rate=4)
        assert max(result.fifo_max_occupancy.values()) <= 8

    def test_pipeline_zero_elements(self):
        result = LinearPipeline([PipelineStage("s", rate=1)]).run(0)
        assert result.total_cycles == 0

    def test_pipeline_deadlock_guard(self):
        stages = [PipelineStage("s", rate=1)]
        with pytest.raises(RuntimeError):
            LinearPipeline(stages, fifo_capacity=1).run(10_000, source_rate=1, max_cycles=100)


class TestEMU:
    def test_pot_requant_cheaper_than_non_pot(self):
        """PoT re-quantization removes the per-lane DSP and most LUTs (Fig. 3)."""
        pot = ElementwiseMultiplyUnit(EMUConfig("op", lanes=16, bits=8, pot_requant=True))
        non_pot = ElementwiseMultiplyUnit(EMUConfig("op", lanes=16, bits=8, pot_requant=False))
        assert pot.resources().dsp < non_pot.resources().dsp
        assert pot.resources().lut < non_pot.resources().lut

    def test_fp16_more_expensive_than_int8(self):
        fp = ElementwiseMultiplyUnit(EMUConfig("op", lanes=8, bits=16))
        int8 = ElementwiseMultiplyUnit(EMUConfig("op", lanes=8, bits=8, pot_requant=True))
        assert fp.resources().dsp > int8.resources().dsp

    def test_cycles(self):
        emu = ElementwiseMultiplyUnit(EMUConfig("op", lanes=16))
        assert emu.cycles(160) == 10
        assert emu.cycles(1) == 1
        with pytest.raises(ValueError):
            emu.cycles(-1)

    def test_ssm_operator_costs_cover_all_fig3_ops(self):
        costs = ssm_operator_costs(bits=8, pot_requant=True)
        assert set(costs) == {
            "delta_mul_A", "delta_mul_B", "B_mul_x", "A_mul_h", "h_mul_C", "x_mul_D",
        }
        non_pot = ssm_operator_costs(bits=8, pot_requant=False)
        for op in costs:
            assert costs[op].dsp <= non_pot[op].dsp
            assert costs[op].lut < non_pot[op].lut

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EMUConfig("op", lanes=0)
        with pytest.raises(ValueError):
            EMUConfig("op", lanes=4, bits=5)


class TestMMU:
    def test_dsp_packing_resource_count(self):
        mmu = MatrixMultiplyUnit(MMUConfig(din=64, dout=2, weight_bits=4, act_bits=4))
        assert mmu.resources().dsp == 64  # 128 MACs / 2 per DSP

    def test_gemv_cycles_tile_count(self):
        mmu = MatrixMultiplyUnit(MMUConfig(din=64, dout=2, weight_bits=8, act_bits=8))
        cycles = mmu.gemv_cycles(128, 10)
        assert cycles == 2 * 5 + mmu.pipeline_depth

    def test_fp16_slower_than_int(self):
        int_mmu = MatrixMultiplyUnit(MMUConfig(din=64, dout=4, weight_bits=4, act_bits=4))
        fp_mmu = MatrixMultiplyUnit(MMUConfig(din=64, dout=4, weight_bits=16, act_bits=16))
        assert fp_mmu.gemv_cycles(1024, 1024) > int_mmu.gemv_cycles(1024, 1024)

    def test_gemm_scales_with_tokens(self):
        mmu = MatrixMultiplyUnit(MMUConfig(din=64, dout=2))
        single = mmu.gemv_cycles(256, 64) - mmu.pipeline_depth
        batch = mmu.gemm_cycles(10, 256, 64) - mmu.pipeline_depth
        assert batch == 10 * single

    def test_weight_bytes_precision(self):
        mmu4 = MatrixMultiplyUnit(MMUConfig(weight_bits=4))
        mmu8 = MatrixMultiplyUnit(MMUConfig(weight_bits=8))
        mmu16 = MatrixMultiplyUnit(MMUConfig(weight_bits=16))
        b4 = mmu4.weight_bytes(1024, 1024)
        b8 = mmu8.weight_bytes(1024, 1024)
        b16 = mmu16.weight_bytes(1024, 1024)
        assert b4 < b8 < b16
        assert b16 == 1024 * 1024 * 2
        # 4-bit: codes are exactly half the 8-bit codes; scales add a bit more.
        assert b4 > 1024 * 1024 * 0.5

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            MMUConfig(din=0)
        mmu = MatrixMultiplyUnit(MMUConfig())
        with pytest.raises(ValueError):
            mmu.gemv_cycles(0, 10)

    @given(st.integers(min_value=1, max_value=4096), st.integers(min_value=1, max_value=4096))
    @settings(max_examples=30, deadline=None)
    def test_gemv_cycles_lower_bound(self, in_features, out_features):
        """Tiled execution can never beat the ideal MAC-rate bound."""
        mmu = MatrixMultiplyUnit(MMUConfig(din=64, dout=4, weight_bits=8, act_bits=8))
        ideal = in_features * out_features / mmu.config.effective_macs_per_cycle
        assert mmu.gemv_cycles(in_features, out_features) >= ideal


class TestHTU:
    def test_128_point_unit_has_seven_stages(self):
        """The 128-point HTU of Fig. 5(d) has seven butterfly stages."""
        htu = HadamardTransformUnit(HTUConfig(dim=128))
        assert htu.num_stages == 7

    def test_mamba_2p7b_decomposition(self):
        """d_inner = 5120 decomposes into a power-of-two and a Paley factor."""
        htu = HadamardTransformUnit(HTUConfig(dim=5120))
        assert htu.pow2_factor * htu.base_factor == 5120
        assert htu.base_factor in (20, 40)

    def test_fht_reduces_latency_vs_matrix_multiply(self):
        """Fig. 5(d): ~72% lower latency than the MM implementation with the
        same arithmetic resources (here: equal MAC/add throughput)."""
        htu = HadamardTransformUnit(HTUConfig(dim=128, butterflies_per_stage=4, tiny_mm_lanes=8))
        fht_cycles = htu.transform_cycles()
        mm_cycles = matrix_hadamard_latency(128, 8)
        reduction = 1.0 - fht_cycles / mm_cycles
        assert reduction > 0.6

    def test_mm_mode_slower_than_fht(self):
        fht = HadamardTransformUnit(HTUConfig(dim=5120, use_fht=True))
        mm = HadamardTransformUnit(HTUConfig(dim=5120, use_fht=False))
        assert mm.transform_cycles() > fht.transform_cycles()

    def test_fht_resources_use_no_dsp_for_pow2(self):
        htu = HadamardTransformUnit(HTUConfig(dim=128, use_fht=True))
        assert htu.resources().dsp == 0
        assert htu.resources().bram == 2 * 7

    def test_composite_adds_tiny_mmu(self):
        htu = HadamardTransformUnit(HTUConfig(dim=5120, use_fht=True, tiny_mm_lanes=40))
        assert htu.resources().dsp > 0

    def test_tick_simulation_matches_analytic_order(self):
        htu = HadamardTransformUnit(HTUConfig(dim=128, butterflies_per_stage=1))
        sim = htu.simulate_fht_pipeline(vectors=4)
        analytic = htu.transform_cycles(vectors=4)
        assert sim.total_cycles == pytest.approx(analytic, rel=0.35)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            HTUConfig(dim=46)  # no Hadamard construction
        with pytest.raises(ValueError):
            matrix_hadamard_latency(0, 4)


class TestSSMU:
    def _unit(self, **kwargs):
        defaults = dict(nheads=80, headdim=64, d_state=128)
        defaults.update(kwargs)
        return SSMUnit(SSMUConfig(**defaults))

    def test_cycles_per_head(self):
        unit = self._unit()
        lanes = unit.config.lanes["B_mul_x"]
        assert unit.cycles_per_head() == math.ceil(64 * 128 / lanes)

    def test_fine_grained_removes_head_bubbles(self):
        unit = self._unit()
        coarse = unit.total_cycles(fine_grained=False)
        fine = unit.total_cycles(fine_grained=True)
        assert fine < coarse

    def test_uram_reduction_from_tiling(self):
        """Fine-grained tiling reduces the SSMU URAM by roughly 4x (Fig. 7)."""
        unit = self._unit()
        before = unit.uram_usage(fine_grained=False)
        after = unit.uram_usage(fine_grained=True)
        assert before / max(after, 1) > 3.0

    def test_quantized_ssmu_cheaper_than_fp16(self):
        int8 = self._unit(bits=8).resources()
        fp16 = self._unit(bits=16).resources()
        assert int8.dsp < fp16.dsp
        assert int8.lut < fp16.lut

    def test_pipeline_simulation_is_balanced(self):
        unit = self._unit(parallelism={"delta_mul_B": 2, "B_mul_x": 2, "A_mul_h": 2, "h_mul_C": 2})
        result = unit.simulate_pipeline(heads=2)
        # The state-sized stages should be busy nearly all the time.
        assert result.stage_utilisation["B_mul_x"] > 0.8
        assert result.stage_utilisation["h_mul_C"] > 0.8

    def test_lane_scaling_speeds_up(self):
        narrow = self._unit()
        wide = self._unit(parallelism={op: lanes * 16 for op, lanes in narrow.config.lanes.items()})
        assert wide.cycles_per_head() < narrow.cycles_per_head()

    def test_validation(self):
        with pytest.raises(ValueError):
            SSMUConfig(nheads=0, headdim=64, d_state=128)
        with pytest.raises(ValueError):
            SSMUConfig(nheads=8, headdim=64, d_state=128, bits=12)
        unit = self._unit()
        with pytest.raises(ValueError):
            unit.total_cycles(heads=-1)
