"""Concurrency stress tests for the serving layer.

Two subjects, matching the guarded-by contracts the static analyzer checks
(:mod:`repro.analysis.locks`):

- :class:`repro.serving.queue.RequestQueue` under concurrent producers, a
  consumer, and a canceller -- entries are never lost or duplicated, FIFO
  order by ``arrival_seq`` holds for everything that was not explicitly
  requeued, and ``wait_for_work`` never false-wakes an empty consumer;
- :class:`repro.serving.engine.InferenceEngine`'s ``_latency`` table (guarded
  by ``_submit_lock``) under concurrent ``submit`` and
  ``clear_finished_latencies`` -- the regression the analyzer originally
  flagged: an unguarded sweep iterates the dict while a producer inserts.
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import InferenceEngine, Request
from repro.serving.queue import RequestQueue


@dataclass(frozen=True)
class FakeRequest:
    """Minimal stand-in: the queue only ever looks at ``prompt``'s length."""

    prompt: tuple = (1, 2)


# ----------------------------------------------------------------------
# RequestQueue stress
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    per_producer=st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=3),
    cancel_stride=st.integers(min_value=2, max_value=5),
    requeue_stride=st.integers(min_value=0, max_value=4),
)
def test_queue_stress_conserves_entries_and_fifo(per_producer, cancel_stride, requeue_stride):
    """Concurrent push / pop / cancel / requeue never lose or duplicate work.

    Producers push disjoint id ranges; a canceller races the consumer for a
    strided subset; the consumer always takes the FIFO head and occasionally
    requeues an entry once (preemption).  Invariants checked afterwards:

    - conservation: consumed ids and successfully-cancelled ids partition the
      full id set (disjoint, nothing missing, nothing twice);
    - FIFO: among entries never requeued, consumed ``arrival_seq`` values are
      strictly increasing (the consumer always saw the true queue head);
    - the queue is empty at the end.
    """
    queue = RequestQueue()
    bases = []
    base = 0
    for count in per_producer:
        bases.append(base)
        base += count
    total = base
    all_ids = set(range(total))
    cancel_targets = [rid for rid in range(total) if rid % cancel_stride == 0]

    consumed = []  # QueueEntry, consumer thread only
    cancelled = []  # request ids, canceller thread only
    requeued_ids = set()  # consumer thread only
    errors = []
    barrier = threading.Barrier(len(per_producer) + 2)

    def producer(start, count):
        try:
            barrier.wait()
            for i in range(count):
                queue.push(start + i, FakeRequest())
        except Exception as exc:  # pragma: no cover - only on regression
            errors.append(exc)

    def canceller():
        try:
            barrier.wait()
            for rid in cancel_targets:
                # May run before the push or after the pop of rid; only a
                # successful cancel counts (the entry is then ours).
                if queue.cancel(rid) is not None:
                    cancelled.append(rid)
        except Exception as exc:  # pragma: no cover - only on regression
            errors.append(exc)

    def consumer():
        try:
            barrier.wait()
            while len(consumed) + len(cancelled) < total:
                if not queue.wait_for_work(timeout=0.005):
                    continue  # everything left may have been cancelled
                snapshot = queue.entries()
                if not snapshot:
                    continue  # canceller drained it between wake and snapshot
                head = snapshot[0]
                entry = queue.cancel(head.request_id)  # atomic claim
                if entry is None:
                    continue  # lost the race to the canceller
                if (
                    requeue_stride
                    and entry.request_id % (requeue_stride + 2) == 1
                    and entry.request_id not in requeued_ids
                ):
                    requeued_ids.add(entry.request_id)
                    queue.requeue(entry)  # preemption: back at its old seq
                    continue
                consumed.append(entry)
        except Exception as exc:  # pragma: no cover - only on regression
            errors.append(exc)

    threads = [
        threading.Thread(target=producer, args=(bases[k], per_producer[k]))
        for k in range(len(per_producer))
    ]
    threads.append(threading.Thread(target=canceller))
    threads.append(threading.Thread(target=consumer))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not any(thread.is_alive() for thread in threads)
    assert errors == []

    consumed_ids = [entry.request_id for entry in consumed]
    assert len(consumed_ids) == len(set(consumed_ids)), "duplicate consumption"
    assert len(cancelled) == len(set(cancelled)), "duplicate cancellation"
    assert set(consumed_ids).isdisjoint(cancelled)
    assert set(consumed_ids) | set(cancelled) == all_ids
    assert len(queue) == 0

    fifo_seqs = [
        entry.arrival_seq for entry in consumed if entry.request_id not in requeued_ids
    ]
    assert fifo_seqs == sorted(fifo_seqs), "non-requeued entries consumed out of order"


def test_wait_for_work_never_false_wakes_single_consumer():
    """With one consumer and no cancellation, every wake has work to take."""
    queue = RequestQueue()
    observed = []
    n_items = 8

    def consumer():
        for _ in range(n_items):
            woke = queue.wait_for_work()
            snapshot = queue.entries()
            observed.append((woke, len(snapshot)))
            queue.pop(snapshot[0].request_id)

    thread = threading.Thread(target=consumer)
    thread.start()
    for rid in range(n_items):
        queue.push(rid, FakeRequest())
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert all(woke and count > 0 for woke, count in observed)
    assert len(queue) == 0


def test_wait_for_work_timeout_on_empty_queue():
    queue = RequestQueue()
    assert queue.wait_for_work(timeout=0.005) is False


# ----------------------------------------------------------------------
# InferenceEngine._latency under concurrent submit / sweep
# ----------------------------------------------------------------------
def test_engine_concurrent_submit_and_latency_sweep(tiny_model):
    """Regression for the `_latency` lock gap the analyzer flags.

    Without `_submit_lock` around `clear_finished_latencies`, the sweep's
    iteration over the record dict races concurrent `submit` insertions and
    raises `RuntimeError: dictionary changed size during iteration`.
    """
    engine = InferenceEngine(tiny_model, max_batch_size=4)
    vocab = tiny_model.config.vocab_size
    n_requests = 1000
    errors = []
    done = threading.Event()
    barrier = threading.Barrier(2)

    def producer():
        try:
            barrier.wait()
            for i in range(n_requests):
                engine.submit(Request(prompt=(i % vocab,), max_new_tokens=1))
        except Exception as exc:
            errors.append(exc)
        finally:
            done.set()

    def sweeper():
        try:
            barrier.wait()
            while not done.is_set():
                engine.clear_finished_latencies()
        except Exception as exc:
            errors.append(exc)

    # Force frequent GIL hand-offs so the sweep's dict iteration actually
    # interleaves with submit's insertions (the default 5 ms interval lets
    # the whole producer run finish inside one quantum).
    interval = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    try:
        threads = [threading.Thread(target=producer), threading.Thread(target=sweeper)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
    finally:
        sys.setswitchinterval(interval)
    assert not any(thread.is_alive() for thread in threads)
    assert errors == [], errors
    assert engine.num_waiting == n_requests


def test_engine_step_loop_with_concurrent_producers(tiny_model):
    """The engine thread steps while producer threads submit: ids stay unique,
    every request completes, and every latency record survives intact."""
    engine = InferenceEngine(tiny_model, max_batch_size=4)
    vocab = tiny_model.config.vocab_size
    n_threads, per_thread = 3, 8
    total = n_threads * per_thread
    submitted = [[] for _ in range(n_threads)]
    errors = []
    barrier = threading.Barrier(n_threads)

    def producer(k):
        try:
            barrier.wait()
            for i in range(per_thread):
                rid = engine.submit(
                    Request(prompt=((k * per_thread + i) % vocab,), max_new_tokens=2)
                )
                submitted[k].append(rid)
        except Exception as exc:
            errors.append(exc)

    threads = [threading.Thread(target=producer, args=(k,)) for k in range(n_threads)]
    for thread in threads:
        thread.start()

    completions = []
    spins = 0
    while len(completions) < total and spins < 100_000:
        completions.extend(engine.step())
        spins += 1
    for thread in threads:
        thread.join(timeout=60)
    assert not any(thread.is_alive() for thread in threads)
    assert errors == []

    all_ids = sorted(rid for row in submitted for rid in row)
    assert all_ids == list(range(total)), "duplicate or skipped request ids"
    assert {c.request_id for c in completions} == set(range(total))
    for completion in completions:
        record = engine.latency(completion.request_id)
        assert record.finished_step is not None
        assert record.finish_reason == "length"
    assert engine.clear_finished_latencies() == total
