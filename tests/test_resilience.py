"""Fault injection, supervisor recovery, and the chaos soak.

Covers the resilience layer end to end:

- plan/injector determinism (same seed, same schedule, same firings);
- snapshot/rollback exactness on both float and integer-resident caches
  (codes + scales compared, never dequantized floats);
- the supervisor's recovery state machine: retry with backoff, prefill
  requeue (progress preserved), degradation to the sequential oracle,
  quarantine with ``finish_reason="error"``, watchdog timeouts;
- ``run()`` liveness guards and ``on_token`` callback hardening;
- the randomized chaos soak across all schedulers, checking the
  conservation invariants (exactly-once completion, no slot leaks,
  bit-identical survivors).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import QuantConfig, QuantMethod, SSMQuantConfig, quantize_model
from repro.serving.chaos import (
    SCHEDULER_NAMES,
    build_workload,
    run_chaos_soak,
    soak_once,
)
from repro.serving.engine import InferenceEngine, Request
from repro.serving.resilience import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    ManualClock,
    ResilienceConfig,
)


def _star(model, **ssm_kwargs):
    config = QuantConfig(
        method=QuantMethod.LIGHTMAMBA_STAR,
        w_bits=8,
        a_bits=8,
        ssm=SSMQuantConfig(**ssm_kwargs),
    )
    return quantize_model(model, config)


def _engine(model, injector=None, clock=None, *, max_batch_size=3, **cfg):
    resilience = ResilienceConfig(**cfg) if cfg else ResilienceConfig()
    return InferenceEngine(
        model,
        max_batch_size=max_batch_size,
        clock=clock,
        resilience=resilience,
        fault_injector=injector,
    )


def _requests(n=4, prompt_len=4, max_new=6):
    return [
        Request(prompt=[1 + i] + list(range(2, 2 + prompt_len - 1)), max_new_tokens=max_new)
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def reference_tokens(tiny_model):
    """Fault-free supervised run of the standard 4-request workload."""
    completions = _engine(tiny_model).run(_requests())
    return {c.request_id: list(c.result.tokens) for c in completions}


# ----------------------------------------------------------------------
# Plans, specs, injector
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_random_is_deterministic(self):
        a = FaultPlan.random(7, request_ids=(0, 1, 2))
        b = FaultPlan.random(7, request_ids=(0, 1, 2))
        assert a == b
        assert a != FaultPlan.random(8, request_ids=(0, 1, 2))

    def test_json_roundtrip(self):
        plan = FaultPlan.random(3, request_ids=(0, 1))
        assert FaultPlan.from_json(plan.to_json()) == plan

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "bogus", "step": 1},
            {"kind": "kernel_raise", "step": 0},
            {"kind": "kernel_raise", "step": 1, "site": "nowhere"},
            {"kind": "kernel_raise", "step": 1, "exception": "oom"},
            {"kind": "kernel_raise", "step": 1, "repeats": 0},
            {"kind": "stall", "step": 1},  # stall needs stall_seconds > 0
        ],
    )
    def test_spec_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)

    def test_make_exception_kinds(self):
        assert isinstance(
            FaultSpec(kind="kernel_raise", step=1).make_exception(), RuntimeError
        )
        assert isinstance(
            FaultSpec(kind="kernel_raise", step=1, exception="overflow").make_exception(),
            OverflowError,
        )


class TestFaultInjector:
    def test_arming_site_and_target(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(kind="kernel_raise", step=3, site="decode", request_id=5),
            )
        )
        inj = FaultInjector(plan)
        inj.on_model_call("decode", 2, [5])  # not armed yet
        inj.on_model_call("prefill", 3, [5])  # wrong site
        inj.on_model_call("decode", 3, [4])  # wrong request
        with pytest.raises(RuntimeError):
            inj.on_model_call("decode", 3, [4, 5])
        # A targeted fault keeps firing on batched calls (so binary-search
        # isolation converges); only the single-request firing consumes it.
        assert not inj.exhausted
        with pytest.raises(RuntimeError):
            inj.on_model_call("decode", 3, [5])
        assert inj.exhausted
        inj.on_model_call("decode", 4, [5])  # budget consumed
        assert [t["step"] for t in inj.trace] == [3]

    def test_repeats_budget(self):
        plan = FaultPlan(faults=(FaultSpec(kind="kernel_raise", step=1, repeats=2),))
        inj = FaultInjector(plan)
        for _ in range(2):
            with pytest.raises(RuntimeError):
                inj.on_model_call("decode", 1, [0])
        inj.on_model_call("decode", 1, [0])
        assert len(inj.trace) == 2

    def test_stall_advances_clock(self):
        clock = ManualClock()
        plan = FaultPlan(
            faults=(FaultSpec(kind="stall", step=2, stall_seconds=30.0),)
        )
        inj = FaultInjector(plan, clock_advance=clock.advance)
        inj.on_model_call("decode", 1, [0])
        assert clock() == 0.0
        inj.on_model_call("decode", 2, [0])
        assert clock() == 30.0

    def test_corrupt_rows_attribution(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(kind="state_corrupt", step=1, request_id=7),
                FaultSpec(kind="state_corrupt", step=1),
            )
        )
        inj = FaultInjector(plan)
        assert inj.corrupt_rows("decode", 1, [3, 7]) == [1, 0]
        assert inj.corrupt_rows("decode", 2, [3, 7]) == []  # budgets spent

    def test_drop_callback(self):
        plan = FaultPlan(faults=(FaultSpec(kind="callback_drop", step=2, request_id=1),))
        inj = FaultInjector(plan)
        assert not inj.drop_callback(1, 1)
        assert not inj.drop_callback(2, 0)
        assert inj.drop_callback(2, 1)
        assert not inj.drop_callback(3, 1)


class TestManualClock:
    def test_monotonic(self):
        clock = ManualClock(5.0)
        clock.advance(2.5)
        assert clock() == 7.5
        with pytest.raises(ValueError):
            clock.advance(-1.0)


class TestResilienceConfig:
    def test_backoff_schedule(self):
        cfg = ResilienceConfig(backoff_base_iterations=1, backoff_cap_iterations=8)
        assert [cfg.backoff_iterations(k) for k in (1, 2, 3, 4, 5)] == [1, 2, 4, 8, 8]
        with pytest.raises(ValueError):
            cfg.backoff_iterations(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(max_attempts=0)
        with pytest.raises(ValueError):
            ResilienceConfig(watchdog_budget_s=0.0)


# ----------------------------------------------------------------------
# Snapshot / rollback exactness (the supervisor's checkpoint contract)
# ----------------------------------------------------------------------
class TestSnapshotRollback:
    def _populated_cache(self, model, batch=3, steps=4):
        cache = model.new_cache(batch_size=batch)
        tokens = np.arange(1, batch + 1, dtype=np.int64)
        for _ in range(steps):
            model.step(tokens, cache)
        return cache

    def test_float_cache_roundtrip(self, tiny_model):
        cache = self._populated_cache(tiny_model)
        before = cache.snapshot_rows([0, 2])
        for layer in cache.layers:
            layer.conv_state[0] = np.nan
            layer.ssm_state[2] = -1.0
        assert not cache.snapshot_rows([0, 2]).state_equal(before)
        cache.restore_rows([0, 2], before)
        assert cache.snapshot_rows([0, 2]).state_equal(before)

    def test_quantized_cache_roundtrip_is_integer_exact(self, tiny_model):
        model = _star(tiny_model, persistent_state=True)
        cache = self._populated_cache(model)
        before = cache.snapshot_rows([1])
        for layer in cache.layers:
            # Corrupt the integer codes themselves: rollback must restore the
            # exact codes and scale exponents, not a requantized lookalike.
            layer.ssm_state.codes[1] ^= 1
            layer.conv_state[1] += 0.5
        assert not cache.snapshot_rows([1]).state_equal(before)
        cache.restore_rows([1], before)
        after = cache.snapshot_rows([1])
        assert after.state_equal(before)
        for restored, original in zip(after.layers, before.layers):
            assert restored.ssm_state.exact_equal(original.ssm_state)

    def test_resident_bytes_positive(self, tiny_model):
        model = _star(tiny_model, persistent_state=True)
        cache = model.new_cache(batch_size=2)
        assert cache.resident_state_bytes() > 0
        assert tiny_model.new_cache(batch_size=2).resident_state_bytes() > 0


# ----------------------------------------------------------------------
# Supervisor recovery in the engine
# ----------------------------------------------------------------------
class TestEngineRecovery:
    def test_decode_kernel_raise_recovers_bit_exact(self, tiny_model, reference_tokens):
        plan = FaultPlan(
            faults=(FaultSpec(kind="kernel_raise", step=3, site="decode", request_id=1),)
        )
        engine = _engine(tiny_model, FaultInjector(plan))
        completions = engine.run(_requests(), max_idle_iterations=50)
        assert [c.finish_reason for c in completions] == ["length"] * 4
        for c in completions:
            assert list(c.result.tokens) == reference_tokens[c.request_id]
        assert engine.stats.faults == 1
        assert engine.stats.rollbacks == 1
        assert engine.stats.recovered == 1
        assert engine.resilience_log.request_ids("backoff") == [1]

    def test_decode_corruption_attributed_and_rolled_back(
        self, tiny_model, reference_tokens
    ):
        plan = FaultPlan(
            faults=(FaultSpec(kind="state_corrupt", step=4, site="decode", request_id=2),)
        )
        engine = _engine(tiny_model, FaultInjector(plan))
        completions = engine.run(_requests(), max_idle_iterations=50)
        assert [c.finish_reason for c in completions] == ["length"] * 4
        for c in completions:
            assert list(c.result.tokens) == reference_tokens[c.request_id]
        # Attribution is exact: only the targeted request was ever touched.
        assert engine.resilience_log.request_ids("corrupt", "fault", "rollback") == [2]
        assert engine.stats.recovered == 1

    def test_quarantine_after_max_attempts(self, tiny_model, reference_tokens):
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    kind="kernel_raise", step=2, site="decode", request_id=0, repeats=10
                ),
            )
        )
        engine = _engine(tiny_model, FaultInjector(plan), max_attempts=3)
        completions = engine.run(_requests(), max_idle_iterations=50)
        by_id = {c.request_id: c for c in completions}
        assert by_id[0].finish_reason == "error"
        assert "injected" in by_id[0].error
        assert engine.stats.quarantined == 1
        assert engine.stats.retries == 2  # attempts 1 and 2 retried, 3rd quarantined
        # Survivors are untouched.
        for request_id in (1, 2, 3):
            assert by_id[request_id].finish_reason == "length"
            assert list(by_id[request_id].result.tokens) == reference_tokens[request_id]
        # The quarantined request's already-streamed tokens are kept.
        assert len(by_id[0].result.tokens) >= 1

    def test_prefill_fault_requeues_with_progress(self, tiny_model, reference_tokens):
        plan = FaultPlan(
            faults=(
                FaultSpec(kind="kernel_raise", step=1, site="prefill", request_id=3),
            )
        )
        engine = _engine(tiny_model, FaultInjector(plan), degrade_after=5)
        completions = engine.run(_requests(), max_idle_iterations=50)
        assert [c.finish_reason for c in completions] == ["length"] * 4
        for c in completions:
            assert list(c.result.tokens) == reference_tokens[c.request_id]
        assert engine.stats.requeued_faults == 1
        assert engine.stats.degraded == 0
        assert engine.resilience_log.request_ids("requeue") == [3]

    def test_overflow_degrades_to_sequential_oracle(self, tiny_model):
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    kind="kernel_raise",
                    step=1,
                    site="prefill",
                    request_id=0,
                    exception="overflow",
                ),
            )
        )
        engine = _engine(tiny_model, FaultInjector(plan))
        completions = engine.run(_requests(), max_idle_iterations=50)
        assert [c.finish_reason for c in completions] == ["length"] * 4
        assert engine.stats.degraded == 1
        assert engine.resilience_log.request_ids("degrade") == [0]

    def test_quantized_engine_survives_corruption(self, tiny_model):
        model = _star(tiny_model, persistent_state=True)
        reference = {
            c.request_id: list(c.result.tokens) for c in _engine(model).run(_requests())
        }
        plan = FaultPlan(
            faults=(FaultSpec(kind="state_corrupt", step=3, site="decode", request_id=1),)
        )
        engine = _engine(model, FaultInjector(plan))
        completions = engine.run(_requests(), max_idle_iterations=50)
        assert [c.finish_reason for c in completions] == ["length"] * 4
        for c in completions:
            assert list(c.result.tokens) == reference[c.request_id]
        assert engine.stats.recovered == 1

    def test_watchdog_converts_stall_to_timeout(self, tiny_model, reference_tokens):
        clock = ManualClock()
        plan = FaultPlan(
            faults=(FaultSpec(kind="stall", step=3, site="decode", stall_seconds=30.0),)
        )
        engine = _engine(
            tiny_model,
            FaultInjector(plan, clock_advance=clock.advance),
            clock,
            watchdog_budget_s=1.0,
        )
        completions = engine.run(_requests(), max_idle_iterations=50)
        assert [c.finish_reason for c in completions] == ["length"] * 4
        for c in completions:
            assert list(c.result.tokens) == reference_tokens[c.request_id]
        assert engine.stats.watchdog_timeouts == 1

    def test_snapshot_accounting(self, tiny_model):
        engine = _engine(tiny_model)
        engine.run(_requests(n=2))
        assert engine.stats.snapshot_rows > 0
        assert engine.stats.snapshot_bytes > 0.0


# ----------------------------------------------------------------------
# run() liveness guards
# ----------------------------------------------------------------------
class TestRunGuards:
    def test_validation(self, tiny_model):
        engine = _engine(tiny_model)
        with pytest.raises(ValueError):
            engine.run([], max_wall_seconds=0)
        with pytest.raises(ValueError):
            engine.run([], max_idle_iterations=0)

    def test_idle_guard_aborts_stuck_engine(self, tiny_model):
        # Every decode attempt faults and max_attempts is huge, so the engine
        # spins in backoff forever; the idle guard must end the drain.
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    kind="kernel_raise", step=2, site="decode", request_id=0, repeats=10_000
                ),
            )
        )
        engine = _engine(
            tiny_model, FaultInjector(plan), max_attempts=10_000, max_batch_size=1
        )
        completions = engine.run(
            [Request(prompt=[1, 2, 3], max_new_tokens=4)], max_idle_iterations=10
        )
        assert [c.finish_reason for c in completions] == ["error"]
        assert "no progress" in completions[0].error
        assert engine.stats.aborted == 1
        assert not engine.has_work

    def test_wall_clock_guard_on_injected_clock(self, tiny_model):
        clock = ManualClock()
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    kind="stall", step=1, site="decode", stall_seconds=10.0, repeats=100
                ),
            )
        )
        # No watchdog: stalls only advance the clock, so only the wall guard
        # can end the run early.
        engine = _engine(tiny_model, FaultInjector(plan, clock_advance=clock.advance), clock)
        completions = engine.run(
            [Request(prompt=[1, 2, 3], max_new_tokens=500)], max_wall_seconds=25.0
        )
        assert [c.finish_reason for c in completions] == ["error"]
        assert "max_wall_seconds" in completions[0].error
        assert 0 < len(completions[0].result.tokens) < 500
        assert not engine.has_work

    def test_guards_do_not_trip_on_healthy_runs(self, tiny_model, reference_tokens):
        completions = _engine(tiny_model).run(
            _requests(), max_wall_seconds=1e9, max_idle_iterations=3
        )
        assert [c.finish_reason for c in completions] == ["length"] * 4
        for c in completions:
            assert list(c.result.tokens) == reference_tokens[c.request_id]


# ----------------------------------------------------------------------
# on_token callback hardening
# ----------------------------------------------------------------------
class TestCallbackHardening:
    def test_raising_callback_disables_streaming_for_that_request_only(
        self, tiny_model, reference_tokens
    ):
        streamed = []

        def on_token(request_id, token, logprob):
            if request_id == 1:
                raise RuntimeError("user callback exploded")
            streamed.append((request_id, token))

        engine = _engine(tiny_model)
        completions = engine.run(_requests(), on_token=on_token, max_idle_iterations=50)
        assert [c.finish_reason for c in completions] == ["length"] * 4
        for c in completions:
            assert list(c.result.tokens) == reference_tokens[c.request_id]
        assert engine.stats.callback_errors == 1
        assert "exploded" in engine.latency(1).callback_error
        assert engine.latency(0).callback_error is None
        # Request 1 stops streaming after the first raise; the others stream
        # every token.
        assert not any(request_id == 1 for request_id, _ in streamed)
        for request_id in (0, 2, 3):
            tokens = [t for rid, t in streamed if rid == request_id]
            assert tokens == reference_tokens[request_id]

    def test_callback_drop_fault_suppresses_one_delivery(
        self, tiny_model, reference_tokens
    ):
        plan = FaultPlan(
            faults=(FaultSpec(kind="callback_drop", step=2, request_id=0),)
        )
        streamed = []
        engine = _engine(tiny_model, FaultInjector(plan))
        completions = engine.run(
            _requests(),
            on_token=lambda rid, tok, lp: streamed.append((rid, tok)),
            max_idle_iterations=50,
        )
        assert [c.finish_reason for c in completions] == ["length"] * 4
        assert engine.stats.callback_drops == 1
        tokens_0 = [t for rid, t in streamed if rid == 0]
        # One delivery dropped, but the completion still carries every token.
        assert len(tokens_0) == len(reference_tokens[0]) - 1
        assert list(completions[0].result.tokens) == reference_tokens[0]


# ----------------------------------------------------------------------
# Chaos soak: randomized schedules, all schedulers, conservation invariants
# ----------------------------------------------------------------------
class TestChaosSoak:
    def test_workload_is_deterministic(self, tiny_model):
        vocab = tiny_model.config.vocab_size
        assert build_workload(5, vocab_size=vocab) == build_workload(5, vocab_size=vocab)

    def test_soak_matrix(self, tiny_model):
        # 7 seeds x 3 schedulers = 21 randomized fault schedules.
        reports = run_chaos_soak(tiny_model, seeds=range(7))
        assert len(reports) == 21
        failures = [r for r in reports if not r.ok]
        assert not failures, [
            (r.scheduler, r.seed, r.violations) for r in failures
        ]
        # The matrix must actually exercise the supervisor, not dodge it.
        assert sum(r.stats["faults"] for r in reports) > 0
        assert sum(r.stats["recovered"] for r in reports) > 0
        assert {r.scheduler for r in reports} == set(SCHEDULER_NAMES)

    def test_soak_quantized_model(self, tiny_model):
        model = _star(tiny_model, persistent_state=True)
        reports = run_chaos_soak(model, seeds=range(2), schedulers=("fifo",))
        assert all(r.ok for r in reports), [r.violations for r in reports if not r.ok]

    def test_report_json(self, tiny_model):
        report = soak_once(tiny_model, seed=0, scheduler="fifo")
        payload = report.to_json()
        assert payload["ok"] is True
        assert payload["scheduler"] == "fifo"
        assert set(payload["finish_reasons"]) == {str(i) for i in range(6)}

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        scheduler=st.sampled_from(SCHEDULER_NAMES),
    )
    def test_soak_hypothesis(self, tiny_model, seed, scheduler):
        report = soak_once(tiny_model, seed=seed, scheduler=scheduler, num_requests=4)
        assert report.ok, report.violations
