"""End-to-end tests for the asyncio HTTP/SSE serving front-end.

Every test here talks to a real :class:`~repro.serving.server.MambaServer`
over localhost TCP sockets (via :func:`~repro.serving.server.serve_in_thread`),
using the same minimal blocking HTTP/SSE client the load harness uses -- so
the wire protocol, the disconnect-cancel path, and the graceful-drain
contract are exercised exactly as a real client would.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.mamba.generation import greedy_decode
from repro.serving import FIFOScheduler, InferenceEngine, PriorityScheduler
from repro.serving.loadgen import _Conn, _request_json
from repro.serving.resilience import ManualClock
from repro.serving.server import ServerConfig, serve_in_thread

PROMPT = [3, 1, 4, 1, 5]


def _bench_config():
    return ServerConfig(bench_mode=True, manual_clock_step=1.0)


def _bench_engine(model, *, max_batch_size=4, scheduler=None):
    return InferenceEngine(
        model,
        max_batch_size=max_batch_size,
        scheduler=scheduler or FIFOScheduler(),
        clock=ManualClock(),
    )


def _generate(host, port, payload, headers=None):
    """Open a streaming generate; returns the connection + start event data."""
    conn = _Conn(host, port)
    conn.send("POST", "/v1/generate", payload=payload, headers=headers)
    status, _ = conn.read_head()
    assert status == 200
    event, data = conn.next_event()
    assert event == "start"
    return conn, data


def _step(host, port):
    status, payload = _request_json(host, port, "POST", "/bench/step")
    assert status == 200
    return payload


def _stats(host, port):
    status, payload = _request_json(host, port, "GET", "/stats")
    assert status == 200
    return payload


def _read_to_done(conn):
    """Drain one SSE stream; returns (token list, done payload)."""
    tokens = []
    while True:
        event, data = conn.next_event()
        if event == "token":
            tokens.append(data["token"])
        elif event == "done":
            return tokens, data


class TestWireProtocol:
    def test_streamed_tokens_match_solo_decode(self, tiny_model):
        reference = greedy_decode(tiny_model, PROMPT, 8)
        engine = InferenceEngine(tiny_model, max_batch_size=2)
        with serve_in_thread(engine) as handle:
            conn, _ = _generate(
                handle.host, handle.port, {"prompt": PROMPT, "max_new_tokens": 8}
            )
            tokens, done = _read_to_done(conn)
            conn.close()
        assert tokens == list(reference.tokens)
        assert done["finish_reason"] == "length"
        assert done["tokens"] == list(reference.tokens)
        assert done["latency"]["ttft_iterations"] >= 0

    def test_non_streaming_response(self, tiny_model):
        reference = greedy_decode(tiny_model, PROMPT, 6)
        engine = InferenceEngine(tiny_model, max_batch_size=2)
        with serve_in_thread(engine) as handle:
            status, payload = _request_json(
                handle.host,
                handle.port,
                "POST",
                "/v1/generate",
                payload={"prompt": PROMPT, "max_new_tokens": 6, "stream": False},
            )
        assert status == 200
        assert payload["finish_reason"] == "length"
        assert payload["tokens"] == list(reference.tokens)
        assert len(payload["token_events"]) == 6

    def test_healthz_and_stats_surface(self, tiny_model):
        engine = InferenceEngine(tiny_model, max_batch_size=2)
        with serve_in_thread(engine) as handle:
            status, health = _request_json(handle.host, handle.port, "GET", "/healthz")
            assert status == 200
            assert health["status"] == "ok"
            stats = _stats(handle.host, handle.port)
            for key in (
                "engine",
                "queue_depth",
                "active_slots",
                "open_streams",
                "latency_records",
                "requests_accepted",
                "disconnect_cancels",
                "finish_reasons",
            ):
                assert key in stats
            assert stats["accepting"] is True
            status, payload = _request_json(handle.host, handle.port, "GET", "/nope")
            assert status == 404
            assert "error" in payload

    def test_bad_request_bodies(self, tiny_model):
        engine = InferenceEngine(tiny_model, max_batch_size=2)
        with serve_in_thread(engine) as handle:
            status, payload = _request_json(
                handle.host, handle.port, "POST", "/v1/generate", payload={"nope": 1}
            )
            assert status == 400
            assert "prompt" in payload["error"]
            # token id outside the model vocabulary: rejected by submit
            status, payload = _request_json(
                handle.host,
                handle.port,
                "POST",
                "/v1/generate",
                payload={"prompt": [10**9], "max_new_tokens": 2},
            )
            assert status == 400

    def test_bench_step_requires_bench_mode(self, tiny_model):
        engine = InferenceEngine(tiny_model, max_batch_size=2)
        with serve_in_thread(engine) as handle:
            status, payload = _request_json(
                handle.host, handle.port, "POST", "/bench/step"
            )
        assert status == 409
        assert "bench_mode" in payload["error"]


class TestDisconnectCancels:
    def test_disconnect_mid_generation_frees_slot_and_records(self, tiny_model):
        engine = _bench_engine(tiny_model)
        with serve_in_thread(engine, config=_bench_config()) as handle:
            host, port = handle.host, handle.port
            conn, start = _generate(
                host, port, {"prompt": PROMPT, "max_new_tokens": 100}
            )
            request_id = start["request_id"]
            # Advance two iterations; read the two streamed tokens.
            tokens = []
            for _ in range(2):
                _step(host, port)
                while True:
                    event, data = conn.next_event()
                    if event == "token":
                        tokens.append(data["token"])
                    elif event == "step":
                        break
            assert len(tokens) == 2
            # Hang up mid-generation: close the socket without reading on.
            conn.close()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                stats = _stats(host, port)
                if stats["engine"]["cancelled"] == 1:
                    break
                time.sleep(0.002)
            else:
                pytest.fail("engine never observed the disconnect as a cancel")
            # The slot is freed immediately; the pending cancelled completion
            # retires on the next step and its latency record is swept.
            assert stats["active_slots"] == 0
            assert stats["open_streams"] == 0
            assert stats["disconnect_cancels"] == 1
            _step(host, port)
            stats = _stats(host, port)
            assert stats["latency_records"] == 0
            assert stats["finish_reasons"].get("cancelled") == 1
            with pytest.raises(KeyError):
                engine.latency(request_id)

    def test_cancel_endpoint_for_waiting_request(self, tiny_model):
        engine = _bench_engine(tiny_model)
        with serve_in_thread(engine, config=_bench_config()) as handle:
            host, port = handle.host, handle.port
            conn, start = _generate(
                host, port, {"prompt": PROMPT, "max_new_tokens": 4}
            )
            status, payload = _request_json(
                host, port, "POST", f"/v1/cancel/{start['request_id']}"
            )
            assert status == 200
            assert payload["cancelled"] is True
            _step(host, port)  # delivers the pending cancelled completion
            tokens, done = _read_to_done(conn)
            conn.close()
        assert tokens == []
        assert done["finish_reason"] == "cancelled"


class TestHeaders:
    def test_priority_header_reorders_admission(self, tiny_model):
        engine = _bench_engine(
            tiny_model, max_batch_size=1, scheduler=PriorityScheduler()
        )
        with serve_in_thread(engine, config=_bench_config()) as handle:
            host, port = handle.host, handle.port
            occupant, _ = _generate(
                host, port, {"prompt": PROMPT, "max_new_tokens": 3}
            )
            # One step so the occupant is actually holding the single slot
            # before the contenders arrive.
            _step(host, port)
            low, _ = _generate(host, port, {"prompt": PROMPT, "max_new_tokens": 2})
            high, _ = _generate(
                host,
                port,
                {"prompt": PROMPT, "max_new_tokens": 2},
                headers={"X-Priority": "5"},
            )
            results = {}

            def drain(name, conn):
                results[name] = _read_to_done(conn)

            threads = [
                threading.Thread(target=drain, args=(name, conn))
                for name, conn in (("occupant", occupant), ("low", low), ("high", high))
            ]
            for t in threads:
                t.start()
            while engine.has_work:
                _step(host, port)
            for t in threads:
                t.join(timeout=10.0)
            for conn in (occupant, low, high):
                conn.close()
        assert set(results) == {"occupant", "low", "high"}
        # One slot: the occupant runs first; the high-priority arrival
        # front-runs the earlier low-priority one.
        finished = {name: done["latency"]["finished_step"] for name, (_, done) in results.items()}
        assert finished["occupant"] < finished["high"] < finished["low"]

    def test_deadline_header_expires_waiting_request(self, tiny_model):
        engine = _bench_engine(tiny_model, max_batch_size=1)
        with serve_in_thread(engine, config=_bench_config()) as handle:
            host, port = handle.host, handle.port
            occupant, _ = _generate(
                host, port, {"prompt": PROMPT, "max_new_tokens": 12}
            )
            # ManualClock advances 1.0 per step: this deadline is "admit
            # within 2 engine iterations", which the busy slot prevents.
            doomed, _ = _generate(
                host,
                port,
                {"prompt": PROMPT, "max_new_tokens": 4},
                headers={"X-Deadline-S": "2"},
            )
            results = {}

            def drain(name, conn):
                results[name] = _read_to_done(conn)

            threads = [
                threading.Thread(target=drain, args=(name, conn))
                for name, conn in (("occupant", occupant), ("doomed", doomed))
            ]
            for t in threads:
                t.start()
            while engine.has_work:
                _step(host, port)
            for t in threads:
                t.join(timeout=10.0)
            for conn in (occupant, doomed):
                conn.close()
        assert results["occupant"][1]["finish_reason"] == "length"
        assert results["doomed"][1]["finish_reason"] == "expired"
        assert results["doomed"][0] == []


class TestGracefulShutdown:
    def test_inflight_requests_drain_exactly_once(self, tiny_model):
        engine = InferenceEngine(tiny_model, max_batch_size=2)
        references = {
            n: greedy_decode(tiny_model, PROMPT + [n], 30) for n in (0, 1)
        }
        with serve_in_thread(engine) as handle:
            conns = {
                n: _generate(
                    handle.host,
                    handle.port,
                    {"prompt": PROMPT + [n], "max_new_tokens": 30},
                )[0]
                for n in (0, 1)
            }
            results = {}
            done_counts = {n: 0 for n in conns}

            def drain(n, conn):
                tokens = []
                while True:
                    try:
                        event, data = conn.next_event()
                    except (StopIteration, ConnectionError, OSError):
                        return
                    if event == "token":
                        tokens.append(data["token"])
                    elif event == "done":
                        done_counts[n] += 1
                        results[n] = (tokens, data)

            threads = [
                threading.Thread(target=drain, args=(n, conn))
                for n, conn in conns.items()
            ]
            for t in threads:
                t.start()
            # Shut down while both requests are mid-generation: the drain
            # contract says they complete on the wire first.
            handle.stop()
            for t in threads:
                t.join(timeout=10.0)
            for conn in conns.values():
                conn.close()
        assert set(results) == {0, 1}
        for n, (tokens, done) in results.items():
            assert done_counts[n] == 1
            assert done["finish_reason"] == "length"
            assert tokens == list(references[n].tokens)
        assert engine.has_work is False
        assert handle.server.finish_reasons == {"length": 2}

    def test_new_requests_rejected_while_draining(self, tiny_model):
        engine = _bench_engine(tiny_model)
        config = ServerConfig(bench_mode=True, manual_clock_step=1.0, drain_grace_s=5.0)
        with serve_in_thread(engine, config=config) as handle:
            host, port = handle.host, handle.port
            conn, _ = _generate(host, port, {"prompt": PROMPT, "max_new_tokens": 400})
            # Opened while the server still accepts: shutdown closes the
            # listener immediately, so only an already-accepted connection
            # can observe the 503 drain response.  Wait until the event loop
            # has actually accepted it (two live connection handlers), or a
            # backlogged connect would be reset when the listener closes.
            probe = _Conn(host, port)
            deadline = time.monotonic() + 5.0
            while len(handle.server._connections) < 2 and time.monotonic() < deadline:
                time.sleep(0.001)
            assert len(handle.server._connections) >= 2

            def drain_stream():
                _read_to_done(conn)

            reader = threading.Thread(target=drain_stream)
            reader.start()
            stopper = threading.Thread(target=handle.stop)
            stopper.start()
            deadline = time.monotonic() + 5.0
            while handle.server._accepting and time.monotonic() < deadline:
                time.sleep(0.001)
            assert not handle.server._accepting
            probe.send(
                "POST",
                "/v1/generate",
                payload={"prompt": PROMPT, "max_new_tokens": 2, "stream": False},
            )
            status, headers = probe.read_head()
            payload = probe.read_json_body(headers)
            probe.close()
            stopper.join(timeout=10.0)
            reader.join(timeout=10.0)
            conn.close()
            assert status == 503
            assert "draining" in payload["error"]
            assert handle.server.requests_rejected >= 1
