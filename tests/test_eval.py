"""Tests for the evaluation substrate: data generators, perplexity, tasks, harness."""

import numpy as np
import pytest

from repro.eval import (
    MarkovCorpusGenerator,
    ModelSampledCorpus,
    TaskSpec,
    ZipfCorpusGenerator,
    build_task_suite,
    evaluate_model,
    evaluate_task,
    last_token_perplexity,
    logit_mse,
    mean_kl_divergence,
    perplexity,
    score_candidates,
    split_into_sequences,
    top1_agreement,
)
from repro.eval.harness import _candidate_loglikelihood
from repro.eval.tasks import SyntheticTask, TaskExample
from repro.mamba import InitConfig, Mamba2Model, get_preset


@pytest.fixture(scope="module")
def model():
    return Mamba2Model.from_config(get_preset("mamba2-tiny"), InitConfig(seed=4))


@pytest.fixture(scope="module")
def tasks(model):
    specs = [
        TaskSpec(name="toy-a", num_candidates=4, continuation_len=2, context_len=8),
        TaskSpec(name="toy-b", num_candidates=2, continuation_len=1, context_len=6),
    ]
    return build_task_suite(model, num_examples=6, specs=specs, seed=1)


class TestDataGenerators:
    def test_zipf_range_and_determinism(self):
        gen = ZipfCorpusGenerator(vocab_size=128, seed=3)
        a = gen.generate(500)
        b = gen.generate(500)
        assert a.min() >= 0 and a.max() < 128
        np.testing.assert_array_equal(a, b)

    def test_zipf_is_skewed(self):
        gen = ZipfCorpusGenerator(vocab_size=256, seed=0)
        tokens = gen.generate(5000)
        counts = np.bincount(tokens, minlength=256)
        top_share = np.sort(counts)[::-1][:10].sum() / 5000
        assert top_share > 0.3  # heavy head, unlike uniform (10/256 ~ 0.04)

    def test_zipf_sequences(self):
        seqs = ZipfCorpusGenerator(64, seed=1).sequences(5, 16)
        assert len(seqs) == 5 and all(len(s) == 16 for s in seqs)

    def test_markov_more_predictable_than_zipf(self):
        """The Markov chain has lower conditional entropy than i.i.d. Zipf."""
        vocab = 64
        markov = MarkovCorpusGenerator(vocab, branching=4, seed=0)
        tokens = markov.generate(4000)
        matrix = markov.transition_matrix()
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0, rtol=1e-9)
        # Empirical bigram predictability.
        hits = np.mean(matrix[tokens[:-1]].argmax(axis=1) == tokens[1:])
        assert hits > 0.2  # far above the 1/64 chance level

    def test_model_sampled_corpus(self, model):
        corpus = ModelSampledCorpus(model, seed=2)
        seqs = corpus.sequences(2, 12)
        assert len(seqs) == 2
        assert all(len(s) == 12 for s in seqs)
        assert all(s.max() < model.config.vocab_size for s in seqs)

    def test_split_into_sequences(self):
        seqs = split_into_sequences(np.arange(10), 3)
        assert len(seqs) == 3
        np.testing.assert_array_equal(seqs[1], [3, 4, 5])

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfCorpusGenerator(vocab_size=1)
        with pytest.raises(ValueError):
            MarkovCorpusGenerator(vocab_size=16, branching=20)
        with pytest.raises(ValueError):
            split_into_sequences(np.arange(4), 0)


class TestPerplexity:
    def test_uniform_model_perplexity_is_vocab_size(self, model):
        """A model with all-zero logits has perplexity == vocab size."""
        uniform = model.copy()
        uniform.embedding = np.zeros_like(uniform.embedding)
        uniform.lm_head_weight = np.zeros((model.config.vocab_size, model.config.d_model))
        seqs = [np.arange(10) % model.config.vocab_size]
        assert perplexity(uniform, seqs) == pytest.approx(model.config.vocab_size, rel=1e-6)

    def test_lower_on_own_samples_than_random(self, model):
        """The model predicts its own generations better than random tokens."""
        own = ModelSampledCorpus(model, temperature=0.8, seed=5).sequences(2, 24)
        rng = np.random.default_rng(0)
        random_seqs = [rng.integers(0, model.config.vocab_size, size=24) for _ in range(2)]
        assert perplexity(model, own) < perplexity(model, random_seqs)

    def test_requires_sequences(self, model):
        with pytest.raises(ValueError):
            perplexity(model, [])
        with pytest.raises(ValueError):
            perplexity(model, [np.array([1])])


class TestTasks:
    def test_suite_structure(self, tasks):
        assert [t.name for t in tasks] == ["toy-a", "toy-b"]
        assert all(len(t) == 6 for t in tasks)
        for task in tasks:
            for ex in task.examples:
                assert len(ex.candidates) == (4 if task.name == "toy-a" else 2)
                assert 0 <= ex.gold_index < len(ex.candidates)

    def test_deterministic_given_seed(self, model):
        spec = [TaskSpec(name="t", num_candidates=3, continuation_len=1, context_len=6)]
        a = build_task_suite(model, num_examples=3, specs=spec, seed=9)
        b = build_task_suite(model, num_examples=3, specs=spec, seed=9)
        for ex_a, ex_b in zip(a[0].examples, b[0].examples):
            np.testing.assert_array_equal(ex_a.context, ex_b.context)
            assert ex_a.gold_index == ex_b.gold_index

    def test_chance_accuracy(self):
        task = SyntheticTask(
            name="x",
            examples=[
                TaskExample(np.array([1, 2]), [np.array([0]), np.array([1])], 0),
                TaskExample(
                    np.array([1, 2]),
                    [np.array([0]), np.array([1]), np.array([2]), np.array([3])],
                    1,
                ),
            ],
        )
        assert task.chance_accuracy == pytest.approx((0.5 + 0.25) / 2)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            TaskSpec(name="bad", num_candidates=1)
        with pytest.raises(ValueError):
            TaskSpec(name="bad", gold_temperature=1.5, distractor_temperature=1.0)

    def test_example_validation(self):
        with pytest.raises(ValueError):
            TaskExample(np.array([1]), [np.array([0])], 0)
        with pytest.raises(ValueError):
            TaskExample(np.array([1]), [np.array([0]), np.array([1])], 5)


class TestHarness:
    def test_reference_model_beats_chance(self, model, tasks):
        """The FP reference must rank its own likely continuations above chance."""
        for task in tasks:
            result = evaluate_task(model, task)
            assert result.accuracy > task.chance_accuracy

    def test_incremental_scoring_matches_full_forward(self, model, tasks):
        """The cache-based scorer must agree with the full-sequence scorer."""
        example = tasks[0].examples[0]
        fast = score_candidates(model, example)
        slow_scores = [
            _candidate_loglikelihood(model, example.context, cand)
            for cand in example.candidates
        ]
        assert fast == int(np.argmax(slow_scores))

    def test_evaluate_model_report(self, model, tasks):
        report = evaluate_model(model, tasks, label="fp")
        assert len(report.task_results) == len(tasks)
        assert 0.0 <= report.average_accuracy <= 1.0
        row = report.as_row()
        assert "average" in row and "toy-a" in row
        assert report.accuracy("toy-a") == report.task_results[0].accuracy
        with pytest.raises(KeyError):
            report.accuracy("missing")

    def test_last_token_perplexity_fp_lower_than_shuffled(self, model, tasks):
        """A model with shuffled weights scores higher gold perplexity."""
        broken = model.copy()
        rng = np.random.default_rng(0)
        for block in broken.blocks:
            block.out_proj_weight = rng.permutation(block.out_proj_weight.ravel()).reshape(
                block.out_proj_weight.shape
            )
        assert last_token_perplexity(model, tasks[0]) < last_token_perplexity(broken, tasks[0])

    def test_empty_task_rejected(self, model):
        with pytest.raises(ValueError):
            evaluate_task(model, SyntheticTask(name="empty", examples=[]))


class TestFidelityMetrics:
    def test_identical_models(self, model):
        seqs = [np.arange(8), np.arange(4) + 2]
        assert top1_agreement(model, model, seqs) == 1.0
        assert mean_kl_divergence(model, model, seqs) == pytest.approx(0.0, abs=1e-9)
        assert logit_mse(model, model, seqs) == 0.0

    def test_perturbed_model_diverges(self, model):
        noisy = model.copy()
        rng = np.random.default_rng(1)
        for block in noisy.blocks:
            block.out_proj_weight = block.out_proj_weight + 0.05 * rng.normal(
                size=block.out_proj_weight.shape
            )
        seqs = [np.arange(12)]
        assert mean_kl_divergence(model, noisy, seqs) > 0.0
        assert logit_mse(model, noisy, seqs) > 0.0
        assert top1_agreement(model, noisy, seqs) <= 1.0

    def test_requires_sequences(self, model):
        with pytest.raises(ValueError):
            top1_agreement(model, model, [])
