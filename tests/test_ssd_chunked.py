"""Tests for the chunked SSD prefill scan (state space duality form)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mamba.ssm import SSMParams, ssd_chunked_scan, ssm_scan


def _inputs(seq_len=33, nheads=3, headdim=8, d_state=16, seed=0, with_state=True):
    rng = np.random.default_rng(seed)
    params = SSMParams(
        A_log=np.log(rng.uniform(1, 8, size=nheads)),
        D=rng.normal(1.0, 0.1, size=nheads),
        dt_bias=rng.normal(size=nheads),
    )
    x = rng.normal(size=(seq_len, nheads, headdim))
    B = rng.normal(size=(seq_len, d_state))
    C = rng.normal(size=(seq_len, d_state))
    dt = rng.normal(size=(seq_len, nheads))
    state = rng.normal(size=(nheads, headdim, d_state)) * 0.3 if with_state else None
    return params, x, B, C, dt, state


class TestChunkedScanEquivalence:
    @pytest.mark.parametrize("chunk_size", [1, 4, 7, 16, 64, 128])
    def test_matches_sequential_scan(self, chunk_size):
        """The SSD chunked form is exactly the sequential recurrence."""
        params, x, B, C, dt, state = _inputs()
        y_ref, final_ref = ssm_scan(params, x, B, C, dt, state)
        y, final = ssd_chunked_scan(params, x, B, C, dt, state, chunk_size=chunk_size)
        np.testing.assert_allclose(y, y_ref, rtol=1e-9, atol=1e-10)
        np.testing.assert_allclose(final, final_ref, rtol=1e-9, atol=1e-10)

    def test_zero_initial_state_default(self):
        params, x, B, C, dt, _ = _inputs(with_state=False)
        y_ref, final_ref = ssm_scan(params, x, B, C, dt)
        y, final = ssd_chunked_scan(params, x, B, C, dt, chunk_size=8)
        np.testing.assert_allclose(y, y_ref, rtol=1e-9, atol=1e-10)
        np.testing.assert_allclose(final, final_ref, rtol=1e-9, atol=1e-10)

    def test_sequence_shorter_than_chunk(self):
        params, x, B, C, dt, state = _inputs(seq_len=5)
        y_ref, _ = ssm_scan(params, x, B, C, dt, state)
        y, _ = ssd_chunked_scan(params, x, B, C, dt, state, chunk_size=64)
        np.testing.assert_allclose(y, y_ref, rtol=1e-9, atol=1e-10)

    def test_state_handoff_composes(self):
        """Running two half-sequences with a state hand-off equals one run."""
        params, x, B, C, dt, state = _inputs(seq_len=24)
        y_full, final_full = ssd_chunked_scan(params, x, B, C, dt, state, chunk_size=8)
        y_a, mid = ssd_chunked_scan(params, x[:12], B[:12], C[:12], dt[:12], state, chunk_size=8)
        y_b, final_b = ssd_chunked_scan(params, x[12:], B[12:], C[12:], dt[12:], mid, chunk_size=8)
        np.testing.assert_allclose(np.concatenate([y_a, y_b]), y_full, rtol=1e-9, atol=1e-10)
        np.testing.assert_allclose(final_b, final_full, rtol=1e-9, atol=1e-10)

    def test_validation(self):
        params, x, B, C, dt, state = _inputs()
        with pytest.raises(ValueError):
            ssd_chunked_scan(params, x, B, C, dt, state, chunk_size=0)
        with pytest.raises(ValueError):
            ssd_chunked_scan(params, x[:, :2], B, C, dt, state)  # head mismatch

    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_equivalence(self, seq_len, chunk_size, seed):
        params, x, B, C, dt, state = _inputs(seq_len=seq_len, seed=seed)
        y_ref, final_ref = ssm_scan(params, x, B, C, dt, state)
        y, final = ssd_chunked_scan(params, x, B, C, dt, state, chunk_size=chunk_size)
        np.testing.assert_allclose(y, y_ref, rtol=1e-8, atol=1e-9)
        np.testing.assert_allclose(final, final_ref, rtol=1e-8, atol=1e-9)
