"""Tests for the chunked SSD prefill scan (state space duality form)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mamba.ssm import SSMParams, ssd_chunked_scan, ssm_scan


def _inputs(seq_len=33, nheads=3, headdim=8, d_state=16, seed=0, with_state=True):
    rng = np.random.default_rng(seed)
    params = SSMParams(
        A_log=np.log(rng.uniform(1, 8, size=nheads)),
        D=rng.normal(1.0, 0.1, size=nheads),
        dt_bias=rng.normal(size=nheads),
    )
    x = rng.normal(size=(seq_len, nheads, headdim))
    B = rng.normal(size=(seq_len, d_state))
    C = rng.normal(size=(seq_len, d_state))
    dt = rng.normal(size=(seq_len, nheads))
    state = rng.normal(size=(nheads, headdim, d_state)) * 0.3 if with_state else None
    return params, x, B, C, dt, state


def _batched_inputs(batch=3, seq_len=33, nheads=3, headdim=8, d_state=16, seed=0, with_state=True):
    rng = np.random.default_rng(seed)
    params = SSMParams(
        A_log=np.log(rng.uniform(1, 8, size=nheads)),
        D=rng.normal(1.0, 0.1, size=nheads),
        dt_bias=rng.normal(size=nheads),
    )
    x = rng.normal(size=(batch, seq_len, nheads, headdim))
    B = rng.normal(size=(batch, seq_len, d_state))
    C = rng.normal(size=(batch, seq_len, d_state))
    dt = rng.normal(size=(batch, seq_len, nheads))
    state = rng.normal(size=(batch, nheads, headdim, d_state)) * 0.3 if with_state else None
    return params, x, B, C, dt, state


class TestChunkedScanEquivalence:
    @pytest.mark.parametrize("chunk_size", [1, 4, 7, 16, 64, 128])
    def test_matches_sequential_scan(self, chunk_size):
        """The SSD chunked form is exactly the sequential recurrence."""
        params, x, B, C, dt, state = _inputs()
        y_ref, final_ref = ssm_scan(params, x, B, C, dt, state)
        y, final = ssd_chunked_scan(params, x, B, C, dt, state, chunk_size=chunk_size)
        np.testing.assert_allclose(y, y_ref, rtol=1e-9, atol=1e-10)
        np.testing.assert_allclose(final, final_ref, rtol=1e-9, atol=1e-10)

    def test_zero_initial_state_default(self):
        params, x, B, C, dt, _ = _inputs(with_state=False)
        y_ref, final_ref = ssm_scan(params, x, B, C, dt)
        y, final = ssd_chunked_scan(params, x, B, C, dt, chunk_size=8)
        np.testing.assert_allclose(y, y_ref, rtol=1e-9, atol=1e-10)
        np.testing.assert_allclose(final, final_ref, rtol=1e-9, atol=1e-10)

    def test_sequence_shorter_than_chunk(self):
        params, x, B, C, dt, state = _inputs(seq_len=5)
        y_ref, _ = ssm_scan(params, x, B, C, dt, state)
        y, _ = ssd_chunked_scan(params, x, B, C, dt, state, chunk_size=64)
        np.testing.assert_allclose(y, y_ref, rtol=1e-9, atol=1e-10)

    def test_state_handoff_composes(self):
        """Running two half-sequences with a state hand-off equals one run."""
        params, x, B, C, dt, state = _inputs(seq_len=24)
        y_full, final_full = ssd_chunked_scan(params, x, B, C, dt, state, chunk_size=8)
        y_a, mid = ssd_chunked_scan(params, x[:12], B[:12], C[:12], dt[:12], state, chunk_size=8)
        y_b, final_b = ssd_chunked_scan(params, x[12:], B[12:], C[12:], dt[12:], mid, chunk_size=8)
        np.testing.assert_allclose(np.concatenate([y_a, y_b]), y_full, rtol=1e-9, atol=1e-10)
        np.testing.assert_allclose(final_b, final_full, rtol=1e-9, atol=1e-10)

    def test_validation(self):
        params, x, B, C, dt, state = _inputs()
        with pytest.raises(ValueError):
            ssd_chunked_scan(params, x, B, C, dt, state, chunk_size=0)
        with pytest.raises(ValueError):
            ssd_chunked_scan(params, x[:, :2], B, C, dt, state)  # head mismatch

    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_equivalence(self, seq_len, chunk_size, seed):
        params, x, B, C, dt, state = _inputs(seq_len=seq_len, seed=seed)
        y_ref, final_ref = ssm_scan(params, x, B, C, dt, state)
        y, final = ssd_chunked_scan(params, x, B, C, dt, state, chunk_size=chunk_size)
        np.testing.assert_allclose(y, y_ref, rtol=1e-8, atol=1e-9)
        np.testing.assert_allclose(final, final_ref, rtol=1e-8, atol=1e-9)


class TestBatchedChunkedScan:
    """The batch axis of the chunked SSD scan (the serving prefill path)."""

    @pytest.mark.parametrize("chunk_size", [1, 7, 16, 64])
    def test_matches_batched_sequential_scan(self, chunk_size):
        """Batched chunked == batched sequential, nonzero initial state."""
        params, x, B, C, dt, state = _batched_inputs()
        y_ref, final_ref = ssm_scan(params, x, B, C, dt, state)
        y, final = ssd_chunked_scan(params, x, B, C, dt, state, chunk_size=chunk_size)
        np.testing.assert_allclose(y, y_ref, rtol=1e-9, atol=1e-10)
        np.testing.assert_allclose(final, final_ref, rtol=1e-9, atol=1e-10)

    def test_matches_per_row_scan(self):
        """Every batch row must reproduce its own single-sequence scan.

        seq_len 33 with chunk 8 leaves an uneven final chunk.
        """
        params, x, B, C, dt, state = _batched_inputs(seed=7)
        y, final = ssd_chunked_scan(params, x, B, C, dt, state, chunk_size=8)
        for i in range(x.shape[0]):
            y_i, final_i = ssm_scan(params, x[i], B[i], C[i], dt[i], state[i])
            np.testing.assert_allclose(y[i], y_i, rtol=1e-9, atol=1e-10)
            np.testing.assert_allclose(final[i], final_i, rtol=1e-9, atol=1e-10)

    def test_chunk_larger_than_sequence_batched(self):
        params, x, B, C, dt, state = _batched_inputs(seq_len=5)
        y_ref, final_ref = ssm_scan(params, x, B, C, dt, state)
        y, final = ssd_chunked_scan(params, x, B, C, dt, state, chunk_size=512)
        np.testing.assert_allclose(y, y_ref, rtol=1e-9, atol=1e-10)
        np.testing.assert_allclose(final, final_ref, rtol=1e-9, atol=1e-10)

    @pytest.mark.parametrize("chunk_size", [1, 8, 64])
    def test_ragged_seq_lens_snapshot_states(self, chunk_size):
        """Padded ragged batch: state rows must equal per-row truncated scans.

        Lengths straddle chunk boundaries on both sides (and one row uses the
        full padded length).
        """
        params, x, B, C, dt, state = _batched_inputs(batch=4, seq_len=21, seed=3)
        lens = np.array([5, 21, 8, 16])
        y, final = ssd_chunked_scan(
            params, x, B, C, dt, state, chunk_size=chunk_size, seq_lens=lens
        )
        for i, n in enumerate(lens):
            y_i, final_i = ssm_scan(params, x[i, :n], B[i, :n], C[i, :n], dt[i, :n], state[i])
            np.testing.assert_allclose(y[i, :n], y_i, rtol=1e-9, atol=1e-10)
            np.testing.assert_allclose(final[i], final_i, rtol=1e-9, atol=1e-10)

    def test_sequential_scan_seq_lens_agree(self):
        """ssm_scan's seq_lens snapshots must match the chunked scan's."""
        params, x, B, C, dt, state = _batched_inputs(batch=3, seq_len=13, seed=5)
        lens = np.array([13, 2, 9])
        _, final_seq = ssm_scan(params, x, B, C, dt, state, seq_lens=lens)
        _, final_chunk = ssd_chunked_scan(
            params, x, B, C, dt, state, chunk_size=4, seq_lens=lens
        )
        np.testing.assert_allclose(final_chunk, final_seq, rtol=1e-9, atol=1e-10)

    def test_seq_lens_validation(self):
        params, x, B, C, dt, state = _batched_inputs()
        with pytest.raises(ValueError):
            ssd_chunked_scan(params, x, B, C, dt, state, seq_lens=np.array([1, 2]))
        with pytest.raises(ValueError):
            ssd_chunked_scan(params, x, B, C, dt, state, seq_lens=np.array([0, 1, 2]))
        with pytest.raises(ValueError):
            ssd_chunked_scan(
                params, x, B, C, dt, state, seq_lens=np.array([1, 1, x.shape[1] + 1])
            )
        single = _inputs()
        with pytest.raises(ValueError):
            ssd_chunked_scan(*single[:6], seq_lens=np.array([3]))

    def test_no_inf_mask_and_no_warnings(self):
        """The causal gating must not build -inf masks or overflow the exp.

        Long sequences with strong decay make the anti-causal exponent large
        and positive; errstate(all="raise") turns any overflow or invalid
        into a hard failure.
        """
        params, x, B, C, dt, state = _inputs(seq_len=257, seed=11)
        dt = dt + 3.0  # strong decay -> large positive anti-causal exponents
        with np.errstate(over="raise", invalid="raise"):
            y, final = ssd_chunked_scan(params, x, B, C, dt, state, chunk_size=64)
        y_ref, final_ref = ssm_scan(params, x, B, C, dt, state)
        np.testing.assert_allclose(y, y_ref, rtol=1e-9, atol=1e-10)
        np.testing.assert_allclose(final, final_ref, rtol=1e-9, atol=1e-10)
