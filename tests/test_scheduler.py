"""Tests of the scheduling subsystem: RequestQueue, policies, engine wiring."""

import asyncio

import numpy as np
import pytest

from repro.mamba import greedy_decode
from repro.serving import (
    FIFOScheduler,
    InferenceEngine,
    PagedScheduler,
    PriorityScheduler,
    Request,
    RequestQueue,
    Scheduler,
    TokenLedger,
)


class FakeClock:
    """Deterministic injectable clock."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


def _mk_request(rng, vocab, size, budget, **kw):
    return Request(
        prompt=tuple(rng.integers(0, vocab, size=size)), max_new_tokens=budget, **kw
    )


def _check_matches_solo(model, completions, requests):
    by_id = {c.request_id: c for c in completions}
    for rid, request in enumerate(requests):
        ref = greedy_decode(model, request.prompt, request.max_new_tokens)
        assert by_id[rid].result.tokens == ref.tokens
        np.testing.assert_allclose(by_id[rid].result.logprobs, ref.logprobs, atol=1e-10)


class TestRequestQueue:
    def test_fifo_order_and_arrival_metadata(self):
        clock = FakeClock(10.0)
        queue = RequestQueue(clock=clock)
        a = queue.push(0, Request(prompt=(1,), max_new_tokens=1))
        clock.now = 11.0
        b = queue.push(1, Request(prompt=(2,), max_new_tokens=1), priority=3)
        assert [e.request_id for e in queue.entries()] == [0, 1]
        assert (a.arrival_time, b.arrival_time) == (10.0, 11.0)
        assert a.arrival_seq < b.arrival_seq
        assert b.priority == 3
        assert len(queue) == 2 and 1 in queue

    def test_requeue_restores_fifo_position(self):
        queue = RequestQueue(clock=FakeClock())
        queue.push(0, Request(prompt=(1,), max_new_tokens=1))
        queue.push(1, Request(prompt=(2,), max_new_tokens=1))
        first = queue.pop(0)
        queue.requeue(first)
        assert [e.request_id for e in queue.entries()] == [0, 1]

    def test_cancel_and_duplicate_push(self):
        queue = RequestQueue(clock=FakeClock())
        queue.push(0, Request(prompt=(1,), max_new_tokens=1))
        assert queue.cancel(0).request_id == 0
        assert queue.cancel(0) is None
        queue.push(0, Request(prompt=(1,), max_new_tokens=1))
        with pytest.raises(ValueError):
            queue.push(0, Request(prompt=(1,), max_new_tokens=1))

    def test_take_expired_uses_injected_clock(self):
        clock = FakeClock(0.0)
        queue = RequestQueue(clock=clock)
        queue.push(0, Request(prompt=(1,), max_new_tokens=1), deadline=5.0)
        queue.push(1, Request(prompt=(2,), max_new_tokens=1), deadline=50.0)
        queue.push(2, Request(prompt=(3,), max_new_tokens=1))  # no deadline
        assert queue.take_expired() == []
        clock.now = 5.0
        expired = queue.take_expired()
        assert [e.request_id for e in expired] == [0]
        assert [e.request_id for e in queue.entries()] == [1, 2]

    def test_wait_for_work(self):
        queue = RequestQueue(clock=FakeClock())
        assert queue.wait_for_work(timeout=0.01) is False
        queue.push(0, Request(prompt=(1,), max_new_tokens=1))
        assert queue.wait_for_work(timeout=0.01) is True

    def test_wait_for_work_async(self):
        queue = RequestQueue(clock=FakeClock())

        async def scenario():
            empty = await queue.wait_for_work_async(timeout=0.01)
            queue.push(0, Request(prompt=(1,), max_new_tokens=1))
            ready = await queue.wait_for_work_async(timeout=0.01)
            return empty, ready

        assert asyncio.run(scenario()) == (False, True)


class TestTokenLedger:
    def test_decode_charges_reduce_prefill_budget(self):
        ledger = TokenLedger(8)
        ledger.charge_decode(3)
        assert ledger.remaining == 5
        assert ledger.grant_prefill(10) == 5
        assert ledger.remaining == 0
        assert ledger.grant_prefill(4) == 0

    def test_floor_overdraws_exhausted_page(self):
        ledger = TokenLedger(2)
        ledger.charge_decode(2)
        assert ledger.grant_prefill(10, floor=3) == 3
        assert ledger.remaining == 0

    def test_floor_applies_to_nearly_exhausted_page(self):
        """A remainder smaller than the floor is raised to the floor."""
        ledger = TokenLedger(8)
        ledger.charge_decode(7)  # remaining == 1 < floor
        assert ledger.grant_prefill(100, floor=4) == 4
        ledger = TokenLedger(8)
        ledger.charge_decode(2)  # remaining == 6 >= floor: floor is inactive
        assert ledger.grant_prefill(100, floor=4) == 6

    def test_unbounded_and_validation(self):
        assert TokenLedger(None).grant_prefill(1000) == 1000
        with pytest.raises(ValueError):
            TokenLedger(0)


class TestPolicyEquivalence:
    """Scheduling changes when work runs, never what it produces."""

    def _requests(self, model, seed=11):
        rng = np.random.default_rng(seed)
        vocab = model.config.vocab_size
        sizes = (23, 5, 40, 9, 3)
        budgets = (4, 6, 3, 5, 7)
        return [_mk_request(rng, vocab, s, b) for s, b in zip(sizes, budgets)]

    @pytest.mark.parametrize(
        "scheduler",
        [
            FIFOScheduler(),
            FIFOScheduler(prefill_chunk_tokens=5),
            PriorityScheduler(prefill_chunk_tokens=5),
            PriorityScheduler(prefill_chunk_tokens=4, preempt=True),
            PagedScheduler(page_tokens=8),
            PagedScheduler(page_tokens=3),
        ],
    )
    def test_all_policies_match_solo_decode(self, tiny_model, scheduler):
        requests = self._requests(tiny_model)
        engine = InferenceEngine(tiny_model, max_batch_size=2, scheduler=scheduler)
        completions = engine.run(requests)
        assert len(completions) == len(requests)
        assert all(c.finish_reason == "length" for c in completions)
        _check_matches_solo(tiny_model, completions, requests)

    def test_explicit_fifo_is_bit_identical_to_default_engine(self, tiny_model):
        """FIFOScheduler must reproduce the legacy engine exactly: same
        completions, same prefill segmentation, same stats trajectory."""
        requests = self._requests(tiny_model)
        for chunk in (None, 1, 3, 7):
            legacy = InferenceEngine(
                tiny_model, max_batch_size=2, prefill_chunk_tokens=chunk
            )
            explicit = InferenceEngine(
                tiny_model,
                max_batch_size=2,
                scheduler=FIFOScheduler(prefill_chunk_tokens=chunk),
            )
            done_a = legacy.run(requests)
            done_b = explicit.run(requests)
            for a, b in zip(done_a, done_b):
                assert a.result.tokens == b.result.tokens
                assert a.result.logprobs == b.result.logprobs  # bitwise
            assert legacy.stats == explicit.stats

    def test_scheduler_protocol_runtime_checkable(self):
        assert isinstance(FIFOScheduler(), Scheduler)
        assert isinstance(PagedScheduler(page_tokens=4), Scheduler)
        assert not isinstance(object(), Scheduler)

    def test_engine_rejects_scheduler_and_chunk_tokens(self, tiny_model):
        with pytest.raises(ValueError):
            InferenceEngine(
                tiny_model, prefill_chunk_tokens=4, scheduler=FIFOScheduler()
            )
        with pytest.raises(ValueError):
            PagedScheduler(page_tokens=0)
        with pytest.raises(ValueError):
            PriorityScheduler(prefill_chunk_tokens=0)


class TestPriorityScheduler:
    def test_priority_order_with_fifo_ties(self, tiny_model):
        """Higher priority admits first; equal priorities keep arrival order."""
        rng = np.random.default_rng(12)
        vocab = tiny_model.config.vocab_size
        engine = InferenceEngine(
            tiny_model, max_batch_size=1, scheduler=PriorityScheduler()
        )
        blocker = engine.submit(_mk_request(rng, vocab, 4, 6))
        engine.step()  # blocker occupies the only slot
        low = engine.submit(_mk_request(rng, vocab, 3, 2), priority=0)
        high_1 = engine.submit(_mk_request(rng, vocab, 3, 2), priority=5)
        high_2 = engine.submit(_mk_request(rng, vocab, 3, 2), priority=5)
        engine.run()
        order = sorted(
            (blocker, low, high_1, high_2),
            key=lambda rid: (engine.latency(rid).admitted_step, rid),
        )
        assert order == [blocker, high_1, high_2, low]
        assert (
            engine.latency(high_1).admitted_step < engine.latency(high_2).admitted_step
            or engine.latency(high_1).first_token_step
            < engine.latency(high_2).first_token_step
        )

    def test_preemption_evicts_low_priority_prefill_and_keeps_progress(
        self, tiny_model
    ):
        rng = np.random.default_rng(13)
        vocab = tiny_model.config.vocab_size
        engine = InferenceEngine(
            tiny_model,
            max_batch_size=1,
            scheduler=PriorityScheduler(prefill_chunk_tokens=4, preempt=True),
        )
        long_req = _mk_request(rng, vocab, 20, 2)
        long_id = engine.submit(long_req, priority=0)
        engine.step()
        assert engine.num_prefilling == 1  # 4 of 20 prompt tokens done
        short_req = _mk_request(rng, vocab, 3, 2)
        short_id = engine.submit(short_req, priority=5)
        completions = []
        while engine.has_work:
            completions.extend(engine.step())
        assert engine.stats.preempted == 1
        # Preempted progress was kept: every prompt token prefilled exactly once.
        assert engine.stats.prefilled_tokens == 23
        # Re-admission does not double-count: two requests, two admissions.
        assert engine.stats.admitted == 2 == engine.stats.completed
        assert engine.latency(short_id).first_token_step < engine.latency(
            long_id
        ).first_token_step
        by_id = {c.request_id: c for c in completions}
        for rid, request in ((long_id, long_req), (short_id, short_req)):
            ref = greedy_decode(tiny_model, request.prompt, request.max_new_tokens)
            assert by_id[rid].result.tokens == ref.tokens

    def test_preemption_only_when_it_admits_the_urgent_request(self, tiny_model):
        """A degenerate urgent request needs no slot, so nothing is evicted."""
        rng = np.random.default_rng(27)
        vocab = tiny_model.config.vocab_size
        engine = InferenceEngine(
            tiny_model,
            max_batch_size=1,
            scheduler=PriorityScheduler(prefill_chunk_tokens=4, preempt=True),
        )
        engine.submit(_mk_request(rng, vocab, 20, 2), priority=0)
        engine.step()
        assert engine.num_prefilling == 1
        engine.submit(_mk_request(rng, vocab, 3, 0), priority=9)
        engine.run()
        assert engine.stats.preempted == 0

    def test_preempted_entry_budgets_remaining_tokens_only(self):
        """A re-queued preempted request charges only its unprefilled tail."""
        from repro.serving import QueueEntry, SchedulerContext

        parked = QueueEntry(
            request_id=0,
            request=Request(prompt=tuple(range(1, 21)), max_new_tokens=2),
            arrival_seq=0,
            prefill_pos=12,
        )
        fresh = QueueEntry(
            request_id=1,
            request=Request(prompt=(1, 2, 3), max_new_tokens=2),
            arrival_seq=1,
        )
        ctx = SchedulerContext(
            engine_step=1,
            max_batch_size=2,
            free_slots=(0, 1),
            prefilling=(),
            num_decoding=0,
        )
        plan = FIFOScheduler(prefill_chunk_tokens=10).plan((parked, fresh), ctx)
        # 8 remaining tokens charged (not 20), leaving 2 for the second admit.
        assert plan.admit == ((0, 8), (1, 2))


class TestPagedScheduler:
    def test_decode_stall_bounded_by_page_budget(self, tiny_model):
        """A long prompt may add at most the page remainder per iteration,
        and in-flight decodes advance every single step (starvation-freedom)."""
        rng = np.random.default_rng(14)
        vocab = tiny_model.config.vocab_size
        page = 6
        engine = InferenceEngine(
            tiny_model, max_batch_size=2, scheduler=PagedScheduler(page_tokens=page)
        )
        short = _mk_request(rng, vocab, 3, 30)
        engine.submit(short)
        engine.step()
        assert engine.num_active == 1
        long = _mk_request(rng, vocab, 50, 2)
        engine.submit(long)
        while engine.num_active >= 1 and engine.has_work:
            decoded_before = engine.stats.decoded_tokens
            prefilled_before = engine.stats.prefilled_tokens
            engine.step()
            # The decode advanced this very iteration...
            assert engine.stats.decoded_tokens > decoded_before
            # ...and the long prompt charged at most the page remainder.
            assert engine.stats.prefilled_tokens - prefilled_before <= page - 1
        completions = engine.run()  # drain whatever is left
        assert engine.stats.prefilled_tokens == 53

    def test_prefill_liveness_floor_when_decodes_fill_page(self, tiny_model):
        """page_tokens <= decoding rows still prefills min_prefill_tokens."""
        rng = np.random.default_rng(15)
        vocab = tiny_model.config.vocab_size
        engine = InferenceEngine(
            tiny_model, max_batch_size=3, scheduler=PagedScheduler(page_tokens=2)
        )
        for _ in range(2):
            engine.submit(_mk_request(rng, vocab, 1, 40))
        engine.step()
        assert engine.num_active == 2  # both decode: page is fully charged
        engine.submit(_mk_request(rng, vocab, 30, 1))
        prefilled_before = engine.stats.prefilled_tokens
        engine.step()
        # Liveness floor: exactly min_prefill_tokens despite the exhausted page.
        assert engine.stats.prefilled_tokens - prefilled_before == 1

    def test_degenerate_requests_complete_without_free_slot(self, tiny_model):
        rng = np.random.default_rng(16)
        vocab = tiny_model.config.vocab_size
        engine = InferenceEngine(
            tiny_model, max_batch_size=1, scheduler=PagedScheduler(page_tokens=4)
        )
        engine.submit(_mk_request(rng, vocab, 2, 10))
        engine.step()  # slot occupied
        zero = engine.submit(_mk_request(rng, vocab, 2, 0))
        done = engine.step()
        assert [c.request_id for c in done] == [zero]
        assert done[0].finish_reason == "length"


class TestCancellation:
    def test_cancel_queued_request(self, tiny_model):
        rng = np.random.default_rng(17)
        vocab = tiny_model.config.vocab_size
        engine = InferenceEngine(tiny_model, max_batch_size=1)
        running = engine.submit(_mk_request(rng, vocab, 3, 5))
        engine.step()
        waiting_req = _mk_request(rng, vocab, 4, 5)
        waiting = engine.submit(waiting_req)
        assert engine.cancel(waiting) is True
        assert engine.num_waiting == 0
        completions = engine.run()
        by_id = {c.request_id: c for c in completions}
        assert by_id[waiting].finish_reason == "cancelled"
        assert by_id[waiting].result.tokens == []
        assert by_id[running].finish_reason == "length"
        assert engine.stats.cancelled == 1
        assert engine.latency(waiting).finish_reason == "cancelled"

    def test_cancel_in_flight_decode_keeps_partial_tokens(self, tiny_model):
        rng = np.random.default_rng(18)
        vocab = tiny_model.config.vocab_size
        engine = InferenceEngine(tiny_model, max_batch_size=1)
        request = _mk_request(rng, vocab, 4, 10)
        rid = engine.submit(request)
        engine.step()
        engine.step()
        assert engine.cancel(rid) is True
        assert engine.num_active == 0
        (completion,) = engine.run()
        assert completion.finish_reason == "cancelled"
        ref = greedy_decode(tiny_model, request.prompt, 10)
        assert completion.result.tokens == ref.tokens[:2]
        # The freed slot is immediately reusable.
        fresh = _mk_request(rng, vocab, 3, 2)
        fresh_id = engine.submit(fresh)
        (done,) = engine.run()
        assert done.request_id == fresh_id
        assert done.result.tokens == greedy_decode(tiny_model, fresh.prompt, 2).tokens

    def test_cancel_mid_prefill_frees_reserved_slot(self, tiny_model):
        rng = np.random.default_rng(19)
        vocab = tiny_model.config.vocab_size
        engine = InferenceEngine(tiny_model, max_batch_size=1, prefill_chunk_tokens=4)
        rid = engine.submit(_mk_request(rng, vocab, 20, 5))
        engine.step()
        assert engine.num_prefilling == 1
        assert engine.cancel(rid) is True
        assert engine.num_prefilling == 0
        (completion,) = engine.run()
        assert completion.finish_reason == "cancelled"
        assert completion.result.tokens == []

    def test_cancel_from_on_token_callback(self, tiny_model):
        """Cancelling mid-step from the streaming callback must not crash the
        engine or double-deliver completions -- self- and cross-cancel."""
        rng = np.random.default_rng(26)
        vocab = tiny_model.config.vocab_size
        requests = [_mk_request(rng, vocab, 4, 6) for _ in range(3)]
        engine = InferenceEngine(tiny_model, max_batch_size=3)
        streamed = {0: [], 1: [], 2: []}

        def on_token(rid, token, logprob):
            streamed[rid].append(token)
            if rid == 0 and len(streamed[0]) == 3:
                engine.cancel(0)  # self-cancel mid-stream
                engine.cancel(1)  # cross-cancel another in-flight slot

        completions = engine.run(requests, on_token=on_token)
        assert [c.request_id for c in completions] == [0, 1, 2]
        by_id = {c.request_id: c for c in completions}
        assert by_id[0].finish_reason == "cancelled"
        assert by_id[0].result.tokens == streamed[0]  # includes the 3rd token
        assert len(by_id[0].result.tokens) == 3
        assert by_id[1].finish_reason == "cancelled"
        ref = greedy_decode(tiny_model, requests[2].prompt, 6)
        assert by_id[2].finish_reason == "length"
        assert by_id[2].result.tokens == ref.tokens

    def test_cross_cancel_of_earlier_slot_is_not_decoded(self, tiny_model):
        """A slot cancelled by a *later* slot's on_token callback must not be
        fed through the batched decode call after being freed."""
        rng = np.random.default_rng(28)
        vocab = tiny_model.config.vocab_size
        first = _mk_request(rng, vocab, 3, 10)
        second = _mk_request(rng, vocab, 4, 10)
        engine = InferenceEngine(tiny_model, max_batch_size=2)
        first_id = engine.submit(first)
        second_id = engine.submit(second)
        fired = []

        def on_token(rid, token, logprob):
            if rid == second_id and not fired:
                fired.append(rid)
                engine.cancel(first_id)  # slot 0 already marked survivor

        completions = engine.run(on_token=on_token)
        by_id = {c.request_id: c for c in completions}
        assert by_id[first_id].finish_reason == "cancelled"
        assert len(by_id[first_id].result.tokens) == 1
        ref = greedy_decode(tiny_model, second.prompt, 10)
        assert by_id[second_id].result.tokens == ref.tokens
        # Only the surviving request's rows were decoded: 9 single-row calls
        # (its first token came from prefill logits), none for the freed slot.
        assert engine.stats.decode_call_rows == 9

    def test_cancel_unknown_or_finished_returns_false(self, tiny_model):
        rng = np.random.default_rng(20)
        vocab = tiny_model.config.vocab_size
        engine = InferenceEngine(tiny_model, max_batch_size=1)
        rid = engine.submit(_mk_request(rng, vocab, 3, 1))
        engine.run()
        assert engine.cancel(rid) is False
        assert engine.cancel(999) is False


class TestDeadlines:
    def test_expired_waiting_request_retires(self, tiny_model):
        rng = np.random.default_rng(21)
        vocab = tiny_model.config.vocab_size
        clock = FakeClock(100.0)
        engine = InferenceEngine(tiny_model, max_batch_size=1, clock=clock)
        running = engine.submit(_mk_request(rng, vocab, 3, 6))
        engine.step()
        doomed = engine.submit(_mk_request(rng, vocab, 4, 6), deadline=104.0)
        patient = engine.submit(_mk_request(rng, vocab, 4, 2), timeout=900.0)
        clock.now = 105.0
        completions = engine.run()
        by_id = {c.request_id: c for c in completions}
        assert by_id[doomed].finish_reason == "expired"
        assert by_id[doomed].result.tokens == []
        assert by_id[running].finish_reason == "length"
        assert by_id[patient].finish_reason == "length"
        assert engine.stats.expired == 1

    def test_submit_validation(self, tiny_model):
        engine = InferenceEngine(tiny_model)
        with pytest.raises(ValueError):
            engine.submit(
                Request(prompt=(1,), max_new_tokens=1), deadline=1.0, timeout=1.0
            )
        with pytest.raises(ValueError):
            engine.submit(Request(prompt=(1,), max_new_tokens=1), timeout=-1.0)


class TestLatencyStats:
    def test_queue_wait_and_ttft_iterations(self, tiny_model):
        rng = np.random.default_rng(22)
        vocab = tiny_model.config.vocab_size
        engine = InferenceEngine(tiny_model, max_batch_size=1)
        first = engine.submit(_mk_request(rng, vocab, 3, 3))
        second = engine.submit(_mk_request(rng, vocab, 3, 2))
        engine.run()
        lat_first = engine.latency(first)
        # Admitted (and first token emitted) on the very next step: zero wait.
        assert lat_first.queue_wait_iterations == 0
        assert lat_first.ttft_iterations == 0
        assert lat_first.decode_iterations == 3
        assert lat_first.finish_reason == "length"
        lat_second = engine.latency(second)
        # Waited for the three decode iterations of the first request.
        assert lat_second.queue_wait_iterations == 3
        assert lat_second.ttft_iterations == 3
        assert lat_second.decode_iterations == 2
        assert lat_second.finished_step == lat_second.first_token_step + 1

    def test_completion_carries_latency_record(self, tiny_model):
        rng = np.random.default_rng(23)
        vocab = tiny_model.config.vocab_size
        engine = InferenceEngine(tiny_model)
        (completion,) = engine.run([_mk_request(rng, vocab, 3, 2)])
        assert completion.latency is engine.latency(completion.request_id)
        assert completion.latency.finish_reason == "length"


class TestStreaming:
    def test_engine_on_token_streams_every_token_in_order(self, tiny_model):
        rng = np.random.default_rng(24)
        vocab = tiny_model.config.vocab_size
        requests = [_mk_request(rng, vocab, s, b) for s, b in ((3, 4), (5, 2), (4, 3))]
        engine = InferenceEngine(tiny_model, max_batch_size=2)
        streamed = {}
        completions = engine.run(
            requests,
            on_token=lambda rid, tok, lp: streamed.setdefault(rid, []).append((tok, lp)),
        )
        for completion in completions:
            tokens = [t for t, _ in streamed[completion.request_id]]
            logprobs = [lp for _, lp in streamed[completion.request_id]]
            assert tokens == completion.result.tokens
            assert logprobs == completion.result.logprobs  # bitwise: same floats

    def test_generator_on_token_matches_results(self, tiny_model):
        rng = np.random.default_rng(25)
        vocab = tiny_model.config.vocab_size
        prompts = [rng.integers(0, vocab, size=s) for s in (4, 6)]
        from repro.serving import BatchedGenerator

        streamed = {}
        results = BatchedGenerator(tiny_model).generate(
            prompts,
            3,
            on_token=lambda i, tok, lp: streamed.setdefault(i, []).append(tok),
        )
        for i, result in enumerate(results):
            assert streamed[i] == result.tokens


class TestThreadSafety:
    def test_concurrent_submit_allocates_unique_ids(self, tiny_model):
        """Producers may submit from many threads; ids and latency records
        must never collide (the queue advertises thread-safe producers)."""
        import threading

        rng = np.random.default_rng(29)
        vocab = tiny_model.config.vocab_size
        engine = InferenceEngine(tiny_model, max_batch_size=2)
        ids = []
        lock = threading.Lock()

        def producer():
            local = [
                engine.submit(_mk_request(np.random.default_rng(0), vocab, 3, 1))
                for _ in range(50)
            ]
            with lock:
                ids.extend(local)

        threads = [threading.Thread(target=producer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(ids) == 200 and len(set(ids)) == 200
        assert engine.num_waiting == 200
        assert all(engine.latency(rid).request_id == rid for rid in ids)


class TestDeterminism:
    def _trace(self, model, scheduler, seed):
        """Admission trace of a seeded mixed workload under one policy."""
        rng = np.random.default_rng(seed)
        vocab = model.config.vocab_size
        engine = InferenceEngine(
            model, max_batch_size=2, scheduler=scheduler, clock=FakeClock()
        )
        ids = []
        for _ in range(8):
            size = int(rng.choice((3, 5, 24)))
            budget = int(rng.integers(1, 5))
            priority = int(rng.integers(0, 3))
            ids.append(
                engine.submit(
                    _mk_request(rng, vocab, size, budget), priority=priority
                )
            )
            engine.step()
        engine.run()
        return [
            (
                rid,
                engine.latency(rid).admitted_step,
                engine.latency(rid).first_token_step,
                engine.latency(rid).finished_step,
            )
            for rid in ids
        ]

    @pytest.mark.parametrize(
        "make_scheduler",
        [
            lambda: FIFOScheduler(prefill_chunk_tokens=4),
            lambda: PriorityScheduler(prefill_chunk_tokens=4),
            lambda: PagedScheduler(page_tokens=6),
        ],
    )
    def test_two_runs_produce_identical_admission_traces(
        self, tiny_model, make_scheduler
    ):
        first = self._trace(tiny_model, make_scheduler(), seed=77)
        second = self._trace(tiny_model, make_scheduler(), seed=77)
        assert first == second


class TestBenchWorkloadDeterminism:
    """The seeded bench_scheduler workload reproduces its admission trace."""

    def test_bench_workload_admission_trace_is_deterministic(self, tiny_model):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))
        try:
            from bench_scheduler import make_workload, run_policy
        finally:
            sys.path.pop(0)

        workload_a = make_workload(tiny_model.config.vocab_size, n_requests=10, seed=3)
        workload_b = make_workload(tiny_model.config.vocab_size, n_requests=10, seed=3)
        assert workload_a == workload_b
        result_a = run_policy(tiny_model, PagedScheduler(page_tokens=8), workload_a)
        result_b = run_policy(tiny_model, PagedScheduler(page_tokens=8), workload_b)
        assert result_a["admission_trace"] == result_b["admission_trace"]
        assert result_a["metrics"] == result_b["metrics"]
