"""Integration tests for the scheduler, accelerator, power, GPU and baselines."""

import pytest

from repro.hardware import (
    AcceleratorConfig,
    ARCHITECTURE_COMPARISON,
    DFX,
    FLIGHTLLM,
    FPGAPowerModel,
    GPUDecodeModel,
    LightMambaAccelerator,
    RTX2070,
    RTX4090,
    ResourceUsage,
    ScheduleMode,
    U280,
    VCK190,
    energy_efficiency,
    schedule_block,
)
from repro.hardware.scheduler import BlockPhases
from repro.mamba import get_preset


MODEL_2P7B = get_preset("mamba2-2.7b")


def make_accelerator(**overrides) -> LightMambaAccelerator:
    config = AcceleratorConfig(platform=VCK190).with_overrides(**overrides)
    return LightMambaAccelerator(config, MODEL_2P7B)


class TestScheduler:
    def _phases(self, **overrides):
        defaults = dict(
            in_proj_compute=200.0,
            in_proj_memory=500.0,
            out_proj_compute=100.0,
            out_proj_memory=250.0,
            conv_cycles=20.0,
            ssm_cycles_per_head=40.0,
            ssm_head_overhead=5.0,
            nheads=8,
            htu_cycles=30.0,
        )
        defaults.update(overrides)
        return BlockPhases(**defaults)

    def test_reordering_reduces_latency(self):
        """Fig. 6: the coarse-grained pipeline beats the naive schedule."""
        phases = self._phases()
        naive = schedule_block(phases, ScheduleMode.SEQUENTIAL)
        reordered = schedule_block(phases, ScheduleMode.REORDERED)
        assert reordered.total_cycles < naive.total_cycles

    def test_fine_grained_not_slower_than_reordered(self):
        phases = self._phases()
        reordered = schedule_block(phases, ScheduleMode.REORDERED)
        fine = schedule_block(phases, ScheduleMode.FINE_GRAINED)
        assert fine.total_cycles <= reordered.total_cycles

    def test_reordering_improves_bottleneck_utilisation(self):
        """The paper's 58% -> 96% hardware-utilisation jump, qualitatively."""
        phases = self._phases()
        naive = schedule_block(phases, ScheduleMode.SEQUENTIAL)
        fine = schedule_block(phases, ScheduleMode.FINE_GRAINED)
        assert fine.bottleneck_utilisation > naive.bottleneck_utilisation

    def test_memory_bound_floor(self):
        """No schedule can beat the total weight-streaming time."""
        phases = self._phases()
        for mode in ScheduleMode:
            schedule = schedule_block(phases, mode)
            assert schedule.total_cycles >= phases.total_memory

    def test_compute_bound_case(self):
        """When compute dominates, the makespan is at least the compute time
        of the serial-dependency chain (in_proj -> SSM -> out_proj)."""
        phases = self._phases(in_proj_memory=10.0, out_proj_memory=5.0, other_memory=0.0)
        schedule = schedule_block(phases, ScheduleMode.FINE_GRAINED)
        assert (
            schedule.total_cycles
            >= phases.out_proj_compute + phases.nheads * phases.ssm_cycles_per_head
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            self._phases(nheads=0)
        with pytest.raises(ValueError):
            self._phases(in_proj_compute=-1.0)
        with pytest.raises(ValueError):
            self._phases(dbc_fraction=1.5)


class TestAcceleratorCalibration:
    """The analytic model must land near the published operating points."""

    def test_vck190_w4a4_throughput(self):
        tps = make_accelerator().tokens_per_second()
        assert tps == pytest.approx(7.21, rel=0.15)

    def test_vck190_w8a8_throughput(self):
        tps = make_accelerator(weight_bits=8, act_bits=8).tokens_per_second()
        assert tps == pytest.approx(3.61, rel=0.15)

    def test_u280_throughput(self):
        tps = LightMambaAccelerator(
            AcceleratorConfig(platform=U280), MODEL_2P7B
        ).tokens_per_second()
        assert tps == pytest.approx(93.0, rel=0.15)

    def test_w4a4_faster_than_w8a8_faster_than_fp16(self):
        fp16 = make_accelerator(
            weight_bits=16, act_bits=16, ssm_bits=16, use_rotation=False
        ).tokens_per_second()
        w8 = make_accelerator(weight_bits=8, act_bits=8).tokens_per_second()
        w4 = make_accelerator().tokens_per_second()
        assert fp16 < w8 < w4

    def test_vck190_energy_efficiency_beats_gpus(self):
        """Fig. 9b: LightMamba's tokens/J is several times the GPUs'."""
        fpga = make_accelerator().energy_efficiency()
        gpu2070 = GPUDecodeModel(RTX2070).mamba_result(MODEL_2P7B).energy_efficiency
        gpu4090 = GPUDecodeModel(RTX4090).mamba_result(MODEL_2P7B).energy_efficiency
        assert fpga / gpu2070 > 3.0
        assert fpga / gpu4090 > 3.0

    def test_u280_faster_than_rtx2070(self):
        """Fig. 9a headline: ~1.43x the RTX 2070 throughput."""
        u280 = LightMambaAccelerator(AcceleratorConfig(platform=U280), MODEL_2P7B)
        gpu = GPUDecodeModel(RTX2070).mamba_result(MODEL_2P7B)
        ratio = u280.tokens_per_second() / gpu.tokens_per_second
        assert 1.2 < ratio < 1.8

    def test_resources_fit_platform(self):
        report = make_accelerator().resource_report()
        assert report.total.fits(VCK190)

    def test_report_fields(self):
        report = make_accelerator().report()
        as_dict = report.as_dict()
        assert as_dict["tokens_per_s"] > 0
        assert as_dict["power_w"] > 0
        assert 0 < as_dict["util_dram"] <= 1.0


class TestAblation:
    """Fig. 10: each technique moves throughput / URAM in the right direction."""

    def _tps(self, **overrides):
        return make_accelerator(**overrides).tokens_per_second()

    def test_weight_quant_speeds_up(self):
        fp16 = self._tps(weight_bits=16, act_bits=16, ssm_bits=16, use_rotation=False,
                         schedule=ScheduleMode.SEQUENTIAL)
        w4 = self._tps(weight_bits=4, act_bits=16, ssm_bits=16, use_rotation=False,
                       schedule=ScheduleMode.SEQUENTIAL)
        assert w4 > fp16

    def test_act_quant_speeds_up(self):
        w4a16 = self._tps(weight_bits=4, act_bits=16, ssm_bits=16, use_rotation=False,
                          schedule=ScheduleMode.SEQUENTIAL)
        w4a4 = self._tps(use_rotation=False, schedule=ScheduleMode.SEQUENTIAL)
        assert w4a4 > w4a16

    def test_mm_rotation_costs_throughput(self):
        no_rotation = self._tps(use_rotation=False, schedule=ScheduleMode.SEQUENTIAL)
        mm_rotation = self._tps(use_fht=False, schedule=ScheduleMode.SEQUENTIAL)
        assert mm_rotation < no_rotation * 0.8

    def test_fht_recovers_throughput(self):
        mm_rotation = self._tps(use_fht=False, schedule=ScheduleMode.SEQUENTIAL)
        fht_rotation = self._tps(use_fht=True, schedule=ScheduleMode.SEQUENTIAL)
        assert fht_rotation > mm_rotation * 1.3

    def test_reordering_improves_throughput(self):
        sequential = self._tps(schedule=ScheduleMode.SEQUENTIAL)
        reordered = self._tps(schedule=ScheduleMode.REORDERED)
        assert reordered > sequential * 1.2

    def test_tiling_preserves_throughput_and_cuts_uram(self):
        reordered = make_accelerator(schedule=ScheduleMode.REORDERED)
        fine = make_accelerator(schedule=ScheduleMode.FINE_GRAINED)
        assert fine.tokens_per_second() >= reordered.tokens_per_second() * 0.99
        assert reordered.uram_usage() / fine.uram_usage() > 3.0


class TestPower:
    def test_power_scales_with_frequency(self):
        model = FPGAPowerModel()
        usage = ResourceUsage(lut=100_000, dsp=200, bram=500, uram=60, ff=150_000)
        assert model.power(usage, 400e6) > model.power(usage, 200e6)

    def test_static_floor(self):
        model = FPGAPowerModel()
        assert model.power(ResourceUsage(), 400e6) == pytest.approx(
            model.static_w + model.dram_interface_w
        )

    def test_energy_efficiency_helper(self):
        assert energy_efficiency(7.2, 3.2) == pytest.approx(2.25)
        with pytest.raises(ValueError):
            energy_efficiency(1.0, 0.0)

    def test_vck190_power_in_published_range(self):
        """Table IV implies ~3.2 W board power (7.21 tokens/s, 2.25 tokens/J)."""
        power = make_accelerator().power_w()
        assert 1.5 < power < 5.0


class TestGPUBaselines:
    def test_rtx2070_matches_table4(self):
        result = GPUDecodeModel(RTX2070).mamba_result(MODEL_2P7B)
        assert result.tokens_per_second == pytest.approx(65.0, rel=0.1)
        assert result.energy_efficiency == pytest.approx(0.371, rel=0.1)

    def test_rtx4090_matches_table4(self):
        result = GPUDecodeModel(RTX4090).mamba_result(MODEL_2P7B)
        assert result.tokens_per_second == pytest.approx(138.0, rel=0.1)
        assert result.energy_efficiency == pytest.approx(0.484, rel=0.1)

    def test_mamba_throughput_flat_with_sequence(self):
        model = GPUDecodeModel(RTX2070)
        short = model.decode_tokens_per_second(2.7e9, kv_bytes_per_token=0, sequence_position=128)
        long = model.decode_tokens_per_second(2.7e9, kv_bytes_per_token=0, sequence_position=8192)
        assert short == pytest.approx(long)

    def test_transformer_throughput_decays(self):
        model = GPUDecodeModel(RTX2070)
        kv = 2 * 32 * 4096 * 2.0  # LLaMA2-7B-like cache per token
        short = model.transformer_tokens_per_second(7e9, kv, output_tokens=128)
        long = model.transformer_tokens_per_second(7e9, kv, output_tokens=4096)
        assert long < short

    def test_smaller_model_faster(self):
        model = GPUDecodeModel(RTX4090)
        small = model.mamba_result(get_preset("mamba2-130m"))
        large = model.mamba_result(MODEL_2P7B)
        assert small.tokens_per_second > large.tokens_per_second

    def test_validation(self):
        with pytest.raises(ValueError):
            GPUDecodeModel(RTX2070).decode_tokens_per_second(0)
        with pytest.raises(ValueError):
            GPUDecodeModel(RTX2070).transformer_tokens_per_second(1e9, 100.0, 0)


class TestPriorAccelerators:
    def test_throughput_decays_with_sequence_length(self):
        """Fig. 9a: Transformer accelerators slow down on long outputs."""
        for prior in (FLIGHTLLM, DFX):
            assert prior.tokens_per_second(4096) < prior.tokens_per_second(128)

    def test_lightmamba_u280_wins_at_long_sequences(self):
        u280 = LightMambaAccelerator(AcceleratorConfig(platform=U280), MODEL_2P7B)
        ours = u280.tokens_per_second()
        assert ours > FLIGHTLLM.tokens_per_second(4096)
        assert ours > DFX.tokens_per_second(4096)

    def test_architecture_table_contents(self):
        designs = {row["design"] for row in ARCHITECTURE_COMPARISON}
        assert any("LightMamba" in d for d in designs)
        ours = next(r for r in ARCHITECTURE_COMPARISON if "LightMamba" in r["design"])
        assert ours["bit_precision"] == "W4A4"
        assert ours["mm_parallelism"] == "High"

    def test_validation(self):
        with pytest.raises(ValueError):
            FLIGHTLLM.tokens_per_second(0)


class TestGenerationThroughput:
    def test_flat_with_output_length(self):
        """Fig. 9a: LightMamba throughput is ~flat in output sequence length."""
        acc = make_accelerator()
        short = acc.generation_throughput(output_tokens=128)
        long = acc.generation_throughput(output_tokens=4096)
        assert long == pytest.approx(acc.tokens_per_second(), rel=0.05)
        assert long >= short  # prefill amortises away

    def test_validation(self):
        with pytest.raises(ValueError):
            make_accelerator().generation_throughput(0)
