"""Tests of the chunked prefill fast path through model, eval and serving.

The chunked SSD scan is the default prefill engine (``config.scan_impl ==
"chunked"``); the sequential recurrence stays available as the numerical
oracle.  These tests pin the agreement between the two across every layer
that inherits the fast path: ``forward``, ``prefill`` (logits *and* cache,
including the conv window), padded ragged prefill, segmented prefill
continuation, the padded ragged :class:`BatchedGenerator` prefill and the
engine's chunked-prefill admission mode.
"""

import numpy as np
import pytest

from repro.mamba import InitConfig, Mamba2Model, get_preset, greedy_decode
from repro.mamba.cache import InferenceCache
from repro.serving import BatchedGenerator, InferenceEngine, Request


def _caches_allclose(a: InferenceCache, b: InferenceCache, atol=1e-10):
    for layer_a, layer_b in zip(a.layers, b.layers):
        np.testing.assert_allclose(layer_a.conv_state, layer_b.conv_state, atol=atol)
        np.testing.assert_allclose(layer_a.ssm_state, layer_b.ssm_state, atol=atol)


class TestScanImplSwitch:
    def test_default_is_chunked(self, tiny_model):
        assert tiny_model.config.scan_impl == "chunked"
        assert tiny_model.config.chunk_size >= 1

    @pytest.mark.parametrize("chunk_size", [1, 4, 64, 1000])
    def test_prefill_chunked_matches_sequential(self, tiny_model, chunk_size):
        """Logits and full cache state (conv window included) agree to 1e-10."""
        rng = np.random.default_rng(0)
        prompt = rng.integers(0, tiny_model.config.vocab_size, size=19)
        logits_seq, cache_seq = tiny_model.prefill(prompt, scan_impl="sequential")
        logits_chunk, cache_chunk = tiny_model.prefill(
            prompt, scan_impl="chunked", chunk_size=chunk_size
        )
        np.testing.assert_allclose(logits_chunk, logits_seq, atol=1e-10)
        _caches_allclose(cache_chunk, cache_seq)

    def test_forward_chunked_matches_sequential(self, tiny_model):
        rng = np.random.default_rng(1)
        tokens = rng.integers(0, tiny_model.config.vocab_size, size=33)
        logits_seq = tiny_model.forward(tokens, scan_impl="sequential")
        logits_chunk = tiny_model.forward(tokens, scan_impl="chunked", chunk_size=8)
        np.testing.assert_allclose(logits_chunk, logits_seq, atol=1e-10)

    def test_config_scan_impl_sequential_is_honored(self):
        config = get_preset("mamba2-tiny").with_overrides(scan_impl="sequential")
        model = Mamba2Model.from_config(config, InitConfig(seed=0))
        rng = np.random.default_rng(2)
        tokens = rng.integers(0, config.vocab_size, size=9)
        default = model.forward(tokens)
        explicit = model.forward(tokens, scan_impl="sequential")
        np.testing.assert_array_equal(default, explicit)

    def test_invalid_scan_impl_rejected(self, tiny_model):
        with pytest.raises(ValueError):
            tiny_model.forward(np.arange(4), scan_impl="nope")
        with pytest.raises(ValueError):
            get_preset("mamba2-tiny").with_overrides(scan_impl="nope")
        with pytest.raises(ValueError):
            get_preset("mamba2-tiny").with_overrides(chunk_size=0)


class TestRaggedPaddedPrefill:
    @pytest.mark.parametrize("scan_impl", ["chunked", "sequential"])
    def test_matches_per_request_prefill(self, tiny_model, scan_impl):
        """One padded batched prefill == per-request prefills, row for row."""
        rng = np.random.default_rng(3)
        vocab = tiny_model.config.vocab_size
        lens = np.array([5, 12, 1, 9])
        prompts = [rng.integers(0, vocab, size=n) for n in lens]
        padded = np.zeros((len(prompts), int(lens.max())), dtype=np.int64)
        for i, prompt in enumerate(prompts):
            padded[i, : len(prompt)] = prompt
        logits, cache = tiny_model.prefill(padded, seq_lens=lens, scan_impl=scan_impl)
        for i, prompt in enumerate(prompts):
            logits_i, cache_i = tiny_model.prefill(prompt, scan_impl=scan_impl)
            np.testing.assert_allclose(logits[i], logits_i, atol=1e-10)
            _caches_allclose(cache.row(i), cache_i)

    def test_pad_tokens_do_not_leak(self, tiny_model):
        """Changing the pad contents must not change any valid row state."""
        rng = np.random.default_rng(4)
        vocab = tiny_model.config.vocab_size
        lens = np.array([3, 8])
        padded = rng.integers(0, vocab, size=(2, 8))
        logits_a, cache_a = tiny_model.prefill(padded, seq_lens=lens)
        noisy = padded.copy()
        noisy[0, 3:] = rng.integers(0, vocab, size=5)  # rewrite row 0's padding
        logits_b, cache_b = tiny_model.prefill(noisy, seq_lens=lens)
        np.testing.assert_allclose(logits_a, logits_b, atol=1e-12)
        _caches_allclose(cache_a, cache_b, atol=1e-12)

    def test_seq_lens_validation(self, tiny_model):
        rng = np.random.default_rng(5)
        prompts = rng.integers(0, tiny_model.config.vocab_size, size=(2, 6))
        with pytest.raises(ValueError):
            tiny_model.prefill(prompts[0], seq_lens=np.array([3]))  # unbatched
        with pytest.raises(ValueError):
            tiny_model.prefill(prompts, seq_lens=np.array([3, 7]))  # too long


class TestPrefillContinuation:
    @pytest.mark.parametrize("split", [1, 3, 11])
    def test_segmented_prefill_equals_one_shot(self, tiny_model, split):
        """prefill(a) then prefill(b, cache=...) == prefill(a + b).

        Exercises the conv-window carry across the segment boundary (splits
        smaller than d_conv included).
        """
        rng = np.random.default_rng(6)
        prompt = rng.integers(0, tiny_model.config.vocab_size, size=17)
        ref_logits, ref_cache = tiny_model.prefill(prompt)
        cache = InferenceCache.zeros(tiny_model.config)
        logits = None
        for start in range(0, len(prompt), split):
            logits, _ = tiny_model.prefill(prompt[start : start + split], cache=cache)
        np.testing.assert_allclose(logits, ref_logits, atol=1e-10)
        _caches_allclose(cache, ref_cache)

    def test_cache_batch_mismatch_rejected(self, tiny_model):
        cache = InferenceCache.zeros(tiny_model.config, batch_size=2)
        with pytest.raises(ValueError):
            tiny_model.prefill(np.arange(4), cache=cache)


class TestServingFastPath:
    def test_ragged_generate_uses_one_padded_prefill(self, tiny_model):
        """Ragged prompts must prefill in a single batched model call."""
        model = tiny_model.copy()
        calls = []
        original = model.prefill

        def counting_prefill(tokens, **kwargs):
            calls.append(np.asarray(tokens).shape)
            return original(tokens, **kwargs)

        model.prefill = counting_prefill
        rng = np.random.default_rng(7)
        prompts = [rng.integers(0, model.config.vocab_size, size=n) for n in (5, 9, 5, 7)]
        outs = BatchedGenerator(model).generate(prompts, 3)
        assert calls == [(4, 9)]
        for prompt, out in zip(prompts, outs):
            ref = greedy_decode(tiny_model, prompt, 3)
            assert out.tokens == ref.tokens
            np.testing.assert_allclose(out.logprobs, ref.logprobs, atol=1e-10)

    def test_quantized_ragged_generate_matches_solo(self, tiny_model):
        """The padded ragged path must stay exact for quantized models.

        Per-group / per-token quantization grids are row-independent, so the
        padded batch reproduces each request bit-for-bit.
        """
        from repro.quant import QuantConfig, QuantMethod, quantize_model

        quantized = quantize_model(tiny_model, QuantConfig.w8a8(QuantMethod.LIGHTMAMBA_STAR))
        rng = np.random.default_rng(8)
        prompts = [rng.integers(0, quantized.config.vocab_size, size=n) for n in (4, 7, 2)]
        outs = BatchedGenerator(quantized).generate(prompts, 4)
        for prompt, out in zip(prompts, outs):
            ref = greedy_decode(quantized, prompt, 4)
            assert out.tokens == ref.tokens
            np.testing.assert_allclose(out.logprobs, ref.logprobs, atol=1e-10)

    @pytest.mark.parametrize("prefill_chunk_tokens", [1, 3, 7, None])
    def test_engine_chunked_admission_matches_solo(self, tiny_model, prefill_chunk_tokens):
        rng = np.random.default_rng(9)
        vocab = tiny_model.config.vocab_size
        requests = [
            Request(prompt=tuple(rng.integers(0, vocab, size=s)), max_new_tokens=b)
            for s, b in zip((23, 5, 40, 9), (4, 6, 3, 5))
        ]
        engine = InferenceEngine(
            tiny_model, max_batch_size=2, prefill_chunk_tokens=prefill_chunk_tokens
        )
        completions = engine.run(requests)
        assert [c.request_id for c in completions] == list(range(len(requests)))
        for request, completion in zip(requests, completions):
            ref = greedy_decode(tiny_model, request.prompt, request.max_new_tokens)
            assert completion.result.tokens == ref.tokens
            np.testing.assert_allclose(completion.result.logprobs, ref.logprobs, atol=1e-10)

    def test_engine_bounds_prompt_tokens_per_step(self, tiny_model):
        """A long prompt must spread across iterations, not stall decodes."""
        rng = np.random.default_rng(10)
        vocab = tiny_model.config.vocab_size
        engine = InferenceEngine(tiny_model, max_batch_size=2, prefill_chunk_tokens=4)
        short = Request(prompt=tuple(rng.integers(0, vocab, size=3)), max_new_tokens=8)
        long = Request(prompt=tuple(rng.integers(0, vocab, size=30)), max_new_tokens=2)
        engine.submit(short)
        engine.step()
        assert engine.num_active == 1  # short admitted (3 <= 4 budget tokens)
        engine.submit(long)
        decoded_before = engine.stats.decoded_tokens
        engine.step()
        # The long prompt is mid-prefill, yet the short request kept decoding.
        assert engine.num_prefilling == 1
        assert engine.stats.decoded_tokens > decoded_before
        completions = []
        while engine.has_work:
            completions.extend(engine.step())
        assert engine.stats.prefilled_tokens == 33
        # ceil(30 / 4) chunks for the long prompt + 1 for the short one.
        assert engine.stats.prefill_calls == 9
        for request, completion in zip(
            (short, long), sorted(completions, key=lambda c: c.request_id)
        ):
            ref = greedy_decode(tiny_model, request.prompt, request.max_new_tokens)
            assert completion.result.tokens == ref.tokens

    def test_engine_validation(self, tiny_model):
        with pytest.raises(ValueError):
            InferenceEngine(tiny_model, prefill_chunk_tokens=0)


class TestQuantizedBatchedStepping:
    def test_batched_prefill_matches_per_row(self, tiny_model):
        """The batch-vectorized quantized token loop must be exact per row."""
        from repro.quant import QuantConfig, QuantMethod, quantize_model

        quantized = quantize_model(tiny_model, QuantConfig.w8a8(QuantMethod.LIGHTMAMBA_STAR))
        assert getattr(quantized.blocks[0].ssm_impl, "supports_batched", False)
        rng = np.random.default_rng(11)
        prompts = rng.integers(0, quantized.config.vocab_size, size=(3, 8))
        logits, cache = quantized.prefill(prompts)
        for i in range(3):
            logits_i, cache_i = quantized.prefill(prompts[i])
            np.testing.assert_allclose(logits[i], logits_i, atol=1e-10)
            _caches_allclose(cache.row(i), cache_i)

    def test_ragged_quantized_prefill_matches_per_row(self, tiny_model):
        from repro.quant import QuantConfig, QuantMethod, quantize_model

        quantized = quantize_model(tiny_model, QuantConfig.w8a8(QuantMethod.LIGHTMAMBA_STAR))
        rng = np.random.default_rng(12)
        vocab = quantized.config.vocab_size
        lens = np.array([2, 6, 4])
        padded = rng.integers(0, vocab, size=(3, 6))
        logits, cache = quantized.prefill(padded, seq_lens=lens)
        for i, n in enumerate(lens):
            logits_i, cache_i = quantized.prefill(padded[i, :n])
            np.testing.assert_allclose(logits[i], logits_i, atol=1e-10)
            _caches_allclose(cache.row(i), cache_i)
