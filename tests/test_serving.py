"""Tests of the serving layer: sampling primitives, BatchedGenerator, engine."""

import numpy as np
import pytest

from repro.mamba import greedy_decode, sample_decode
from repro.mamba.sampling import greedy_select, log_softmax, sample_select, top_k_filter
from repro.serving import BatchedGenerator, EngineStats, InferenceEngine, Request


class TestSamplingPrimitives:
    def test_log_softmax_matches_reference(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(3, 11)) * 5
        lp = log_softmax(logits)
        ref = np.log(np.exp(logits) / np.sum(np.exp(logits), axis=-1, keepdims=True))
        np.testing.assert_allclose(lp, ref, atol=1e-12)
        np.testing.assert_allclose(np.sum(np.exp(lp), axis=-1), 1.0, atol=1e-12)

    def test_log_softmax_no_small_probability_bias(self):
        """Extreme logits keep exact log-probabilities (no +eps bias)."""
        logits = np.array([0.0, -800.0])
        lp = log_softmax(logits)
        assert lp[1] == pytest.approx(-800.0, abs=1e-9)

    def test_top_k_keeps_exactly_k_with_ties(self):
        """Ties at the k-th logit must not inflate the candidate set."""
        logits = np.array([1.0, 3.0, 2.0, 2.0, 2.0, 0.5])
        out = top_k_filter(logits, 3)
        kept = np.where(np.isfinite(out))[0]
        assert list(kept) == [1, 2, 3]  # best, then tied values by token id
        np.testing.assert_allclose(out[kept], logits[kept], atol=0)

    def test_top_k_all_equal(self):
        out = top_k_filter(np.zeros(10), 4)
        assert np.sum(np.isfinite(out)) == 4
        assert list(np.where(np.isfinite(out))[0]) == [0, 1, 2, 3]

    def test_top_k_batched_rows_independent(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(5, 16))
        out = top_k_filter(logits, 3)
        assert np.all(np.sum(np.isfinite(out), axis=-1) == 3)
        for i in range(5):
            np.testing.assert_allclose(out[i], top_k_filter(logits[i], 3), atol=0)

    def test_top_k_ge_vocab_is_identity(self):
        logits = np.arange(6.0)
        np.testing.assert_allclose(top_k_filter(logits, 6), logits, atol=0)

    def test_top_k_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            top_k_filter(np.zeros(4), 0)

    def test_greedy_select_logprob_is_log_softmax(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(4, 9))
        tokens, logprobs = greedy_select(logits)
        np.testing.assert_array_equal(tokens, np.argmax(logits, axis=-1))
        lp = log_softmax(logits)
        np.testing.assert_allclose(
            logprobs, lp[np.arange(4), tokens], atol=1e-12
        )

    def test_sample_select_respects_top_k(self):
        rng = np.random.default_rng(3)
        logits = rng.normal(size=(2, 32))
        rngs = [np.random.default_rng(i) for i in range(2)]
        allowed = np.argsort(-logits, axis=-1, kind="stable")[:, :4]
        for _ in range(50):
            tokens, logprobs = sample_select(logits, rngs, temperature=1.3, top_k=4)
            for row in range(2):
                assert tokens[row] in allowed[row]
            assert np.all(np.isfinite(logprobs))

    def test_sample_select_validation(self):
        logits = np.zeros((2, 8))
        rngs = [np.random.default_rng(0)]
        with pytest.raises(ValueError):
            sample_select(logits, rngs)  # rng count mismatch
        with pytest.raises(ValueError):
            sample_select(logits, rngs * 2, temperature=0.0)


class TestBatchedGenerator:
    def _prompts(self, model, sizes, seed=0):
        rng = np.random.default_rng(seed)
        return [rng.integers(0, model.config.vocab_size, size=s) for s in sizes]

    def test_greedy_matches_single_sequence(self, tiny_model):
        """Ragged prompts, stops and budgets must match per-request decode.

        Prompt lengths (5, 9, 5, 7) include a repeated length, exercising the
        grouped ragged prefill (one batched model call per length).
        """
        prompts = self._prompts(tiny_model, (5, 9, 5, 7))
        budgets = [6, 3, 8, 5]
        stops = [None, 2, 10, None]
        gen = BatchedGenerator(tiny_model)
        outs = gen.generate(prompts, budgets, stop_tokens=stops)
        for prompt, budget, stop, out in zip(prompts, budgets, stops, outs):
            ref = greedy_decode(tiny_model, prompt, budget, stop_token=stop)
            assert out.tokens == ref.tokens
            np.testing.assert_allclose(out.logprobs, ref.logprobs, atol=1e-10)
            assert out.prompt == ref.prompt

    def test_equal_length_prompts_use_batched_prefill(self, tiny_model):
        prompts = self._prompts(tiny_model, (6, 6, 6))
        gen = BatchedGenerator(tiny_model)
        outs = gen.generate(prompts, 4)
        for prompt, out in zip(prompts, outs):
            ref = greedy_decode(tiny_model, prompt, 4)
            assert out.tokens == ref.tokens
            np.testing.assert_allclose(out.logprobs, ref.logprobs, atol=1e-10)

    def test_ragged_stop_token_termination(self, tiny_model):
        """A request stopping early must not perturb the others."""
        prompts = self._prompts(tiny_model, (4, 4, 4), seed=3)
        solo = [greedy_decode(tiny_model, p, 10) for p in prompts]
        # Pick a stop token that fires early for request 1 only.
        stop = solo[1].tokens[1]
        stops = [None, stop, None]
        outs = BatchedGenerator(tiny_model).generate(prompts, 10, stop_tokens=stops)
        for prompt, s, out in zip(prompts, stops, outs):
            ref = greedy_decode(tiny_model, prompt, 10, stop_token=s)
            assert out.tokens == ref.tokens
        assert outs[1].tokens[-1] == stop
        assert len(outs[1]) < len(outs[0])

    def test_sampling_matches_single_sequence_with_seeds(self, tiny_model):
        prompts = self._prompts(tiny_model, (5, 8, 6), seed=4)
        seeds = [101, 202, 303]
        outs = BatchedGenerator(tiny_model).generate(
            prompts, 7, temperature=0.8, top_k=16, seeds=seeds
        )
        for prompt, s, out in zip(prompts, seeds, outs):
            ref = sample_decode(
                tiny_model, prompt, 7, temperature=0.8, top_k=16, seed=s
            )
            assert out.tokens == ref.tokens
            np.testing.assert_allclose(out.logprobs, ref.logprobs, atol=1e-10)

    def test_zero_budget_and_empty_batch(self, tiny_model):
        gen = BatchedGenerator(tiny_model)
        assert gen.generate([], 5) == []
        outs = gen.generate(self._prompts(tiny_model, (4, 4)), [0, 3])
        assert outs[0].tokens == []
        assert len(outs[1].tokens) == 3

    def test_validation(self, tiny_model):
        gen = BatchedGenerator(tiny_model)
        with pytest.raises(ValueError):
            gen.generate([[]], 3)
        with pytest.raises(ValueError):
            gen.generate([[1], [2]], [3])  # budget length mismatch
        with pytest.raises(ValueError):
            gen.generate([[1]], 3, temperature=0.0)
        with pytest.raises(ValueError):
            gen.generate([[1]], 3, temperature=1.0, seeds=[1, 2])
        with pytest.raises(ValueError):
            gen.generate([[1]], 3, top_k=4)  # sampling option without temperature
        with pytest.raises(ValueError):
            Request(prompt=(1,), max_new_tokens=1, seed=3)  # seed without temperature


class TestInferenceEngine:
    def _requests(self, model, seed=0):
        rng = np.random.default_rng(seed)
        sizes = (5, 9, 3, 7, 4, 6)
        budgets = (6, 3, 8, 5, 7, 4)
        return [
            Request(
                prompt=tuple(rng.integers(0, model.config.vocab_size, size=s)),
                max_new_tokens=b,
            )
            for s, b in zip(sizes, budgets)
        ]

    def test_continuous_batching_matches_single_sequence(self, tiny_model):
        """More requests than slots; all results must match solo decodes."""
        requests = self._requests(tiny_model)
        engine = InferenceEngine(tiny_model, max_batch_size=2)
        completions = engine.run(requests)
        assert [c.request_id for c in completions] == list(range(len(requests)))
        for request, completion in zip(requests, completions):
            ref = greedy_decode(
                tiny_model, request.prompt, request.max_new_tokens
            )
            assert completion.result.tokens == ref.tokens
            np.testing.assert_allclose(completion.result.logprobs, ref.logprobs, atol=1e-10)

    def test_slot_reuse_and_stats(self, tiny_model):
        requests = self._requests(tiny_model)
        engine = InferenceEngine(tiny_model, max_batch_size=2)
        engine.run(requests)
        stats = engine.stats
        assert stats.admitted == stats.completed == len(requests)
        assert stats.decoded_tokens == sum(r.max_new_tokens for r in requests)
        # Slots were shared: strictly fewer decode calls than decoded tokens
        # (each call advances up to max_batch_size requests, and the final
        # token of every request comes from already-pending logits).
        assert stats.decode_calls < stats.decoded_tokens
        assert stats.tokens_per_decode_call > 1.0

    def test_mixed_greedy_and_sampled_requests(self, tiny_model):
        rng = np.random.default_rng(5)
        vocab = tiny_model.config.vocab_size
        greedy_req = Request(prompt=tuple(rng.integers(0, vocab, size=5)), max_new_tokens=6)
        sampled_req = Request(
            prompt=tuple(rng.integers(0, vocab, size=7)),
            max_new_tokens=4,
            temperature=0.9,
            top_k=8,
            seed=42,
        )
        completions = InferenceEngine(tiny_model, max_batch_size=2).run(
            [greedy_req, sampled_req]
        )
        ref_g = greedy_decode(tiny_model, greedy_req.prompt, 6)
        ref_s = sample_decode(
            tiny_model, sampled_req.prompt, 4, temperature=0.9, top_k=8, seed=42
        )
        assert completions[0].result.tokens == ref_g.tokens
        assert completions[1].result.tokens == ref_s.tokens

    def test_stop_token_retires_request(self, tiny_model):
        rng = np.random.default_rng(6)
        prompt = tuple(rng.integers(0, tiny_model.config.vocab_size, size=5))
        free_run = greedy_decode(tiny_model, prompt, 10)
        stop = free_run.tokens[2]
        engine = InferenceEngine(tiny_model, max_batch_size=1)
        completions = engine.run([Request(prompt=prompt, max_new_tokens=10, stop_token=stop)])
        assert completions[0].result.tokens[-1] == stop
        assert len(completions[0].result.tokens) <= len(free_run.tokens)

    def test_incremental_submission(self, tiny_model):
        """Requests submitted while the engine is running are picked up."""
        rng = np.random.default_rng(7)
        vocab = tiny_model.config.vocab_size
        engine = InferenceEngine(tiny_model, max_batch_size=2)
        first = Request(prompt=tuple(rng.integers(0, vocab, size=4)), max_new_tokens=6)
        engine.submit(first)
        done = engine.step()
        assert done == [] and engine.num_active == 1
        late = Request(prompt=tuple(rng.integers(0, vocab, size=5)), max_new_tokens=2)
        engine.submit(late)
        completions = []
        while engine.has_work:
            completions.extend(engine.step())
        assert {c.request_id for c in completions} == {0, 1}
        ref = greedy_decode(tiny_model, late.prompt, 2)
        late_result = next(c for c in completions if c.request_id == 1)
        assert late_result.result.tokens == ref.tokens

    def test_zero_budget_request_completes_immediately(self, tiny_model):
        engine = InferenceEngine(tiny_model, max_batch_size=1)
        completions = engine.run([Request(prompt=(1, 2), max_new_tokens=0)])
        assert completions[0].result.tokens == []

    def test_tokens_per_decode_call_guards_zero_decode_calls(self, tiny_model):
        """No decode calls must report 0.0 occupancy, not divide by zero."""
        assert EngineStats().tokens_per_decode_call == 0.0
        # An engine that only ever served zero-budget requests never issues a
        # batched decode call either.
        engine = InferenceEngine(tiny_model, max_batch_size=1)
        engine.run([Request(prompt=(1, 2), max_new_tokens=0)])
        assert engine.stats.decode_calls == 0
        assert engine.stats.tokens_per_decode_call == 0.0

    def test_validation(self, tiny_model):
        with pytest.raises(ValueError):
            InferenceEngine(tiny_model, max_batch_size=0)
        with pytest.raises(ValueError):
            Request(prompt=(), max_new_tokens=3)
        with pytest.raises(ValueError):
            Request(prompt=(1,), max_new_tokens=-1)
        with pytest.raises(ValueError):
            Request(prompt=(1,), max_new_tokens=1, temperature=-0.5)
        engine = InferenceEngine(tiny_model)
        with pytest.raises(ValueError):
            engine.submit(Request(prompt=(10**9,), max_new_tokens=1))
        # A rejected submit must not consume a request id (ids drive the
        # default per-request sampling seeds).
        assert engine.submit(Request(prompt=(1,), max_new_tokens=1)) == 0
