"""Tests for the rotation-assisted quantization transformation (Fig. 4a)."""

import numpy as np
import pytest

from repro.mamba import InitConfig, Mamba2Model, get_preset
from repro.quant import (
    OnlineHadamard,
    RotationConfig,
    rotate_model,
    rtn_quantize_weight,
)
from repro.quant.error import relative_error
from repro.quant.rtn import rtn_quantize_activation


@pytest.fixture(scope="module")
def model():
    return Mamba2Model.from_config(get_preset("mamba2-tiny"), InitConfig(seed=3))


@pytest.fixture(scope="module")
def tokens(model):
    rng = np.random.default_rng(0)
    return rng.integers(0, model.config.vocab_size, size=24)


class TestEquivalence:
    def test_rotated_model_matches_original_logits(self, model, tokens):
        """The fused-and-rotated FP model must be numerically equivalent."""
        rotated = rotate_model(model, RotationConfig(seed=1))
        base_logits = model.forward(tokens)
        rot_logits = rotated.model.forward(tokens)
        np.testing.assert_allclose(rot_logits, base_logits, rtol=1e-6, atol=1e-6)

    def test_equivalence_with_fused_gated_norm(self, model, tokens):
        """The 'fuse and rotate' variant of Fig. 4b is also exact in FP."""
        rotated = rotate_model(model, RotationConfig(seed=1, fuse_gated_norm=True))
        np.testing.assert_allclose(
            rotated.model.forward(tokens), model.forward(tokens), rtol=1e-6, atol=1e-6
        )

    def test_equivalence_without_online_hadamard(self, model, tokens):
        rotated = rotate_model(model, RotationConfig(seed=2, online_hadamard=False))
        np.testing.assert_allclose(
            rotated.model.forward(tokens), model.forward(tokens), rtol=1e-6, atol=1e-6
        )

    def test_equivalence_in_decode(self, model):
        """Equivalence must also hold on the single-token decode path."""
        rotated = rotate_model(model, RotationConfig(seed=4)).model
        prompt = np.array([3, 7, 11, 2])
        logits_a, cache_a = model.prefill(prompt)
        logits_b, cache_b = rotated.prefill(prompt)
        np.testing.assert_allclose(logits_b, logits_a, rtol=1e-6, atol=1e-6)
        step_a = model.step(5, cache_a)
        step_b = rotated.step(5, cache_b)
        np.testing.assert_allclose(step_b, step_a, rtol=1e-6, atol=1e-6)

    def test_original_model_untouched(self, model, tokens):
        before = model.blocks[0].in_proj_weight.copy()
        rotate_model(model, RotationConfig(seed=5))
        np.testing.assert_array_equal(model.blocks[0].in_proj_weight, before)

    def test_rotation_matrix_is_orthogonal(self, model):
        rotated = rotate_model(model, RotationConfig(seed=6))
        q = rotated.residual_rotation
        np.testing.assert_allclose(q @ q.T, np.eye(q.shape[0]), atol=1e-9)

    def test_norm_scales_are_split_off(self, model):
        rotated = rotate_model(model, RotationConfig(seed=7)).model
        for block in rotated.blocks:
            np.testing.assert_allclose(block.norm.weight, 1.0)
        np.testing.assert_allclose(rotated.norm_f.weight, 1.0)
        assert rotated.lm_head_weight is not None  # rotated model is untied

    def test_online_hook_installed(self, model):
        rotated = rotate_model(model, RotationConfig(seed=8))
        for block, dim in zip(rotated.model.blocks, rotated.online_dims):
            assert isinstance(block.pre_out_proj, OnlineHadamard)
            assert dim == model.config.d_inner


class TestOutlierRemoval:
    def _out_proj_inputs(self, m, tokens):
        collect = []
        m.forward(tokens, collect=collect)
        # The activation actually seen by the out-proj matmul includes the
        # online rotation when present.
        acts = []
        for block, layer_acts in zip(m.blocks, collect):
            acts.append(block.pre_out_proj(layer_acts["out_proj_input"]))
        return acts

    def test_rotation_reduces_activation_outliers(self, model, tokens):
        """Rotation amortises the scattered out-proj outliers (Fig. 2)."""
        rotated = rotate_model(model, RotationConfig(seed=9)).model
        base_acts = self._out_proj_inputs(model, tokens)
        rot_acts = self._out_proj_inputs(rotated, tokens)

        def peak_to_rms(acts):
            stacked = np.concatenate([a.reshape(-1, a.shape[-1]) for a in acts])
            rms = np.sqrt(np.mean(stacked**2))
            return np.max(np.abs(stacked)) / rms

        assert peak_to_rms(rot_acts) < peak_to_rms(base_acts)

    def test_rotation_reduces_activation_quant_error(self, model, tokens):
        """4-bit quantization error of the out-proj activation drops (Table II)."""
        rotated = rotate_model(model, RotationConfig(seed=10)).model
        base_acts = np.concatenate(self._out_proj_inputs(model, tokens))
        rot_acts = np.concatenate(self._out_proj_inputs(rotated, tokens))
        err_base = relative_error(base_acts, rtn_quantize_activation(base_acts, 4, group_size=32))
        err_rot = relative_error(rot_acts, rtn_quantize_activation(rot_acts, 4, group_size=32))
        assert err_rot < err_base

    def test_rotation_reduces_weight_quant_error(self, model):
        """Rotated input-projection weights quantize with lower error."""
        base_err, rot_err = [], []
        rotated = rotate_model(model, RotationConfig(seed=11)).model
        for orig_block, rot_block in zip(model.blocks, rotated.blocks):
            w0 = orig_block.in_proj_weight
            w1 = rot_block.in_proj_weight
            base_err.append(relative_error(w0, rtn_quantize_weight(w0, 4, 32)))
            rot_err.append(relative_error(w1, rtn_quantize_weight(w1, 4, 32)))
        assert np.mean(rot_err) < np.mean(base_err) * 1.05

    def test_fuse_gated_norm_increases_out_proj_weight_error(self, model):
        """Fig. 4b: fusing the gated-norm scale hurts weight quantization.

        The gated-norm scale is heavy-tailed in real checkpoints; multiplying
        it into the output-projection weight inflates the weight's dynamic
        range, so the absolute 4-bit quantization error of that weight grows
        ("fuse and rotate" sits above "only rotate" in Fig. 4b).
        """
        from repro.quant.error import quantization_error

        # Make the effect visible with a heavy-tailed gated-norm scale, as in
        # real checkpoints.
        skewed = model.copy()
        rng = np.random.default_rng(0)
        for block in skewed.blocks:
            block.gated_norm.weight = block.gated_norm.weight * rng.lognormal(
                0.0, 1.5, size=block.gated_norm.weight.shape
            )
        not_fused = rotate_model(skewed, RotationConfig(seed=12, fuse_gated_norm=False)).model
        fused = rotate_model(skewed, RotationConfig(seed=12, fuse_gated_norm=True)).model
        err_not_fused, err_fused = [], []
        for a, b in zip(not_fused.blocks, fused.blocks):
            err_not_fused.append(
                quantization_error(a.out_proj_weight, rtn_quantize_weight(a.out_proj_weight, 4, 32))
            )
            err_fused.append(
                quantization_error(b.out_proj_weight, rtn_quantize_weight(b.out_proj_weight, 4, 32))
            )
        assert np.mean(err_fused) > np.mean(err_not_fused)


class TestOnlineHadamard:
    def test_hook_matches_matrix_rotation(self):
        hook = OnlineHadamard(128)
        x = np.random.default_rng(0).normal(size=(3, 128))
        from repro.quant.hadamard import hadamard_matrix

        np.testing.assert_allclose(
            hook(x), x @ hadamard_matrix(128, normalized=True), atol=1e-9
        )

    def test_hook_supports_single_token(self):
        hook = OnlineHadamard(64)
        x = np.random.default_rng(1).normal(size=64)
        assert hook(x).shape == (64,)
