"""Outlier Suppression+ (OS+) re-implemented for Mamba linear layers.

OS+ (Wei et al., 2023) removes activation asymmetry with a per-channel *shift*
and then migrates the remaining range with a per-channel *scale*::

    z_j = (max_j + min_j) / 2                         # channel shift
    s_j = ((max_j - min_j) / 2)^alpha / max|W_j|^(1-alpha)
    X'  = (X - z) / s
    W'  = W * s
    b'  = b + z W^T                                   # shift compensation bias

The compensation bias keeps the layer output mathematically identical.  As
with SmoothQuant, the per-channel statistics are computed on a calibration
set; with Mamba's scattered outliers the calibrated channel ranges do not
match the channels where outliers appear at evaluation time, which is why the
paper observes OS+ collapsing at W4A4 (Table II / Table III).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["OSPlusConfig", "compute_shift_and_scale", "apply_shift_and_scale"]


@dataclass(frozen=True)
class OSPlusConfig:
    """Settings of the Outlier Suppression+ transformation."""

    alpha: float = 0.5
    min_scale: float = 1e-5

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if self.min_scale <= 0:
            raise ValueError("min_scale must be positive")


def compute_shift_and_scale(
    act_min: np.ndarray,
    act_max: np.ndarray,
    weight: np.ndarray,
    config: OSPlusConfig = OSPlusConfig(),
) -> tuple[np.ndarray, np.ndarray]:
    """Compute the OS+ per-channel shift ``z`` and scale ``s``.

    Parameters
    ----------
    act_min, act_max:
        Per-channel minima / maxima of the layer input over the calibration
        set, shape ``(in_features,)``.
    weight:
        Layer weight of shape ``(out_features, in_features)``.
    """
    act_min = np.asarray(act_min, dtype=np.float64)
    act_max = np.asarray(act_max, dtype=np.float64)
    weight = np.asarray(weight, dtype=np.float64)
    if act_min.shape != act_max.shape:
        raise ValueError("act_min and act_max must have the same shape")
    if weight.ndim != 2 or weight.shape[1] != act_min.shape[0]:
        raise ValueError(
            "weight must have shape (out_features, in_features) matching the stats"
        )
    shift = (act_max + act_min) / 2.0
    half_range = np.maximum((act_max - act_min) / 2.0, config.min_scale)
    w_absmax = np.maximum(np.max(np.abs(weight), axis=0), config.min_scale)
    scale = np.power(half_range, config.alpha) / np.power(w_absmax, 1.0 - config.alpha)
    return shift, np.maximum(scale, config.min_scale)


def apply_shift_and_scale(
    activation: np.ndarray,
    weight: np.ndarray,
    shift: np.ndarray,
    scale: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Apply the OS+ transformation to an (activation, weight) pair.

    Returns ``(activation', weight', bias_compensation)`` with
    ``activation' = (activation - shift) / scale``, ``weight' = weight * scale``
    and ``bias_compensation = shift @ weight.T`` so that
    ``activation' @ weight'.T + bias_compensation == activation @ weight.T``.
    """
    activation = np.asarray(activation, dtype=np.float64)
    weight = np.asarray(weight, dtype=np.float64)
    shift = np.asarray(shift, dtype=np.float64)
    scale = np.asarray(scale, dtype=np.float64)
    if weight.shape[1] != shift.shape[0] or weight.shape[1] != scale.shape[0]:
        raise ValueError("shift/scale must have one entry per weight input channel")
    new_act = (activation - shift) / scale
    new_weight = weight * scale
    bias = shift @ weight.T
    return new_act, new_weight, bias
