"""Post-training quantization stack for Mamba.

This package implements the algorithm side of LightMamba (Sec. IV of the
paper) together with the prior-art baselines it compares against:

- :mod:`repro.quant.quantizer` -- symmetric integer quantizers with
  per-tensor / per-channel / per-token / per-group granularity.
- :mod:`repro.quant.rtn` -- round-to-nearest weight/activation quantization.
- :mod:`repro.quant.smoothquant` -- SmoothQuant channel-wise scaling.
- :mod:`repro.quant.outlier_suppression` -- Outlier Suppression+ channel-wise
  shifting and scaling.
- :mod:`repro.quant.hadamard` -- Hadamard matrix construction (Sylvester,
  Paley I/II, Kronecker composition) and the fast Walsh-Hadamard transform.
- :mod:`repro.quant.rotation` -- the rotation-assisted quantization of
  Fig. 4a, with all five fusion points and the online Hadamard transform.
- :mod:`repro.quant.pot` -- power-of-two scale quantization used for the SSM.
- :mod:`repro.quant.ssm_quant` -- the fully quantized SSM step and its
  chunk-parallel prefill scan (LightMamba*).
- :mod:`repro.quant.qlinear` / :mod:`repro.quant.qmodel` -- quantized linear
  layers and whole-model assembly for every method / bit-width combination.
- :mod:`repro.quant.calibration` -- activation-statistics collection.
"""

from repro.quant.dtypes import IntSpec, INT4, INT8, INT16, Granularity
from repro.quant.quantizer import (
    QuantizerConfig,
    QuantizedTensor,
    compute_scales,
    quantize,
    dequantize,
    quantize_dequantize,
)
from repro.quant.observers import AbsMaxObserver, MinMaxObserver, PercentileObserver
from repro.quant.error import quantization_error, relative_error, sqnr_db
from repro.quant.rtn import rtn_quantize_weight, rtn_quantize_activation
from repro.quant.smoothquant import SmoothQuantConfig, compute_smoothing_scales
from repro.quant.outlier_suppression import OSPlusConfig, compute_shift_and_scale
from repro.quant.hadamard import (
    hadamard_matrix,
    is_hadamard,
    fast_hadamard_transform,
    random_hadamard_matrix,
    randomized_hadamard,
)
from repro.quant.pot import (
    pot_quantize_scale,
    pot_quantize_dequantize,
    pot_exponent,
    absmax_requant_exponents,
    shift_requantize,
)
from repro.quant.rotation import RotationConfig, RotatedModel, rotate_model, OnlineHadamard
from repro.quant.ssm_quant import SSMQuantConfig, QuantizedSSMStep, QuantizedChunkedScan
from repro.quant.qlinear import QuantizedLinear, grouped_integer_matmul
from repro.quant.qmodel import QuantMethod, QuantConfig, quantize_model
from repro.quant.calibration import CalibrationResult, collect_activation_stats

__all__ = [
    "IntSpec",
    "INT4",
    "INT8",
    "INT16",
    "Granularity",
    "QuantizerConfig",
    "QuantizedTensor",
    "compute_scales",
    "quantize",
    "dequantize",
    "quantize_dequantize",
    "AbsMaxObserver",
    "MinMaxObserver",
    "PercentileObserver",
    "quantization_error",
    "relative_error",
    "sqnr_db",
    "rtn_quantize_weight",
    "rtn_quantize_activation",
    "SmoothQuantConfig",
    "compute_smoothing_scales",
    "OSPlusConfig",
    "compute_shift_and_scale",
    "hadamard_matrix",
    "is_hadamard",
    "fast_hadamard_transform",
    "random_hadamard_matrix",
    "randomized_hadamard",
    "pot_quantize_scale",
    "pot_quantize_dequantize",
    "pot_exponent",
    "absmax_requant_exponents",
    "shift_requantize",
    "RotationConfig",
    "RotatedModel",
    "rotate_model",
    "OnlineHadamard",
    "SSMQuantConfig",
    "QuantizedSSMStep",
    "QuantizedChunkedScan",
    "QuantizedLinear",
    "grouped_integer_matmul",
    "QuantMethod",
    "QuantConfig",
    "quantize_model",
    "CalibrationResult",
    "collect_activation_stats",
]
