"""Quantization-error metrics.

Table II of the paper reports the "4-bit quantization error of the activation
in the out project layer" for different PTQ methods; the metric here is the
mean per-token L2 error between the original and the quantize-dequantized
activation, which ranks methods the same way and has the same units as the
activation itself.
"""

from __future__ import annotations

import numpy as np

__all__ = ["quantization_error", "relative_error", "sqnr_db", "mse"]


def _check(original: np.ndarray, reconstructed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    if original.shape != reconstructed.shape:
        raise ValueError(
            f"shape mismatch: {original.shape} vs {reconstructed.shape}"
        )
    return original, reconstructed


def mse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean squared error."""
    original, reconstructed = _check(original, reconstructed)
    return float(np.mean((original - reconstructed) ** 2))


def quantization_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean per-token L2 error (the Table II metric).

    For a 2-d activation ``(tokens, channels)`` this is the mean over tokens
    of ``||x_t - q(x_t)||_2``; 1-d inputs are treated as a single token.
    """
    original, reconstructed = _check(original, reconstructed)
    diff = original - reconstructed
    if diff.ndim == 1:
        diff = diff[None, :]
    else:
        diff = diff.reshape(-1, diff.shape[-1])
    return float(np.mean(np.linalg.norm(diff, axis=-1)))


def relative_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Frobenius-norm relative error ``||x - q(x)|| / ||x||``."""
    original, reconstructed = _check(original, reconstructed)
    denom = np.linalg.norm(original)
    if denom == 0:
        return 0.0 if np.linalg.norm(reconstructed) == 0 else np.inf
    return float(np.linalg.norm(original - reconstructed) / denom)


def sqnr_db(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Signal-to-quantization-noise ratio in dB (higher is better)."""
    original, reconstructed = _check(original, reconstructed)
    noise = np.sum((original - reconstructed) ** 2)
    signal = np.sum(original**2)
    if noise == 0:
        return np.inf
    if signal == 0:
        return -np.inf
    return float(10.0 * np.log10(signal / noise))
