"""Integer type specifications and quantization granularities."""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["IntSpec", "INT4", "INT8", "INT16", "Granularity"]


@dataclass(frozen=True)
class IntSpec:
    """A signed integer format used as a quantization target.

    Symmetric quantization maps real values onto ``[-qmax, qmax]`` where
    ``qmax = 2**(bits - 1) - 1`` (the most negative code is left unused so the
    grid is symmetric, matching standard LLM PTQ practice).
    """

    bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.bits < 2 or self.bits > 32:
            raise ValueError(f"bits must be in [2, 32], got {self.bits}")
        if not self.signed:
            raise ValueError("only signed symmetric formats are supported")

    @property
    def qmax(self) -> int:
        """Largest representable code."""
        return 2 ** (self.bits - 1) - 1

    @property
    def qmin(self) -> int:
        """Smallest code used by symmetric quantization."""
        return -self.qmax

    @property
    def num_levels(self) -> int:
        """Number of codes in the symmetric grid."""
        return 2 * self.qmax + 1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"INT{self.bits}"


INT4 = IntSpec(4)
INT8 = IntSpec(8)
INT16 = IntSpec(16)


class Granularity(str, enum.Enum):
    """Scale-sharing granularity of a quantizer.

    - ``PER_TENSOR``: a single scale for the whole tensor.
    - ``PER_CHANNEL``: one scale per output channel (weight rows); the paper's
      W8A8 weight scheme.
    - ``PER_TOKEN``: one scale per token (activation rows); the paper's W8A8
      activation scheme.
    - ``PER_GROUP``: one scale per contiguous group of ``group_size`` elements
      along the reduction dimension; the paper's W4A4 scheme (group size 128).
    """

    PER_TENSOR = "per_tensor"
    PER_CHANNEL = "per_channel"
    PER_TOKEN = "per_token"
    PER_GROUP = "per_group"
