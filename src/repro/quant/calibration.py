"""Calibration: activation-statistics collection over a sample corpus.

The paper calibrates SmoothQuant / OS+ / LightMamba with 128 random WikiText2
sequences; this module runs the model over a list of token sequences and
accumulates, per layer, the observers every method needs:

- per-channel absolute maxima of the input-projection and output-projection
  inputs (SmoothQuant);
- per-channel minima / maxima of the same activations (Outlier Suppression+);
- optionally the raw activation samples (bounded), used by Table II / Fig. 2
  to measure quantization error on held-out data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.mamba.model import Mamba2Model
from repro.quant.observers import AbsMaxObserver, MinMaxObserver

__all__ = ["CalibrationResult", "collect_activation_stats"]

#: Activation names captured per block (keys of the block ``collect`` dict).
CALIBRATED_ACTIVATIONS = ("in_proj_input", "out_proj_input")


@dataclass
class CalibrationResult:
    """Per-layer activation statistics gathered over the calibration set."""

    num_layers: int
    num_tokens: int
    absmax: Dict[str, List[np.ndarray]]
    minimum: Dict[str, List[np.ndarray]]
    maximum: Dict[str, List[np.ndarray]]
    samples: Dict[str, List[np.ndarray]] = field(default_factory=dict)

    def in_proj_absmax(self, layer: int) -> np.ndarray:
        return self.absmax["in_proj_input"][layer]

    def out_proj_absmax(self, layer: int) -> np.ndarray:
        return self.absmax["out_proj_input"][layer]

    def in_proj_minmax(self, layer: int) -> tuple[np.ndarray, np.ndarray]:
        return self.minimum["in_proj_input"][layer], self.maximum["in_proj_input"][layer]

    def out_proj_minmax(self, layer: int) -> tuple[np.ndarray, np.ndarray]:
        return self.minimum["out_proj_input"][layer], self.maximum["out_proj_input"][layer]

    def sample(self, name: str, layer: int) -> np.ndarray:
        """Concatenated stored activations for one layer (if collected)."""
        if name not in self.samples:
            raise KeyError(f"no samples stored for '{name}'")
        return self.samples[name][layer]


def collect_activation_stats(
    model: Mamba2Model,
    sequences: Sequence[np.ndarray],
    store_samples: bool = False,
    max_stored_tokens: int = 2048,
) -> CalibrationResult:
    """Run ``model`` over ``sequences`` and accumulate per-layer statistics.

    Parameters
    ----------
    model:
        The floating-point model to calibrate.
    sequences:
        Iterable of 1-d integer token arrays.
    store_samples:
        Also keep (bounded) raw activation rows for error measurements.
    max_stored_tokens:
        Cap on stored rows per layer and activation when ``store_samples``.
    """
    if not sequences:
        raise ValueError("at least one calibration sequence is required")
    n_layers = model.config.n_layer
    absmax_obs = {
        name: [AbsMaxObserver() for _ in range(n_layers)] for name in CALIBRATED_ACTIVATIONS
    }
    minmax_obs = {
        name: [MinMaxObserver() for _ in range(n_layers)] for name in CALIBRATED_ACTIVATIONS
    }
    stored: Dict[str, List[List[np.ndarray]]] = {
        name: [[] for _ in range(n_layers)] for name in CALIBRATED_ACTIVATIONS
    }
    stored_counts = {name: [0] * n_layers for name in CALIBRATED_ACTIVATIONS}

    num_tokens = 0
    for seq in sequences:
        seq = np.asarray(seq, dtype=np.int64)
        collect: List[Dict[str, np.ndarray]] = []
        model.forward(seq, collect=collect)
        num_tokens += int(seq.shape[0])
        for layer, layer_acts in enumerate(collect):
            for name in CALIBRATED_ACTIVATIONS:
                acts = layer_acts[name]
                absmax_obs[name][layer].update(acts)
                minmax_obs[name][layer].update(acts)
                if store_samples and stored_counts[name][layer] < max_stored_tokens:
                    room = max_stored_tokens - stored_counts[name][layer]
                    take = acts[:room]
                    stored[name][layer].append(np.array(take, copy=True))
                    stored_counts[name][layer] += take.shape[0]

    absmax = {
        name: [obs.result() for obs in observers] for name, observers in absmax_obs.items()
    }
    minimum = {
        name: [obs.result()[0] for obs in observers] for name, observers in minmax_obs.items()
    }
    maximum = {
        name: [obs.result()[1] for obs in observers] for name, observers in minmax_obs.items()
    }
    samples: Dict[str, List[np.ndarray]] = {}
    if store_samples:
        samples = {
            name: [
                np.concatenate(rows, axis=0) if rows else np.zeros((0, 0))
                for rows in stored[name]
            ]
            for name in CALIBRATED_ACTIVATIONS
        }
    return CalibrationResult(
        num_layers=n_layers,
        num_tokens=num_tokens,
        absmax=absmax,
        minimum=minimum,
        maximum=maximum,
        samples=samples,
    )
