"""SmoothQuant re-implemented for Mamba linear layers.

SmoothQuant (Xiao et al., ICML 2023) migrates quantization difficulty from
activations to weights with a per-input-channel scale::

    s_j = max|X_j|^alpha / max|W_j|^(1 - alpha)
    X'  = X / s          (folded into the preceding normalisation scale)
    W'  = W * s          (folded into the weight offline)

so that ``X' W'^T == X W^T`` exactly, while activation outliers shrink.  In
this reproduction the activation-side division is folded into the RMSNorm
(for the input projection) or the gated RMSNorm (for the output projection),
exactly as the original folds into LayerNorm.

The paper (Sec. III) shows this helps when outliers stay in fixed channels but
is ineffective for the *scattered* outliers of Mamba's output projection --
the Table II / Table III baselines reproduce that behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SmoothQuantConfig", "compute_smoothing_scales", "apply_smoothing"]


@dataclass(frozen=True)
class SmoothQuantConfig:
    """Settings of the SmoothQuant transformation.

    Attributes
    ----------
    alpha:
        Migration strength; 0.5 is the value used by the original paper and by
        the LightMamba baseline comparison.
    min_scale:
        Lower bound on the per-channel scale to avoid degenerate divisions for
        channels that are always (near) zero.
    """

    alpha: float = 0.5
    min_scale: float = 1e-5

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if self.min_scale <= 0:
            raise ValueError("min_scale must be positive")


def compute_smoothing_scales(
    act_absmax: np.ndarray,
    weight: np.ndarray,
    config: SmoothQuantConfig = SmoothQuantConfig(),
) -> np.ndarray:
    """Compute the per-input-channel smoothing scales ``s``.

    Parameters
    ----------
    act_absmax:
        Per-channel absolute maxima of the layer input, shape ``(in_features,)``
        (from an :class:`~repro.quant.observers.AbsMaxObserver` over the
        calibration set).
    weight:
        The layer weight of shape ``(out_features, in_features)``.
    """
    act_absmax = np.asarray(act_absmax, dtype=np.float64)
    weight = np.asarray(weight, dtype=np.float64)
    if weight.ndim != 2 or weight.shape[1] != act_absmax.shape[0]:
        raise ValueError(
            "weight must have shape (out_features, in_features) matching act_absmax"
        )
    w_absmax = np.max(np.abs(weight), axis=0)
    a = np.maximum(act_absmax, config.min_scale)
    w = np.maximum(w_absmax, config.min_scale)
    scales = np.power(a, config.alpha) / np.power(w, 1.0 - config.alpha)
    return np.maximum(scales, config.min_scale)


def apply_smoothing(
    activation: np.ndarray, weight: np.ndarray, scales: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Apply the smoothing transformation to an (activation, weight) pair.

    Returns ``(activation / scales, weight * scales)``; the product
    ``X' W'^T`` is mathematically unchanged.
    """
    activation = np.asarray(activation, dtype=np.float64)
    weight = np.asarray(weight, dtype=np.float64)
    scales = np.asarray(scales, dtype=np.float64)
    if weight.shape[1] != scales.shape[0]:
        raise ValueError("scales must have one entry per weight input channel")
    return activation / scales, weight * scales
