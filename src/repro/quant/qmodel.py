"""Whole-model quantization assembly.

:func:`quantize_model` turns a floating-point :class:`~repro.mamba.model.Mamba2Model`
into a quantized-inference model for any of the methods compared in
Table II / Table III of the paper:

========================  ==========================================================
Method                    Transformation before RTN rounding
========================  ==========================================================
``fp16``                  none (reference)
``rtn``                   none
``smoothquant``           per-channel scaling folded into the preceding RMSNorm
``os+``                   per-channel shifting + scaling with bias compensation
``lightmamba``            rotation-assisted (Fig. 4a), linear layers quantized
``lightmamba*``           ``lightmamba`` + PoT-quantized SSM and conv (whole model)
========================  ==========================================================

Weights are fake-quantized in place; activations are quantized at run time by
hooks installed on each block (``pre_in_proj`` / ``pre_out_proj``), composed
with the method's runtime transformation (OS+ shift, online Hadamard).

For the ``lightmamba*`` configurations the SSM execution mode is selected by
the ``ssm`` field of :class:`QuantConfig` (see
:class:`~repro.quant.ssm_quant.SSMQuantConfig`): the defaults give the
fake-quant simulation used for accuracy studies, while
``persistent_state=True`` (integer-resident decode state, bit-identical
under PoT) and ``integer_chunk_body=True`` (INT32-accumulator prefill chunk
contractions) move serving runs onto the FPGA's integer execution model --
``Mamba2Model.new_cache`` then builds integer-resident caches automatically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.mamba.model import Mamba2Model
from repro.quant.calibration import CalibrationResult, collect_activation_stats
from repro.quant.outlier_suppression import (
    OSPlusConfig,
    apply_shift_and_scale,
    compute_shift_and_scale,
)
from repro.quant.quantizer import QuantizerConfig, quantize_dequantize
from repro.quant.rotation import RotationConfig, rotate_model
from repro.quant.rtn import (
    activation_quantizer_config,
    rtn_quantize_weight,
    weight_quantizer_config,
)
from repro.quant.smoothquant import SmoothQuantConfig, compute_smoothing_scales
from repro.quant.ssm_quant import SSMQuantConfig, QuantizedChunkedScan

__all__ = ["QuantMethod", "QuantConfig", "quantize_model"]


class QuantMethod(str, enum.Enum):
    """The quantization methods compared in the paper's evaluation."""

    FP16 = "fp16"
    RTN = "rtn"
    SMOOTHQUANT = "smoothquant"
    OSPLUS = "os+"
    LIGHTMAMBA = "lightmamba"
    LIGHTMAMBA_STAR = "lightmamba*"

    @property
    def needs_calibration(self) -> bool:
        return self in (QuantMethod.SMOOTHQUANT, QuantMethod.OSPLUS)

    @property
    def uses_rotation(self) -> bool:
        return self in (QuantMethod.LIGHTMAMBA, QuantMethod.LIGHTMAMBA_STAR)

    @property
    def quantizes_ssm(self) -> bool:
        return self is QuantMethod.LIGHTMAMBA_STAR


@dataclass(frozen=True)
class QuantConfig:
    """Full configuration of a quantized model.

    ``w_bits`` / ``a_bits`` follow the paper's notation: W8A8 uses per-channel
    weights and per-token activations, W4A4 uses per-group (128) weights and
    activations.
    """

    method: QuantMethod = QuantMethod.LIGHTMAMBA
    w_bits: int = 4
    a_bits: int = 4
    group_size: int = 128
    smoothquant: SmoothQuantConfig = field(default_factory=SmoothQuantConfig)
    osplus: OSPlusConfig = field(default_factory=OSPlusConfig)
    rotation: RotationConfig = field(default_factory=RotationConfig)
    ssm: SSMQuantConfig = field(default_factory=SSMQuantConfig)

    @classmethod
    def w8a8(cls, method: QuantMethod, **kwargs) -> "QuantConfig":
        """The paper's W8A8 configuration for a given method."""
        return cls(method=method, w_bits=8, a_bits=8, **kwargs)

    @classmethod
    def w4a4(cls, method: QuantMethod, **kwargs) -> "QuantConfig":
        """The paper's W4A4 configuration for a given method."""
        return cls(method=method, w_bits=4, a_bits=4, **kwargs)

    @property
    def label(self) -> str:
        """Human-readable label such as ``"lightmamba W4A4"``."""
        return f"{self.method.value} W{self.w_bits}A{self.a_bits}"


# ----------------------------------------------------------------------
# Activation hooks
# ----------------------------------------------------------------------
class _ActivationQuant:
    """Hook fake-quantizing activations on the configured grid."""

    def __init__(self, config: QuantizerConfig):
        self.config = config

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return quantize_dequantize(x, self.config)


class _ShiftScale:
    """Hook applying the OS+ runtime transformation ``(x - shift) / scale``."""

    def __init__(self, shift: np.ndarray, scale: np.ndarray):
        self.shift = np.asarray(shift, dtype=np.float64)
        self.scale = np.asarray(scale, dtype=np.float64)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return (x - self.shift) / self.scale


class _Chain:
    """Hook composing other hooks left to right."""

    def __init__(self, *hooks):
        self.hooks = [h for h in hooks if h is not None]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        for hook in self.hooks:
            x = hook(x)
        return x


# ----------------------------------------------------------------------
# Per-method block transformations
# ----------------------------------------------------------------------
def _apply_smoothquant(block, calibration: CalibrationResult, config: QuantConfig) -> None:
    layer = block.layer_idx
    s_in = compute_smoothing_scales(
        calibration.in_proj_absmax(layer), block.in_proj_weight, config.smoothquant
    )
    block.norm.weight = block.norm.weight / s_in
    block.in_proj_weight = block.in_proj_weight * s_in[None, :]

    s_out = compute_smoothing_scales(
        calibration.out_proj_absmax(layer), block.out_proj_weight, config.smoothquant
    )
    block.gated_norm.weight = block.gated_norm.weight / s_out
    block.out_proj_weight = block.out_proj_weight * s_out[None, :]


def _apply_osplus(block, calibration: CalibrationResult, config: QuantConfig):
    """Apply OS+ to both projections; returns the runtime hooks to install."""
    layer = block.layer_idx

    lo, hi = calibration.in_proj_minmax(layer)
    shift_in, scale_in = compute_shift_and_scale(lo, hi, block.in_proj_weight, config.osplus)
    _, new_w_in, bias_in = apply_shift_and_scale(
        np.zeros_like(shift_in), block.in_proj_weight, shift_in, scale_in
    )
    block.in_proj_weight = new_w_in
    block.in_proj_bias = bias_in if block.in_proj_bias is None else block.in_proj_bias + bias_in

    lo, hi = calibration.out_proj_minmax(layer)
    shift_out, scale_out = compute_shift_and_scale(lo, hi, block.out_proj_weight, config.osplus)
    _, new_w_out, bias_out = apply_shift_and_scale(
        np.zeros_like(shift_out), block.out_proj_weight, shift_out, scale_out
    )
    block.out_proj_weight = new_w_out
    block.out_proj_bias = (
        bias_out if block.out_proj_bias is None else block.out_proj_bias + bias_out
    )

    return _ShiftScale(shift_in, scale_in), _ShiftScale(shift_out, scale_out)


# ----------------------------------------------------------------------
# Whole-model quantization
# ----------------------------------------------------------------------
def quantize_model(
    model: Mamba2Model,
    config: QuantConfig,
    calibration: Optional[CalibrationResult] = None,
    calib_sequences: Optional[Sequence[np.ndarray]] = None,
) -> Mamba2Model:
    """Quantize ``model`` according to ``config`` and return a new model.

    Parameters
    ----------
    model:
        The floating-point reference model (not modified).
    config:
        Method and bit widths.
    calibration:
        Pre-computed activation statistics; required for SmoothQuant / OS+
        unless ``calib_sequences`` is given.
    calib_sequences:
        Token sequences used to compute calibration statistics on the fly.
    """
    method = config.method
    if method is QuantMethod.FP16:
        return model.copy()

    if method.needs_calibration and calibration is None:
        if calib_sequences is None:
            raise ValueError(f"method '{method.value}' requires calibration data")
        calibration = collect_activation_stats(model, calib_sequences)

    if method.uses_rotation:
        quantized = rotate_model(model, config.rotation).model
    else:
        quantized = model.copy()

    act_cfg = activation_quantizer_config(config.a_bits, config.group_size)
    conv_weight_cfg = weight_quantizer_config(8, config.group_size)

    for block in quantized.blocks:
        in_transform = None
        out_transform = block.pre_out_proj if method.uses_rotation else None

        if method is QuantMethod.SMOOTHQUANT:
            _apply_smoothquant(block, calibration, config)
        elif method is QuantMethod.OSPLUS:
            in_transform, out_transform = _apply_osplus(block, calibration, config)

        block.in_proj_weight = rtn_quantize_weight(
            block.in_proj_weight, config.w_bits, config.group_size
        )
        block.out_proj_weight = rtn_quantize_weight(
            block.out_proj_weight, config.w_bits, config.group_size
        )

        block.pre_in_proj = _Chain(in_transform, _ActivationQuant(act_cfg))
        block.pre_out_proj = _Chain(out_transform, _ActivationQuant(act_cfg))

        if method.quantizes_ssm:
            # The chunk-parallel quantized scan: decodes exactly like the
            # plain QuantizedSSMStep and serves scan_impl="chunked" prefills
            # through its SSD-style prefill_scan (supports_prefill_scan).
            block.ssm_impl = QuantizedChunkedScan(config.ssm)
            block.conv.weight = quantize_dequantize(block.conv.weight, conv_weight_cfg)

    return quantized
