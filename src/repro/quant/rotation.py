"""Rotation-assisted quantization for Mamba (Sec. IV-A, Fig. 4a of the paper).

The method multiplies the residual stream by an orthogonal (randomised
Hadamard) matrix ``Q`` and the output-projection input by a Hadamard matrix
``H`` so that activation and weight outliers are amortised across channels
before quantization.  All rotations except one are *fused offline* into
neighbouring parameters so no extra computation is required at inference:

1. the first rotation is fused into the embedding table;
2. the rotation at each block input is fused -- together with the split
   RMSNorm scale -- into the input-projection weight;
3. the rotation before the output projection is the only *online* one, an
   on-the-fly Hadamard transform (executed by the HTU on the FPGA);
4. its inverse, plus the residual-side rotation, is fused into the
   output-projection weight;
5. the final rotation is fused -- with the split final-RMSNorm scale -- into
   the LM head.

The SSM layer is *not* rotated: the element-wise recurrence does not satisfy
rotation equivalence (Eq. 1 of the paper); it is quantized with the PoT
scheme of :mod:`repro.quant.ssm_quant` instead.

:func:`rotate_model` produces a mathematically equivalent floating-point
model (verified by tests to machine precision); quantization afterwards is
plain RTN on the rotated weights/activations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.mamba.model import Mamba2Model
from repro.quant.hadamard import apply_hadamard, random_hadamard_matrix

__all__ = ["RotationConfig", "OnlineHadamard", "RotatedModel", "rotate_model"]


@dataclass(frozen=True)
class RotationConfig:
    """Settings of the rotation-assisted transformation.

    Attributes
    ----------
    seed:
        Seed of the randomised Hadamard sign flips for the residual rotation
        ``Q``.
    random_signs:
        Use a randomised Hadamard (sign-flipped rows) for ``Q``; a plain
        Hadamard is used when ``False``.
    online_hadamard:
        Insert the online Hadamard transform before the output projection
        (rotation (3)).  Disabling it leaves the scattered out-proj outliers
        in place (used in ablations).
    fuse_gated_norm:
        Fuse the gated-RMSNorm scale into the output-projection weight before
        rotating ("fuse and rotate" in Fig. 4b).  The paper chooses *not* to
        fuse because it increases the weight quantization error; both variants
        are provided so the figure can be reproduced.
    """

    seed: int = 0
    random_signs: bool = True
    online_hadamard: bool = True
    fuse_gated_norm: bool = False


class OnlineHadamard:
    """Activation hook applying the normalised Hadamard rotation ``x -> x H``.

    This models the computation the paper's HTU performs online; the hardware
    cost is accounted for separately by :mod:`repro.hardware.htu`.
    """

    def __init__(self, dim: int):
        self.dim = dim

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return apply_hadamard(x, order=self.dim, normalized=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OnlineHadamard(dim={self.dim})"


@dataclass
class RotatedModel:
    """A rotated (still floating-point, mathematically equivalent) model."""

    model: Mamba2Model
    residual_rotation: np.ndarray          # Q, (d_model, d_model), orthogonal
    online_dims: List[int]                 # per-block online Hadamard size (0 = none)
    config: RotationConfig


def _rotate_block(block, q: np.ndarray, config: RotationConfig) -> int:
    """Rotate one block in place; returns the online-Hadamard dimension used."""
    cfg = block.config
    d_inner = cfg.d_inner

    # (2) Split the pre-norm scale and fuse it, together with Q, into W_in.
    g = block.norm.weight.copy()
    block.in_proj_weight = (block.in_proj_weight * g[None, :]) @ q
    block.norm.weight = np.ones_like(g)

    # (4) Residual-side rotation of the output projection.
    w_out = q.T @ block.out_proj_weight

    online_dim = 0
    if config.online_hadamard:
        # (3) Online Hadamard on the out-proj input, (4) inverse fused into W_out.
        if config.fuse_gated_norm:
            g2 = block.gated_norm.weight.copy()
            w_out = w_out * g2[None, :]
            block.gated_norm.weight = np.ones_like(g2)
        h = np.eye(d_inner)
        h = apply_hadamard(h, order=d_inner, normalized=True)
        w_out = w_out @ h
        block.pre_out_proj = OnlineHadamard(d_inner)
        online_dim = d_inner
    block.out_proj_weight = w_out
    return online_dim


def rotate_model(
    model: Mamba2Model, config: RotationConfig = RotationConfig()
) -> RotatedModel:
    """Return a rotated copy of ``model`` (the original is left untouched).

    The returned model is floating-point equivalent to the input model: the
    logits match to numerical precision.  Quantizing its linear layers with
    RTN afterwards implements the paper's LightMamba scheme.
    """
    cfg = model.config
    rotated = model.copy()

    if config.random_signs:
        q = random_hadamard_matrix(cfg.d_model, seed=config.seed, normalized=True)
    else:
        q = apply_hadamard(np.eye(cfg.d_model), order=cfg.d_model, normalized=True)

    # Capture the original head weight before the embedding is rotated, since
    # tied models share the matrix; the rotated model is always untied.
    original_head = model.head_weight.copy()

    # (1) Fuse the first rotation into the embedding table.
    rotated.embedding = rotated.embedding @ q

    # (2)-(4) Per-block fusions.
    online_dims = []
    for block in rotated.blocks:
        online_dims.append(_rotate_block(block, q, config))

    # (5) Split the final norm scale and fuse it, with Q, into the LM head.
    g_f = rotated.norm_f.weight.copy()
    rotated.lm_head_weight = (original_head * g_f[None, :]) @ q
    rotated.norm_f.weight = np.ones_like(g_f)

    return RotatedModel(
        model=rotated, residual_rotation=q, online_dims=online_dims, config=config
    )
