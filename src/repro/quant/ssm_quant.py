"""Quantized SSM layer (the LightMamba* configuration).

Sec. IV-B of the paper: the SSM layer is quantized with per-group INT8 and
power-of-two (PoT) scales so that the re-quantization after every element-wise
multiplication is a bit shift.  The non-linear operators (softplus, exp) stay
in floating point -- on the FPGA they are implemented with dedicated units --
while every multiplicative operand and every element-wise product is
fake-quantized on the INT8 PoT grid.

Two inference engines are provided:

- :class:`QuantizedSSMStep` is a drop-in replacement for
  :func:`repro.mamba.ssm.ssm_step` (it matches the ``ssm_impl`` signature of
  :class:`repro.mamba.block.MambaBlock`) and advances the quantized
  recurrence one token at a time -- the decode engine, and the sequential
  prefill oracle.
- :class:`QuantizedChunkedScan` extends it with a chunk-parallel prefill scan
  (``prefill_scan``) mirroring the intra/inter-chunk SSD decomposition of
  :func:`repro.mamba.ssm.ssd_chunked_scan`, with the quantization points kept
  at the same operator interfaces.  It advertises ``supports_prefill_scan``,
  which :meth:`MambaBlock.forward <repro.mamba.block.MambaBlock.forward>`
  routes the ``scan_impl="chunked"`` prefill through -- this is how the
  LightMamba* configurations inherit the chunked prefill fast path.

Fake-quant vs. integer-resident execution
-----------------------------------------

By default both engines run in *fake-quant* float: every operand is
round-tripped through its integer grid but stored and combined as float64.
That is the right mode for accuracy studies -- it is cheap, and provably
equivalent to integer execution for the linear layers
(:meth:`repro.quant.qlinear.QuantizedLinear.forward_integer`).

Two :class:`SSMQuantConfig` switches move the simulation closer to what the
FPGA actually executes:

- ``persistent_state=True`` keeps the recurrent state ``h`` *resident* as INT
  codes + PoT scales between decode steps (a
  :class:`~repro.mamba.cache.QuantizedSSMState` inside a
  :class:`~repro.mamba.cache.QuantizedLayerCache`), exactly like the on-chip
  state buffer: step entry is a cheap ``codes * scales`` dequantize instead
  of a full re-quantization of the float state.  Because on-grid PoT
  re-quantization is idempotent, this mode is **bit-identical** to fake-quant
  decode while removing the per-token quantize -> dequantize -> quantize
  state round trip (requires ``quantize_state`` and ``pot_scale``).
- ``integer_chunk_body=True`` runs the prefill chunk body's two ``d_state``
  contractions (the ``C B^T`` interaction matrix and the carried-state
  ``h . C`` readout) on true INT32 accumulators over the raw codes --
  the MMU execution model, sharing
  :func:`repro.quant.qlinear.grouped_integer_matmul` and its static overflow
  guard with the quantized linear layers (requires ``quantize_products``).

Use fake-quant (the defaults) for algorithm/accuracy work; enable the
integer-resident modes when the run should mirror the hardware datapath --
serving benchmarks, the URAM/BRAM state-footprint study
(:class:`repro.hardware.memory.QuantizedStateMemoryModel`), or any test of
the accelerator's integer semantics.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.mamba.cache import QuantizedLayerCache, QuantizedSSMState
from repro.mamba.config import Mamba2Config
from repro.mamba.ops import softplus
from repro.mamba.ssm import SSMParams, _validate_seq_lens, ssm_decay, ssm_scan
from repro.quant.dtypes import Granularity, IntSpec
from repro.quant.qlinear import grouped_integer_matmul
from repro.quant.quantizer import (
    QuantizedTensor,
    QuantizerConfig,
    dequantize,
    quantize,
    quantize_dequantize,
)

__all__ = ["SSMQuantConfig", "QuantizedSSMStep", "QuantizedChunkedScan"]


@dataclass(frozen=True)
class SSMQuantConfig:
    """Settings of the SSM quantization.

    Attributes
    ----------
    bits:
        Integer width of the SSM operands and element-wise products (the
        paper uses INT8 for the SSM regardless of the linear-layer width).
    group_size:
        Per-group quantization group length along the state / channel axis.
    pot_scale:
        Constrain scales to powers of two (the paper's FPGA-friendly scheme).
        Setting it to ``False`` gives the "naive non-PoT" ablation of Fig. 3.
    quantize_state:
        Also keep the recurrent hidden state ``h`` on the integer grid between
        steps (the state is stored in on-chip memory on the FPGA).  The
        chunk-parallel scan applies it at chunk boundaries.
    quantize_products:
        Re-quantize every element-wise product (the re-quantization whose
        hardware cost Fig. 3 analyses).  Disabling keeps products at high
        precision until the output.
    persistent_state:
        Keep the recurrent state resident as INT codes + PoT scales between
        steps (the on-chip state buffer execution model).  Bit-identical to
        the fake-quant decode -- PoT re-quantization of an on-grid state is
        idempotent -- but removes the per-token state round trip.  Requires
        ``quantize_state`` and ``pot_scale``.
    integer_chunk_body:
        Run the prefill chunk body's ``C B^T`` and ``h . C`` contractions on
        INT32 accumulators over the raw codes (the MMU execution model, with
        its static overflow guard).  Requires ``quantize_products``.
    """

    bits: int = 8
    group_size: int = 32
    pot_scale: bool = True
    quantize_state: bool = True
    quantize_products: bool = True
    persistent_state: bool = False
    integer_chunk_body: bool = False

    def __post_init__(self) -> None:
        if self.persistent_state and not (self.quantize_state and self.pot_scale):
            raise ValueError(
                "persistent_state keeps h as INT codes + PoT scales; it requires "
                "quantize_state=True and pot_scale=True"
            )
        if self.integer_chunk_body and not (self.quantize_products and self.quantize_state):
            raise ValueError(
                "integer_chunk_body contracts the raw codes of the re-quantized "
                "products and of the carried state; it requires "
                "quantize_products=True and quantize_state=True"
            )

    def config(self, granularity: Granularity = Granularity.PER_GROUP) -> QuantizerConfig:
        """Build the underlying :class:`QuantizerConfig`."""
        return QuantizerConfig(
            spec=IntSpec(self.bits),
            granularity=granularity,
            group_size=self.group_size,
            pot_scale=self.pot_scale,
            pot_rounding="ceil",
        )


class QuantizedSSMStep:
    """Quantized drop-in replacement for the SSM decode step.

    The operator decomposition matches Fig. 1 / Fig. 3 of the paper: each
    named element-wise multiplication is computed on fake-quantized operands
    and its output is re-quantized before feeding the next operator.

    A leading batch axis is accepted on every tensor argument
    (``supports_batched``); because the quantization grid is per-group along
    the trailing axis, every batch row quantizes exactly as it would alone,
    so batched stepping is bit-identical to per-row stepping.
    """

    #: Advertises the optional leading batch axis to the block's prefill /
    #: decode dispatch (single token loop instead of a per-row Python loop).
    supports_batched = True

    #: The plain step has no chunk-parallel prefill engine; the block's
    #: prefill then falls back to the per-token loop.  See
    #: :class:`QuantizedChunkedScan` for the implementation that sets it.
    supports_prefill_scan = False

    def __init__(self, config: SSMQuantConfig = SSMQuantConfig()):
        self.config = config
        self._qcfg = config.config()
        # (D array, D[:, None]) derived on first use (see _d_col).
        self._static_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        # When set, prefill_scan ignores integer_chunk_body and runs the
        # float fake-quant chunk body (see fallback_fake_quant).
        self._fake_quant_fallback = False

    @contextmanager
    def fallback_fake_quant(self) -> Iterator["QuantizedSSMStep"]:
        """Temporarily run the fake-quant chunk body instead of the MMU path.

        The serving supervisor's graceful-degradation hook: inside the
        context :meth:`QuantizedChunkedScan.prefill_scan` skips the
        ``integer_chunk_body`` INT32 kernels (whose static overflow guard can
        legitimately raise :class:`OverflowError`) and computes the same
        contractions on the float fake-quant path -- the numerics every
        integer run is verified against, so a degraded request is still
        served on the model's reference grid.  Decode is unaffected (it never
        uses the integer chunk body).  Re-entrant; restores the previous mode
        on exit.
        """
        previous = self._fake_quant_fallback
        self._fake_quant_fallback = True
        try:
            yield self
        finally:
            self._fake_quant_fallback = previous

    @property
    def state_resident(self) -> bool:
        """Whether this step keeps the recurrent state as integer codes.

        :meth:`Mamba2Model.new_cache <repro.mamba.model.Mamba2Model.new_cache>`
        checks this capability to decide between a float
        :class:`~repro.mamba.cache.LayerCache` and an integer-resident
        :class:`~repro.mamba.cache.QuantizedLayerCache` for the block.
        """
        return self.config.persistent_state

    def _q(self, x: np.ndarray) -> np.ndarray:
        """Fake-quantize a tensor on the configured grid."""
        return quantize_dequantize(x, self._qcfg)

    def _qp(self, x: np.ndarray) -> np.ndarray:
        """Re-quantize an element-wise product (if enabled)."""
        if not self.config.quantize_products:
            return x
        return quantize_dequantize(x, self._qcfg)

    # ------------------------------------------------------------------
    # Integer-resident state plumbing
    # ------------------------------------------------------------------
    def quantize_state_codes(self, state: np.ndarray) -> QuantizedSSMState:  # integer-resident
        """Quantize a float state into the resident codes + scales container.

        For a state that is already on the PoT grid (every state this class
        ever hands out) the quantization is exact, so converting between the
        float and resident representations never changes the carried values.
        """
        # quant-point: float state onto the resident codes + scales grid
        qt = quantize(np.asarray(state, dtype=np.float64), self._qcfg)
        return QuantizedSSMState(
            codes=qt.codes,
            scales=qt.scales,
            group_size=self.config.group_size,
            bits=self.config.bits,
        )

    def _state_values(self, state) -> np.ndarray:  # integer-resident
        """The float view of an incoming state, quantized onto the grid.

        A resident :class:`QuantizedSSMState` dequantizes directly (its codes
        are on the grid by construction -- no absmax / rounding pass); a float
        state goes through the fake-quant round trip when ``quantize_state``
        is enabled, exactly as before.
        """
        if isinstance(state, QuantizedSSMState):
            return state.dequantize()  # quant-point: resident codes -> float view
        state = np.asarray(state, dtype=np.float64)  # quant-point: fake-quant entry
        if self.config.quantize_state:
            state = self._q(state)  # quant-point: state fake-quant round trip
        return state

    def zeros_cache(  # integer-resident
        self, config: Mamba2Config, batch_size: Optional[int] = None
    ) -> QuantizedLayerCache:
        """A fresh integer-resident layer cache (zero codes, epsilon scales).

        An all-zero state quantizes to all-zero codes with the quantizer's
        well-defined minimum scale (see :func:`repro.quant.quantizer.compute_scales`
        and the all-zero-group handling of :func:`repro.quant.pot.pot_quantize_scale`),
        so the zero cache decodes back to exact zeros.
        """
        lead = () if batch_size is None else (batch_size,)
        state = np.zeros(  # quant-point: zero state buffer, quantized to codes below
            lead + (config.nheads, config.headdim, config.d_state), dtype=np.float64
        )
        return QuantizedLayerCache(
            conv_state=np.zeros(  # quant-point: conv taps stay float (not SSM-quantized)
                lead + (config.conv_dim, config.d_conv), dtype=np.float64
            ),
            ssm_state=self.quantize_state_codes(state),
        )

    def _d_col(self, params: SSMParams) -> np.ndarray:
        """The skip coefficient broadcast column ``D[:, None]``, cached.

        Keeps the reshape + copy out of the per-token hot loop (``params.A``
        is already cached by :class:`SSMParams`).  Keyed on the ``D`` array
        itself, so reassigning ``params.D`` invalidates the cache exactly
        like reassigning ``A_log`` invalidates ``SSMParams.A``; like there,
        in-place mutation of the array is not tracked.
        """
        cached = self._static_cache
        if cached is None or cached[0] is not params.D:
            cached = (params.D, np.ascontiguousarray(params.D[:, None]))
            self._static_cache = cached
        return cached[1]

    def __call__(  # integer-resident
        self,
        params: SSMParams,
        x: np.ndarray,
        B: np.ndarray,
        C: np.ndarray,
        dt: np.ndarray,
        state: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Advance the quantized recurrence one token (``ssm_impl`` signature).

        ``state`` may be a float array (fake-quant mode: re-quantized on
        entry when ``quantize_state`` is set) or a resident
        :class:`~repro.mamba.cache.QuantizedSSMState` (integer-resident
        mode: its codes dequantize directly, and the returned new state is a
        resident container again -- codes in, codes out).  Under PoT scales
        the two modes produce bit-identical outputs, because re-quantizing an
        on-grid state is the identity.
        """
        d_col = self._d_col(params)
        resident = isinstance(state, QuantizedSSMState)
        x = self._q(np.asarray(x, dtype=np.float64))  # quant-point: per-token x
        B = self._q(np.asarray(B, dtype=np.float64))  # quant-point: per-token B
        C = self._q(np.asarray(C, dtype=np.float64))  # quant-point: per-token C
        state = self._state_values(state)

        # Non-linear operators stay in floating point (dedicated FPGA units);
        # the decay pair is computed once per step by the shared helper.
        delta, a_bar = ssm_decay(params, dt)

        delta_mul_b = self._qp(delta[..., :, None] * B[..., None, :])  # quant-point: Delta (.) B
        # quant-point: B_bar (.) x
        b_mul_x = self._qp(delta_mul_b[..., :, None, :] * x[..., :, :, None])
        a_mul_h = self._qp(a_bar[..., :, None, None] * state)  # quant-point: A_bar (.) h
        new_state = a_mul_h + b_mul_x
        out_state = new_state
        if resident:
            # One quantization pass: the codes become the resident state and
            # their dequantized view feeds the readout below.
            out_state = self.quantize_state_codes(new_state)
            new_state = out_state.dequantize()  # quant-point: readout view of the codes
        elif self.config.quantize_state:
            new_state = self._q(new_state)  # quant-point: state requant
            out_state = new_state

        h_mul_c = self._qp(new_state * C[..., None, None, :])  # quant-point: h (.) C
        y_ssm = np.sum(h_mul_c, axis=-1)
        x_mul_d = self._qp(d_col * x)  # quant-point: x (.) D
        y = y_ssm + x_mul_d
        return y, out_state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(bits={self.config.bits}, "
            f"group_size={self.config.group_size}, pot={self.config.pot_scale})"
        )


class QuantizedChunkedScan(QuantizedSSMStep):
    """Chunk-parallel quantized prefill scan (the SSMU fast path).

    Mirrors the intra/inter-chunk SSD decomposition of
    :func:`repro.mamba.ssm.ssd_chunked_scan` while keeping the quantization
    points of :class:`QuantizedSSMStep` fixed at the operator interfaces,
    the FastMamba / ViM-Q recipe for chunk-parallel quantized Mamba blocks:

    - the inputs ``x`` / ``B`` / ``C`` are fake-quantized on entry exactly as
      the sequential step quantizes them per token (per-group grids live on
      the trailing axis, so quantizing a whole chunk at once is bit-identical
      to quantizing each token alone);
    - the ``Delta (.) B`` and ``D (.) x`` element-wise products are
      re-quantized at the SSMU interfaces, bit-identically to the step;
    - the recurrent state is quantized at chunk *boundaries* (entry and every
      hand-off) instead of after every token, and the intra-chunk outer
      products / state readout accumulate at high precision -- the MMU-style
      wide-accumulator interpretation of the dense in-chunk matmuls.

    Two of the step's per-token re-quantization points (``B_bar (.) x`` and
    ``h (.) C``) therefore collapse into the chunk matmuls; with
    ``chunk_size=1`` the scan dispatches to the exact per-token step loop
    (shared code with :class:`QuantizedSSMStep`), making the reduction to the
    sequential quantized oracle bit-identical by construction.  At larger
    chunk sizes the scan is the fast approximation whose quality the eval
    harness pins (perplexity shift < 0.1 vs. the sequential oracle).

    Decode is inherited unchanged from :class:`QuantizedSSMStep`, so a model
    carrying this implementation decodes bit-identically to one carrying the
    plain step.
    """

    #: Tells MambaBlock.forward to route a ``scan_impl="chunked"`` prefill
    #: through :meth:`prefill_scan` instead of the per-token loop.
    supports_prefill_scan = True

    def prefill_scan(  # integer-resident
        self,
        params: SSMParams,
        x: np.ndarray,
        B: np.ndarray,
        C: np.ndarray,
        dt: np.ndarray,
        initial_state: Optional[np.ndarray] = None,
        chunk_size: int = 64,
        seq_lens: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Run the quantized recurrence over a full sequence, chunk-parallel.

        The signature matches :func:`repro.mamba.ssm.ssd_chunked_scan`:
        ``x`` is ``(seq_len, nheads, headdim)`` (optionally with a leading
        batch axis carried by every argument), ``B`` / ``C`` are
        ``(seq_len, d_state)``, ``dt`` is the raw per-head step size (before
        softplus), ``initial_state`` an optional warm state (copied, then
        quantized at chunk entry when ``quantize_state`` is set), and
        ``seq_lens`` optional per-row true lengths of a right-padded ragged
        batch -- the returned state rows are then snapshots at each row's
        true last token.

        ``initial_state`` may also be a resident
        :class:`~repro.mamba.cache.QuantizedSSMState` (codes in, codes out):
        the scan then starts from the dequantized codes -- which are on the
        grid already, so the chunk-entry quantization is skipped -- and the
        returned final state (or per-row ``seq_lens`` snapshot) is a resident
        container again, keeping segmented serving prefills integer-resident
        end to end.

        With ``integer_chunk_body`` the two ``d_state`` contractions of the
        chunk body (the dense ``C B^T`` interaction and the carried-state
        ``h . C`` readout) run on INT32 accumulators over the raw codes via
        :func:`repro.quant.qlinear.grouped_integer_matmul` -- the MMU
        execution model, including its static overflow guard.  Under PoT
        scales every partial product is exactly representable, so the
        integer body agrees with the float chunk body to the last bit of the
        accumulation order.

        Returns ``(y, final_state)`` with ``y`` shaped like ``x``.
        """
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        resident = isinstance(initial_state, QuantizedSSMState)
        x = np.asarray(x, dtype=np.float64)  # quant-point: float entry staging
        B = np.asarray(B, dtype=np.float64)  # quant-point: float entry staging
        C = np.asarray(C, dtype=np.float64)  # quant-point: float entry staging
        dt = np.asarray(dt, dtype=np.float64)  # quant-point: float entry staging
        if x.ndim not in (3, 4):
            raise ValueError(
                "x must have shape (seq_len, nheads, headdim) or "
                "(batch, seq_len, nheads, headdim)"
            )
        batched = x.ndim == 4
        seq_len, nheads, headdim = x.shape[-3:]
        d_state = B.shape[-1]
        if nheads != params.nheads:
            raise ValueError("head count mismatch between x and params")
        lead = x.shape[:1] if batched else ()
        state_shape = lead + (nheads, headdim, d_state)
        if initial_state is None:
            state = np.zeros(state_shape, dtype=np.float64)  # quant-point: zero state
        else:
            if resident:
                state = initial_state.dequantize()  # quant-point: resident entry
            else:
                # quant-point: float entry copy
                state = np.array(initial_state, dtype=np.float64, copy=True)
            if state.shape != state_shape:
                raise ValueError(
                    f"initial_state must have shape {state_shape}, got {state.shape}"
                )
        if seq_lens is not None:
            seq_lens = _validate_seq_lens(seq_lens, batched, x.shape[0], seq_len)

        if chunk_size == 1:
            # The per-token loop: ssm_scan driving this object's own step, so
            # the chunk_size=1 reduction to the sequential quantized oracle
            # is bit-identical by construction (shared step code, shared
            # token loop and seq_lens snapshot bookkeeping).  The token loop
            # runs on the float view; a resident caller gets the final state
            # re-quantized back into codes (exact -- the state is on-grid).
            y, final = ssm_scan(
                params, x, B, C, dt, initial_state=state, seq_lens=seq_lens, step_fn=self
            )
            if resident:
                final = self.quantize_state_codes(final)
            return y, final

        A, d_col = params.A, self._d_col(params)
        quantize_state = self.config.quantize_state
        integer_body = self.config.integer_chunk_body and not self._fake_quant_fallback

        # Operand quantization at the SSMU interfaces.  Per-group grids are
        # computed along the trailing axis only, so quantizing the whole
        # sequence at once is bit-identical to the step's per-token _q.  The
        # integer chunk body keeps the raw codes of C and of the re-quantized
        # Delta (.) B product next to their float views.
        qx = self._q(x)  # quant-point: x chunk quantization
        qB = self._q(B)  # quant-point: B chunk quantization
        c_qt = quantize(C, self._qcfg)  # quant-point: C codes (kept for the MMU body)
        qC = dequantize(c_qt)  # quant-point: C float view
        delta = softplus(dt + params.dt_bias)               # (..., T, h)
        log_decay = delta * A                               # (..., T, h), negative
        # Delta (.) B, re-quantized exactly as the step's delta_mul_b.
        if integer_body:
            # quant-point: Delta (.) B requant, keeping codes for the MMU body
            db_qt = quantize(delta[..., None] * qB[..., None, :], self._qcfg)
            qdB = dequantize(db_qt)  # quant-point: float view (..., T, h, n)
        else:
            db_qt = None
            # quant-point: Delta (.) B requant (..., T, h, n)
            qdB = self._qp(delta[..., None] * qB[..., None, :])
        # D (.) x skip path, re-quantized exactly as the step's x_mul_d.
        y = self._qp(d_col * qx)  # quant-point: x (.) D skip

        state_qt: Optional[QuantizedTensor] = None
        if resident:
            # The incoming codes are the chunk-entry quantization.
            state_qt = QuantizedTensor(
                codes=initial_state.codes,
                scales=initial_state.scales,
                config=self._qcfg,
                shape=initial_state.shape,
            )
        elif quantize_state:
            state_qt = quantize(state, self._qcfg)  # quant-point: chunk-entry quantization
            state = dequantize(state_qt)  # quant-point: chunk-entry float view
        if seq_lens is not None:
            snapshot = np.zeros_like(state)  # quant-point: seq_lens snapshot buffer

        # The loop below deliberately mirrors (rather than shares) the chunk
        # body of ssd_chunked_scan: the FP scan contracts one head-independent
        # C B^T matrix per chunk, a factorization that quantization breaks --
        # folding Delta and the requant into qdB gives B a head axis, so every
        # contraction here is per-head.  Keep the two bodies in sync when
        # touching either.
        qmax = self._qcfg.spec.qmax
        group = self._qcfg.group_size
        chunk = min(chunk_size, seq_len)
        # quant-point: the causal mask is a float constant, not a tensor operand
        causal_full = np.tril(np.ones((chunk, chunk), dtype=np.float64))
        for start in range(0, seq_len, chunk):
            stop = min(start + chunk, seq_len)
            q_len = stop - start
            xc = qx[..., start:stop, :, :]                  # (..., Q, h, p)
            bc = qdB[..., start:stop, :, :]                 # (..., Q, h, n)
            cc = qC[..., start:stop, :]                     # (..., Q, n)
            lc = np.cumsum(log_decay[..., start:stop, :], axis=-2)  # (..., Q, h)

            # Dense decay-weighted interaction on the quantized operands:
            #   G[t, s, head] = exp(L_t - L_s) * (qC_t . qdB_s[head]), s <= t.
            # The d_state contraction runs on the MMU-style wide accumulator:
            # in float mode that is the float64 matmul below; in integer mode
            # the raw codes accumulate in a true INT32 per quantization group
            # (grouped_integer_matmul, with the static overflow guard).  L is
            # decreasing so causal entries have diff <= 0, and clamping keeps
            # the masked upper triangle finite.
            bh = np.moveaxis(bc, -2, -3)                    # (..., h, Q, n)
            if integer_body:
                cc_codes = c_qt.codes[..., start:stop, :]                # (..., Q, n)
                cc_scales = c_qt.scales[..., start:stop, :, 0]           # (..., Q, G)
                bh_codes = np.moveaxis(db_qt.codes[..., start:stop, :, :], -2, -3)
                bh_scales = np.moveaxis(db_qt.scales[..., start:stop, :, :, 0], -2, -3)
                cb = np.moveaxis(
                    grouped_integer_matmul(
                        cc_codes[..., None, :, :],
                        cc_scales[..., None, :, :],
                        bh_codes,
                        bh_scales,
                        group_size=group,
                        x_qmax=qmax,
                        w_qmax=qmax,
                    ),
                    -3,
                    -1,
                )                                           # (..., Q, Q, h)
            else:
                cb = np.moveaxis(
                    cc[..., None, :, :] @ np.swapaxes(bh, -1, -2), -3, -1
                )                                           # (..., Q, Q, h)
            causal = causal_full if q_len == chunk else causal_full[:q_len, :q_len]
            diff = lc[..., :, None, :] - lc[..., None, :, :]
            gate = cb * np.exp(np.minimum(diff, 0.0)) * causal[..., :, :, None]
            yc = np.moveaxis(
                np.moveaxis(gate, -1, -3) @ np.moveaxis(xc, -2, -3), -3, -2
            )                                               # (..., Q, h, p)
            # Carried-in state readout (h_in . C per head, decayed to t).
            if integer_body:
                readout = grouped_integer_matmul(
                    state_qt.codes,
                    state_qt.scales[..., 0],
                    cc_codes[..., None, :, :],
                    cc_scales[..., None, :, :],
                    group_size=group,
                    x_qmax=qmax,
                    w_qmax=qmax,
                )                                           # (..., h, p, Q)
            else:
                readout = state @ np.swapaxes(cc, -1, -2)[..., None, :, :]  # (..., h, p, Q)
            yc += np.exp(lc)[..., None] * np.moveaxis(readout, -1, -3)
            y[..., start:stop, :, :] += yc

            if seq_lens is not None:
                # Snapshot rows whose true last token falls inside the chunk:
                # the hand-off formula truncated at the row's local position.
                for row in np.nonzero((seq_lens > start) & (seq_lens <= stop))[0]:
                    j = int(seq_lens[row]) - 1 - start
                    carry_j = np.exp(lc[row, j][None, :] - lc[row, : j + 1])  # (j+1, h)
                    wx_j = np.moveaxis(carry_j[:, :, None] * xc[row, : j + 1], 0, -1)
                    row_state = (
                        np.exp(lc[row, j])[:, None, None] * state[row]
                        + wx_j @ np.moveaxis(bc[row, : j + 1], -2, -3)
                    )
                    # quant-point: row snapshot requant
                    snapshot[row] = self._q(row_state) if quantize_state else row_state

            # Chunk hand-off, then the chunk-boundary state quantization (kept
            # as codes when the next chunk's readout or the caller needs them).
            last = lc[..., -1, :]                           # (..., h)
            carry = np.exp(last[..., None, :] - lc)         # (..., Q, h)
            wx = np.moveaxis(carry[..., None] * xc, -3, -1)  # (..., h, p, Q)
            state = np.exp(last)[..., :, None, None] * state + wx @ bh
            if quantize_state:
                state_qt = quantize(state, self._qcfg)  # quant-point: chunk boundary
                state = dequantize(state_qt)  # quant-point: boundary float view

        if seq_lens is not None:
            if resident:
                # Rows were quantized one by one above; per-group grids live
                # on the trailing axis, so re-quantizing the stacked snapshot
                # into codes is exact (idempotent on-grid requantization).
                return y, self.quantize_state_codes(snapshot)
            return y, snapshot
        if resident:
            if not quantize_state:
                # Degenerate configuration (resident container handed to a
                # scan that does not quantize hand-offs): quantize once here.
                return y, self.quantize_state_codes(state)
            return y, QuantizedSSMState(
                codes=state_qt.codes,
                scales=state_qt.scales,
                group_size=self.config.group_size,
                bits=self.config.bits,
            )
        return y, state
