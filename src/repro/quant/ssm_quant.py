"""Quantized SSM layer (the LightMamba* configuration).

Sec. IV-B of the paper: the SSM layer is quantized with per-group INT8 and
power-of-two (PoT) scales so that the re-quantization after every element-wise
multiplication is a bit shift.  The non-linear operators (softplus, exp) stay
in floating point -- on the FPGA they are implemented with dedicated units --
while every multiplicative operand and every element-wise product is
fake-quantized on the INT8 PoT grid.

:class:`QuantizedSSMStep` is a drop-in replacement for
:func:`repro.mamba.ssm.ssm_step` (it matches the ``ssm_impl`` signature of
:class:`repro.mamba.block.MambaBlock`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.mamba.ops import softplus
from repro.mamba.ssm import SSMParams
from repro.quant.dtypes import Granularity, IntSpec
from repro.quant.quantizer import QuantizerConfig, quantize_dequantize

__all__ = ["SSMQuantConfig", "QuantizedSSMStep"]


@dataclass(frozen=True)
class SSMQuantConfig:
    """Settings of the SSM quantization.

    Attributes
    ----------
    bits:
        Integer width of the SSM operands and element-wise products (the
        paper uses INT8 for the SSM regardless of the linear-layer width).
    group_size:
        Per-group quantization group length along the state / channel axis.
    pot_scale:
        Constrain scales to powers of two (the paper's FPGA-friendly scheme).
        Setting it to ``False`` gives the "naive non-PoT" ablation of Fig. 3.
    quantize_state:
        Also keep the recurrent hidden state ``h`` on the integer grid between
        steps (the state is stored in on-chip memory on the FPGA).
    quantize_products:
        Re-quantize every element-wise product (the re-quantization whose
        hardware cost Fig. 3 analyses).  Disabling keeps products at high
        precision until the output.
    """

    bits: int = 8
    group_size: int = 32
    pot_scale: bool = True
    quantize_state: bool = True
    quantize_products: bool = True

    def config(self, granularity: Granularity = Granularity.PER_GROUP) -> QuantizerConfig:
        """Build the underlying :class:`QuantizerConfig`."""
        return QuantizerConfig(
            spec=IntSpec(self.bits),
            granularity=granularity,
            group_size=self.group_size,
            pot_scale=self.pot_scale,
            pot_rounding="ceil",
        )


class QuantizedSSMStep:
    """Quantized drop-in replacement for the SSM decode step.

    The operator decomposition matches Fig. 1 / Fig. 3 of the paper: each
    named element-wise multiplication is computed on fake-quantized operands
    and its output is re-quantized before feeding the next operator.

    A leading batch axis is accepted on every tensor argument
    (``supports_batched``); because the quantization grid is per-group along
    the trailing axis, every batch row quantizes exactly as it would alone,
    so batched stepping is bit-identical to per-row stepping.
    """

    #: Advertises the optional leading batch axis to the block's prefill /
    #: decode dispatch (single token loop instead of a per-row Python loop).
    supports_batched = True

    def __init__(self, config: SSMQuantConfig = SSMQuantConfig()):
        self.config = config
        self._qcfg = config.config()

    def _q(self, x: np.ndarray) -> np.ndarray:
        """Fake-quantize a tensor on the configured grid."""
        return quantize_dequantize(x, self._qcfg)

    def _qp(self, x: np.ndarray) -> np.ndarray:
        """Re-quantize an element-wise product (if enabled)."""
        if not self.config.quantize_products:
            return x
        return quantize_dequantize(x, self._qcfg)

    def __call__(
        self,
        params: SSMParams,
        x: np.ndarray,
        B: np.ndarray,
        C: np.ndarray,
        dt: np.ndarray,
        state: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Advance the quantized recurrence one token (``ssm_impl`` signature)."""
        x = self._q(np.asarray(x, dtype=np.float64))
        B = self._q(np.asarray(B, dtype=np.float64))
        C = self._q(np.asarray(C, dtype=np.float64))
        state = np.asarray(state, dtype=np.float64)
        if self.config.quantize_state:
            state = self._q(state)

        # Non-linear operators stay in floating point (dedicated FPGA units).
        delta = softplus(np.asarray(dt, dtype=np.float64) + params.dt_bias)
        a_bar = np.exp(delta * params.A)

        delta_mul_b = self._qp(delta[..., :, None] * B[..., None, :])          # Delta (.) B
        b_mul_x = self._qp(delta_mul_b[..., :, None, :] * x[..., :, :, None])  # B_bar (.) x
        a_mul_h = self._qp(a_bar[..., :, None, None] * state)                  # A_bar (.) h
        new_state = a_mul_h + b_mul_x
        if self.config.quantize_state:
            new_state = self._q(new_state)

        h_mul_c = self._qp(new_state * C[..., None, None, :])                  # h (.) C
        y_ssm = np.sum(h_mul_c, axis=-1)
        x_mul_d = self._qp(params.D[:, None] * x)                              # x (.) D
        y = y_ssm + x_mul_d
        return y, new_state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantizedSSMStep(bits={self.config.bits}, "
            f"group_size={self.config.group_size}, pot={self.config.pot_scale})"
        )
