"""Quantized SSM layer (the LightMamba* configuration).

Sec. IV-B of the paper: the SSM layer is quantized with per-group INT8 and
power-of-two (PoT) scales so that the re-quantization after every element-wise
multiplication is a bit shift.  The non-linear operators (softplus, exp) stay
in floating point -- on the FPGA they are implemented with dedicated units --
while every multiplicative operand and every element-wise product is
fake-quantized on the INT8 PoT grid.

Two inference engines are provided:

- :class:`QuantizedSSMStep` is a drop-in replacement for
  :func:`repro.mamba.ssm.ssm_step` (it matches the ``ssm_impl`` signature of
  :class:`repro.mamba.block.MambaBlock`) and advances the quantized
  recurrence one token at a time -- the decode engine, and the sequential
  prefill oracle.
- :class:`QuantizedChunkedScan` extends it with a chunk-parallel prefill scan
  (``prefill_scan``) mirroring the intra/inter-chunk SSD decomposition of
  :func:`repro.mamba.ssm.ssd_chunked_scan`, with the quantization points kept
  at the same operator interfaces.  It advertises ``supports_prefill_scan``,
  which :meth:`MambaBlock.forward <repro.mamba.block.MambaBlock.forward>`
  routes the ``scan_impl="chunked"`` prefill through -- this is how the
  LightMamba* configurations inherit the chunked prefill fast path.

Fake-quant vs. integer-resident execution
-----------------------------------------

The *fake-quant oracle* runs every operand through its integer grid but
stores and combines floats: quantize, dequantize, multiply, repeat.  It is
the numerical reference for accuracy studies, and every integer mode below
is pinned bit-identical (or integer-exact) against it.

The *integer-resident* modes execute the same arithmetic the way the FPGA
does -- on codes, with power-of-two scale *exponents* threaded instead of
float scales:

- ``persistent_state=True`` keeps the recurrent state ``h`` resident as INT
  codes + PoT scales between decode steps (a
  :class:`~repro.mamba.cache.QuantizedSSMState` inside a
  :class:`~repro.mamba.cache.QuantizedLayerCache`).  With it, the decode
  step runs the **all-integer iteration**: x/B/C are quantized once at the
  in-projection boundary and from there to the readout no float tensor is
  materialized.  The ``Delta (.) B``, ``A_bar (.) h`` and ``D (.) x``
  products fold their per-head float scalar into the re-quantization
  multiplier (a PoT shift plus one scalar multiply on hardware -- the EM
  units of Fig. 3), while the code-by-code products (``B_bar (.) x``,
  ``h (.) C``) re-quantize with :func:`repro.quant.pot.shift_requantize`
  alone: a bit shift by the exponent difference, rounding half-to-even so
  shifted codes land exactly where the oracle's ``np.round`` would put
  them.  The step is therefore **bit-identical** to the fake-quant oracle
  under PoT scales -- pinned by ``tests/test_int_state.py`` and enforced
  statically by the DT2xx dtype-flow lint over the ``# integer-resident``
  regions (every surviving float materialization carries a
  ``# quant-point:`` sanction, and the sanction budget can only ratchet
  down).
- ``integer_chunk_body=True`` runs the prefill chunk body's two ``d_state``
  contractions (the ``C B^T`` interaction matrix and the carried-state
  ``h . C`` readout) on true INT32 accumulators over the raw codes --
  the MMU execution model, sharing
  :func:`repro.quant.qlinear.grouped_integer_matmul` and its static overflow
  guard with the quantized linear layers (requires ``quantize_products``).
- ``integer_full_chunk=True`` extends the INT32 accumulation to the two
  remaining intra-chunk matmuls -- the decay-gated ``gate @ x`` output
  contraction and the ``wx @ bh`` state hand-off -- with the decay folded
  into PoT re-quantization of the gated operands and per-token operand
  exponents shift-aligned to a common per-group grid so the contraction
  scales are constant within each accumulator group.

Use fake-quant (the defaults) for algorithm/accuracy work; enable the
integer-resident modes when the run should mirror the hardware datapath --
serving benchmarks, the URAM/BRAM state-footprint study
(:class:`repro.hardware.memory.QuantizedStateMemoryModel`), or any test of
the accelerator's integer semantics.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.mamba.cache import QuantizedLayerCache, QuantizedSSMState
from repro.mamba.config import Mamba2Config
from repro.mamba.ops import softplus
from repro.mamba.ssm import SSMParams, _validate_seq_lens, ssm_decay, ssm_scan
from repro.quant.dtypes import Granularity, IntSpec
from repro.quant.pot import absmax_requant_exponents, pot_exponent, shift_requantize
from repro.quant.qlinear import grouped_integer_matmul
from repro.quant.quantizer import (
    QuantizedTensor,
    QuantizerConfig,
    _group_reshape,
    dequantize,
    quantize,
    quantize_dequantize,
)

__all__ = ["SSMQuantConfig", "QuantizedSSMStep", "QuantizedChunkedScan"]


@dataclass(frozen=True)
class SSMQuantConfig:
    """Settings of the SSM quantization.

    Attributes
    ----------
    bits:
        Integer width of the SSM operands and element-wise products (the
        paper uses INT8 for the SSM regardless of the linear-layer width).
    group_size:
        Per-group quantization group length along the state / channel axis.
    pot_scale:
        Constrain scales to powers of two (the paper's FPGA-friendly scheme).
        Setting it to ``False`` gives the "naive non-PoT" ablation of Fig. 3.
    quantize_state:
        Also keep the recurrent hidden state ``h`` on the integer grid between
        steps (the state is stored in on-chip memory on the FPGA).  The
        chunk-parallel scan applies it at chunk boundaries.
    quantize_products:
        Re-quantize every element-wise product (the re-quantization whose
        hardware cost Fig. 3 analyses).  Disabling keeps products at high
        precision until the output.
    persistent_state:
        Keep the recurrent state resident as INT codes + PoT scales between
        steps (the on-chip state buffer execution model).  Bit-identical to
        the fake-quant decode -- PoT re-quantization of an on-grid state is
        idempotent -- but removes the per-token state round trip.  Requires
        ``quantize_state`` and ``pot_scale``.
    integer_chunk_body:
        Run the prefill chunk body's ``C B^T`` and ``h . C`` contractions on
        INT32 accumulators over the raw codes (the MMU execution model, with
        its static overflow guard).  Requires ``quantize_products``.
    integer_full_chunk:
        Also run the remaining intra-chunk matmuls (``gate @ x`` and the
        ``wx @ bh`` state hand-off) on INT32 accumulators: the decay-gated
        operands are re-quantized onto PoT grids (folding the decay into the
        shift re-quantization) and the per-token operand exponents are
        shift-aligned per accumulator group.  Unlike ``integer_chunk_body``
        this *changes* the scan numerics (alignment and gate quantization
        are additional rounding points); the INT32 accumulation itself is
        still exact, pinned against the float matmul on the same aligned
        codes.  Requires ``integer_chunk_body``.
    """

    bits: int = 8
    group_size: int = 32
    pot_scale: bool = True
    quantize_state: bool = True
    quantize_products: bool = True
    persistent_state: bool = False
    integer_chunk_body: bool = False
    integer_full_chunk: bool = False

    def __post_init__(self) -> None:
        if self.persistent_state and not (self.quantize_state and self.pot_scale):
            raise ValueError(
                "persistent_state keeps h as INT codes + PoT scales; it requires "
                "quantize_state=True and pot_scale=True"
            )
        if self.integer_chunk_body and not (self.quantize_products and self.quantize_state):
            raise ValueError(
                "integer_chunk_body contracts the raw codes of the re-quantized "
                "products and of the carried state; it requires "
                "quantize_products=True and quantize_state=True"
            )
        if self.integer_full_chunk and not self.integer_chunk_body:
            raise ValueError(
                "integer_full_chunk extends the integer chunk body's INT32 "
                "accumulation to the gate @ x and state hand-off matmuls; it "
                "requires integer_chunk_body=True"
            )

    def config(self, granularity: Granularity = Granularity.PER_GROUP) -> QuantizerConfig:
        """Build the underlying :class:`QuantizerConfig`."""
        return QuantizerConfig(
            spec=IntSpec(self.bits),
            granularity=granularity,
            group_size=self.group_size,
            pot_scale=self.pot_scale,
            pot_rounding="ceil",
        )


def _ungroup(grouped: np.ndarray, length: int) -> np.ndarray:
    """Flatten a ``(..., G, g)`` grouped tensor back to ``(..., length)``.

    Inverse of :func:`repro.quant.quantizer._group_reshape`: collapse the
    group axes and trim the zero padding of the last partial group.
    """
    flat = grouped.reshape(grouped.shape[:-2] + (-1,))
    return flat[..., :length]


def _per_element_exponents(scales: np.ndarray, length: int, group_size: int) -> np.ndarray:
    """Per-element PoT grid exponents from a quantizer scales tensor.

    ``scales`` is the ``(..., G, 1)`` per-group scales of a tensor whose
    trailing data axis holds ``length`` elements in groups of
    ``min(group_size, length)``; the result is the ``(..., length)`` integer
    exponent of each element's grid -- the form the shift re-quantization
    threads through the integer-resident step.
    """
    exponents = pot_exponent(scales)[..., 0]
    group = min(group_size, length)
    return np.repeat(exponents, group, axis=-1)[..., :length]


def _common_group_exponents(
    exponents: np.ndarray, group_size: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Common per-accumulator-group exponent and its per-element broadcast.

    The integer matmuls contract along an axis whose elements may sit on
    different PoT grids (per-token operand exponents), while
    :func:`repro.quant.qlinear.grouped_integer_matmul` needs one scale per
    accumulator group.  The common exponent is the group *maximum*: aligning
    every member onto it is a pure right shift, which never magnifies a code,
    so the aligned operand still respects its qmax bound (and with it the
    static overflow guard).  Grouping matches the matmul's
    ``min(group_size, K)`` convention; padding positions (zero codes) are
    excluded from the maximum.

    Returns ``(group_exponents, per_element_exponents)`` shaped
    ``(..., n_groups)`` and ``(..., K)``.
    """
    length = exponents.shape[-1]
    group = min(group_size, length)
    n_groups = -(-length // group)
    pad = n_groups * group - length
    exponents = np.asarray(exponents, dtype=np.int64)
    if pad:
        fill = np.full(
            exponents.shape[:-1] + (pad,), np.iinfo(np.int64).min, dtype=np.int64
        )
        padded = np.concatenate([exponents, fill], axis=-1)
    else:
        padded = exponents
    grouped = padded.reshape(exponents.shape[:-1] + (n_groups, group))
    gmax = np.max(grouped, axis=-1)
    per_element = np.repeat(gmax, group, axis=-1)[..., :length]
    return gmax, per_element


class QuantizedSSMStep:
    """Quantized drop-in replacement for the SSM decode step.

    The operator decomposition matches Fig. 1 / Fig. 3 of the paper: each
    named element-wise multiplication is computed on fake-quantized operands
    and its output is re-quantized before feeding the next operator.

    A leading batch axis is accepted on every tensor argument
    (``supports_batched``); because the quantization grid is per-group along
    the trailing axis, every batch row quantizes exactly as it would alone,
    so batched stepping is bit-identical to per-row stepping.
    """

    #: Advertises the optional leading batch axis to the block's prefill /
    #: decode dispatch (single token loop instead of a per-row Python loop).
    supports_batched = True

    #: The plain step has no chunk-parallel prefill engine; the block's
    #: prefill then falls back to the per-token loop.  See
    #: :class:`QuantizedChunkedScan` for the implementation that sets it.
    supports_prefill_scan = False

    def __init__(self, config: SSMQuantConfig = SSMQuantConfig()):
        self.config = config
        self._qcfg = config.config()
        # (D array, D[:, None]) derived on first use (see _d_col).
        self._static_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        # When set, prefill_scan ignores integer_chunk_body and runs the
        # float fake-quant chunk body (see fallback_fake_quant).
        self._fake_quant_fallback = False

    @contextmanager
    def fallback_fake_quant(self) -> Iterator["QuantizedSSMStep"]:
        """Temporarily run the fake-quant chunk body instead of the MMU path.

        The serving supervisor's graceful-degradation hook: inside the
        context :meth:`QuantizedChunkedScan.prefill_scan` skips the
        ``integer_chunk_body`` INT32 kernels (whose static overflow guard can
        legitimately raise :class:`OverflowError`) and computes the same
        contractions on the float fake-quant path -- the numerics every
        integer run is verified against, so a degraded request is still
        served on the model's reference grid.  Decode likewise routes to the
        fake-quant oracle :meth:`_step_oracle` inside the context instead of
        the shift-requantized :meth:`_step_integer`; the two are bit-identical
        under PoT scales, so degrading never changes decoded tokens.
        Re-entrant; restores the previous mode on exit.
        """
        previous = self._fake_quant_fallback
        self._fake_quant_fallback = True
        try:
            yield self
        finally:
            self._fake_quant_fallback = previous

    @property
    def state_resident(self) -> bool:
        """Whether this step keeps the recurrent state as integer codes.

        :meth:`Mamba2Model.new_cache <repro.mamba.model.Mamba2Model.new_cache>`
        checks this capability to decide between a float
        :class:`~repro.mamba.cache.LayerCache` and an integer-resident
        :class:`~repro.mamba.cache.QuantizedLayerCache` for the block.
        """
        return self.config.persistent_state

    def _q(self, x: np.ndarray) -> np.ndarray:
        """Fake-quantize a tensor on the configured grid."""
        return quantize_dequantize(x, self._qcfg)

    def _qp(self, x: np.ndarray) -> np.ndarray:
        """Re-quantize an element-wise product (if enabled)."""
        if not self.config.quantize_products:
            return x
        return quantize_dequantize(x, self._qcfg)

    # ------------------------------------------------------------------
    # Integer-resident state plumbing
    # ------------------------------------------------------------------
    def quantize_state_codes(self, state: np.ndarray) -> QuantizedSSMState:  # integer-resident
        """Quantize a float state into the resident codes + scales container.

        For a state that is already on the PoT grid (every state this class
        ever hands out) the quantization is exact, so converting between the
        float and resident representations never changes the carried values.
        """
        # quant-point: float state onto the resident codes + scales grid
        qt = quantize(np.asarray(state, dtype=np.float64), self._qcfg)
        return QuantizedSSMState(
            codes=qt.codes,
            scales=qt.scales,
            group_size=self.config.group_size,
            bits=self.config.bits,
        )

    def _state_values(self, state) -> np.ndarray:
        """The float view of an incoming state, quantized onto the grid.

        Oracle-path plumbing only (the integer-resident step never leaves the
        codes).  A resident :class:`QuantizedSSMState` dequantizes directly
        (its codes are on the grid by construction -- no absmax / rounding
        pass); a float state goes through the fake-quant round trip when
        ``quantize_state`` is enabled, exactly as before.
        """
        if isinstance(state, QuantizedSSMState):
            return state.dequantize()
        state = np.asarray(state, dtype=np.float64)
        if self.config.quantize_state:
            state = self._q(state)
        return state

    def zeros_cache(  # integer-resident
        self, config: Mamba2Config, batch_size: Optional[int] = None
    ) -> QuantizedLayerCache:
        """A fresh integer-resident layer cache (zero codes, epsilon scales).

        An all-zero state quantizes to all-zero codes with the quantizer's
        well-defined minimum scale (see :func:`repro.quant.quantizer.compute_scales`
        and the all-zero-group handling of :func:`repro.quant.pot.pot_quantize_scale`),
        so the zero cache decodes back to exact zeros.
        """
        lead = () if batch_size is None else (batch_size,)
        state = np.zeros(  # quant-point: zero state buffer, quantized to codes below
            lead + (config.nheads, config.headdim, config.d_state), dtype=np.float64
        )
        return QuantizedLayerCache(
            conv_state=np.zeros(  # quant-point: conv taps stay float (not SSM-quantized)
                lead + (config.conv_dim, config.d_conv), dtype=np.float64
            ),
            ssm_state=self.quantize_state_codes(state),
        )

    def _d_col(self, params: SSMParams) -> np.ndarray:
        """The skip coefficient broadcast column ``D[:, None]``, cached.

        Keeps the reshape + copy out of the per-token hot loop (``params.A``
        is already cached by :class:`SSMParams`).  Keyed on the ``D`` array
        itself, so reassigning ``params.D`` invalidates the cache exactly
        like reassigning ``A_log`` invalidates ``SSMParams.A``; like there,
        in-place mutation of the array is not tracked.
        """
        cached = self._static_cache
        if cached is None or cached[0] is not params.D:
            cached = (params.D, np.ascontiguousarray(params.D[:, None]))
            self._static_cache = cached
        return cached[1]

    def __call__(  # integer-resident
        self,
        params: SSMParams,
        x: np.ndarray,
        B: np.ndarray,
        C: np.ndarray,
        dt: np.ndarray,
        state: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Advance the quantized recurrence one token (``ssm_impl`` signature).

        ``state`` may be a float array (fake-quant mode: re-quantized on
        entry when ``quantize_state`` is set) or a resident
        :class:`~repro.mamba.cache.QuantizedSSMState` (integer-resident
        mode: codes in, codes out).  A resident state dispatches to the
        all-integer iteration :meth:`_step_integer` -- no float tensor
        between the entry quantizations and the readout -- unless product
        re-quantization is disabled, scales are not PoT (shifts need PoT
        grids), or the fake-quant degradation fallback is active; those
        cases run the float oracle :meth:`_step_oracle`.  Under PoT scales
        the two paths are bit-identical.
        """
        if (
            isinstance(state, QuantizedSSMState)
            and self.config.quantize_products
            and self.config.pot_scale
            and not self._fake_quant_fallback
        ):
            return self._step_integer(params, x, B, C, dt, state)
        return self._step_oracle(params, x, B, C, dt, state)

    def _step_oracle(
        self,
        params: SSMParams,
        x: np.ndarray,
        B: np.ndarray,
        C: np.ndarray,
        dt: np.ndarray,
        state: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The fake-quant reference step: floats through every integer grid.

        The numerical oracle the integer-resident iteration is pinned
        against.  Every operand and element-wise product passes through its
        quantization grid but is stored and combined as float64; with a
        resident state the returned state is re-quantized into codes at the
        exit (exact -- the new state is on-grid by construction).
        """
        d_col = self._d_col(params)
        resident = isinstance(state, QuantizedSSMState)
        x = self._q(np.asarray(x, dtype=np.float64))
        B = self._q(np.asarray(B, dtype=np.float64))
        C = self._q(np.asarray(C, dtype=np.float64))
        state = self._state_values(state)

        # Non-linear operators stay in floating point (dedicated FPGA units);
        # the decay pair is computed once per step by the shared helper.
        delta, a_bar = ssm_decay(params, dt)

        delta_mul_b = self._qp(delta[..., :, None] * B[..., None, :])
        b_mul_x = self._qp(delta_mul_b[..., :, None, :] * x[..., :, :, None])
        a_mul_h = self._qp(a_bar[..., :, None, None] * state)
        new_state = a_mul_h + b_mul_x
        out_state = new_state
        if resident:
            # One quantization pass: the codes become the resident state and
            # their dequantized view feeds the readout below.
            out_state = self.quantize_state_codes(new_state)
            new_state = out_state.dequantize()
        elif self.config.quantize_state:
            new_state = self._q(new_state)
            out_state = new_state

        h_mul_c = self._qp(new_state * C[..., None, None, :])
        y_ssm = np.sum(h_mul_c, axis=-1)
        x_mul_d = self._qp(d_col * x)
        y = y_ssm + x_mul_d
        return y, out_state

    def _step_integer(  # integer-resident
        self,
        params: SSMParams,
        x: np.ndarray,
        B: np.ndarray,
        C: np.ndarray,
        dt: np.ndarray,
        state: QuantizedSSMState,
    ) -> Tuple[np.ndarray, QuantizedSSMState]:
        """The all-integer decode iteration (codes in, codes out).

        From the three entry quantizations at the in-projection boundary to
        the ``d_state`` readout reduction, every tensor is an integer code
        array with its PoT scale *exponent* threaded alongside.  The per-head
        float scalars (``Delta``, ``A_bar``, ``D`` -- outputs of the
        dedicated non-linear units) fold into the re-quantization
        multipliers; the code-by-code products (``B_bar (.) x``,
        ``h (.) C``) re-quantize with :func:`repro.quant.pot.shift_requantize`
        alone.  Bit-identical to :meth:`_step_oracle` by construction: every
        destination exponent replicates the oracle's absmax -> scale
        derivation float-op for float-op (:func:`absmax_requant_exponents`),
        the shifts round half-to-even exactly like the oracle's ``np.round``,
        and PoT rescaling commutes with float rounding.
        """
        qmin, qmax = self._qcfg.spec.qmin, self._qcfg.spec.qmax
        bits = self.config.bits
        gsz = self.config.group_size
        headdim, n = state.codes.shape[-2], state.codes.shape[-1]

        # Entry quantization: the only absmax/round passes of the step.
        x_qt = quantize(np.asarray(x, dtype=np.float64), self._qcfg)  # quant-point: x entry
        b_qt = quantize(np.asarray(B, dtype=np.float64), self._qcfg)  # quant-point: B entry
        c_qt = quantize(np.asarray(C, dtype=np.float64), self._qcfg)  # quant-point: C entry

        if not (
            np.isfinite(x_qt.scales).all()
            and np.isfinite(b_qt.scales).all()
            and np.isfinite(c_qt.scales).all()
            and np.isfinite(state.scales).all()
            and np.isfinite(dt).all()
        ):
            # A poisoned operand (e.g. fault-injected non-finite conv taps)
            # yields a non-PoT NaN scale, which the exponent extraction would
            # reject for the whole batch.  The float oracle instead carries
            # the poison through row-independent arithmetic, so the serving
            # supervisor's health check attributes the corruption to exactly
            # the affected rows -- healthy rows stay bit-identical.
            return self._step_oracle(params, x, B, C, dt, state)

        cx = x_qt.codes.astype(np.int64)                      # (..., h, p)
        ex = pot_exponent(x_qt.scales)[..., 0]                # (..., h, Gp)
        ex_el = _per_element_exponents(x_qt.scales, headdim, gsz)  # (..., h, p)
        cb_g, _, _ = _group_reshape(b_qt.codes.astype(np.int64), gsz)  # (..., Gn, gn)
        e_b = pot_exponent(b_qt.scales)[..., 0]               # (..., Gn)
        cc_g, _, _ = _group_reshape(c_qt.codes.astype(np.int64), gsz)  # (..., Gn, gn)
        e_c = pot_exponent(c_qt.scales)[..., 0]               # (..., Gn)
        ch_g, _, _ = _group_reshape(state.codes, gsz)         # (..., h, p, Gn, gn)
        e_h = pot_exponent(state.scales)[..., 0]              # (..., h, p, Gn)

        # Non-linear operators stay in floating point (dedicated FPGA units).
        delta, a_bar = ssm_decay(params, dt)                  # (..., h) each

        # Delta (.) B: the positive per-head scalar folds into the requant
        # multiplier (the scalar times a PoT realignment -- one EM-unit
        # multiply per code); the group absmax is the scalar times the code
        # absmax at the source exponent, so the destination grid is exactly
        # the oracle's.
        amax_b = np.max(np.abs(cb_g), axis=-1)                # (..., Gn)
        e3 = absmax_requant_exponents(
            np.ldexp(delta[..., :, None] * amax_b[..., None, :], e_b[..., None, :]),
            bits,
        )                                                     # (..., h, Gn)
        m3 = np.ldexp(delta[..., :, None], e_b[..., None, :] - e3)
        c3 = np.clip(np.round(cb_g[..., None, :, :] * m3[..., :, :, None]), qmin, qmax)
        c3 = c3.astype(np.int64)                              # (..., h, Gn, gn)

        # B_bar (.) x: code-by-code product; pure shift re-quantization (the
        # product exponent is the sum of the operand exponents).  The group
        # absmax of the outer product factors into the operands' absmaxes
        # (max |a_i * b| = max |a_i| * |b|), so the destination grid comes
        # from two small reductions instead of a pass over the product.
        p4 = c3[..., :, None, :, :] * cx[..., :, :, None, None]  # (..., h, p, Gn, gn)
        e4_src = e3[..., :, None, :] + ex_el[..., :, :, None]    # (..., h, p, Gn)
        amax4 = np.max(np.abs(c3), axis=-1)[..., :, None, :] * np.abs(cx)[..., :, :, None]
        e4 = absmax_requant_exponents(amax4 * np.exp2(e4_src), bits)
        c4 = shift_requantize(p4, e4_src[..., None], e4[..., None], bits, "half_even")

        # A_bar (.) h: scalar fold again (a_bar in (0, 1]).
        amax_h = np.max(np.abs(ch_g), axis=-1)                # (..., h, p, Gn)
        e5 = absmax_requant_exponents(
            a_bar[..., :, None, None] * amax_h * np.exp2(e_h), bits
        )
        m5 = np.ldexp(a_bar[..., :, None, None], e_h - e5)
        c5 = np.clip(np.round(ch_g * m5[..., None]), qmin, qmax)  # (..., h, p, Gn, gn)

        # State update: the two addends sit on different PoT grids, so the
        # add runs on the wide accumulator (multiplying by an exp2 scale is
        # the same exact power-of-two realignment as ldexp, at a fraction of
        # the cost; the float64 mantissa holds every aligned sum clipped
        # codes can produce), and the sum re-quantizes onto the fresh
        # per-group grid that becomes the resident state -- multiplying by
        # 2**-e6 is the exact PoT division of the oracle's quantize.
        s = c5 * np.exp2(e5)[..., None] + c4 * np.exp2(e4)[..., None]
        e6 = absmax_requant_exponents(np.max(np.abs(s), axis=-1), bits)
        scale6 = np.exp2(e6)[..., None]
        codes6 = np.clip(np.round(s * np.exp2(-e6)[..., None]), qmin, qmax)
        out_state = QuantizedSSMState(
            codes=_ungroup(codes6, n).astype(np.int32),
            scales=scale6,
            group_size=gsz,
            bits=bits,
        )

        # h (.) C readout: code-by-code product, pure shift, then the exact
        # ldexp decode of the shifted codes feeds the d_state reduction (the
        # padded tail is trimmed first so the sum sees exactly the oracle's
        # n-element operand).
        p7 = codes6.astype(np.int64) * cc_g[..., None, None, :, :]  # (..., h, p, Gn, gn)
        e7_src = e6 + e_c[..., None, None, :]                 # (..., h, p, Gn)
        e7 = absmax_requant_exponents(
            np.max(np.abs(p7), axis=-1) * np.exp2(e7_src), bits
        )
        c7 = shift_requantize(p7, e7_src[..., None], e7[..., None], bits, "half_even")
        y_ssm = np.sum(_ungroup(c7 * np.exp2(e7)[..., None], n), axis=-1)

        # D (.) x skip: signed scalar fold of the per-head skip coefficient.
        cx_g, _, _ = _group_reshape(cx, gsz)                  # (..., h, Gp, gp)
        amax_x = np.max(np.abs(cx_g), axis=-1)                # (..., h, Gp)
        e8 = absmax_requant_exponents(
            np.ldexp(np.abs(params.D)[..., :, None] * amax_x, ex), bits
        )
        m8 = np.ldexp(params.D[..., :, None], ex - e8)
        c8 = np.clip(np.round(cx_g * m8[..., None]), qmin, qmax)
        x_mul_d = _ungroup(c8 * np.exp2(e8)[..., None], headdim)

        return y_ssm + x_mul_d, out_state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(bits={self.config.bits}, "
            f"group_size={self.config.group_size}, pot={self.config.pot_scale})"
        )


class QuantizedChunkedScan(QuantizedSSMStep):
    """Chunk-parallel quantized prefill scan (the SSMU fast path).

    Mirrors the intra/inter-chunk SSD decomposition of
    :func:`repro.mamba.ssm.ssd_chunked_scan` while keeping the quantization
    points of :class:`QuantizedSSMStep` fixed at the operator interfaces,
    the FastMamba / ViM-Q recipe for chunk-parallel quantized Mamba blocks:

    - the inputs ``x`` / ``B`` / ``C`` are fake-quantized on entry exactly as
      the sequential step quantizes them per token (per-group grids live on
      the trailing axis, so quantizing a whole chunk at once is bit-identical
      to quantizing each token alone);
    - the ``Delta (.) B`` and ``D (.) x`` element-wise products are
      re-quantized at the SSMU interfaces, bit-identically to the step;
    - the recurrent state is quantized at chunk *boundaries* (entry and every
      hand-off) instead of after every token, and the intra-chunk outer
      products / state readout accumulate at high precision -- the MMU-style
      wide-accumulator interpretation of the dense in-chunk matmuls.

    Two of the step's per-token re-quantization points (``B_bar (.) x`` and
    ``h (.) C``) therefore collapse into the chunk matmuls; with
    ``chunk_size=1`` the scan dispatches to the exact per-token step loop
    (shared code with :class:`QuantizedSSMStep`), making the reduction to the
    sequential quantized oracle bit-identical by construction.  At larger
    chunk sizes the scan is the fast approximation whose quality the eval
    harness pins (perplexity shift < 0.1 vs. the sequential oracle).

    Decode is inherited unchanged from :class:`QuantizedSSMStep`, so a model
    carrying this implementation decodes bit-identically to one carrying the
    plain step.
    """

    #: Tells MambaBlock.forward to route a ``scan_impl="chunked"`` prefill
    #: through :meth:`prefill_scan` instead of the per-token loop.
    supports_prefill_scan = True

    def prefill_scan(  # integer-resident
        self,
        params: SSMParams,
        x: np.ndarray,
        B: np.ndarray,
        C: np.ndarray,
        dt: np.ndarray,
        initial_state: Optional[np.ndarray] = None,
        chunk_size: int = 64,
        seq_lens: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Run the quantized recurrence over a full sequence, chunk-parallel.

        The signature matches :func:`repro.mamba.ssm.ssd_chunked_scan`:
        ``x`` is ``(seq_len, nheads, headdim)`` (optionally with a leading
        batch axis carried by every argument), ``B`` / ``C`` are
        ``(seq_len, d_state)``, ``dt`` is the raw per-head step size (before
        softplus), ``initial_state`` an optional warm state (copied, then
        quantized at chunk entry when ``quantize_state`` is set), and
        ``seq_lens`` optional per-row true lengths of a right-padded ragged
        batch -- the returned state rows are then snapshots at each row's
        true last token.

        ``initial_state`` may also be a resident
        :class:`~repro.mamba.cache.QuantizedSSMState` (codes in, codes out):
        the scan then starts from the dequantized codes -- which are on the
        grid already, so the chunk-entry quantization is skipped -- and the
        returned final state (or per-row ``seq_lens`` snapshot) is a resident
        container again, keeping segmented serving prefills integer-resident
        end to end.

        With ``integer_chunk_body`` the two ``d_state`` contractions of the
        chunk body (the dense ``C B^T`` interaction and the carried-state
        ``h . C`` readout) run on INT32 accumulators over the raw codes via
        :func:`repro.quant.qlinear.grouped_integer_matmul` -- the MMU
        execution model, including its static overflow guard.  Under PoT
        scales every partial product is exactly representable, so the
        integer body agrees with the float chunk body to the last bit of the
        accumulation order.

        With ``integer_full_chunk`` the remaining two intra-chunk matmuls
        also run on the INT32 accumulator: the decay-gated interaction
        (``gate @ x``) quantizes the gate onto a PoT grid (folding the decay
        into that re-quantization) and contracts it against the x codes, and
        the ``wx @ bh`` state hand-off quantizes the decay-carried x and
        contracts it against the ``Delta (.) B`` codes.  The per-token
        operand exponents are shift-aligned to the per-group maximum
        (:func:`_common_group_exponents`) so every accumulator group has one
        scale; the alignment shifts and gate quantization are additional
        rounding points, so this mode is a further approximation of the float
        chunk scan (the INT32 accumulation itself stays exact).

        Returns ``(y, final_state)`` with ``y`` shaped like ``x``.
        """
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        resident = isinstance(initial_state, QuantizedSSMState)
        x = np.asarray(x, dtype=np.float64)  # quant-point: float entry staging
        B = np.asarray(B, dtype=np.float64)  # quant-point: float entry staging
        C = np.asarray(C, dtype=np.float64)  # quant-point: float entry staging
        dt = np.asarray(dt, dtype=np.float64)  # quant-point: float entry staging
        if x.ndim not in (3, 4):
            raise ValueError(
                "x must have shape (seq_len, nheads, headdim) or "
                "(batch, seq_len, nheads, headdim)"
            )
        batched = x.ndim == 4
        seq_len, nheads, headdim = x.shape[-3:]
        d_state = B.shape[-1]
        if nheads != params.nheads:
            raise ValueError("head count mismatch between x and params")
        lead = x.shape[:1] if batched else ()
        state_shape = lead + (nheads, headdim, d_state)
        if initial_state is None:
            state = np.zeros(state_shape, dtype=np.float64)  # quant-point: zero state
        else:
            if resident:
                state = initial_state.dequantize()  # quant-point: resident entry
            else:
                # quant-point: float entry copy
                state = np.array(initial_state, dtype=np.float64, copy=True)
            if state.shape != state_shape:
                raise ValueError(
                    f"initial_state must have shape {state_shape}, got {state.shape}"
                )
        if seq_lens is not None:
            seq_lens = _validate_seq_lens(seq_lens, batched, x.shape[0], seq_len)

        if chunk_size == 1:
            # The per-token loop: ssm_scan driving this object's own step, so
            # the chunk_size=1 reduction to the sequential quantized oracle
            # is bit-identical by construction (shared step code, shared
            # token loop and seq_lens snapshot bookkeeping).  The token loop
            # runs on the float view; a resident caller gets the final state
            # re-quantized back into codes (exact -- the state is on-grid).
            y, final = ssm_scan(
                params, x, B, C, dt, initial_state=state, seq_lens=seq_lens, step_fn=self
            )
            if resident:
                final = self.quantize_state_codes(final)
            return y, final

        A, d_col = params.A, self._d_col(params)
        quantize_state = self.config.quantize_state
        integer_body = self.config.integer_chunk_body and not self._fake_quant_fallback
        integer_full = integer_body and self.config.integer_full_chunk

        # Operand quantization at the SSMU interfaces.  Per-group grids are
        # computed along the trailing axis only, so quantizing the whole
        # sequence at once is bit-identical to the step's per-token _q.  The
        # integer chunk body keeps the raw codes of C and of the re-quantized
        # Delta (.) B product next to their float views; the full-integer
        # chunk additionally keeps the x codes for the gate @ x contraction.
        if integer_full:
            x_qt = quantize(x, self._qcfg)  # quant-point: x codes (kept for the MMU body)
            qx = dequantize(x_qt)  # quant-point: x float view
        else:
            x_qt = None
            qx = self._q(x)  # quant-point: x chunk quantization
        qB = self._q(B)  # quant-point: B chunk quantization
        c_qt = quantize(C, self._qcfg)  # quant-point: C codes (kept for the MMU body)
        qC = dequantize(c_qt)  # quant-point: C float view
        delta = softplus(dt + params.dt_bias)               # (..., T, h)
        log_decay = delta * A                               # (..., T, h), negative
        # Delta (.) B, re-quantized exactly as the step's delta_mul_b.
        if integer_body:
            # quant-point: Delta (.) B requant, keeping codes for the MMU body
            db_qt = quantize(delta[..., None] * qB[..., None, :], self._qcfg)
            qdB = dequantize(db_qt)  # quant-point: float view (..., T, h, n)
        else:
            db_qt = None
            # quant-point: Delta (.) B requant (..., T, h, n)
            qdB = self._qp(delta[..., None] * qB[..., None, :])
        # D (.) x skip path, re-quantized exactly as the step's x_mul_d.
        y = self._qp(d_col * qx)  # quant-point: x (.) D skip

        state_qt: Optional[QuantizedTensor] = None
        if resident:
            # The incoming codes are the chunk-entry quantization.
            state_qt = QuantizedTensor(
                codes=initial_state.codes,
                scales=initial_state.scales,
                config=self._qcfg,
                shape=initial_state.shape,
            )
        elif quantize_state:
            state_qt = quantize(state, self._qcfg)  # quant-point: chunk-entry quantization
            state = dequantize(state_qt)  # quant-point: chunk-entry float view
        if seq_lens is not None:
            snapshot = np.zeros_like(state)  # quant-point: seq_lens snapshot buffer

        # The loop below deliberately mirrors (rather than shares) the chunk
        # body of ssd_chunked_scan: the FP scan contracts one head-independent
        # C B^T matrix per chunk, a factorization that quantization breaks --
        # folding Delta and the requant into qdB gives B a head axis, so every
        # contraction here is per-head.  Keep the two bodies in sync when
        # touching either.
        qmax = self._qcfg.spec.qmax
        group = self._qcfg.group_size
        chunk = min(chunk_size, seq_len)
        if integer_full:
            # Per-element PoT grid exponents of the per-token operands, in
            # the integer form the alignment shifts consume.
            ex_el = _per_element_exponents(x_qt.scales, headdim, group)  # (..., T, h, p)
            edb_el = _per_element_exponents(db_qt.scales, d_state, group)  # (..., T, h, n)
        # quant-point: the causal mask is a float constant, not a tensor operand
        causal_full = np.tril(np.ones((chunk, chunk), dtype=np.float64))
        for start in range(0, seq_len, chunk):
            stop = min(start + chunk, seq_len)
            q_len = stop - start
            xc = qx[..., start:stop, :, :]                  # (..., Q, h, p)
            bc = qdB[..., start:stop, :, :]                 # (..., Q, h, n)
            cc = qC[..., start:stop, :]                     # (..., Q, n)
            lc = np.cumsum(log_decay[..., start:stop, :], axis=-2)  # (..., Q, h)

            # Dense decay-weighted interaction on the quantized operands:
            #   G[t, s, head] = exp(L_t - L_s) * (qC_t . qdB_s[head]), s <= t.
            # The d_state contraction runs on the MMU-style wide accumulator:
            # in float mode that is the float64 matmul below; in integer mode
            # the raw codes accumulate in a true INT32 per quantization group
            # (grouped_integer_matmul, with the static overflow guard).  L is
            # decreasing so causal entries have diff <= 0, and clamping keeps
            # the masked upper triangle finite.
            bh = np.moveaxis(bc, -2, -3)                    # (..., h, Q, n)
            if integer_body:
                cc_codes = c_qt.codes[..., start:stop, :]                # (..., Q, n)
                cc_scales = c_qt.scales[..., start:stop, :, 0]           # (..., Q, G)
                bh_codes = np.moveaxis(db_qt.codes[..., start:stop, :, :], -2, -3)
                bh_scales = np.moveaxis(db_qt.scales[..., start:stop, :, :, 0], -2, -3)
                cb = np.moveaxis(
                    grouped_integer_matmul(
                        cc_codes[..., None, :, :],
                        cc_scales[..., None, :, :],
                        bh_codes,
                        bh_scales,
                        group_size=group,
                        x_qmax=qmax,
                        w_qmax=qmax,
                    ),
                    -3,
                    -1,
                )                                           # (..., Q, Q, h)
            else:
                cb = np.moveaxis(
                    cc[..., None, :, :] @ np.swapaxes(bh, -1, -2), -3, -1
                )                                           # (..., Q, Q, h)
            causal = causal_full if q_len == chunk else causal_full[:q_len, :q_len]
            diff = lc[..., :, None, :] - lc[..., None, :, :]
            gate = cb * np.exp(np.minimum(diff, 0.0)) * causal[..., :, :, None]
            if integer_full:
                # Decay-gated interaction on the INT32 accumulator: the gate
                # (decay folded in) re-quantizes onto a PoT grid along the
                # contraction axis, and the per-token x codes shift-align to
                # one exponent per accumulator group (pure right shifts, so
                # the qmax bound and the overflow guard still hold).
                gate_h = np.moveaxis(gate, -1, -3)          # (..., h, Q, Q)
                g_qt = quantize(gate_h, self._qcfg)  # quant-point: gate requant (decay folded)
                xh_codes = np.moveaxis(
                    x_qt.codes[..., start:stop, :, :], -3, -1
                ).astype(np.int64)                          # (..., h, p, Q)
                xh_exp = np.moveaxis(ex_el[..., start:stop, :, :], -3, -1)
                x_ge, x_el = _common_group_exponents(xh_exp, group)
                xh_al = shift_requantize(
                    xh_codes, xh_exp, x_el, self.config.bits, "half_even"
                )
                yc = np.moveaxis(
                    grouped_integer_matmul(
                        g_qt.codes,
                        g_qt.scales[..., 0],
                        xh_al,
                        np.ldexp(1.0, x_ge),
                        group_size=group,
                        x_qmax=qmax,
                        w_qmax=qmax,
                    ),
                    -3,
                    -2,
                )                                           # (..., Q, h, p)
            else:
                yc = np.moveaxis(
                    np.moveaxis(gate, -1, -3) @ np.moveaxis(xc, -2, -3), -3, -2
                )                                           # (..., Q, h, p)
            # Carried-in state readout (h_in . C per head, decayed to t).
            if integer_body:
                readout = grouped_integer_matmul(
                    state_qt.codes,
                    state_qt.scales[..., 0],
                    cc_codes[..., None, :, :],
                    cc_scales[..., None, :, :],
                    group_size=group,
                    x_qmax=qmax,
                    w_qmax=qmax,
                )                                           # (..., h, p, Q)
            else:
                readout = state @ np.swapaxes(cc, -1, -2)[..., None, :, :]  # (..., h, p, Q)
            yc += np.exp(lc)[..., None] * np.moveaxis(readout, -1, -3)
            y[..., start:stop, :, :] += yc

            if seq_lens is not None:
                # Snapshot rows whose true last token falls inside the chunk:
                # the hand-off formula truncated at the row's local position.
                for row in np.nonzero((seq_lens > start) & (seq_lens <= stop))[0]:
                    j = int(seq_lens[row]) - 1 - start
                    carry_j = np.exp(lc[row, j][None, :] - lc[row, : j + 1])  # (j+1, h)
                    wx_j = np.moveaxis(carry_j[:, :, None] * xc[row, : j + 1], 0, -1)
                    row_state = (
                        np.exp(lc[row, j])[:, None, None] * state[row]
                        + wx_j @ np.moveaxis(bc[row, : j + 1], -2, -3)
                    )
                    # quant-point: row snapshot requant
                    snapshot[row] = self._q(row_state) if quantize_state else row_state

            # Chunk hand-off, then the chunk-boundary state quantization (kept
            # as codes when the next chunk's readout or the caller needs them).
            last = lc[..., -1, :]                           # (..., h)
            carry = np.exp(last[..., None, :] - lc)         # (..., Q, h)
            wx = np.moveaxis(carry[..., None] * xc, -3, -1)  # (..., h, p, Q)
            if integer_full:
                # State hand-off on the INT32 accumulator: the decay-carried
                # x re-quantizes onto a PoT grid along the token axis and
                # contracts against the shift-aligned Delta (.) B codes.
                w_qt = quantize(wx, self._qcfg)  # quant-point: decay-carried x requant
                bh_t = np.swapaxes(bh_codes, -1, -2).astype(np.int64)  # (..., h, n, Q)
                bh_exp = np.moveaxis(edb_el[..., start:stop, :, :], -3, -1)
                b_ge, b_el = _common_group_exponents(bh_exp, group)
                bh_al = shift_requantize(
                    bh_t, bh_exp, b_el, self.config.bits, "half_even"
                )
                handoff = grouped_integer_matmul(
                    w_qt.codes,
                    w_qt.scales[..., 0],
                    bh_al,
                    np.ldexp(1.0, b_ge),
                    group_size=group,
                    x_qmax=qmax,
                    w_qmax=qmax,
                )                                           # (..., h, p, n)
                state = np.exp(last)[..., :, None, None] * state + handoff
            else:
                state = np.exp(last)[..., :, None, None] * state + wx @ bh
            if quantize_state:
                state_qt = quantize(state, self._qcfg)  # quant-point: chunk boundary
                state = dequantize(state_qt)  # quant-point: boundary float view

        if seq_lens is not None:
            if resident:
                # Rows were quantized one by one above; per-group grids live
                # on the trailing axis, so re-quantizing the stacked snapshot
                # into codes is exact (idempotent on-grid requantization).
                return y, self.quantize_state_codes(snapshot)
            return y, snapshot
        if resident:
            if not quantize_state:
                # Degenerate configuration (resident container handed to a
                # scan that does not quantize hand-offs): quantize once here.
                return y, self.quantize_state_codes(state)
            return y, QuantizedSSMState(
                codes=state_qt.codes,
                scales=state_qt.scales,
                group_size=self.config.group_size,
                bits=self.config.bits,
            )
        return y, state
