"""Activation-statistics observers used during calibration.

Observers accumulate statistics over calibration batches; the quantization
methods read them to derive scaling / shifting factors:

- :class:`AbsMaxObserver` -- per-channel absolute maxima (SmoothQuant).
- :class:`MinMaxObserver` -- per-channel minima and maxima (Outlier
  Suppression+ shifting).
- :class:`PercentileObserver` -- per-channel high percentiles, more robust to
  single extreme tokens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

__all__ = ["AbsMaxObserver", "MinMaxObserver", "PercentileObserver"]


def _as_2d(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    if x.ndim == 1:
        return x[None, :]
    if x.ndim == 2:
        return x
    return x.reshape(-1, x.shape[-1])


@dataclass
class AbsMaxObserver:
    """Tracks the running per-channel absolute maximum."""

    num_channels: Optional[int] = None
    absmax: Optional[np.ndarray] = None
    count: int = 0

    def update(self, x: np.ndarray) -> None:
        """Fold a batch of activations of shape ``(..., channels)``."""
        x2 = _as_2d(x)
        if self.num_channels is None:
            self.num_channels = x2.shape[1]
        if x2.shape[1] != self.num_channels:
            raise ValueError(
                f"expected {self.num_channels} channels, got {x2.shape[1]}"
            )
        batch_max = np.max(np.abs(x2), axis=0)
        self.absmax = batch_max if self.absmax is None else np.maximum(self.absmax, batch_max)
        self.count += x2.shape[0]

    def result(self) -> np.ndarray:
        """Per-channel absolute maxima; raises if no data was observed."""
        if self.absmax is None:
            raise RuntimeError("observer has not seen any data")
        return self.absmax.copy()


@dataclass
class MinMaxObserver:
    """Tracks running per-channel minima and maxima."""

    num_channels: Optional[int] = None
    minimum: Optional[np.ndarray] = None
    maximum: Optional[np.ndarray] = None
    count: int = 0

    def update(self, x: np.ndarray) -> None:
        x2 = _as_2d(x)
        if self.num_channels is None:
            self.num_channels = x2.shape[1]
        if x2.shape[1] != self.num_channels:
            raise ValueError(
                f"expected {self.num_channels} channels, got {x2.shape[1]}"
            )
        lo = np.min(x2, axis=0)
        hi = np.max(x2, axis=0)
        self.minimum = lo if self.minimum is None else np.minimum(self.minimum, lo)
        self.maximum = hi if self.maximum is None else np.maximum(self.maximum, hi)
        self.count += x2.shape[0]

    def result(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(minimum, maximum)`` per channel."""
        if self.minimum is None or self.maximum is None:
            raise RuntimeError("observer has not seen any data")
        return self.minimum.copy(), self.maximum.copy()

    def shift(self) -> np.ndarray:
        """The OS+ channel shift: the midpoint of the observed range."""
        lo, hi = self.result()
        return (lo + hi) / 2.0

    def half_range(self) -> np.ndarray:
        """Half the observed per-channel range (the post-shift absmax)."""
        lo, hi = self.result()
        return (hi - lo) / 2.0


@dataclass
class PercentileObserver:
    """Collects samples and reports a per-channel magnitude percentile.

    Keeps a bounded reservoir of rows so memory stays constant regardless of
    calibration size.
    """

    percentile: float = 99.9
    max_rows: int = 4096
    _rows: List[np.ndarray] = field(default_factory=list)
    _stored: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.percentile <= 100.0:
            raise ValueError("percentile must be in (0, 100]")

    def update(self, x: np.ndarray) -> None:
        x2 = _as_2d(x)
        room = self.max_rows - self._stored
        if room > 0:
            take = x2[:room]
            self._rows.append(np.abs(take))
            self._stored += take.shape[0]

    def result(self) -> np.ndarray:
        if not self._rows:
            raise RuntimeError("observer has not seen any data")
        data = np.concatenate(self._rows, axis=0)
        return np.percentile(data, self.percentile, axis=0)
