"""Power-of-two (PoT) scale quantization for the SSM layer.

Sec. IV-B of the paper: the SSM layer is dominated by element-wise
multiplications (EMs) whose outputs must be re-quantized back to INT8.  With
an arbitrary scale the re-quantization needs a real multiplier per element;
constraining every scale to a power of two turns re-quantization into a bit
shift, which is what makes the quantized SSMU cheap on FPGA (Fig. 3).

This module provides the PoT scale snapping, a per-group PoT fake quantizer,
and an integer-exact :func:`shift_requantize` that demonstrates the shift
implementation is bit-exact against the reference divide-and-round.
"""

from __future__ import annotations

import numpy as np

from repro.quant.dtypes import Granularity, IntSpec
from repro.quant.quantizer import QuantizerConfig, quantize_dequantize

__all__ = [
    "pot_quantize_scale",
    "pot_quantizer_config",
    "pot_quantize_dequantize",
    "shift_requantize",
    "requantize_reference",
]


#: Scale floor shared with :data:`repro.quant.quantizer._EPS`: an all-zero
#: quantization group has absmax 0 and therefore no information to derive a
#: scale from; it snaps to this floor (ceil-PoT rounding ``2**-39``) so its
#: codes are all zero and decode back to exact zeros.
_MIN_SCALE = 1e-12


def pot_quantize_scale(scale: np.ndarray | float, rounding: str = "ceil") -> np.ndarray:
    """Snap non-negative scales to powers of two.

    ``rounding='ceil'`` never reduces the representable range (no extra
    clipping); ``'nearest'`` minimises the scale error.

    A zero scale -- the absmax of an all-zero quantization group -- is
    well-defined: it snaps to the power of two at the :data:`_MIN_SCALE`
    floor instead of raising or emitting a ``log2(0)`` warning, matching the
    quantizer's behavior (zero codes, exact-zero reconstruction).  Negative
    scales are still rejected.
    """
    scale = np.asarray(scale, dtype=np.float64)
    if np.any(scale < 0):
        raise ValueError("scales must be non-negative")
    log2 = np.log2(np.maximum(scale, _MIN_SCALE))
    if rounding == "ceil":
        exponent = np.ceil(log2)
    elif rounding == "nearest":
        exponent = np.round(log2)
    else:
        raise ValueError("rounding must be 'ceil' or 'nearest'")
    return np.power(2.0, exponent)


def pot_quantizer_config(
    bits: int = 8, group_size: int = 128, granularity: Granularity = Granularity.PER_GROUP
) -> QuantizerConfig:
    """The paper's SSM quantizer: per-group INT8 with PoT scales."""
    return QuantizerConfig(
        spec=IntSpec(bits),
        granularity=granularity,
        group_size=group_size,
        pot_scale=True,
        pot_rounding="ceil",
    )


def pot_quantize_dequantize(
    x: np.ndarray, bits: int = 8, group_size: int = 128
) -> np.ndarray:
    """Fake-quantize ``x`` with per-group PoT-scale symmetric quantization."""
    return quantize_dequantize(
        np.asarray(x, dtype=np.float64), pot_quantizer_config(bits, group_size)
    )


def requantize_reference(
    values: np.ndarray, src_scale: float, dst_scale: float, bits: int = 8
) -> np.ndarray:
    """Reference re-quantization: rescale integer values to a new scale.

    ``values`` are integer codes at scale ``src_scale``; the result holds the
    same real numbers expressed at ``dst_scale`` (rounded half away from zero,
    clipped).  This is the general (non-PoT) path that needs a real multiplier
    per element; the rounding convention matches the hardware shift path of
    :func:`shift_requantize`.
    """
    spec = IntSpec(bits)
    values = np.asarray(values)
    real = values.astype(np.float64) * src_scale
    ratio = real / dst_scale
    rounded = np.sign(ratio) * np.floor(np.abs(ratio) + 0.5)
    out = np.clip(rounded, spec.qmin, spec.qmax)
    return out.astype(np.int64)


def shift_requantize(
    values: np.ndarray, src_exponent: int, dst_exponent: int, bits: int = 8
) -> np.ndarray:
    """Re-quantize integer codes between power-of-two scales using shifts only.

    ``values`` hold integers at scale ``2**src_exponent``; the result holds
    the same quantities at scale ``2**dst_exponent``.  A scale *increase*
    (``dst > src``) becomes an arithmetic right shift with round-half-up,
    a scale decrease becomes a left shift.  This is the hardware-friendly
    operation the paper's PoT scheme enables -- bit-exact with
    :func:`requantize_reference` for power-of-two scales.
    """
    spec = IntSpec(bits)
    values = np.asarray(values, dtype=np.int64)
    diff = dst_exponent - src_exponent
    if diff == 0:
        shifted = values
    elif diff > 0:
        # Right shift by `diff` with rounding to nearest (half away from zero),
        # implemented with adds and shifts only.
        offset = 1 << (diff - 1)
        magnitude = (np.abs(values) + offset) >> diff
        shifted = np.sign(values) * magnitude
    else:
        shifted = values << (-diff)
    return np.clip(shifted, spec.qmin, spec.qmax).astype(np.int64)
