"""Power-of-two (PoT) scale quantization for the SSM layer.

Sec. IV-B of the paper: the SSM layer is dominated by element-wise
multiplications (EMs) whose outputs must be re-quantized back to INT8.  With
an arbitrary scale the re-quantization needs a real multiplier per element;
constraining every scale to a power of two turns re-quantization into a bit
shift, which is what makes the quantized SSMU cheap on FPGA (Fig. 3).

This module provides the PoT scale snapping, a per-group PoT fake quantizer,
and an integer-exact :func:`shift_requantize` that demonstrates the shift
implementation is bit-exact against the reference divide-and-round.
"""

from __future__ import annotations

import numpy as np

from repro.quant.dtypes import Granularity, IntSpec
from repro.quant.quantizer import QuantizerConfig, quantize_dequantize

__all__ = [
    "pot_quantize_scale",
    "pot_quantizer_config",
    "pot_quantize_dequantize",
    "pot_exponent",
    "absmax_requant_exponents",
    "shift_requantize",
    "requantize_reference",
]


#: Scale floor shared with :data:`repro.quant.quantizer._EPS`: an all-zero
#: quantization group has absmax 0 and therefore no information to derive a
#: scale from; it snaps to this floor (ceil-PoT rounding ``2**-39``) so its
#: codes are all zero and decode back to exact zeros.
_MIN_SCALE = 1e-12


def pot_quantize_scale(scale: np.ndarray | float, rounding: str = "ceil") -> np.ndarray:
    """Snap non-negative scales to powers of two.

    ``rounding='ceil'`` never reduces the representable range (no extra
    clipping); ``'nearest'`` minimises the scale error.

    A zero scale -- the absmax of an all-zero quantization group -- is
    well-defined: it snaps to the power of two at the :data:`_MIN_SCALE`
    floor instead of raising or emitting a ``log2(0)`` warning, matching the
    quantizer's behavior (zero codes, exact-zero reconstruction).  Negative
    scales are still rejected.
    """
    scale = np.asarray(scale, dtype=np.float64)
    if np.any(scale < 0):
        raise ValueError("scales must be non-negative")
    log2 = np.log2(np.maximum(scale, _MIN_SCALE))
    if rounding == "ceil":
        exponent = np.ceil(log2)
    elif rounding == "nearest":
        exponent = np.round(log2)
    else:
        raise ValueError("rounding must be 'ceil' or 'nearest'")
    return np.power(2.0, exponent)


def pot_quantizer_config(
    bits: int = 8, group_size: int = 128, granularity: Granularity = Granularity.PER_GROUP
) -> QuantizerConfig:
    """The paper's SSM quantizer: per-group INT8 with PoT scales."""
    return QuantizerConfig(
        spec=IntSpec(bits),
        granularity=granularity,
        group_size=group_size,
        pot_scale=True,
        pot_rounding="ceil",
    )


def pot_quantize_dequantize(
    x: np.ndarray, bits: int = 8, group_size: int = 128
) -> np.ndarray:
    """Fake-quantize ``x`` with per-group PoT-scale symmetric quantization."""
    return quantize_dequantize(
        np.asarray(x, dtype=np.float64), pot_quantizer_config(bits, group_size)
    )


def pot_exponent(scales: np.ndarray | float) -> np.ndarray:
    """Exact integer exponents of power-of-two scales (``scales == 2.0**e``).

    The integer-resident decode path threads these exponents instead of the
    float scales themselves: with every scale a power of two, the exponent is
    the complete description of the grid, and re-quantization between grids is
    a shift by the exponent difference (:func:`shift_requantize`).  Extraction
    via ``frexp`` is exact for every representable power of two -- no ``log2``
    rounding is involved.
    """
    scales = np.asarray(scales, dtype=np.float64)
    mantissa, exponent = np.frexp(scales)
    if not np.all(mantissa == 0.5):
        raise ValueError("scales must be positive powers of two")
    return (exponent - 1).astype(np.int64)


def absmax_requant_exponents(absmax: np.ndarray, bits: int = 8) -> np.ndarray:
    """Destination PoT exponents for values bounded by ``absmax`` per group.

    Replicates, operation for operation, the scale derivation of
    :func:`repro.quant.quantizer.compute_scales` followed by the ``'ceil'``
    PoT snap (``max(absmax, eps) / qmax`` then ``ceil(log2(max(., eps)))``
    with the shared ``1e-12`` floor) -- but returns the integer exponent
    instead of the float scale.  Because the float operations are identical,
    a shift onto ``2**e`` lands codes on exactly the grid the fake-quant
    oracle would have chosen, which is what makes the shift-requantized
    decode step bit-identical to the oracle.

    ``absmax`` is the per-group maximum magnitude as a *float* (for integer
    codes at a known exponent, ``ldexp(int_absmax, src_exponent)`` -- exact,
    powers of two only rescale the mantissa's exponent field).
    """
    qmax = float(IntSpec(bits).qmax)
    absmax = np.asarray(absmax, dtype=np.float64)
    scales = np.maximum(absmax, _MIN_SCALE) / qmax
    exponent = np.ceil(np.log2(np.maximum(scales, _MIN_SCALE)))
    return exponent.astype(np.int64)


def requantize_reference(
    values: np.ndarray, src_scale: float, dst_scale: float, bits: int = 8
) -> np.ndarray:
    """Reference re-quantization: rescale integer values to a new scale.

    ``values`` are integer codes at scale ``src_scale``; the result holds the
    same real numbers expressed at ``dst_scale`` (rounded half away from zero,
    clipped).  This is the general (non-PoT) path that needs a real multiplier
    per element; the rounding convention matches the hardware shift path of
    :func:`shift_requantize`.
    """
    spec = IntSpec(bits)
    values = np.asarray(values)
    real = values.astype(np.float64) * src_scale
    ratio = real / dst_scale
    rounded = np.sign(ratio) * np.floor(np.abs(ratio) + 0.5)
    out = np.clip(rounded, spec.qmin, spec.qmax)
    return out.astype(np.int64)


def shift_requantize(
    values: np.ndarray,
    src_exponent: int | np.ndarray,
    dst_exponent: int | np.ndarray,
    bits: int = 8,
    rounding: str = "half_away",
) -> np.ndarray:
    """Re-quantize integer codes between power-of-two scales using shifts only.

    ``values`` hold integers at scale ``2**src_exponent``; the result holds
    the same quantities at scale ``2**dst_exponent``.  A scale *increase*
    (``dst > src``) becomes an arithmetic right shift with rounding, a scale
    decrease becomes a left shift.  This is the hardware-friendly operation
    the paper's PoT scheme enables.

    The exponents may be scalars or integer arrays broadcasting against
    ``values`` (per-group grids: one exponent per quantization group), which
    is how the integer-resident decode step applies a whole tensor's worth of
    per-group re-quantizations in one call.

    ``rounding`` selects the tie-breaking rule of the right shift:

    - ``"half_away"`` -- round half away from zero; bit-exact with
      :func:`requantize_reference` (the shift-vs-multiplier equivalence
      demonstration).
    - ``"half_even"`` -- round half to even, bit-exact with ``np.round`` on
      the real-valued ratio; this is the mode the integer decode path uses so
      shifted codes land exactly where the fake-quant oracle's ``np.round``
      would put them.
    """
    spec = IntSpec(bits)
    values = np.asarray(values, dtype=np.int64)
    diff = np.asarray(dst_exponent, dtype=np.int64) - np.asarray(
        src_exponent, dtype=np.int64
    )
    # Shift counts at or past the int64 width are undefined in C (and hence in
    # numpy); they only arise for degenerate grids -- e.g. an all-zero group
    # whose destination sits at the 2**-39 scale floor while the source grid is
    # far away.  Capping is exact: a right shift of 62 already rounds every
    # code a quantizer can emit to zero, and a left shift of 48 lifts any
    # nonzero code magnitude past every qmax <= 2**47, so the final clip
    # saturates identically either way (zero codes stay zero under any shift).
    diff = np.clip(diff, -48, 62)
    if diff.ndim == 0 and int(diff) <= 0:
        # Pure left shift (or identity): exact, no rounding involved.
        shifted = values << (-int(diff))
        return np.clip(shifted, spec.qmin, spec.qmax).astype(np.int64, copy=False)
    right = np.maximum(diff, 0)
    left = np.maximum(-diff, 0)
    # Offset/half of the right shift; forced to 0 where no right shift happens
    # so the rounding adjustments below are no-ops there.
    half = np.where(right > 0, np.int64(1) << np.maximum(right - 1, 0), np.int64(0))
    if rounding == "half_away":
        magnitude = (np.abs(values) + half) >> right
        shifted = np.sign(values) * magnitude
    elif rounding == "half_even":
        # Single biased arithmetic shift: adding ``half - 1 + lsb(quotient)``
        # before the floor shift carries exactly when the dropped remainder
        # exceeds half, or ties with an odd quotient -- identical to
        # ``np.round(values / 2**right)`` for every sign (the remainder of an
        # arithmetic shift is non-negative), in one pass instead of a
        # quotient/remainder/tie comparison chain.
        bias = np.where(right > 0, half - 1 + ((values >> right) & np.int64(1)), 0)
        shifted = (values + bias) >> right
    else:
        raise ValueError("rounding must be 'half_away' or 'half_even'")
    shifted = shifted << left
    return np.clip(shifted, spec.qmin, spec.qmax).astype(np.int64, copy=False)
