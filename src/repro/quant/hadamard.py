"""Hadamard matrix construction and fast Hadamard transforms.

The rotation-assisted quantization of the paper multiplies activations and
weights by (normalised) Hadamard matrices.  Two sizes matter for Mamba2-2.7B:
a 128-point transform executed with the fast Walsh-Hadamard (FWHT) butterfly
(the paper's 128-point HTU, Fig. 5d) and a 40-point transform executed as a
small matrix multiplication (the 40-point HTU, Fig. 5e); their Kronecker
product covers the 5120-wide output-projection input (``5120 = 128 x 40``).

This module provides:

- :func:`sylvester` -- power-of-two Hadamard matrices;
- :func:`paley_construction` -- Paley type-I and type-II matrices for
  non-power-of-two orders (e.g. 12, 20, 28);
- :func:`hadamard_matrix` -- arbitrary supported order via Kronecker
  composition (raises for orders with no known construction here);
- :func:`fast_hadamard_transform` -- O(n log n) FWHT along the last axis;
- :func:`apply_hadamard` -- applies the (normalised) Hadamard rotation to an
  activation, using the FWHT for the power-of-two factor and a dense matmul
  for the residual factor, mirroring the hardware decomposition;
- :func:`random_hadamard_matrix` -- randomised Hadamard rotation
  ``diag(sign) . H / sqrt(n)`` as used by QuaRot-style methods.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = [
    "sylvester",
    "paley_construction",
    "hadamard_matrix",
    "is_hadamard",
    "fast_hadamard_transform",
    "apply_hadamard",
    "random_hadamard_matrix",
    "randomized_hadamard",
    "decompose_hadamard_order",
]


# ----------------------------------------------------------------------
# Basic constructions
# ----------------------------------------------------------------------
def sylvester(order: int) -> np.ndarray:
    """Sylvester (power-of-two) Hadamard matrix of the given order."""
    if order < 1 or order & (order - 1):
        raise ValueError(f"Sylvester construction needs a power-of-two order, got {order}")
    h = np.array([[1.0]])
    while h.shape[0] < order:
        h = np.block([[h, h], [h, -h]])
    return h


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    if n % 2 == 0:
        return n == 2
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


def _legendre_symbol(a: int, p: int) -> int:
    """Legendre symbol chi(a) in {-1, 0, +1} for an odd prime p."""
    a %= p
    if a == 0:
        return 0
    result = pow(a, (p - 1) // 2, p)
    return 1 if result == 1 else -1


def _jacobsthal(q: int) -> np.ndarray:
    """Jacobsthal matrix Q with Q[i, j] = chi(i - j) over GF(q)."""
    idx = np.arange(q)
    diff = (idx[:, None] - idx[None, :]) % q
    chi = np.array([_legendre_symbol(int(d), q) for d in range(q)], dtype=np.float64)
    return chi[diff]


def paley_construction(order: int) -> np.ndarray:
    """Paley Hadamard matrix of the given order.

    Type I applies when ``order - 1`` is a prime congruent to 3 (mod 4);
    type II applies when ``order / 2 - 1`` is a prime congruent to 1 (mod 4).
    """
    q = order - 1
    if _is_prime(q) and q % 4 == 3:
        jac = _jacobsthal(q)
        s = np.zeros((order, order))
        s[0, 1:] = 1.0
        s[1:, 0] = -1.0
        s[1:, 1:] = jac
        return s + np.eye(order)
    if order % 2 == 0:
        q = order // 2 - 1
        if _is_prime(q) and q % 4 == 1:
            n = q + 1
            s = np.zeros((n, n))
            s[0, 1:] = 1.0
            s[1:, 0] = 1.0
            s[1:, 1:] = _jacobsthal(q)
            block_diag = np.array([[1.0, -1.0], [-1.0, -1.0]])
            block_off = np.array([[1.0, 1.0], [1.0, -1.0]])
            return np.kron(np.eye(n), block_diag) + np.kron(s, block_off)
    raise ValueError(f"no Paley construction available for order {order}")


def decompose_hadamard_order(order: int) -> tuple[int, int]:
    """Split ``order`` into ``(pow2, base)`` with ``order == pow2 * base``.

    ``pow2`` is a power of two (handled by the FWHT / Sylvester factor) and
    ``base`` is either 1 or an order with a Paley construction.  Raises
    ``ValueError`` when no such decomposition exists.
    """
    if order < 1:
        raise ValueError("order must be positive")
    odd = order
    pow2 = 1
    while odd % 2 == 0:
        odd //= 2
        pow2 *= 2
    if odd == 1:
        return order, 1
    # Fold factors of two back into the base until a Paley order is found.
    base = odd
    while base <= order:
        if base >= 4:
            try:
                paley_construction(base)
                return order // base, base
            except ValueError:
                pass
        if order % (base * 2) != 0:
            break
        base *= 2
    raise ValueError(
        f"no Hadamard construction available for order {order} "
        "(odd part has no Paley-constructible multiple dividing the order)"
    )


@lru_cache(maxsize=64)
def _hadamard_matrix_cached(order: int) -> np.ndarray:
    pow2, base = decompose_hadamard_order(order)
    h = sylvester(pow2)
    if base > 1:
        h = np.kron(h, paley_construction(base))
    return h


def hadamard_matrix(order: int, normalized: bool = False) -> np.ndarray:
    """Return a Hadamard matrix of the given order.

    Parameters
    ----------
    order:
        Matrix order; must decompose as a power of two times a
        Paley-constructible order (covers every dimension in the Mamba2
        family: 12, 20, 40, 64, 128, ..., 2560, 5120).
    normalized:
        If ``True`` the matrix is scaled by ``1/sqrt(order)`` so it is
        orthogonal (``H H^T = I``).
    """
    h = _hadamard_matrix_cached(order).copy()
    if normalized:
        h /= np.sqrt(order)
    return h


def is_hadamard(matrix: np.ndarray, tol: float = 1e-9) -> bool:
    """Check that ``matrix`` has +-1 entries and orthogonal rows."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    n = matrix.shape[0]
    if not np.allclose(np.abs(matrix), 1.0, atol=tol):
        return False
    return np.allclose(matrix @ matrix.T, n * np.eye(n), atol=tol * n)


# ----------------------------------------------------------------------
# Transforms
# ----------------------------------------------------------------------
def fast_hadamard_transform(x: np.ndarray, normalized: bool = True) -> np.ndarray:
    """Fast Walsh-Hadamard transform along the last axis.

    Equivalent to ``x @ sylvester(n)`` (optionally normalised by
    ``1/sqrt(n)``) but computed with the O(n log n) butterfly network -- the
    algorithm the paper's 128-point HTU implements in seven pipeline stages.
    """
    x = np.array(x, dtype=np.float64, copy=True)
    n = x.shape[-1]
    if n & (n - 1):
        raise ValueError(f"FWHT length must be a power of two, got {n}")
    span = 1
    while span < n:
        shaped = x.reshape(*x.shape[:-1], n // (2 * span), 2, span)
        upper = shaped[..., 0, :] + shaped[..., 1, :]
        lower = shaped[..., 0, :] - shaped[..., 1, :]
        shaped[..., 0, :] = upper
        shaped[..., 1, :] = lower
        x = shaped.reshape(*x.shape[:-1], n)
        span *= 2
    if normalized:
        x /= np.sqrt(n)
    return x


def apply_hadamard(x: np.ndarray, order: int | None = None, normalized: bool = True) -> np.ndarray:
    """Apply the Hadamard rotation ``x -> x H`` along the last axis.

    Uses the same decomposition as the hardware: the power-of-two factor is
    executed with the FWHT and the non-power-of-two factor (if any) with a
    dense matrix multiplication.  ``order`` defaults to the last-axis length.
    """
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[-1] if order is None else order
    if x.shape[-1] != n:
        raise ValueError(f"last axis ({x.shape[-1]}) does not match order ({n})")
    pow2, base = decompose_hadamard_order(n)
    lead = x.shape[:-1]
    if base == 1:
        return fast_hadamard_transform(x, normalized=normalized)
    # x viewed as (..., pow2, base):  (H_pow2 (x) H_base) applied via
    # FWHT over the pow2 axis and a dense matmul over the base axis.
    reshaped = x.reshape(*lead, pow2, base)
    h_base = hadamard_matrix(base, normalized=False)
    out = reshaped @ h_base
    out = np.swapaxes(out, -1, -2)
    out = fast_hadamard_transform(out, normalized=False)
    out = np.swapaxes(out, -1, -2)
    out = out.reshape(*lead, n)
    if normalized:
        out /= np.sqrt(n)
    return out


def random_hadamard_matrix(order: int, seed: int = 0, normalized: bool = True) -> np.ndarray:
    """Randomised Hadamard rotation ``diag(sign) H`` (QuaRot-style).

    The random per-row sign flip keeps the matrix Hadamard (rows stay
    orthogonal with +-1 entries) while decorrelating it from any fixed weight
    structure; with ``normalized=True`` the result is orthogonal.
    """
    rng = np.random.default_rng(seed)
    signs = rng.choice([-1.0, 1.0], size=order)
    h = hadamard_matrix(order, normalized=False)
    out = signs[:, None] * h
    if normalized:
        out /= np.sqrt(order)
    return out


def randomized_hadamard(x: np.ndarray, seed: int = 0) -> np.ndarray:
    """Apply a randomised (sign-flipped) normalised Hadamard rotation to ``x``."""
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[-1]
    rng = np.random.default_rng(seed)
    signs = rng.choice([-1.0, 1.0], size=n)
    return apply_hadamard(x * signs, order=n, normalized=True)
