"""Round-to-nearest (RTN) quantization.

RTN is the simplest PTQ baseline (the "RTN" rows of Table II / Table III): no
calibration-driven transformation, just symmetric rounding of weights and
activations at the configured granularity.  It also serves as the final
rounding step of every other method after their respective pre-transformations
(smoothing, shifting, rotation).
"""

from __future__ import annotations

import numpy as np

from repro.quant.dtypes import Granularity, IntSpec
from repro.quant.quantizer import QuantizerConfig, quantize_dequantize

__all__ = [
    "weight_quantizer_config",
    "activation_quantizer_config",
    "rtn_quantize_weight",
    "rtn_quantize_activation",
]


def weight_quantizer_config(
    bits: int, group_size: int = 128, clip_ratio: float = 1.0
) -> QuantizerConfig:
    """The paper's weight quantizer for a given bit width.

    8-bit weights use per-channel scales; 4-bit (and anything below 8) uses
    per-group scales with the given group size (Sec. VI-A).
    """
    spec = IntSpec(bits)
    if bits >= 8:
        granularity = Granularity.PER_CHANNEL
    else:
        granularity = Granularity.PER_GROUP
    return QuantizerConfig(
        spec=spec, granularity=granularity, group_size=group_size, clip_ratio=clip_ratio
    )


def activation_quantizer_config(
    bits: int, group_size: int = 128, clip_ratio: float = 1.0
) -> QuantizerConfig:
    """The paper's activation quantizer: per-token at 8-bit, per-group below."""
    spec = IntSpec(bits)
    if bits >= 8:
        granularity = Granularity.PER_TOKEN
    else:
        granularity = Granularity.PER_GROUP
    return QuantizerConfig(
        spec=spec, granularity=granularity, group_size=group_size, clip_ratio=clip_ratio
    )


def rtn_quantize_weight(
    weight: np.ndarray, bits: int, group_size: int = 128, clip_ratio: float = 1.0
) -> np.ndarray:
    """Fake-quantize a weight matrix with the paper's RTN weight scheme."""
    config = weight_quantizer_config(bits, group_size, clip_ratio)
    return quantize_dequantize(np.asarray(weight, dtype=np.float64), config)


def rtn_quantize_activation(
    activation: np.ndarray, bits: int, group_size: int = 128, clip_ratio: float = 1.0
) -> np.ndarray:
    """Fake-quantize an activation with the paper's RTN activation scheme."""
    config = activation_quantizer_config(bits, group_size, clip_ratio)
    return quantize_dequantize(np.asarray(activation, dtype=np.float64), config)
