"""Quantized linear layers.

:class:`QuantizedLinear` bundles a fake-quantized weight with an activation
quantizer and an optional bias.  It provides two numerically equivalent
forward paths:

- :meth:`forward` -- the fast "fake quant" path (floating-point matmul over
  dequantized operands) used throughout the library;
- :meth:`forward_integer` -- an integer-exact path that performs the matmul
  on INT codes with per-group INT32 accumulation and applies the scales at
  the end, exactly as the FPGA MMU does.

Tests verify both paths agree, which justifies using the fake-quant path for
accuracy evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.quant.dtypes import Granularity
from repro.quant.quantizer import (
    QuantizedTensor,
    QuantizerConfig,
    dequantize,
    quantize,
    quantize_dequantize,
)
from repro.quant.rtn import activation_quantizer_config, weight_quantizer_config

__all__ = ["QuantizedLinear", "grouped_integer_matmul"]


def grouped_integer_matmul(  # integer-resident
    x_codes: np.ndarray,
    x_scales: np.ndarray,
    w_codes: np.ndarray,
    w_scales: np.ndarray,
    *,
    group_size: int,
    x_qmax: int,
    w_qmax: int,
) -> np.ndarray:
    """Per-group integer contraction with a true INT32 accumulator.

    Computes ``out[..., m, n] = sum_k x[..., m, k] * w[..., n, k]`` over the
    shared trailing axis, one quantization group at a time: each group's
    partial products are summed in int32 -- the MMU's accumulator width --
    and only then scaled in floating point by the operands' per-group scales.
    This is the execution model of the FPGA matrix unit, shared by
    :meth:`QuantizedLinear.forward_integer` and the integer-exact chunk body
    of :class:`repro.quant.ssm_quant.QuantizedChunkedScan`.

    Parameters
    ----------
    x_codes, w_codes:
        Integer codes of shape ``(..., M, K)`` / ``(..., N, K)``; leading
        axes broadcast against each other (stacked matmul semantics).
    x_scales, w_scales:
        Per-group scales of shape ``(..., M, n_groups)`` / ``(..., N,
        n_groups)`` where ``n_groups = ceil(K / min(group_size, K))``.
    group_size:
        Quantization group length along the contraction axis (clamped to
        ``K`` like the quantizers do).
    x_qmax, w_qmax:
        Largest code magnitudes of the two operands, used for the static
        overflow guarantee: the worst-case partial-sum magnitude of the
        *configuration* (``group_len * x_qmax * w_qmax``) is checked against
        the int32 range, mirroring the hardware's static analysis -- an
        unsafe configuration raises :class:`OverflowError` deterministically
        on its first use, independent of the data, instead of silently
        wrapping on the unlucky batch.
    """
    in_features = x_codes.shape[-1]
    if w_codes.shape[-1] != in_features:
        raise ValueError("x_codes and w_codes must share the contraction axis length")
    group = min(group_size, in_features)
    if group <= 0:
        raise ValueError("group_size must be positive")
    n_groups = -(-in_features // group)
    if x_scales.shape[-1] != n_groups or w_scales.shape[-1] != n_groups:
        raise ValueError(
            f"scales must carry {n_groups} groups for K={in_features}, "
            f"group={group}; got {x_scales.shape[-1]} / {w_scales.shape[-1]}"
        )

    worst_case = group * int(x_qmax) * int(w_qmax)
    if worst_case >= 2**31:
        raise OverflowError(
            f"per-group partial sum can reach {worst_case}, which does not fit "
            "the INT32 accumulator (group length x code widths too large)"
        )
    x32 = x_codes.astype(np.int32)
    w32 = w_codes.astype(np.int32)

    out: Optional[np.ndarray] = None
    for g in range(n_groups):
        lo, hi = g * group, min((g + 1) * group, in_features)
        acc = x32[..., :, lo:hi] @ np.swapaxes(w32[..., :, lo:hi], -1, -2)
        term = (
            acc.astype(np.float64)  # quant-point: per-group scale epilogue
            * x_scales[..., :, g, None]
            * w_scales[..., None, :, g]
        )
        out = term if out is None else out + term
    return out


@dataclass
class QuantizedLinear:
    """A linear layer ``y = x W^T + b`` with quantized weight and activation."""

    weight_qt: QuantizedTensor
    act_config: QuantizerConfig
    bias: Optional[np.ndarray] = None

    @classmethod
    def from_weight(
        cls,
        weight: np.ndarray,
        w_bits: int,
        a_bits: int,
        group_size: int = 128,
        bias: Optional[np.ndarray] = None,
    ) -> "QuantizedLinear":
        """Quantize ``weight`` with the paper's scheme for the given widths."""
        weight = np.asarray(weight, dtype=np.float64)
        wcfg = weight_quantizer_config(w_bits, group_size)
        acfg = activation_quantizer_config(a_bits, group_size)
        return cls(weight_qt=quantize(weight, wcfg), act_config=acfg, bias=bias)

    @property
    def weight(self) -> np.ndarray:
        """The dequantized (fake-quantized) weight."""
        return dequantize(self.weight_qt)

    @property
    def out_features(self) -> int:
        return self.weight_qt.shape[0]

    @property
    def in_features(self) -> int:
        return self.weight_qt.shape[1]

    # ------------------------------------------------------------------
    # Forward paths
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Fake-quant forward: quantize the activation, multiply dequantized."""
        x = np.asarray(x, dtype=np.float64)
        xq = quantize_dequantize(x, self.act_config)
        out = xq @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    __call__ = forward

    def forward_integer(self, x: np.ndarray) -> np.ndarray:
        """Integer-exact forward on the raw codes.

        Per-group configurations accumulate each group's partial sums in a
        true INT32 accumulator (see :meth:`_grouped_integer_matmul`); the
        coarser granularities accumulate the full row in int64 (the hardware
        accumulates per *tile* there, which no practical width overflows).
        The result equals :meth:`forward` up to floating-point associativity.
        """
        x = np.asarray(x, dtype=np.float64)
        squeeze = x.ndim == 1
        x2 = x[None, :] if squeeze else x.reshape(-1, x.shape[-1])

        act_qt = quantize(x2, self.act_config)
        w_qt = self.weight_qt
        x_codes = act_qt.codes.astype(np.int64)
        w_codes = w_qt.codes.astype(np.int64)

        if (
            self.act_config.granularity is Granularity.PER_GROUP
            or w_qt.config.granularity is Granularity.PER_GROUP
        ):
            out = self._grouped_integer_matmul(x_codes, act_qt, w_codes, w_qt)
        else:
            acc = x_codes @ w_codes.T
            a_scale = np.broadcast_to(act_qt.scales, (x2.shape[0], 1))
            w_scale = np.broadcast_to(w_qt.scales, (w_codes.shape[0], 1))
            out = acc.astype(np.float64) * a_scale * w_scale[:, 0][None, :]

        if self.bias is not None:
            out = out + self.bias
        if squeeze:
            return out[0]
        return out.reshape(*x.shape[:-1], self.out_features)

    def _grouped_integer_matmul(self, x_codes, act_qt, w_codes, w_qt) -> np.ndarray:
        """Per-group integer matmul over the layer's codes.

        Normalises the activation / weight scales to per-(row, group)
        matrices and delegates the int32-accumulator contraction (and the
        static overflow guarantee) to :func:`grouped_integer_matmul`, the
        helper shared with the quantized SSM chunk body.
        """
        in_features = self.in_features
        group = min(self.act_config.group_size, in_features)
        if w_qt.config.granularity is Granularity.PER_GROUP:
            group = min(group, w_qt.config.group_size)

        tokens = x_codes.shape[0]
        a_scales = self._expand_group_scales(act_qt, tokens, in_features, group)
        w_scales = self._expand_group_scales(w_qt, self.out_features, in_features, group)
        return grouped_integer_matmul(
            x_codes,
            a_scales,
            w_codes,
            w_scales,
            group_size=group,
            x_qmax=self.act_config.spec.qmax,
            w_qmax=w_qt.config.spec.qmax,
        )

    @staticmethod
    def _expand_group_scales(
        qt: QuantizedTensor, rows: int, in_features: int, group: int
    ) -> np.ndarray:
        """Normalise any granularity's scales to a per-(row, group) matrix."""
        n_groups = -(-in_features // group)
        gran = qt.config.granularity
        scales = np.asarray(qt.scales, dtype=np.float64)
        if gran is Granularity.PER_GROUP:
            return scales.reshape(rows, n_groups)
        if gran in (Granularity.PER_CHANNEL, Granularity.PER_TOKEN):
            per_row = scales.reshape(rows, 1) if scales.ndim else np.full((rows, 1), float(scales))
            return np.broadcast_to(per_row, (rows, n_groups)).copy()
        return np.full((rows, n_groups), float(scales))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def memory_bytes(self) -> float:
        """Off-chip storage of the quantized weight (codes + FP16 scales)."""
        total = self.weight_qt.memory_bytes()
        if self.bias is not None:
            total += self.bias.size * 2.0
        return total
