"""Symmetric integer quantizers.

All quantizers in this reproduction are *symmetric* (zero-point free), which
matches the paper's hardware assumption: the MMU and SSMU operate on signed
integers and re-scale with a single multiplicative (or, for PoT scales, a
shift) factor.

Granularities follow Sec. VI-A of the paper:

- W8A8: per-channel weights, per-token activations;
- W4A4: per-group weights *and* activations with group size 128.

The main entry points are :func:`quantize` (returns integer codes + scales),
:func:`dequantize`, and :func:`quantize_dequantize` (the "fake quant"
round-trip used to simulate quantized inference in floating point).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quant.dtypes import Granularity, IntSpec, INT8

__all__ = [
    "QuantizerConfig",
    "QuantizedTensor",
    "compute_scales",
    "quantize",
    "dequantize",
    "quantize_dequantize",
]

_EPS = 1e-12


@dataclass(frozen=True)
class QuantizerConfig:
    """Configuration of a symmetric quantizer.

    Attributes
    ----------
    spec:
        Target integer format (e.g. :data:`~repro.quant.dtypes.INT4`).
    granularity:
        Scale-sharing granularity.
    group_size:
        Group length for :attr:`Granularity.PER_GROUP` (128 in the paper).
    clip_ratio:
        Multiplier on the absolute maximum used to compute the scale
        (``1.0`` = no clipping).
    pot_scale:
        If ``True`` the scale is snapped to a power of two (the paper's
        FPGA-friendly SSM scheme; re-quantization becomes a bit shift).
    pot_rounding:
        ``"ceil"`` (default; never clips harder than the absmax scale) or
        ``"nearest"``.
    """

    spec: IntSpec = INT8
    granularity: Granularity = Granularity.PER_TENSOR
    group_size: int = 128
    clip_ratio: float = 1.0
    pot_scale: bool = False
    pot_rounding: str = "ceil"

    def __post_init__(self) -> None:
        if self.group_size <= 0:
            raise ValueError("group_size must be positive")
        if not 0.0 < self.clip_ratio <= 1.0:
            raise ValueError("clip_ratio must be in (0, 1]")
        if self.pot_rounding not in ("ceil", "nearest"):
            raise ValueError("pot_rounding must be 'ceil' or 'nearest'")


@dataclass
class QuantizedTensor:
    """Integer codes plus the scales needed to dequantize them."""

    codes: np.ndarray
    scales: np.ndarray
    config: QuantizerConfig
    shape: tuple

    def dequantize(self) -> np.ndarray:
        """Reconstruct the floating-point tensor."""
        return dequantize(self)

    @property
    def bits(self) -> int:
        return self.config.spec.bits

    def memory_bytes(self) -> float:
        """Storage cost of codes plus FP16 scales, in bytes."""
        return self.codes.size * self.bits / 8.0 + self.scales.size * 2.0


def _pot_round(scales: np.ndarray, mode: str) -> np.ndarray:
    """Snap positive scales to the nearest / next power of two."""
    safe = np.maximum(scales, _EPS)
    log2 = np.log2(safe)
    if mode == "ceil":
        exponent = np.ceil(log2)
    else:
        exponent = np.round(log2)
    return np.power(2.0, exponent)


def _group_reshape(x: np.ndarray, group_size: int) -> tuple[np.ndarray, int, int]:
    """Reshape the last axis into groups, padding with zeros if necessary.

    Returns ``(reshaped, n_groups, pad)`` where ``reshaped`` has shape
    ``(..., n_groups, group_size)``.
    """
    last = x.shape[-1]
    group = min(group_size, last)
    n_groups = -(-last // group)
    pad = n_groups * group - last
    if pad:
        pad_width = [(0, 0)] * (x.ndim - 1) + [(0, pad)]
        x = np.pad(x, pad_width)
    reshaped = x.reshape(*x.shape[:-1], n_groups, group)
    return reshaped, n_groups, pad


def compute_scales(x: np.ndarray, config: QuantizerConfig) -> np.ndarray:
    """Compute symmetric quantization scales for ``x``.

    The returned array broadcasts against ``x`` for
    per-tensor / per-channel / per-token granularity; for per-group
    granularity it has shape ``(..., n_groups, 1)`` and applies to the
    group-reshaped view of ``x``.
    """
    x = np.asarray(x, dtype=np.float64)
    qmax = config.spec.qmax
    gran = config.granularity

    if gran is Granularity.PER_TENSOR:
        absmax = np.max(np.abs(x)) if x.size else 0.0
        scales = np.asarray(absmax, dtype=np.float64).reshape(())
    elif gran in (Granularity.PER_CHANNEL, Granularity.PER_TOKEN):
        if x.ndim == 1:
            absmax = np.max(np.abs(x)) if x.size else 0.0
            scales = np.asarray(absmax, dtype=np.float64).reshape(())
        else:
            scales = np.max(np.abs(x), axis=-1, keepdims=True)
    elif gran is Granularity.PER_GROUP:
        grouped, _, _ = _group_reshape(x, config.group_size)
        scales = np.max(np.abs(grouped), axis=-1, keepdims=True)
    else:  # pragma: no cover - enum is exhaustive
        raise ValueError(f"unknown granularity {gran}")

    scales = np.maximum(scales * config.clip_ratio, _EPS) / qmax
    if config.pot_scale:
        scales = _pot_round(scales, config.pot_rounding)
    return scales


def quantize(x: np.ndarray, config: QuantizerConfig) -> QuantizedTensor:
    """Quantize ``x`` to integer codes under ``config``."""
    x = np.asarray(x, dtype=np.float64)
    scales = compute_scales(x, config)
    spec = config.spec

    if config.granularity is Granularity.PER_GROUP:
        grouped, _, pad = _group_reshape(x, config.group_size)
        codes = np.clip(np.round(grouped / scales), spec.qmin, spec.qmax)
        codes = codes.reshape(*grouped.shape[:-2], -1)
        if pad:
            codes = codes[..., : x.shape[-1]]
    else:
        codes = np.clip(np.round(x / scales), spec.qmin, spec.qmax)
    return QuantizedTensor(
        codes=codes.astype(np.int32), scales=scales, config=config, shape=x.shape
    )


def dequantize(qt: QuantizedTensor) -> np.ndarray:
    """Map integer codes back to floating point."""
    config = qt.config
    codes = qt.codes.astype(np.float64)
    if config.granularity is Granularity.PER_GROUP:
        grouped, _, pad = _group_reshape(codes, config.group_size)
        values = grouped * qt.scales
        values = values.reshape(*grouped.shape[:-2], -1)
        if pad:
            values = values[..., : qt.shape[-1]]
        return values
    return codes * qt.scales


def quantize_dequantize(x: np.ndarray, config: QuantizerConfig) -> np.ndarray:
    """Fake-quantization round trip: ``dequantize(quantize(x))``.

    This is the numerical model of quantized inference used throughout the
    library; the integer-exact path in :mod:`repro.quant.qlinear` verifies
    its equivalence.
    """
    return dequantize(quantize(x, config))
