"""Deterministic fault injection and the engine supervisor's policy objects.

The serving layer's failure semantics are built from three pieces that live
here so they can be tested (and reasoned about) independently of the engine:

- **Fault injection** -- :class:`FaultPlan` / :class:`FaultInjector`: a
  seeded, schedule-addressable description of *when* (engine iteration),
  *where* (``"prefill"`` / ``"decode"`` model-call site) and *to whom*
  (request id, or any) a failure happens, covering the four failure modes the
  supervisor must survive: a raising kernel (``OverflowError`` from the MMU's
  static overflow guard, or an injected ``RuntimeError``), a corrupted cache
  row (non-finite state, the software stand-in for an ECC / integrity fault),
  a stalled iteration that blows the watchdog budget, and a dropped
  ``on_token`` callback.  Every firing is recorded in the injector's trace,
  so a chaos run is fully reproducible and auditable from its seed.
- **Supervisor policy** -- :class:`ResilienceConfig`: retry attempts, capped
  exponential backoff (in deterministic engine iterations, not wall time),
  the degradation threshold after which a request falls back to the
  sequential oracle, and the iteration watchdog budget.
- **Accounting** -- :class:`ResilienceLog`: the per-event ledger the engine
  appends to (rollbacks, retries, requeues, degradations, quarantines), the
  structured counterpart of the aggregate counters in
  :class:`~repro.serving.engine.EngineStats`.

The injector is *passive*: the engine asks it at each model call site whether
a fault applies (:meth:`FaultInjector.on_model_call`,
:meth:`FaultInjector.corrupt_rows`, :meth:`FaultInjector.drop_callback`), so
fault placement is exact and deterministic -- no monkeypatching, no races.
"""

from __future__ import annotations

from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.mamba.cache import InferenceCache, QuantizedSSMState

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "IterationTimeout",
    "ManualClock",
    "ResilienceConfig",
    "ResilienceEvent",
    "ResilienceLog",
    "StateCorruptionError",
    "cache_unhealthy",
    "sequential_fallback",
    "unhealthy_rows",
]

#: The four injectable failure modes, in canonical order.
FAULT_KINDS: Tuple[str, ...] = (
    "kernel_raise",
    "state_corrupt",
    "stall",
    "callback_drop",
)

_SITES = ("any", "prefill", "decode")
_EXCEPTIONS: Dict[str, type] = {"runtime": RuntimeError, "overflow": OverflowError}


class IterationTimeout(RuntimeError):
    """A supervised model call exceeded the iteration watchdog budget."""


class StateCorruptionError(RuntimeError):
    """Non-finite values detected in a slot's state or logits after a call."""


class ManualClock:
    """A hand-advanced monotonic clock for deterministic stall/watchdog tests.

    Matches the queue's ``Clock`` protocol (zero-argument callable returning a
    float); :meth:`advance` is the hook a :class:`FaultInjector` stall fault
    drives to simulate a stuck iteration without sleeping.
    """

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("a monotonic clock cannot go backwards")
        self.now += float(seconds)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    The fault *arms* at engine iteration ``step`` (1-based, matching
    ``EngineStats.engine_steps``) and fires at the first ``repeats`` matching
    opportunities from then on -- an opportunity being a model call at a
    matching ``site`` involving a matching request (``request_id is None``
    matches any request).  ``kind`` selects the failure mode:

    - ``"kernel_raise"`` -- the model call raises (``exception`` picks
      ``"runtime"`` -> :class:`RuntimeError` or ``"overflow"`` ->
      :class:`OverflowError`, the MMU guard's exception type) before any
      state is touched.
    - ``"state_corrupt"`` -- the matched request's working cache row is
      poisoned with non-finite values before the call (the engine applies
      the poison; the injector only attributes it).
    - ``"stall"`` -- the call is delayed by ``stall_seconds`` (an injected
      clock is advanced; with a real clock the spec is a no-op), tripping
      the engine's watchdog if a budget is configured.
    - ``"callback_drop"`` -- the matched request's next ``on_token``
      delivery is suppressed.
    """

    kind: str
    step: int
    site: str = "any"
    request_id: Optional[int] = None
    exception: str = "runtime"
    repeats: int = 1
    stall_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if self.site not in _SITES:
            raise ValueError(f"unknown fault site {self.site!r}; expected one of {_SITES}")
        if self.step < 1:
            raise ValueError("fault step is 1-based (the first engine iteration is step 1)")
        if self.repeats < 1:
            raise ValueError("repeats must be positive")
        if self.exception not in _EXCEPTIONS:
            raise ValueError(
                f"unknown exception kind {self.exception!r}; expected one of "
                f"{tuple(_EXCEPTIONS)}"
            )
        if self.kind == "stall" and self.stall_seconds <= 0:
            raise ValueError("a stall fault needs a positive stall_seconds")

    def make_exception(self) -> BaseException:
        return _EXCEPTIONS[self.exception](
            f"injected {self.exception} fault (site={self.site}, step>={self.step})"
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "step": self.step,
            "site": self.site,
            "request_id": self.request_id,
            "exception": self.exception,
            "repeats": self.repeats,
            "stall_seconds": self.stall_seconds,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "FaultSpec":
        return cls(**payload)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of faults, optionally derived from a seed."""

    faults: Tuple[FaultSpec, ...] = ()
    seed: Optional[int] = None

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        horizon: int = 32,
        request_ids: Sequence[int] = (),
        num_faults: Optional[int] = None,
        kinds: Sequence[str] = FAULT_KINDS,
        stall_seconds: float = 10.0,
    ) -> "FaultPlan":
        """A reproducible random schedule: same seed, same plan, always.

        ``horizon`` bounds the arming steps, ``request_ids`` the candidate
        targets (each spec targets a specific request with probability 3/4,
        any request otherwise).  ``num_faults`` defaults to 3..6 draws.
        """
        if horizon < 1:
            raise ValueError("horizon must be positive")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        rng = np.random.default_rng(seed)
        count = int(rng.integers(3, 7)) if num_faults is None else int(num_faults)
        specs: List[FaultSpec] = []
        for _ in range(count):
            kind = str(rng.choice(list(kinds)))
            request_id: Optional[int] = None
            if request_ids and rng.random() < 0.75:
                request_id = int(rng.choice(list(request_ids)))
            specs.append(
                FaultSpec(
                    kind=kind,
                    step=int(rng.integers(1, horizon + 1)),
                    site=str(rng.choice(_SITES)),
                    request_id=request_id,
                    exception=str(rng.choice(list(_EXCEPTIONS))),
                    repeats=int(rng.integers(1, 3)),
                    stall_seconds=stall_seconds if kind == "stall" else 0.0,
                )
            )
        return cls(faults=tuple(specs), seed=seed)

    def to_json(self) -> Dict[str, object]:
        return {"seed": self.seed, "faults": [s.to_json() for s in self.faults]}

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "FaultPlan":
        faults = tuple(FaultSpec.from_json(f) for f in payload.get("faults", ()))
        seed = payload.get("seed")
        return cls(faults=faults, seed=None if seed is None else int(seed))


class FaultInjector:
    """Replays a :class:`FaultPlan` against the engine's model-call sites.

    The engine consults the injector at each supervised call; the injector
    decides deterministically (plan order, first-armed-first) which faults
    fire, consumes their ``repeats`` budget, and appends an entry to
    :attr:`trace` for every firing.  ``clock_advance`` (typically
    :meth:`ManualClock.advance`) is how a ``"stall"`` fault simulates lost
    wall time.
    """

    def __init__(
        self,
        plan: FaultPlan,
        clock_advance: Optional[Callable[[float], None]] = None,
    ):
        self.plan = plan
        self.clock_advance = clock_advance
        self._remaining = [spec.repeats for spec in plan.faults]
        self.trace: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    def _matches(
        self, idx: int, spec: FaultSpec, site: str, step: int, request_ids: Sequence[int]
    ) -> bool:
        if self._remaining[idx] <= 0 or step < spec.step:
            return False
        if spec.site not in ("any", site):
            return False
        if spec.request_id is not None and spec.request_id not in request_ids:
            return False
        return True

    def _consume(
        self, idx: int, spec: FaultSpec, site: str, step: int, request_ids: Sequence[int]
    ) -> None:
        self._remaining[idx] -= 1
        self.trace.append(
            {
                "step": step,
                "site": site,
                "request_ids": list(request_ids),
                "spec": spec.to_json(),
            }
        )

    # ------------------------------------------------------------------
    def on_model_call(self, site: str, step: int, request_ids: Sequence[int]) -> None:
        """Fire stall then kernel-raise faults scheduled for this call.

        Stalls advance the injected clock (all matching stalls accumulate);
        the first matching kernel fault then raises its exception.  State
        corruption and callback drops are queried separately
        (:meth:`corrupt_rows`, :meth:`drop_callback`).

        A *targeted* fault (``request_id`` set) spends its ``repeats`` budget
        only on single-request calls: it keeps firing on batched calls, so
        the supervisor's binary-search isolation converges on the culprit
        instead of the batch-level firing swallowing the fault.  An
        *untargeted* fault is consumed by whichever call it hits first -- it
        models a transient batch-wide failure that re-running resolves.
        """
        for idx, spec in enumerate(self.plan.faults):
            if spec.kind != "stall" or not self._matches(idx, spec, site, step, request_ids):
                continue
            if spec.request_id is None or len(request_ids) == 1:
                self._consume(idx, spec, site, step, request_ids)
            if self.clock_advance is not None:
                self.clock_advance(spec.stall_seconds)
        for idx, spec in enumerate(self.plan.faults):
            if spec.kind != "kernel_raise":
                continue
            if self._matches(idx, spec, site, step, request_ids):
                if spec.request_id is None or len(request_ids) == 1:
                    self._consume(idx, spec, site, step, request_ids)
                raise spec.make_exception()

    def corrupt_rows(self, site: str, step: int, request_ids: Sequence[int]) -> List[int]:
        """Row positions (within ``request_ids``) to poison before the call.

        A spec targeting a specific request poisons that request's row; an
        untargeted spec poisons row 0 of the call.  The engine applies the
        actual poison to its *working copy* of the state, so survivors are
        never touched and rollback is trivial.
        """
        rows: List[int] = []
        for idx, spec in enumerate(self.plan.faults):
            if spec.kind != "state_corrupt":
                continue
            if not self._matches(idx, spec, site, step, request_ids):
                continue
            row = 0 if spec.request_id is None else list(request_ids).index(spec.request_id)
            self._consume(idx, spec, site, step, [request_ids[row]])
            if row not in rows:
                rows.append(row)
        return rows

    def drop_callback(self, step: int, request_id: int) -> bool:
        """Whether this request's ``on_token`` delivery is suppressed now."""
        for idx, spec in enumerate(self.plan.faults):
            if spec.kind != "callback_drop":
                continue
            if self._matches(idx, spec, "any", step, [request_id]):
                self._consume(idx, spec, "callback", step, [request_id])
                return True
        return False

    @property
    def exhausted(self) -> bool:
        """Every scheduled fault has fired its full ``repeats`` budget."""
        return all(r <= 0 for r in self._remaining)


@dataclass(frozen=True)
class ResilienceConfig:
    """Supervisor policy: retries, backoff, degradation, watchdog.

    ``max_attempts``
        Failures tolerated per request before it is quarantined with
        ``finish_reason="error"`` (attempt counts persist across requeues).
    ``backoff_base_iterations`` / ``backoff_cap_iterations``
        Retry ``k`` waits ``min(cap, base * 2**(k-1))`` engine iterations --
        deterministic backoff, testable without wall time.
    ``degrade_after``
        Prefill failures after which the request falls back to the
        sequential oracle (``scan_impl="sequential"`` plus the quantized
        scan's fake-quant fallback); an ``OverflowError`` -- the MMU's static
        overflow guard, which retrying cannot fix -- degrades immediately.
    ``watchdog_budget_s``
        Wall-clock budget per supervised model call (measured on the queue's
        injected clock); a call exceeding it fails with
        :class:`IterationTimeout` and enters the same retry/quarantine path.
        ``None`` disables the watchdog.
    ``quarantine_slots``
        Also retire the *slot* (not just the request) when a corruption
        fault is attributed to it, modelling a bad memory bank; at least one
        slot always stays in service.
    """

    max_attempts: int = 3
    backoff_base_iterations: int = 1
    backoff_cap_iterations: int = 8
    degrade_after: int = 2
    watchdog_budget_s: Optional[float] = None
    quarantine_slots: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        if self.backoff_base_iterations < 0 or self.backoff_cap_iterations < 0:
            raise ValueError("backoff iterations must be non-negative")
        if self.degrade_after < 1:
            raise ValueError("degrade_after must be positive")
        if self.watchdog_budget_s is not None and self.watchdog_budget_s <= 0:
            raise ValueError("watchdog_budget_s must be positive (or None)")

    def backoff_iterations(self, attempts: int) -> int:
        """Iterations to wait before retry number ``attempts`` (1-based)."""
        if attempts < 1:
            raise ValueError("attempts is 1-based")
        return min(
            self.backoff_cap_iterations,
            self.backoff_base_iterations * (2 ** (attempts - 1)),
        )


@dataclass(frozen=True)
class ResilienceEvent:
    """One supervisor action, stamped with the engine iteration."""

    step: int
    action: str
    request_id: Optional[int] = None
    site: Optional[str] = None
    detail: str = ""

    def to_json(self) -> Dict[str, object]:
        return {
            "step": self.step,
            "action": self.action,
            "request_id": self.request_id,
            "site": self.site,
            "detail": self.detail,
        }


@dataclass
class ResilienceLog:
    """Ordered ledger of supervisor actions (the degradation ledger's detail).

    Actions: ``fault`` (a supervised call failed), ``rollback`` (a slot's
    state was restored from its snapshot), ``backoff`` (a retry was
    scheduled), ``recovered`` (a faulted request resumed cleanly),
    ``requeue`` (a faulted prefill went back to the queue, progress kept),
    ``degrade`` (fallback to the sequential oracle), ``quarantine``
    (retired with ``finish_reason="error"``), ``slot_quarantine``,
    ``watchdog`` (budget exceeded), ``corrupt`` (a row was poisoned),
    ``callback_drop`` / ``callback_error``, and ``abort`` (a ``run()``
    guard tripped).
    """

    events: List[ResilienceEvent] = field(default_factory=list)

    def record(
        self,
        step: int,
        action: str,
        request_id: Optional[int] = None,
        site: Optional[str] = None,
        detail: str = "",
    ) -> None:
        self.events.append(
            ResilienceEvent(
                step=step, action=action, request_id=request_id, site=site, detail=detail
            )
        )

    def actions(self, action: str) -> List[ResilienceEvent]:
        return [e for e in self.events if e.action == action]

    def request_ids(self, *actions: str) -> List[int]:
        """Distinct request ids touched by any of ``actions`` (event order)."""
        seen: List[int] = []
        for event in self.events:
            if event.action in actions and event.request_id is not None:
                if event.request_id not in seen:
                    seen.append(event.request_id)
        return seen

    def to_json(self) -> List[Dict[str, object]]:
        return [e.to_json() for e in self.events]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ResilienceEvent]:
        return iter(self.events)


# ----------------------------------------------------------------------
# State health checks (corruption detection) and degradation plumbing
# ----------------------------------------------------------------------
def unhealthy_rows(cache: InferenceCache, logits: np.ndarray) -> List[int]:
    """Rows of a batched cache/logits pair carrying non-finite values.

    The supervisor's corruption detector: a poisoned row keeps non-finite
    values in its logits or in its post-call state (the conv window rolls the
    poison along for ``d_conv`` steps; quantized states surface it through
    their float scales).  Quantization grids are per-row, so poison cannot
    leak across rows -- attribution is exact.
    """
    n = logits.shape[0]
    bad = ~np.isfinite(logits.reshape(n, -1)).all(axis=1)
    for layer in cache.layers:
        bad |= ~np.isfinite(layer.conv_state.reshape(n, -1)).all(axis=1)
        state = layer.ssm_state
        if isinstance(state, QuantizedSSMState):
            # Codes are integers (always finite); poison shows in the scales.
            bad |= ~np.isfinite(state.scales.reshape(n, -1)).all(axis=1)
        else:
            bad |= ~np.isfinite(state.reshape(n, -1)).all(axis=1)
    return [int(i) for i in np.nonzero(bad)[0]]


def cache_unhealthy(cache: InferenceCache) -> bool:
    """Whether a single-sequence cache carries non-finite state values."""
    for layer in cache.layers:
        if not np.isfinite(layer.conv_state).all():
            return True
        state = layer.ssm_state
        if isinstance(state, QuantizedSSMState):
            if not np.isfinite(state.scales).all():
                return True
        elif not np.isfinite(state).all():
            return True
    return False


@contextmanager
def sequential_fallback(model) -> Iterator[None]:
    """Enter every block's fake-quant fallback (graceful degradation).

    Inside the context a quantized chunk-parallel scan runs its chunk body on
    the float fake-quant path instead of the integer MMU kernels (see
    :meth:`repro.quant.ssm_quant.QuantizedSSMStep.fallback_fake_quant`); the
    engine combines this with ``scan_impl="sequential"`` to serve a request
    whose chunked/integer prefill keeps failing.  A no-op for float models.
    """
    with ExitStack() as stack:
        for block in getattr(model, "blocks", ()):
            impl = getattr(block, "ssm_impl", None)
            fallback = getattr(impl, "fallback_fake_quant", None)
            if fallback is not None:
                stack.enter_context(fallback())
        yield
