"""Admission queue for the inference engine.

:class:`RequestQueue` is the waiting room between :meth:`InferenceEngine.submit
<repro.serving.engine.InferenceEngine.submit>` and slot admission.  It is a
plain data structure -- *which* queued request runs next is decided by the
:class:`~repro.serving.scheduler.Scheduler`, which receives an ordered snapshot
of the queue every engine iteration -- but it owns everything about a request's
*waiting* life:

- **arrival metadata** -- every entry records its arrival wall-clock time from
  an injected, monotonic ``clock`` (tests and simulations pass a fake clock, so
  queue-wait accounting is deterministic) and a monotonically increasing
  ``arrival_seq`` that schedulers use for FIFO ordering and tie-breaking;
- **priorities** -- an integer per request, higher = more urgent; the queue
  stores it, priority-aware schedulers act on it;
- **deadlines** -- an optional absolute clock time by which the request must be
  *admitted*; :meth:`take_expired` pops every entry past its deadline so the
  engine can retire them with ``finish_reason="expired"`` instead of letting a
  doomed request occupy queue space;
- **cancellation** -- :meth:`cancel` removes a waiting entry and hands it back
  so the engine can synthesize a cancelled completion.

The queue is thread-safe (producers may submit from other threads) and
async-capable: :meth:`wait_for_work` blocks a consumer until an entry arrives,
and :meth:`wait_for_work_async` awaits the same condition without blocking the
event loop, so an asyncio serving front-end can drive the engine's ``step``
loop directly.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.serving.engine import Request

__all__ = ["Clock", "QueueEntry", "RequestQueue"]

#: Zero-argument callable returning the current time as a float.  The engine
#: defaults to :func:`time.monotonic`; tests inject a fake clock so deadline
#: and queue-wait behavior is deterministic.
Clock = Callable[[], float]


@dataclass
class QueueEntry:
    """One waiting request plus its admission metadata.

    ``prefill_pos`` is non-zero only for a request that was preempted (or
    fault-requeued by the supervisor) mid-prefill and re-queued: it records
    how many prompt tokens are already consumed (the engine parks the partial
    state), so schedulers budget only the *remaining* prompt work.

    ``hold_until_step`` is the supervisor's exponential-backoff hold: a
    faulted-and-requeued request stays invisible to the scheduler
    (:meth:`RequestQueue.entries` filters it) until the engine reaches that
    iteration, while remaining cancellable and expirable like any waiting
    entry.  ``None`` (the default) means immediately schedulable.
    """

    request_id: int
    request: "Request"
    priority: int = 0
    deadline: Optional[float] = None
    arrival_time: float = 0.0
    arrival_seq: int = 0
    prefill_pos: int = 0
    hold_until_step: Optional[int] = None

    @property
    def remaining_prompt_tokens(self) -> int:
        return len(self.request.prompt) - self.prefill_pos

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


@dataclass
class RequestQueue:
    """Thread-safe, async-capable waiting queue with injected time.

    Entries are keyed by request id; :meth:`entries` returns them ordered by
    ``arrival_seq`` (FIFO), which also restores a preempted request -- re-added
    with its original sequence number via :meth:`requeue` -- to its original
    position.
    """

    clock: Clock = time.monotonic
    _entries: Dict[int, QueueEntry] = field(default_factory=dict)  # guarded-by: _cond
    _seq: int = 0  # guarded-by: _cond
    _cond: threading.Condition = field(default_factory=threading.Condition)

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def push(
        self,
        request_id: int,
        request: "Request",
        *,
        priority: int = 0,
        deadline: Optional[float] = None,
    ) -> QueueEntry:
        """Append a new entry; stamps arrival time and sequence number."""
        with self._cond:
            if request_id in self._entries:
                raise ValueError(f"request id {request_id} already queued")
            entry = QueueEntry(
                request_id=request_id,
                request=request,
                priority=priority,
                deadline=deadline,
                arrival_time=self.clock(),
                arrival_seq=self._seq,
            )
            self._seq += 1
            self._entries[request_id] = entry
            self._cond.notify_all()
            return entry

    def requeue(self, entry: QueueEntry) -> None:
        """Re-insert a previously popped entry, keeping its arrival metadata.

        Used when the scheduler preempts an in-flight prefill: the request goes
        back to the waiting queue at its *original* FIFO position (entries are
        ordered by ``arrival_seq``).
        """
        with self._cond:
            if entry.request_id in self._entries:
                raise ValueError(f"request id {entry.request_id} already queued")
            self._entries[entry.request_id] = entry
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def entries(self, engine_step: Optional[int] = None) -> Tuple[QueueEntry, ...]:
        """Snapshot of the waiting entries in FIFO (arrival) order.

        ``engine_step`` (the engine's current iteration counter) filters out
        entries whose ``hold_until_step`` lies in the future -- the
        supervisor's retry-backoff hold.  ``None`` returns every entry
        (cancellation, expiry and draining must see held entries too).
        """
        with self._cond:
            values = self._entries.values()
            if engine_step is not None:
                values = [
                    e
                    for e in values
                    if e.hold_until_step is None or e.hold_until_step <= engine_step
                ]
            return tuple(sorted(values, key=lambda e: e.arrival_seq))

    def pop(self, request_id: int) -> QueueEntry:
        """Remove and return one entry (admission)."""
        with self._cond:
            return self._entries.pop(request_id)

    def cancel(self, request_id: int) -> Optional[QueueEntry]:
        """Remove a waiting entry; returns it, or ``None`` if not waiting."""
        with self._cond:
            return self._entries.pop(request_id, None)

    def take_expired(self, now: Optional[float] = None) -> List[QueueEntry]:
        """Pop and return every entry whose deadline has passed."""
        with self._cond:
            if now is None:
                now = self.clock()
            expired = [e for e in self._entries.values() if e.expired(now)]
            for entry in expired:
                del self._entries[entry.request_id]
            return sorted(expired, key=lambda e: e.arrival_seq)

    def __len__(self) -> int:
        with self._cond:
            return len(self._entries)

    def __contains__(self, request_id: int) -> bool:
        with self._cond:
            return request_id in self._entries

    # ------------------------------------------------------------------
    # Waiting
    # ------------------------------------------------------------------
    def wait_for_work(self, timeout: Optional[float] = None) -> bool:
        """Block until the queue is non-empty; ``True`` if work is available.

        With ``timeout=None`` this only returns ``True``: the wait loops over
        the condition predicate, so spurious wakeups -- or another consumer
        draining the entry that woke us -- put this caller back to sleep
        instead of returning an empty result.
        """
        with self._cond:
            if timeout is None:
                while not self._entries:
                    self._cond.wait()
                return True
            deadline = time.monotonic() + timeout
            while not self._entries:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    async def wait_for_work_async(self, timeout: Optional[float] = None) -> bool:
        """Awaitable :meth:`wait_for_work` that does not block the event loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.wait_for_work, timeout)
