"""Batched autoregressive generation over a fixed set of requests.

:class:`BatchedGenerator` runs one decode loop for a whole batch: every model
call advances *all* still-active requests by one token, so the projection
weights are read once per step instead of once per request -- the batching
amortization the LightMamba / FastMamba style accelerators rely on.  Requests
may have ragged prompts, per-request stop tokens and per-request length
budgets; finished requests are evicted from the running batch with
:meth:`~repro.mamba.cache.InferenceCache.gather` so the remaining requests
keep decoding in a smaller batch.

Results reproduce the single-sequence decoders request for request: greedy
requests match :func:`~repro.mamba.generation.greedy_decode` and sampled
requests match :func:`~repro.mamba.generation.sample_decode` run with the same
per-request seed.  Token selection shares the exact same code; the underlying
model math is numerically equivalent to 1e-10 (batched BLAS kernels may round
the last bits differently), so token streams agree unless a decode step lands
on an exact logit tie.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.mamba.generation import GenerationResult, _check_prompt
from repro.mamba.model import Mamba2Model
from repro.mamba.sampling import greedy_select, sample_select

__all__ = ["BatchedGenerator"]


def _per_request(value, n: int, name: str) -> list:
    """Broadcast a scalar-or-sequence option to one value per request."""
    if value is None or np.isscalar(value):
        return [value] * n
    value = list(value)
    if len(value) != n:
        raise ValueError(f"{name} must be a scalar or have one entry per request")
    return value


@dataclass
class BatchedGenerator:
    """Vectorized greedy / sampling decoding over a batch of requests.

    Parameters
    ----------
    model:
        The (possibly quantized) Mamba2 model.
    """

    model: Mamba2Model

    def generate(
        self,
        prompts: Sequence[Sequence[int]],
        max_new_tokens,
        *,
        temperature: Optional[float] = None,
        top_k: Optional[int] = None,
        stop_tokens=None,
        seed: int = 0,
        seeds: Optional[Sequence[int]] = None,
        on_token: Optional[Callable[[int, int, float], None]] = None,
    ) -> List[GenerationResult]:
        """Decode every prompt to completion and return per-request results.

        Parameters
        ----------
        prompts:
            One token-id sequence per request; lengths may differ -- ragged
            batches are right-padded and prefilled in one batched chunked
            model call (see :meth:`_prefill`).
        max_new_tokens:
            Per-request or shared generation budget.
        temperature:
            ``None`` selects greedy (argmax) decoding; a positive value
            enables temperature / top-k sampling.
        top_k:
            Optional exact-k candidate cut for sampling.
        stop_tokens:
            ``None``, a shared stop token id, or one optional id per request.
            As in the single-sequence decoders the stop token is appended to
            the output before the request terminates.
        seed, seeds:
            Sampling RNG seeds.  Request ``i`` draws from
            ``default_rng(seeds[i])`` (default ``seed + i``), so its tokens do
            not depend on which other requests share the batch.
        on_token:
            Optional streaming callback, mirroring the engine's:
            ``on_token(request_index, token, logprob)`` is called for every
            generated token the moment it is selected, before the batch
            finishes -- request_index is the position in ``prompts``.
        """
        n = len(prompts)
        if n == 0:
            return []
        vocab = self.model.config.vocab_size
        prompt_arrays = []
        for i, prompt in enumerate(prompts):
            try:
                prompt_arrays.append(_check_prompt(prompt, vocab))
            except ValueError as exc:
                # Name the offending request so a ragged batch with one bad
                # (e.g. zero-length) prompt is easy to debug; an empty text
                # should be encoded as a single BOS token upstream.
                raise ValueError(f"prompts[{i}]: {exc}") from None

        budgets = _per_request(max_new_tokens, n, "max_new_tokens")
        if any(b is None or b < 0 for b in budgets):
            raise ValueError("max_new_tokens must be non-negative")
        stops = _per_request(stop_tokens, n, "stop_tokens")
        if temperature is None:
            if top_k is not None or seeds is not None:
                raise ValueError(
                    "top_k / seeds only apply to sampling; pass a temperature "
                    "(greedy decoding ignores them)"
                )
        elif temperature <= 0:
            raise ValueError("temperature must be positive; omit it for greedy decoding")
        if seeds is not None and len(seeds) != n:
            raise ValueError("seeds must have one entry per request")
        rngs = None
        if temperature is not None:
            rngs = [
                np.random.default_rng(seed + i if seeds is None else seeds[i])
                for i in range(n)
            ]

        logits, cache = self._prefill(prompt_arrays)

        tokens: List[List[int]] = [[] for _ in range(n)]
        logprobs: List[List[float]] = [[] for _ in range(n)]
        active = np.array(
            [i for i in range(n) if budgets[i] > 0], dtype=np.int64
        )
        if active.size < n:
            logits = logits[active]
            cache = cache.gather(active)

        while active.size:
            if temperature is None:
                picked, logprob = greedy_select(logits)
            else:
                picked, logprob = sample_select(
                    logits, [rngs[i] for i in active], temperature=temperature, top_k=top_k
                )
            keep_rows = []
            for row, request in enumerate(active):
                token = int(picked[row])
                tokens[request].append(token)
                logprobs[request].append(float(logprob[row]))
                if on_token is not None:
                    on_token(int(request), token, float(logprob[row]))
                stop = stops[request]
                done = (stop is not None and token == int(stop)) or len(
                    tokens[request]
                ) >= budgets[request]
                if not done:
                    keep_rows.append(row)
            if not keep_rows:
                break
            if len(keep_rows) < active.size:
                # Evict finished requests: compact the batch to the survivors.
                cache = cache.gather(keep_rows)
                active = active[keep_rows]
                picked = picked[keep_rows]
            logits = self.model.step(picked, cache)

        return [
            GenerationResult(
                prompt=list(map(int, prompt_arrays[i])),
                tokens=tokens[i],
                logprobs=logprobs[i],
            )
            for i in range(n)
        ]

    # ------------------------------------------------------------------
    def _prefill(self, prompts: List[np.ndarray]):
        """Prefill all prompts with one padded batched model call.

        Ragged prompts are right-padded to the longest length and handed to
        the chunked prefill with their true ``seq_lens``: the model reads each
        row's logits at its true last token and snapshots its recurrent state
        there, so one model call covers every request regardless of length
        (pad positions are never observed -- the model is causal).  Quantized
        lightmamba* models take the same path: their ``ssm_impl`` serves the
        chunked scan chunk-parallel instead of token by token.
        """
        lengths = np.array([prompt.shape[0] for prompt in prompts], dtype=np.int64)
        max_len = int(lengths.max())
        if np.all(lengths == max_len):
            return self.model.prefill(np.stack(prompts))
        padded = np.zeros((len(prompts), max_len), dtype=np.int64)
        for i, prompt in enumerate(prompts):
            padded[i, : prompt.shape[0]] = prompt
        return self.model.prefill(padded, seq_lens=lengths)
