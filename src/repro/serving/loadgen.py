"""Seeded traffic-scale load generation for the serving front-end.

The scheduler benchmarks simulate traffic in iteration space; this module
turns the same idea into a reusable harness with *realistic traffic shapes*
and two interchangeable drivers:

- :func:`run_inprocess` drives an :class:`~repro.serving.engine.InferenceEngine`
  directly (no sockets) -- the fastest way to compare scheduler policies
  under load;
- :func:`run_live` drives a live :class:`~repro.serving.server.MambaServer`
  over real localhost TCP sockets, submitting via ``POST /v1/generate``,
  reading SSE token streams, disconnecting mid-stream by closing sockets,
  and advancing the engine in lockstep via ``POST /bench/step``.

Traffic shapes (:class:`TrafficShape`) model what "millions of users" looks
like in miniature: Poisson or bursty (Markov-modulated) arrival processes,
heavy-tailed (lognormal) prompt and output lengths, a priority mix, seeded
mid-stream client disconnects, and admission deadlines.  Everything is
derived from one seed, so a given ``(shape, n_requests, seed)`` triple is
exactly the same workload everywhere.

Determinism is the point: both drivers express time in *engine iterations*
(the live driver holds the engine in bench mode and steps it explicitly, and
deadlines ride an iteration-granular
:class:`~repro.serving.resilience.ManualClock`), so every gated metric --
p50/p99 TTFT, queue wait, time-per-output-token in token time, finish-reason
counts -- is bit-reproducible across machines.  Wall-clock tokens/sec per
slot is reported as information only.  :func:`verify_against_solo` closes
the loop by checking each request's token stream (including disconnected
prefixes) against the single-sequence reference decoders, end to end through
the wire path.
"""

from __future__ import annotations

import hashlib
import json
import socket
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mamba.generation import greedy_decode, sample_decode
from repro.mamba.model import Mamba2Model
from repro.serving.engine import InferenceEngine, Request
from repro.serving.resilience import ManualClock

__all__ = [
    "HarnessResult",
    "LoadItem",
    "RequestRecord",
    "TrafficShape",
    "make_traffic",
    "run_inprocess",
    "run_live",
    "verify_against_solo",
]


# ----------------------------------------------------------------------
# Traffic shapes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrafficShape:
    """Distributional knobs for one seeded workload.

    ``arrival`` selects the arrival process: ``"poisson"`` draws exponential
    inter-arrival gaps with mean ``mean_interarrival_iters``; ``"bursty"``
    modulates the same process with a two-state phase chain (mean phase
    length ``mean_phase_iters`` iterations) whose burst phase multiplies the
    arrival rate by ``burst_rate_multiplier`` -- the flash-crowd shape.
    Prompt and output lengths are lognormal (heavy-tailed) and clipped;
    ``disconnect_fraction`` of requests hang up mid-stream after a seeded
    number of received tokens; ``deadline_fraction`` carry an admission
    deadline in iterations.
    """

    arrival: str = "poisson"
    mean_interarrival_iters: float = 2.0
    burst_rate_multiplier: float = 6.0
    mean_phase_iters: float = 12.0
    prompt_log_mean: float = 2.4
    prompt_log_sigma: float = 0.9
    max_prompt_tokens: int = 160
    output_log_mean: float = 1.9
    output_log_sigma: float = 0.6
    max_output_tokens: int = 24
    high_priority_fraction: float = 0.35
    high_priority: int = 5
    sampled_fraction: float = 0.25
    temperature: float = 0.8
    top_k: int = 32
    disconnect_fraction: float = 0.15
    deadline_fraction: float = 0.1
    deadline_min_iters: int = 6
    deadline_max_iters: int = 48

    def __post_init__(self) -> None:
        if self.arrival not in ("poisson", "bursty"):
            raise ValueError(f"unknown arrival process {self.arrival!r}")


@dataclass(frozen=True)
class LoadItem:
    """One arrival of the workload, in engine-iteration time.

    ``disconnect_after`` (when set) is the number of streamed tokens after
    which the client hangs up -- strictly less than the request's budget, so
    the disconnect always lands mid-generation.  ``deadline_iters`` is an
    admission deadline relative to submission, in iterations.
    """

    submit_step: int
    request: Request
    priority: int = 0
    deadline_iters: Optional[int] = None
    disconnect_after: Optional[int] = None


def make_traffic(
    shape: TrafficShape,
    n_requests: int,
    vocab_size: int,
    seed: int = 0,
) -> List[LoadItem]:
    """Generate one seeded workload; identical for identical arguments."""
    rng = np.random.default_rng(seed)
    items: List[LoadItem] = []
    t = 0.0
    in_burst = False
    phase_left = float(rng.exponential(shape.mean_phase_iters))
    for _ in range(n_requests):
        rate = 1.0
        if shape.arrival == "bursty":
            if phase_left <= 0.0:
                in_burst = not in_burst
                phase_left = float(rng.exponential(shape.mean_phase_iters))
            if in_burst:
                rate = shape.burst_rate_multiplier
        gap = float(rng.exponential(shape.mean_interarrival_iters / rate))
        t += gap
        phase_left -= gap
        prompt_len = int(
            np.clip(
                round(float(rng.lognormal(shape.prompt_log_mean, shape.prompt_log_sigma))),
                1,
                shape.max_prompt_tokens,
            )
        )
        budget = int(
            np.clip(
                round(float(rng.lognormal(shape.output_log_mean, shape.output_log_sigma))),
                1,
                shape.max_output_tokens,
            )
        )
        prompt = tuple(int(x) for x in rng.integers(0, vocab_size, size=prompt_len))
        sampled = rng.random() < shape.sampled_fraction
        request = Request(
            prompt=prompt,
            max_new_tokens=budget,
            temperature=shape.temperature if sampled else None,
            top_k=shape.top_k if sampled else None,
            # Explicit seeds keep sampled streams identical no matter which
            # request ids the drivers hand out.
            seed=int(rng.integers(0, 2**31)) if sampled else None,
        )
        priority = (
            shape.high_priority if rng.random() < shape.high_priority_fraction else 0
        )
        disconnect_after = None
        if budget >= 2 and rng.random() < shape.disconnect_fraction:
            disconnect_after = int(rng.integers(1, budget))
        deadline_iters = None
        if rng.random() < shape.deadline_fraction:
            deadline_iters = int(
                rng.integers(shape.deadline_min_iters, shape.deadline_max_iters + 1)
            )
        items.append(
            LoadItem(
                submit_step=int(t),
                request=request,
                priority=priority,
                deadline_iters=deadline_iters,
                disconnect_after=disconnect_after,
            )
        )
    return items


# ----------------------------------------------------------------------
# Records and metrics
# ----------------------------------------------------------------------
@dataclass
class RequestRecord:
    """What one request did, in iteration space (driver-independent)."""

    item_index: int
    request_id: int
    finish_reason: str
    submitted_step: int
    admitted_step: Optional[int]
    first_token_step: Optional[int]
    finished_step: Optional[int]
    n_tokens: int
    tokens: Tuple[int, ...]
    queue_wait_iterations: Optional[int]
    ttft_iterations: Optional[int]
    #: token-clock stamps (cumulative prompt+decode tokens the engine had
    #: processed) at this request's first and last generated token
    first_processed: Optional[int] = None
    last_processed: Optional[int] = None


@dataclass
class HarnessResult:
    """One driver run: per-request records plus aggregate metrics.

    ``metrics`` holds only deterministic, lower-is-better iteration-space
    quantities (what the CI gate compares); ``info`` holds everything else,
    including the wall-clock throughput numbers.
    """

    driver: str
    n_requests: int
    records: List[RequestRecord]
    metrics: Dict[str, float]
    info: Dict[str, object]
    trace: List[Tuple] = field(default_factory=list)
    trace_hash: str = ""


def _pct(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def _finalize(
    driver: str,
    records: List[RequestRecord],
    *,
    engine_steps: int,
    decoded_tokens: int,
    max_batch_size: int,
    elapsed_s: float,
) -> HarnessResult:
    """Aggregate records into the gated metrics + info payloads."""
    records = sorted(records, key=lambda r: r.item_index)
    ttft = [r.ttft_iterations for r in records if r.ttft_iterations is not None]
    wait = [
        r.queue_wait_iterations
        for r in records
        if r.queue_wait_iterations is not None and r.finish_reason != "cancelled"
    ]
    tpot = [
        (r.last_processed - r.first_processed) / (r.n_tokens - 1)
        for r in records
        if r.n_tokens >= 2
        and r.first_processed is not None
        and r.last_processed is not None
    ]
    reasons: Dict[str, int] = {}
    for r in records:
        reasons[r.finish_reason] = reasons.get(r.finish_reason, 0) + 1
    metrics = {
        "ttft_p50_iters": _pct(ttft, 50),
        "ttft_p99_iters": _pct(ttft, 99),
        "queue_wait_p50_iters": _pct(wait, 50),
        "queue_wait_p99_iters": _pct(wait, 99),
        "tpot_p50_tokens": _pct(tpot, 50),
        "tpot_p99_tokens": _pct(tpot, 99),
        "cancelled_count": float(reasons.get("cancelled", 0)),
        "expired_count": float(reasons.get("expired", 0)),
        "error_count": float(reasons.get("error", 0)),
        "engine_steps": float(engine_steps),
    }
    slot_iters = engine_steps * max_batch_size
    info = {
        "finish_reasons": reasons,
        "decoded_tokens": decoded_tokens,
        "tokens_per_slot_iteration": (
            decoded_tokens / slot_iters if slot_iters else 0.0
        ),
        "wallclock_tokens_per_sec_per_slot": (
            decoded_tokens / elapsed_s / max_batch_size if elapsed_s > 0 else 0.0
        ),
        "wallclock_seconds": elapsed_s,
    }
    trace = [
        (
            r.item_index,
            r.finish_reason,
            r.submitted_step,
            r.admitted_step,
            r.first_token_step,
            r.finished_step,
            list(r.tokens),
        )
        for r in records
    ]
    trace_hash = hashlib.sha256(
        json.dumps(trace, sort_keys=True).encode("utf-8")
    ).hexdigest()[:16]
    return HarnessResult(
        driver=driver,
        n_requests=len(records),
        records=records,
        metrics=metrics,
        info=info,
        trace=trace,
        trace_hash=trace_hash,
    )


# ----------------------------------------------------------------------
# In-process driver
# ----------------------------------------------------------------------
def run_inprocess(
    model: Mamba2Model,
    scheduler,
    items: Sequence[LoadItem],
    *,
    max_batch_size: int = 4,
) -> HarnessResult:
    """Serve one workload directly against an engine (no sockets).

    Time is engine iterations throughout: a :class:`ManualClock` advances
    one tick per step, so admission deadlines expire deterministically, and
    client disconnects are modelled as :meth:`InferenceEngine.cancel` calls
    issued from the streaming ``on_token`` callback after the scheduled
    number of tokens -- the exact hang-up point a live SSE client produces.
    """
    clock = ManualClock()
    engine = InferenceEngine(
        model, max_batch_size=max_batch_size, scheduler=scheduler, clock=clock
    )
    id_to_index: Dict[int, int] = {}
    token_counts: Dict[int, int] = {}
    first_processed: Dict[int, int] = {}
    last_processed: Dict[int, int] = {}
    disconnect_at: Dict[int, int] = {}

    def on_token(request_id: int, token: int, logprob: float) -> None:
        stats = engine.stats
        processed = stats.prefilled_tokens + stats.decoded_tokens
        token_counts[request_id] = token_counts.get(request_id, 0) + 1
        first_processed.setdefault(request_id, processed)
        last_processed[request_id] = processed
        cut = disconnect_at.get(request_id)
        if cut is not None and token_counts[request_id] == cut:
            engine.cancel(request_id)

    completions = []
    idx = 0
    start = time.perf_counter()
    while idx < len(items) or engine.has_work:
        while idx < len(items) and items[idx].submit_step <= engine.stats.engine_steps:
            item = items[idx]
            request_id = engine.submit(
                item.request,
                priority=item.priority,
                timeout=(
                    float(item.deadline_iters)
                    if item.deadline_iters is not None
                    else None
                ),
            )
            id_to_index[request_id] = idx
            if item.disconnect_after is not None:
                disconnect_at[request_id] = item.disconnect_after
            idx += 1
        completions.extend(engine.step(on_token=on_token))
        clock.advance(1.0)
    elapsed = time.perf_counter() - start

    records = []
    for completion in completions:
        latency = completion.latency
        records.append(
            RequestRecord(
                item_index=id_to_index[completion.request_id],
                request_id=completion.request_id,
                finish_reason=completion.finish_reason,
                submitted_step=latency.submitted_step,
                admitted_step=latency.admitted_step,
                first_token_step=latency.first_token_step,
                finished_step=latency.finished_step,
                n_tokens=len(completion.result.tokens),
                tokens=tuple(completion.result.tokens),
                queue_wait_iterations=latency.queue_wait_iterations,
                ttft_iterations=latency.ttft_iterations,
                first_processed=first_processed.get(completion.request_id),
                last_processed=last_processed.get(completion.request_id),
            )
        )
    if len(records) != len(items):
        raise RuntimeError(
            f"exactly-once violated: {len(records)} completions for {len(items)} requests"
        )
    return _finalize(
        "inprocess",
        records,
        engine_steps=engine.stats.engine_steps,
        decoded_tokens=engine.stats.decoded_tokens,
        max_batch_size=max_batch_size,
        elapsed_s=elapsed,
    )


# ----------------------------------------------------------------------
# Live driver: a minimal blocking HTTP/SSE client on raw sockets
# ----------------------------------------------------------------------
class _Conn:
    """One blocking HTTP/1.1 connection (connection-per-request protocol)."""

    def __init__(self, host: str, port: int, timeout_s: float = 30.0):
        self.host = host
        self.port = port
        self.sock = socket.create_connection((host, port), timeout=timeout_s)
        self.file = self.sock.makefile("rb")
        self._events = self._event_stream()

    def send(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8") if payload is not None else b""
        lines = [f"{method} {path} HTTP/1.1", f"Host: {self.host}:{self.port}"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        lines.append("Content-Type: application/json")
        lines.append(f"Content-Length: {len(body)}")
        lines.append("Connection: close")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        self.sock.sendall(head + body)

    def read_head(self) -> Tuple[int, Dict[str, str]]:
        status_line = self.file.readline()
        if not status_line:
            raise ConnectionError("server closed the connection before responding")
        status = int(status_line.split()[1])
        headers: Dict[str, str] = {}
        while True:
            line = self.file.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers

    def read_json_body(self, headers: Dict[str, str]) -> dict:
        length = int(headers.get("content-length", "0") or "0")
        body = self.file.read(length) if length else self.file.read()
        return json.loads(body or b"{}")

    def _event_stream(self):
        event_name = None
        data = None
        while True:
            line = self.file.readline()
            if not line:
                return
            line = line.rstrip(b"\r\n")
            if not line:
                if event_name is not None:
                    yield event_name, json.loads(data)
                    event_name, data = None, None
                continue
            if line.startswith(b"event:"):
                event_name = line.split(b":", 1)[1].strip().decode("utf-8")
            elif line.startswith(b"data:"):
                data = line.split(b":", 1)[1].strip()

    def next_event(self) -> Tuple[str, dict]:
        return next(self._events)

    def close(self) -> None:
        for closer in (self.file.close, self.sock.close):
            try:
                closer()
            except OSError:
                pass


def _request_json(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[dict] = None,
    headers: Optional[Dict[str, str]] = None,
) -> Tuple[int, dict]:
    conn = _Conn(host, port)
    try:
        conn.send(method, path, payload=payload, headers=headers)
        status, resp_headers = conn.read_head()
        return status, conn.read_json_body(resp_headers)
    finally:
        conn.close()


@dataclass
class _LiveStream:
    """Client-side state of one open SSE generation stream."""

    conn: _Conn
    item_index: int
    request_id: int
    submitted_step: int
    tokens: List[int] = field(default_factory=list)
    first_token_step: Optional[int] = None
    first_processed: Optional[int] = None
    last_processed: Optional[int] = None
    done: Optional[dict] = None


def _request_payload(request: Request) -> dict:
    payload: dict = {
        "prompt": list(request.prompt),
        "max_new_tokens": request.max_new_tokens,
        "stream": True,
    }
    if request.temperature is not None:
        payload["temperature"] = request.temperature
        payload["top_k"] = request.top_k
        payload["seed"] = request.seed
    if request.stop_token is not None:
        payload["stop_token"] = request.stop_token
    return payload


def _pump_stream(stream: _LiveStream, upto_step: int, item: LoadItem) -> str:
    """Read one stream until this step's lockstep marker; returns its state.

    Consumes everything the engine emitted for the stream up to and
    including engine iteration ``upto_step`` (tokens, possibly the terminal
    ``done``), executing the item's scheduled mid-stream disconnect by
    closing the socket the moment the cut token arrives.
    """
    while True:
        try:
            event, data = stream.conn.next_event()
        except StopIteration:
            raise ConnectionError(
                f"stream for item {stream.item_index} ended without a done event"
            ) from None
        if event == "step" and data["step"] >= upto_step:
            return "open"
        if event == "token":
            stream.tokens.append(data["token"])
            if stream.first_token_step is None:
                stream.first_token_step = data["step"]
                stream.first_processed = data["processed_tokens"]
            stream.last_processed = data["processed_tokens"]
            if (
                item.disconnect_after is not None
                and len(stream.tokens) == item.disconnect_after
            ):
                # The mid-stream hang-up: close the socket without reading
                # the rest; the server observes EOF and cancels.
                stream.conn.close()
                return "disconnected"
        elif event == "done":
            stream.done = data
            stream.conn.close()
            return "done"


def _await_counter(
    host: str, port: int, key: str, minimum: int, timeout_s: float = 30.0
) -> None:
    """Poll ``/stats`` until an engine counter reaches ``minimum``."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        _, stats = _request_json(host, port, "GET", "/stats")
        if stats["engine"][key] >= minimum:
            return
        time.sleep(0.002)
    raise TimeoutError(f"engine counter {key!r} never reached {minimum}")


def run_live(
    host: str,
    port: int,
    items: Sequence[LoadItem],
    *,
    max_batch_size: int = 4,
) -> HarnessResult:
    """Serve one workload against a live server over real sockets.

    The server must be in bench mode (``ServerConfig(bench_mode=True,
    manual_clock_step=1.0)`` with a :class:`ManualClock`-driven engine): the
    driver submits the arrivals scheduled for the current iteration, advances
    the engine exactly one iteration with ``POST /bench/step``, then reads
    every open SSE stream up to that step's lockstep marker.  Scheduled
    disconnects close the raw socket mid-stream and wait (via ``/stats``)
    until the engine has observed the cancellation -- so the admission /
    completion trace is a pure function of the workload seed, despite real
    network I/O.
    """
    records: List[Optional[RequestRecord]] = [None] * len(items)
    open_streams: List[_LiveStream] = []
    expected_cancels = 0
    current_step = 0
    idx = 0
    start = time.perf_counter()
    while True:
        while idx < len(items) and items[idx].submit_step <= current_step:
            item = items[idx]
            conn = _Conn(host, port)
            headers = {"X-Priority": str(item.priority)}
            if item.deadline_iters is not None:
                headers["X-Deadline-S"] = str(float(item.deadline_iters))
            conn.send(
                "POST", "/v1/generate", payload=_request_payload(item.request),
                headers=headers,
            )
            status, _ = conn.read_head()
            if status != 200:
                raise ConnectionError(f"generate returned HTTP {status}")
            event, data = conn.next_event()
            if event != "start":
                raise ConnectionError(f"expected start event, got {event!r}")
            open_streams.append(
                _LiveStream(
                    conn=conn,
                    item_index=idx,
                    request_id=data["request_id"],
                    submitted_step=data["submitted_step"],
                )
            )
            idx += 1
        if idx >= len(items) and not open_streams:
            break
        status, step_resp = _request_json(host, port, "POST", "/bench/step")
        if status != 200:
            raise ConnectionError(f"/bench/step returned HTTP {status}")
        current_step = step_resp["engine_step"]
        still_open: List[_LiveStream] = []
        disconnected: List[_LiveStream] = []
        for stream in open_streams:
            state = _pump_stream(stream, current_step, items[stream.item_index])
            if state == "open":
                still_open.append(stream)
            elif state == "disconnected":
                disconnected.append(stream)
            else:
                records[stream.item_index] = _record_from_done(stream)
        if disconnected:
            expected_cancels += len(disconnected)
            # Lockstep barrier: the next /bench/step must not run until the
            # engine has freed every hung-up slot, or the trace would depend
            # on socket timing.
            _await_counter(host, port, "cancelled", expected_cancels)
            for stream in disconnected:
                records[stream.item_index] = _record_from_disconnect(
                    stream, current_step
                )
        open_streams = still_open
    elapsed = time.perf_counter() - start
    missing = [i for i, r in enumerate(records) if r is None]
    if missing:
        raise RuntimeError(f"exactly-once violated: no terminal record for {missing}")
    _, stats = _request_json(host, port, "GET", "/stats")
    return _finalize(
        "live",
        [r for r in records if r is not None],
        engine_steps=int(stats["engine"]["engine_steps"]),
        decoded_tokens=int(stats["engine"]["decoded_tokens"]),
        max_batch_size=max_batch_size,
        elapsed_s=elapsed,
    )


def _record_from_done(stream: _LiveStream) -> RequestRecord:
    done = stream.done
    latency = done.get("latency") or {}
    return RequestRecord(
        item_index=stream.item_index,
        request_id=stream.request_id,
        finish_reason=done["finish_reason"],
        submitted_step=latency.get("submitted_step", stream.submitted_step),
        admitted_step=latency.get("admitted_step"),
        first_token_step=latency.get("first_token_step"),
        finished_step=latency.get("finished_step"),
        n_tokens=done["n_tokens"],
        tokens=tuple(done["tokens"]),
        queue_wait_iterations=latency.get("queue_wait_iterations"),
        ttft_iterations=latency.get("ttft_iterations"),
        first_processed=stream.first_processed,
        last_processed=stream.last_processed,
    )


def _record_from_disconnect(stream: _LiveStream, cancel_step: int) -> RequestRecord:
    ttft = None
    if stream.first_token_step is not None:
        # Mirrors RequestLatency.ttft_iterations.
        ttft = stream.first_token_step - stream.submitted_step - 1
    return RequestRecord(
        item_index=stream.item_index,
        request_id=stream.request_id,
        finish_reason="cancelled",
        submitted_step=stream.submitted_step,
        admitted_step=None,
        first_token_step=stream.first_token_step,
        finished_step=cancel_step,
        n_tokens=len(stream.tokens),
        tokens=tuple(stream.tokens),
        queue_wait_iterations=None,
        ttft_iterations=ttft,
        first_processed=stream.first_processed,
        last_processed=stream.last_processed,
    )


# ----------------------------------------------------------------------
# End-to-end verification against the single-sequence decoders
# ----------------------------------------------------------------------
def verify_against_solo(
    model: Mamba2Model,
    items: Sequence[LoadItem],
    records: Sequence[RequestRecord],
) -> List[str]:
    """Check every token stream against its solo-decode reference.

    Completed requests must match the single-sequence decoder exactly;
    requests cancelled mid-stream (client disconnects) must be an exact
    *prefix* of it.  Returns human-readable mismatch descriptions (empty ==
    the bit-identical invariant survived the wire path).
    """
    mismatches: List[str] = []
    for record in records:
        if record.n_tokens == 0:
            continue
        request = items[record.item_index].request
        if request.temperature is None:
            reference = greedy_decode(
                model,
                list(request.prompt),
                request.max_new_tokens,
                stop_token=request.stop_token,
            )
        else:
            reference = sample_decode(
                model,
                list(request.prompt),
                request.max_new_tokens,
                temperature=request.temperature,
                top_k=request.top_k,
                seed=request.seed,
                stop_token=request.stop_token,
            )
        expected = list(reference.tokens)
        got = list(record.tokens)
        if record.finish_reason == "cancelled":
            expected = expected[: record.n_tokens]
        if got != expected:
            mismatches.append(
                f"item {record.item_index} ({record.finish_reason}): "
                f"got {got}, expected {expected}"
            )
    return mismatches
