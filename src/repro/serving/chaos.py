"""Chaos soak: randomized fault schedules against the engine supervisor.

This module turns the deterministic fault-injection layer
(:mod:`repro.serving.resilience`) into a *soak harness*: seeded random
workloads run under seeded random :class:`~repro.serving.resilience.FaultPlan`
schedules, and every run is checked against the supervisor's conservation
invariants:

- **exactly-once completion** -- every submitted request terminates exactly
  once, with a valid ``finish_reason`` (``stop``/``length`` for successes,
  ``error`` for quarantined or aborted requests);
- **no slot leaks** -- after the drain the engine holds no active slots, no
  in-flight prefills, no retrying recoveries, and the queue is empty;
- **bit-identical survivors** -- every request that finished successfully and
  was *not* degraded to the sequential-oracle fallback produces exactly the
  token stream of a fault-free reference run (same workload, same scheduler,
  supervisor enabled, no injector).  Recovery is rollback-exact, so even
  requests that faulted and recovered must match bit for bit.

Everything is deterministic: the workload from its seed, the fault schedule
from its seed, time from a :class:`~repro.serving.resilience.ManualClock`.
A failing ``(scheduler, seed)`` pair therefore replays exactly in a debugger.

The pytest soak (``tests/test_resilience.py``) and the CI chaos job
(``benchmarks/chaos_soak.py``) are thin wrappers over :func:`run_chaos_soak`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.engine import InferenceEngine, Request
from repro.serving.resilience import (
    FaultInjector,
    FaultPlan,
    ManualClock,
    ResilienceConfig,
)
from repro.serving.scheduler import (
    FIFOScheduler,
    PagedScheduler,
    PriorityScheduler,
    Scheduler,
)

__all__ = [
    "ChaosReport",
    "SCHEDULER_NAMES",
    "build_scheduler",
    "build_workload",
    "run_chaos_soak",
    "soak_once",
]

#: Scheduler policies the soak cycles through.
SCHEDULER_NAMES: Tuple[str, ...] = ("fifo", "priority", "paged")

#: Valid terminal states for a chaos-soak request (no deadlines or cancels in
#: the generated workload, so ``expired``/``cancelled`` never appear).
_VALID_REASONS = frozenset({"stop", "length", "error"})


def build_scheduler(name: str, *, max_batch_size: int) -> Scheduler:
    """One scheduler instance per policy name, sized for chunked prefill."""
    if name == "fifo":
        return FIFOScheduler(prefill_chunk_tokens=4)
    if name == "priority":
        return PriorityScheduler(prefill_chunk_tokens=4, preempt=True)
    if name == "paged":
        return PagedScheduler(page_tokens=max_batch_size + 4)
    raise ValueError(f"unknown scheduler {name!r}; pick one of {SCHEDULER_NAMES}")


def build_workload(
    seed: int,
    *,
    vocab_size: int,
    num_requests: int = 6,
    max_prompt: int = 10,
    max_new: int = 7,
) -> Tuple[List[Request], List[int]]:
    """A seeded mixed workload: ``(requests, priorities)``, submit in order.

    Mixes greedy and temperature/top-k sampled requests (with explicit
    per-request seeds, so token streams do not depend on engine seeding),
    ragged prompt lengths, occasional stop tokens, and varied priorities.
    """
    rng = np.random.default_rng(seed)
    requests: List[Request] = []
    priorities: List[int] = []
    for i in range(num_requests):
        prompt_len = int(rng.integers(2, max_prompt + 1))
        prompt = rng.integers(0, vocab_size, size=prompt_len).tolist()
        sampled = bool(rng.random() < 0.4)
        requests.append(
            Request(
                prompt=prompt,
                max_new_tokens=int(rng.integers(2, max_new + 1)),
                temperature=0.8 if sampled else None,
                top_k=8 if sampled else None,
                seed=int(rng.integers(0, 2**31)) if sampled else None,
                stop_token=int(rng.integers(0, vocab_size))
                if rng.random() < 0.25
                else None,
            )
        )
        priorities.append(int(rng.integers(0, 3)))
    return requests, priorities


@dataclass
class ChaosReport:
    """Outcome of one seeded chaos run (one scheduler, one fault schedule)."""

    scheduler: str
    seed: int
    num_requests: int
    finish_reasons: Dict[int, str]
    violations: List[str]
    degraded_requests: Tuple[int, ...]
    fault_trace: List[Dict[str, object]] = field(default_factory=list)
    resilience_events: List[Dict[str, object]] = field(default_factory=list)
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json(self) -> Dict[str, object]:
        return {
            "scheduler": self.scheduler,
            "seed": self.seed,
            "num_requests": self.num_requests,
            "ok": self.ok,
            "finish_reasons": {str(k): v for k, v in self.finish_reasons.items()},
            "violations": list(self.violations),
            "degraded_requests": list(self.degraded_requests),
            "fault_trace": self.fault_trace,
            "resilience_events": self.resilience_events,
            "stats": self.stats,
        }


def _run(
    model,
    requests: Sequence[Request],
    priorities: Sequence[int],
    scheduler_name: str,
    *,
    resilience: ResilienceConfig,
    injector: Optional[FaultInjector] = None,
    clock: Optional[ManualClock] = None,
    max_idle_iterations: int = 64,
) -> Tuple[InferenceEngine, List]:
    engine = InferenceEngine(
        model,
        max_batch_size=3,
        scheduler=build_scheduler(scheduler_name, max_batch_size=3),
        clock=clock if clock is not None else ManualClock(),
        resilience=resilience,
        fault_injector=injector,
    )
    for request, priority in zip(requests, priorities):
        engine.submit(request, priority=priority)
    completions = engine.run(max_idle_iterations=max_idle_iterations)
    return engine, completions


def soak_once(
    model,
    *,
    seed: int,
    scheduler: str = "fifo",
    num_requests: int = 6,
    num_faults: Optional[int] = None,
    resilience: Optional[ResilienceConfig] = None,
    reference_tokens: Optional[Dict[int, List[int]]] = None,
) -> ChaosReport:
    """One seeded chaos run; checks every conservation invariant.

    ``reference_tokens`` (request id -> fault-free token stream) may be
    passed in to share one reference run across several fault schedules for
    the same ``(scheduler, workload)``; it is computed here when omitted.
    """
    if resilience is None:
        resilience = ResilienceConfig(
            max_attempts=3,
            backoff_base_iterations=1,
            backoff_cap_iterations=4,
            degrade_after=2,
            watchdog_budget_s=1.0,
        )
    requests, priorities = build_workload(
        seed, vocab_size=model.config.vocab_size, num_requests=num_requests
    )
    if reference_tokens is None:
        _, ref = _run(model, requests, priorities, scheduler, resilience=resilience)
        reference_tokens = {c.request_id: list(c.result.tokens) for c in ref}

    plan = FaultPlan.random(
        seed,
        horizon=24,
        request_ids=tuple(range(len(requests))),
        num_faults=num_faults,
    )
    clock = ManualClock()
    injector = FaultInjector(plan, clock_advance=clock.advance)
    engine, completions = _run(
        model,
        requests,
        priorities,
        scheduler,
        resilience=resilience,
        injector=injector,
        clock=clock,
    )

    violations: List[str] = []
    seen: Dict[int, str] = {}
    for completion in completions:
        if completion.request_id in seen:
            violations.append(f"request {completion.request_id} completed twice")
        seen[completion.request_id] = completion.finish_reason
        if completion.finish_reason not in _VALID_REASONS:
            violations.append(
                f"request {completion.request_id} finished with invalid reason "
                f"{completion.finish_reason!r}"
            )
        if completion.finish_reason == "error" and not completion.error:
            violations.append(
                f"request {completion.request_id} errored without an error message"
            )
    for request_id in range(len(requests)):
        if request_id not in seen:
            violations.append(f"request {request_id} never completed")

    if engine.has_work:
        violations.append("engine still has work after run() drained")
    if engine.num_active or engine.num_prefilling or len(engine.queue):
        violations.append(
            f"slot leak: active={engine.num_active} "
            f"prefilling={engine.num_prefilling} queued={len(engine.queue)}"
        )
    if engine._recovering:  # noqa: SLF001 - invariant check on drained engine
        violations.append(f"recovery leak: slots {sorted(engine._recovering)}")

    degraded = engine.resilience_log.request_ids("degrade")
    for completion in completions:
        if completion.finish_reason not in ("stop", "length"):
            continue
        if completion.request_id in degraded:
            continue
        expected = reference_tokens.get(completion.request_id)
        if list(completion.result.tokens) != expected:
            violations.append(
                f"request {completion.request_id} diverged from the fault-free "
                f"run: {list(completion.result.tokens)} != {expected}"
            )

    stats = engine.stats
    return ChaosReport(
        scheduler=scheduler,
        seed=seed,
        num_requests=len(requests),
        finish_reasons=seen,
        violations=violations,
        degraded_requests=tuple(degraded),
        fault_trace=list(injector.trace),
        resilience_events=engine.resilience_log.to_json(),
        stats={
            "engine_steps": stats.engine_steps,
            "faults": stats.faults,
            "rollbacks": stats.rollbacks,
            "retries": stats.retries,
            "recovered": stats.recovered,
            "requeued_faults": stats.requeued_faults,
            "quarantined": stats.quarantined,
            "degraded": stats.degraded,
            "watchdog_timeouts": stats.watchdog_timeouts,
            "aborted": stats.aborted,
            "snapshot_rows": stats.snapshot_rows,
            "snapshot_bytes": stats.snapshot_bytes,
            "callback_drops": stats.callback_drops,
        },
    )


def run_chaos_soak(
    model,
    *,
    seeds: Sequence[int],
    schedulers: Sequence[str] = SCHEDULER_NAMES,
    num_requests: int = 6,
) -> List[ChaosReport]:
    """The full soak matrix: every scheduler x every seeded fault schedule.

    The fault-free reference is computed once per ``(scheduler, seed)``
    workload and shared with the faulted run.  Returns one
    :class:`ChaosReport` per cell; callers assert ``all(r.ok ...)``.
    """
    reports: List[ChaosReport] = []
    for scheduler in schedulers:
        for seed in seeds:
            reports.append(
                soak_once(
                    model,
                    seed=seed,
                    scheduler=scheduler,
                    num_requests=num_requests,
                )
            )
    return reports
