"""Batched serving on top of the Mamba2 decode path.

Mamba decode has *constant* per-token state (the fixed-size recurrent cache,
Fig. 9a of the LightMamba paper), which makes large-batch decode cheap: a
batch of requests is a leading ``(batch, ...)`` axis on the same state
tensors, and every decode step reads the weights once for the whole batch.
This package provides the two serving front-ends built on that property:

- :class:`~repro.serving.generator.BatchedGenerator` -- decode a *fixed* set
  of requests together (vectorized greedy and temperature/top-k sampling,
  ragged prompts, per-request stop tokens and length budgets, optional token
  streaming).
- :class:`~repro.serving.engine.InferenceEngine` -- *continuous batching* over
  a request stream: an async-capable :class:`~repro.serving.queue.RequestQueue`
  (injected clock, priorities, deadlines, cancellation) feeds a pluggable
  admission :class:`~repro.serving.scheduler.Scheduler` --
  :class:`~repro.serving.scheduler.FIFOScheduler` (default, the historical
  behavior), :class:`~repro.serving.scheduler.PriorityScheduler`, or the
  token-budget :class:`~repro.serving.scheduler.PagedScheduler` that
  interleaves chunked-prefill pages with in-flight decode -- and the engine
  emits per-request :class:`~repro.serving.engine.RequestLatency` stats,
  supports ``cancel(request_id)``, and streams tokens through an ``on_token``
  callback.
- :class:`~repro.serving.server.MambaServer` -- an asyncio HTTP + SSE wire
  front-end over the engine (stdlib streams only): ``POST /v1/generate``
  streams tokens as Server-Sent Events, client disconnects become
  ``cancel``, ``X-Priority`` / ``X-Deadline-S`` headers map onto the queue,
  ``/healthz`` + ``/stats`` expose the counters, and shutdown drains
  in-flight requests exactly-once.  :mod:`~repro.serving.loadgen` is its
  seeded traffic harness: Poisson/bursty arrivals, heavy-tailed lengths,
  priority mixes, deadlines and mid-stream disconnects, driven either
  in-process or over real sockets (see ``benchmarks/bench_serving_load.py``).
- :mod:`~repro.serving.resilience` -- the fault-injection / self-healing
  layer: a deterministic :class:`~repro.serving.resilience.FaultInjector`
  (seeded :class:`~repro.serving.resilience.FaultPlan` schedules addressable
  by engine iteration, request, and call site) drives the engine's
  supervisor, which snapshots integer-resident SSM state before each
  supervised model call, isolates faulting requests, rolls survivors back
  bit-exactly, retries with capped exponential backoff, degrades repeat
  offenders to the sequential oracle, and quarantines hopeless requests with
  ``finish_reason="error"``.  :mod:`~repro.serving.chaos` builds randomized
  chaos-soak runs on top and checks the conservation invariants.

Both front-ends reproduce the single-sequence decoders in
:mod:`repro.mamba.generation` request for request: token selection shares the
exact same arithmetic, and the model math is numerically equivalent to 1e-10
(batched BLAS kernels may round differently in the last bits, so a token
choice could in principle flip at an exact logit tie).  Scheduling policy
changes *when* work runs, never *what* it produces.

Example
-------
>>> from repro.mamba import InitConfig, Mamba2Model, get_preset
>>> from repro.serving import BatchedGenerator, InferenceEngine, Request
>>> model = Mamba2Model.from_config(get_preset("mamba2-tiny"), InitConfig(seed=0))
>>> gen = BatchedGenerator(model)
>>> results = gen.generate([[1, 2, 3], [7, 8]], max_new_tokens=4)
>>> [len(r.tokens) for r in results]
[4, 4]
>>> engine = InferenceEngine(model, max_batch_size=2)
>>> _ = engine.submit(Request(prompt=(1, 2, 3), max_new_tokens=4))
>>> _ = engine.submit(Request(prompt=(5, 6), max_new_tokens=2, temperature=0.8, top_k=16))
>>> completions = engine.run()
>>> [c.request_id for c in completions]
[0, 1]
>>> [c.finish_reason for c in completions]
['length', 'length']
"""

from repro.serving.chaos import ChaosReport, build_workload, run_chaos_soak, soak_once
from repro.serving.engine import (
    Completion,
    EngineStats,
    InferenceEngine,
    Request,
    RequestLatency,
)
from repro.serving.generator import BatchedGenerator
from repro.serving.loadgen import (
    HarnessResult,
    LoadItem,
    RequestRecord,
    TrafficShape,
    make_traffic,
    run_inprocess,
    run_live,
    verify_against_solo,
)
from repro.serving.queue import QueueEntry, RequestQueue
from repro.serving.resilience import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    IterationTimeout,
    ManualClock,
    ResilienceConfig,
    ResilienceEvent,
    ResilienceLog,
    StateCorruptionError,
)
from repro.serving.scheduler import (
    AdmissionPlan,
    FIFOScheduler,
    PagedScheduler,
    PrefillView,
    PriorityScheduler,
    Scheduler,
    SchedulerContext,
    TokenLedger,
)
from repro.serving.server import MambaServer, ServerConfig, serve_in_thread

__all__ = [
    "AdmissionPlan",
    "BatchedGenerator",
    "ChaosReport",
    "Completion",
    "EngineStats",
    "FIFOScheduler",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "HarnessResult",
    "InferenceEngine",
    "IterationTimeout",
    "LoadItem",
    "MambaServer",
    "ManualClock",
    "PagedScheduler",
    "PrefillView",
    "PriorityScheduler",
    "QueueEntry",
    "Request",
    "RequestLatency",
    "RequestQueue",
    "RequestRecord",
    "ResilienceConfig",
    "ResilienceEvent",
    "ResilienceLog",
    "Scheduler",
    "SchedulerContext",
    "ServerConfig",
    "StateCorruptionError",
    "TokenLedger",
    "TrafficShape",
    "build_workload",
    "make_traffic",
    "run_chaos_soak",
    "run_inprocess",
    "run_live",
    "serve_in_thread",
    "soak_once",
    "verify_against_solo",
]
