"""Batched serving on top of the Mamba2 decode path.

Mamba decode has *constant* per-token state (the fixed-size recurrent cache,
Fig. 9a of the LightMamba paper), which makes large-batch decode cheap: a
batch of requests is a leading ``(batch, ...)`` axis on the same state
tensors, and every decode step reads the weights once for the whole batch.
This package provides the two serving front-ends built on that property:

- :class:`~repro.serving.generator.BatchedGenerator` -- decode a *fixed* set
  of requests together (vectorized greedy and temperature/top-k sampling,
  ragged prompts, per-request stop tokens and length budgets).
- :class:`~repro.serving.engine.InferenceEngine` -- *continuous batching* over
  a request stream: queued requests are admitted into a fixed pool of batch
  slots as earlier requests retire, so the batch stays full under load.

Both reproduce the single-sequence decoders in
:mod:`repro.mamba.generation` request for request: token selection shares the
exact same arithmetic, and the model math is numerically equivalent to 1e-10
(batched BLAS kernels may round differently in the last bits, so a token
choice could in principle flip at an exact logit tie).

Example
-------
>>> from repro.mamba import InitConfig, Mamba2Model, get_preset
>>> from repro.serving import BatchedGenerator, InferenceEngine, Request
>>> model = Mamba2Model.from_config(get_preset("mamba2-tiny"), InitConfig(seed=0))
>>> gen = BatchedGenerator(model)
>>> results = gen.generate([[1, 2, 3], [7, 8]], max_new_tokens=4)
>>> [len(r.tokens) for r in results]
[4, 4]
>>> engine = InferenceEngine(model, max_batch_size=2)
>>> _ = engine.submit(Request(prompt=(1, 2, 3), max_new_tokens=4))
>>> _ = engine.submit(Request(prompt=(5, 6), max_new_tokens=2, temperature=0.8, top_k=16))
>>> completions = engine.run()
>>> [c.request_id for c in completions]
[0, 1]
"""

from repro.serving.engine import Completion, EngineStats, InferenceEngine, Request
from repro.serving.generator import BatchedGenerator

__all__ = [
    "BatchedGenerator",
    "InferenceEngine",
    "Request",
    "Completion",
    "EngineStats",
]
