"""Pluggable admission scheduling for the inference engine.

Every engine iteration has a fixed shape -- resume in-flight chunked prefills,
admit waiting requests into free slots, then advance all fully-prefilled slots
by one decode token -- but *which* requests get prompt tokens, in what order,
and how many, is policy.  This module makes that policy a first-class,
pluggable component: the engine hands the :class:`Scheduler` a FIFO snapshot of
the waiting queue plus a :class:`SchedulerContext` view of its slots, and the
scheduler answers with an :class:`AdmissionPlan`.  The engine mechanically
applies the plan; it never reorders or rebudgets it.

Three policies ship, mirroring the admission spectrum of the LightMamba-style
accelerator pipeline (prefill and decode share the same SSMU/MMU datapath, so
admission policy decides which unit-saturating work runs each beat):

- :class:`FIFOScheduler` -- arrival order, the engine's historical behavior
  (including its optional ``prefill_chunk_tokens`` chunking).  The refactored
  engine with the default ``FIFOScheduler`` is bit-identical to the
  pre-scheduler engine.
- :class:`PriorityScheduler` -- highest priority first, FIFO among ties, with
  optional preemption of the lowest-priority in-flight *prefill* when a
  strictly more urgent request is waiting and no slot is free (decoding
  requests are never preempted; a preempted prefill keeps its progress and
  resumes where it stopped).
- :class:`PagedScheduler` -- a per-iteration token-budget ledger
  (:class:`TokenLedger`) shared by decode and prefill, generalizing
  ``prefill_chunk_tokens``: each iteration "page" holds ``page_tokens`` model
  tokens, every decoding slot charges one, and only the remainder may be spent
  on prefill pages.  A long prompt therefore cannot inflate any iteration by
  more than the page budget -- in-flight decodes are delayed by at most
  ``max(page_tokens - decodes, min_prefill_tokens)`` prompt tokens per step --
  while prefill still makes progress every iteration (starvation-free in both
  directions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from repro.serving.queue import QueueEntry

__all__ = [
    "AdmissionPlan",
    "FIFOScheduler",
    "PagedScheduler",
    "PrefillView",
    "PriorityScheduler",
    "Scheduler",
    "SchedulerContext",
    "TokenLedger",
]


@dataclass(frozen=True)
class PrefillView:
    """Scheduler-facing view of one in-flight (partially prefilled) request."""

    slot: int
    request_id: int
    remaining_tokens: int
    priority: int
    arrival_seq: int


@dataclass(frozen=True)
class SchedulerContext:
    """Engine state snapshot handed to the scheduler each iteration.

    ``free_slots`` never contains a quarantined slot, so plans that only
    admit into free slots respect quarantine automatically.
    ``quarantined_slots`` lists slots the resilience supervisor has retired
    from service (e.g. after an attributed state-corruption fault): they are
    neither free nor occupied and must not be targeted by any plan.
    ``num_decoding`` counts occupied slots, including any the supervisor is
    currently holding in retry backoff (they still own their row).
    """

    engine_step: int
    max_batch_size: int
    free_slots: Tuple[int, ...]
    prefilling: Tuple[PrefillView, ...]
    num_decoding: int
    quarantined_slots: Tuple[int, ...] = ()


@dataclass(frozen=True)
class AdmissionPlan:
    """The scheduler's decisions for one engine iteration.

    ``resume``
        ``(slot, tokens)`` pairs: advance the in-flight prefill at ``slot`` by
        up to ``tokens`` prompt tokens (``None`` = the full remainder).
    ``admit``
        ``(request_id, tokens)`` pairs, in admission order: pop the request
        from the queue and start prefilling it in the next free slot with up to
        ``tokens`` prompt tokens.  Zero-generation requests complete
        immediately and consume neither a slot nor tokens.
    ``preempt``
        Slots whose in-flight prefill is evicted back to the waiting queue
        *before* resumes and admissions are applied.  Progress is kept: the
        request's partial recurrent state is parked and continued on
        re-admission.  Preempted slots must not appear in ``resume``.
    """

    resume: Tuple[Tuple[int, Optional[int]], ...] = ()
    admit: Tuple[Tuple[int, Optional[int]], ...] = ()
    preempt: Tuple[int, ...] = ()


@runtime_checkable
class Scheduler(Protocol):
    """Admission policy: queue snapshot + engine view -> admission plan."""

    def plan(
        self, queue: Sequence[QueueEntry], ctx: SchedulerContext
    ) -> AdmissionPlan:  # pragma: no cover - protocol signature
        ...


class TokenLedger:
    """Per-iteration decode/prefill token-budget ledger.

    Generalizes the engine's old ``prefill_chunk_tokens`` scalar: one ledger is
    opened per iteration with ``budget`` total model tokens (``None`` =
    unbounded); decode rows charge it via :meth:`charge_decode` and prefill
    work draws grants from the remainder via :meth:`grant_prefill`.
    """

    def __init__(self, budget: Optional[int]):
        if budget is not None and budget <= 0:
            raise ValueError("token budget must be positive (or None)")
        self.budget = budget
        self.decode_tokens = 0
        self.prefill_tokens = 0

    @property
    def remaining(self) -> Optional[int]:
        """Tokens left in this iteration's page (``None`` = unbounded)."""
        if self.budget is None:
            return None
        return max(0, self.budget - self.decode_tokens - self.prefill_tokens)

    def charge_decode(self, rows: int) -> None:
        self.decode_tokens += rows

    def grant_prefill(self, want: int, floor: int = 0) -> int:
        """Grant up to ``want`` prefill tokens from the remaining budget.

        ``floor`` guarantees a minimum grant even on an exhausted (or
        nearly-exhausted) page -- the liveness floor of
        :class:`PagedScheduler`: whenever the remaining budget would grant
        less than ``floor``, the grant is raised to ``min(want, floor)`` and
        the overdraft is recorded so the next accounting still sees it.
        """
        if want <= 0:
            return 0
        grant = want if self.budget is None else min(want, self.remaining)
        if grant < floor:
            grant = min(want, floor)
        self.prefill_tokens += grant
        return grant


def _fifo_like_plan(
    *,
    budget: Optional[int],
    queue_order: Sequence[QueueEntry],
    resume_order: Sequence[PrefillView],
    free_slots: Sequence[int],
) -> AdmissionPlan:
    """Shared FIFO/priority plan body: differ only in the two orderings.

    Reproduces the pre-scheduler engine's budget accounting exactly: in-flight
    prefills resume first, each drawing from the shared budget; then one
    non-degenerate request is admitted per free slot while budget remains
    (zero-generation requests ride along for free, in order).  Admission
    grants charge only a request's *remaining* prompt tokens, so a
    preempted-then-re-queued request (partial progress parked by the engine)
    does not overdraw the budget for work already done.
    """
    resume: List[Tuple[int, Optional[int]]] = []
    remaining = budget
    for view in resume_order:
        if remaining is not None and remaining <= 0:
            return AdmissionPlan(resume=tuple(resume))
        take = (
            view.remaining_tokens
            if remaining is None
            else min(view.remaining_tokens, remaining)
        )
        resume.append((view.slot, take))
        if remaining is not None:
            remaining -= take
    admit: List[Tuple[int, Optional[int]]] = []
    waiting = list(queue_order)
    for _slot in free_slots:
        if remaining is not None and remaining <= 0:
            break
        while waiting:
            entry = waiting.pop(0)
            if entry.request.max_new_tokens == 0:
                admit.append((entry.request_id, 0))
                continue
            want = entry.remaining_prompt_tokens
            take = want if remaining is None else min(want, remaining)
            admit.append((entry.request_id, take))
            if remaining is not None:
                remaining -= take
            break
        if not waiting:
            break
    return AdmissionPlan(resume=tuple(resume), admit=tuple(admit))


@dataclass
class FIFOScheduler:
    """Arrival-order admission -- the engine's historical behavior.

    With ``prefill_chunk_tokens=None`` each admitted prompt prefills in full at
    admission; with a budget, prompt work is chunked across iterations exactly
    as the pre-scheduler engine's ``prefill_chunk_tokens`` mode did (in-flight
    prefills resume lowest-slot first, then new requests are admitted in
    arrival order while budget remains).
    """

    prefill_chunk_tokens: Optional[int] = None

    def __post_init__(self) -> None:
        if self.prefill_chunk_tokens is not None and self.prefill_chunk_tokens <= 0:
            raise ValueError("prefill_chunk_tokens must be positive (or None)")

    def plan(self, queue: Sequence[QueueEntry], ctx: SchedulerContext) -> AdmissionPlan:
        return _fifo_like_plan(
            budget=self.prefill_chunk_tokens,
            queue_order=queue,
            resume_order=sorted(ctx.prefilling, key=lambda v: v.slot),
            free_slots=ctx.free_slots,
        )


@dataclass
class PriorityScheduler:
    """Highest priority first; FIFO (arrival order) among equal priorities.

    In-flight prefills also resume in priority order when the chunk budget is
    tight, so an urgent long prompt is not starved by earlier cheap ones.  With
    ``preempt=True``, when every slot is busy and a *strictly* higher-priority
    request is waiting, the lowest-priority in-flight prefill (youngest arrival
    among ties) is evicted back to the queue -- keeping its progress -- to free
    a slot.  Requests that already reached decode are never preempted.
    """

    prefill_chunk_tokens: Optional[int] = None
    preempt: bool = False

    def __post_init__(self) -> None:
        if self.prefill_chunk_tokens is not None and self.prefill_chunk_tokens <= 0:
            raise ValueError("prefill_chunk_tokens must be positive (or None)")

    def plan(self, queue: Sequence[QueueEntry], ctx: SchedulerContext) -> AdmissionPlan:
        ordered = sorted(queue, key=lambda e: (-e.priority, e.arrival_seq))
        prefilling = sorted(ctx.prefilling, key=lambda v: (-v.priority, v.arrival_seq))
        base = _fifo_like_plan(
            budget=self.prefill_chunk_tokens,
            queue_order=ordered,
            resume_order=prefilling,
            free_slots=ctx.free_slots,
        )
        if not self.preempt or not prefilling:
            return base
        # Preempt only when it actually admits the most urgent waiting
        # request this iteration: a degenerate queue head (needs no slot), a
        # free slot (admission failed on budget, which eviction cannot fix),
        # or a budget already drained by resumes would otherwise evict a
        # prefill into an empty slot for nothing.
        urgent = next((e for e in ordered if e.request.max_new_tokens > 0), None)
        if (
            urgent is None
            or ctx.free_slots
            or any(request_id == urgent.request_id for request_id, _ in base.admit)
        ):
            return base
        victim = min(prefilling, key=lambda v: (v.priority, -v.arrival_seq))
        if urgent.priority <= victim.priority:
            return base
        replanned = _fifo_like_plan(
            budget=self.prefill_chunk_tokens,
            queue_order=ordered,
            resume_order=[v for v in prefilling if v is not victim],
            free_slots=(victim.slot,),
        )
        if not any(request_id == urgent.request_id for request_id, _ in replanned.admit):
            return base
        return AdmissionPlan(
            resume=replanned.resume, admit=replanned.admit, preempt=(victim.slot,)
        )


@dataclass
class PagedScheduler:
    """Fair page-based interleaving of chunked prefill and decode.

    Each engine iteration is one *page* of ``page_tokens`` model tokens.
    Decoding slots claim one token each (they always advance -- the engine
    decodes every fully-prefilled slot every step); the remainder of the page
    is spent on prompt tokens, oldest waiting work first.  Consequences:

    - **decode-stall bound**: the prompt work added to any iteration is at most
      ``max(page_tokens - decoding_rows, min_prefill_tokens)`` tokens, no
      matter how long the queued prompts are;
    - **prefill liveness**: when prefill work is pending, at least
      ``min_prefill_tokens`` prompt tokens are processed per iteration even if
      decodes fill the page, so admission cannot be starved by a full decode
      batch.

    Pick ``page_tokens >= max_batch_size + desired prefill chunk``; the decode
    charge then leaves a steady per-iteration prefill allowance.  Unlike FIFO,
    zero-generation requests are retired immediately even when no slot is free
    (they never need one).
    """

    page_tokens: int
    count_decode: bool = True
    min_prefill_tokens: int = 1

    def __post_init__(self) -> None:
        if self.page_tokens <= 0:
            raise ValueError("page_tokens must be positive")
        if self.min_prefill_tokens < 0:
            raise ValueError("min_prefill_tokens must be non-negative")

    def plan(self, queue: Sequence[QueueEntry], ctx: SchedulerContext) -> AdmissionPlan:
        ledger = TokenLedger(self.page_tokens)
        if self.count_decode:
            ledger.charge_decode(ctx.num_decoding)
        floor = self.min_prefill_tokens
        resume: List[Tuple[int, Optional[int]]] = []
        for view in sorted(ctx.prefilling, key=lambda v: v.arrival_seq):
            grant = ledger.grant_prefill(view.remaining_tokens, floor=floor)
            if grant <= 0:
                break
            floor = 0  # the liveness floor applies to the first grant only
            resume.append((view.slot, grant))
        admit: List[Tuple[int, Optional[int]]] = []
        free = len(ctx.free_slots)
        for entry in queue:
            if entry.request.max_new_tokens == 0:
                admit.append((entry.request_id, 0))
                continue
            if free <= 0:
                continue
            grant = ledger.grant_prefill(entry.remaining_prompt_tokens, floor=floor)
            if grant <= 0:
                break
            floor = 0
            admit.append((entry.request_id, grant))
            free -= 1
        return AdmissionPlan(resume=tuple(resume), admit=tuple(admit))
