"""Continuous-batching inference engine.

:class:`InferenceEngine` serves a *stream* of generation requests with a
fixed-size pool of batch slots.  Each engine step (i) admits queued requests
into free slots (prefilling their prompts with the chunked scan -- the
quantized chunk-parallel scan for lightmamba* models -- and scattering the
resulting recurrent state into the slot), (ii) advances every
active slot by one decode token in a single batched model call, and (iii)
retires requests that hit their stop token or length budget, freeing their
slots for the next waiting request.  Because the Mamba recurrent cache is
fixed-size, admission and eviction are plain ``gather`` / ``scatter`` row
operations on the batched cache -- no paged KV allocator is needed.

With ``prefill_chunk_tokens`` set, admission is *chunked*: each engine
iteration consumes at most that many prompt tokens, carrying partially
prefilled prompts across iterations in their reserved slot, so a very long
prompt interleaves with -- instead of stalling -- the in-flight decodes.

Request results are independent of scheduling: every request reproduces what
:func:`~repro.mamba.generation.greedy_decode` (or ``sample_decode`` with the
request's seed) would produce on its own, no matter which other requests it
shared batches with.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mamba.cache import InferenceCache
from repro.mamba.generation import GenerationResult
from repro.mamba.model import Mamba2Model
from repro.mamba.sampling import greedy_select, sample_select

__all__ = ["Request", "Completion", "EngineStats", "InferenceEngine"]


@dataclass(frozen=True)
class Request:
    """One generation request submitted to the engine.

    ``temperature is None`` selects greedy decoding; otherwise temperature /
    top-k sampling with the request's own RNG stream (``seed``).
    """

    prompt: Tuple[int, ...]
    max_new_tokens: int
    temperature: Optional[float] = None
    top_k: Optional[int] = None
    stop_token: Optional[int] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "prompt", tuple(int(t) for t in self.prompt))
        if not self.prompt:
            raise ValueError("prompt must be non-empty")
        if self.max_new_tokens < 0:
            raise ValueError("max_new_tokens must be non-negative")
        if self.temperature is None:
            if self.top_k is not None or self.seed is not None:
                raise ValueError(
                    "top_k / seed only apply to sampling; set a temperature "
                    "(greedy decoding ignores them)"
                )
        elif self.temperature <= 0:
            raise ValueError("temperature must be positive (or None for greedy)")
        if self.top_k is not None and self.top_k <= 0:
            raise ValueError("top_k must be positive when given")


@dataclass(frozen=True)
class Completion:
    """A finished request: its id, the request, and the generation result."""

    request_id: int
    request: Request
    result: GenerationResult


@dataclass
class EngineStats:
    """Aggregate counters for throughput accounting."""

    admitted: int = 0
    completed: int = 0
    engine_steps: int = 0
    decode_calls: int = 0
    decode_call_rows: int = 0
    decoded_tokens: int = 0
    prefill_calls: int = 0
    prefilled_tokens: int = 0

    @property
    def tokens_per_decode_call(self) -> float:
        """Average batch occupancy of the decode calls (the batching win).

        Counts only rows actually advanced by batched decode calls; each
        request's first token comes from its prefill logits and is excluded,
        so this never exceeds the slot count.
        """
        return self.decode_call_rows / self.decode_calls if self.decode_calls else 0.0


@dataclass
class _Slot:
    """Book-keeping for one active request occupying a batch slot."""

    request_id: int
    request: Request
    rng: Optional[np.random.Generator]
    tokens: List[int] = field(default_factory=list)
    logprobs: List[float] = field(default_factory=list)


@dataclass
class _PrefillProgress:
    """A request whose prompt is being prefilled across engine iterations.

    The slot is reserved but does not decode until the prompt is fully
    consumed; ``cache`` carries the exact recurrent state after ``pos``
    prompt tokens (the conv window continuation makes segment boundaries
    invisible to the math).
    """

    request_id: int
    request: Request
    cache: InferenceCache
    pos: int = 0


class InferenceEngine:
    """Continuous batching over a stream of requests.

    Parameters
    ----------
    model:
        The (possibly quantized) Mamba2 model.
    max_batch_size:
        Number of batch slots (maximum concurrently decoding requests).
    seed:
        Base seed for sampled requests that do not carry their own ``seed``
        (request ``i`` then uses ``seed + i``).
    prefill_chunk_tokens:
        Optional bound on how many *prompt* tokens the engine processes per
        iteration (chunked-prefill admission).  A long prompt is then
        prefilled across several engine steps -- its slot is reserved but
        in-flight decodes keep advancing every step, so one huge prompt can
        no longer stall the running batch.  ``None`` (default) prefills each
        admitted prompt in full at admission time.  For FP models chunked
        admission is exact regardless of the segment size.  For a quantized
        chunk-parallel model (lightmamba*), segmentation that lands on the
        model's ``chunk_size`` boundaries is bit-exact with a one-shot
        prefill (the PoT state re-quantization is idempotent on chunk-aligned
        states); a chunk-aligned budget keeps a request's segments aligned
        *when it has the iteration's budget to itself*, but leftover budget
        shared with another request in the same iteration can still produce
        an unaligned segment, which shifts that prompt's state-quantization
        points by quantization-noise scale (an approximation, not an error).
    """

    def __init__(
        self,
        model: Mamba2Model,
        max_batch_size: int = 8,
        seed: int = 0,
        prefill_chunk_tokens: Optional[int] = None,
    ):
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if prefill_chunk_tokens is not None and prefill_chunk_tokens <= 0:
            raise ValueError("prefill_chunk_tokens must be positive (or None)")
        self.model = model
        self.max_batch_size = max_batch_size
        self.seed = seed
        self.prefill_chunk_tokens = prefill_chunk_tokens
        self.stats = EngineStats()
        self._queue: Deque[Tuple[int, Request]] = deque()
        self._next_id = 0
        self._slots: List[Optional[_Slot]] = [None] * max_batch_size
        self._prefilling: Dict[int, _PrefillProgress] = {}
        self._cache = InferenceCache.zeros(model.config, batch_size=max_batch_size)
        self._pending_logits = np.zeros(
            (max_batch_size, model.config.vocab_size), dtype=np.float64
        )

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> int:
        """Queue a request; returns its request id."""
        vocab = self.model.config.vocab_size
        if min(request.prompt) < 0 or max(request.prompt) >= vocab:
            # Validate before allocating the id, so a rejected submit does not
            # shift the default per-request sampling seeds (seed + request_id).
            raise ValueError("prompt token id out of range")
        request_id = self._next_id
        self._next_id += 1
        self._queue.append((request_id, request))
        return request_id

    @property
    def num_waiting(self) -> int:
        return len(self._queue)

    @property
    def num_active(self) -> int:
        return sum(slot is not None for slot in self._slots)

    @property
    def num_prefilling(self) -> int:
        """Requests whose prompt is still being chunk-prefilled."""
        return len(self._prefilling)

    @property
    def has_work(self) -> bool:
        return self.num_waiting > 0 or self.num_active > 0 or self.num_prefilling > 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def step(self) -> List[Completion]:
        """Run one engine iteration; returns requests retired this step.

        Admits queued requests into free slots, advances all active slots by
        one token with a single batched decode call, and retires finished
        requests.
        """
        self.stats.engine_steps += 1
        completions: List[Completion] = self._admit()
        active = [i for i, slot in enumerate(self._slots) if slot is not None]
        if not active:
            return completions

        chosen = np.zeros(len(active), dtype=np.int64)
        survivors: List[int] = []
        for row, slot_idx in enumerate(active):
            slot = self._slots[slot_idx]
            token, logprob = self._select(slot, self._pending_logits[slot_idx])
            slot.tokens.append(token)
            slot.logprobs.append(logprob)
            chosen[row] = token
            self.stats.decoded_tokens += 1
            request = slot.request
            done = (
                request.stop_token is not None and token == request.stop_token
            ) or len(slot.tokens) >= request.max_new_tokens
            if done:
                completions.append(self._retire(slot_idx))
            else:
                survivors.append(row)

        if survivors:
            slot_indices = [active[row] for row in survivors]
            if len(slot_indices) == self.max_batch_size:
                # Full batch: every slot survives, so step the slot cache in
                # place and skip the per-token gather/scatter copies.
                logits = self.model.step(chosen[survivors], self._cache)
            else:
                batch = self._cache.gather(slot_indices)
                logits = self.model.step(chosen[survivors], batch)
                self._cache.scatter(slot_indices, batch)
            self.stats.decode_calls += 1
            self.stats.decode_call_rows += len(slot_indices)
            self._pending_logits[slot_indices] = logits
        return completions

    def run(self, requests: Optional[Sequence[Request]] = None) -> List[Completion]:
        """Submit ``requests`` (if given) and step until the engine drains.

        Returns all completions produced during the drain, ordered by request
        id.
        """
        if requests is not None:
            for request in requests:
                self.submit(request)
        completions: List[Completion] = []
        while self.has_work:
            completions.extend(self.step())
        return sorted(completions, key=lambda c: c.request_id)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _admit(self) -> List[Completion]:
        """Prefill queued requests into free slots (scatter admission).

        With ``prefill_chunk_tokens`` set, at most that many prompt tokens
        are consumed this iteration: in-flight chunked prefills resume first
        (oldest request first), then new requests are admitted into free
        slots while budget remains.  A partially prefilled request reserves
        its slot but does not decode until its prompt is consumed.

        Returns completions for degenerate (zero-budget) requests, which
        never occupy a slot.
        """
        immediate: List[Completion] = []
        budget = self.prefill_chunk_tokens
        for slot_idx in sorted(self._prefilling):
            if budget is not None and budget <= 0:
                return immediate
            budget = self._advance_prefill(slot_idx, budget)
        for slot_idx in range(self.max_batch_size):
            if budget is not None and budget <= 0:
                break
            if self._slots[slot_idx] is not None or slot_idx in self._prefilling:
                continue
            while (
                self._queue
                and self._slots[slot_idx] is None
                and slot_idx not in self._prefilling
            ):
                request_id, request = self._queue.popleft()
                self.stats.admitted += 1
                if request.max_new_tokens == 0:
                    # Degenerate request: completes immediately, never holds a slot.
                    self.stats.completed += 1
                    immediate.append(
                        Completion(
                            request_id=request_id,
                            request=request,
                            result=GenerationResult(
                                prompt=list(request.prompt), tokens=[], logprobs=[]
                            ),
                        )
                    )
                    continue
                self._prefilling[slot_idx] = _PrefillProgress(
                    request_id=request_id,
                    request=request,
                    cache=InferenceCache.zeros(self.model.config),
                )
                budget = self._advance_prefill(slot_idx, budget)
        return immediate

    def _advance_prefill(self, slot_idx: int, budget: Optional[int]) -> Optional[int]:
        """Consume up to ``budget`` prompt tokens of one in-flight prefill.

        The request's single-sequence cache is continued exactly across
        segments (chunked scan + conv-window carry); when the prompt is
        exhausted the request is installed into its slot with the true
        last-token logits pending, ready to decode next iteration.  Returns
        the remaining budget (``None`` = unbounded).
        """
        progress = self._prefilling[slot_idx]
        prompt = np.asarray(progress.request.prompt, dtype=np.int64)
        remaining = prompt.shape[0] - progress.pos
        take = remaining if budget is None else min(remaining, budget)
        if take <= 0:
            return budget
        logits, _ = self.model.prefill(
            prompt[progress.pos : progress.pos + take], cache=progress.cache
        )
        progress.pos += take
        self.stats.prefill_calls += 1
        self.stats.prefilled_tokens += take
        if budget is not None:
            budget -= take
        if progress.pos == prompt.shape[0]:
            del self._prefilling[slot_idx]
            self._cache.scatter([slot_idx], InferenceCache.stack([progress.cache]))
            self._pending_logits[slot_idx] = logits
            request = progress.request
            rng = None
            if request.temperature is not None:
                rng_seed = (
                    request.seed
                    if request.seed is not None
                    else self.seed + progress.request_id
                )
                rng = np.random.default_rng(rng_seed)
            self._slots[slot_idx] = _Slot(
                request_id=progress.request_id, request=request, rng=rng
            )
        return budget

    def _select(self, slot: _Slot, logits: np.ndarray) -> Tuple[int, float]:
        """Choose the next token for one slot from its pending logits."""
        request = slot.request
        if request.temperature is None:
            token, logprob = greedy_select(logits)
            return int(token), float(logprob)
        picked, logprob = sample_select(
            logits[None, :],
            [slot.rng],
            temperature=request.temperature,
            top_k=request.top_k,
        )
        return int(picked[0]), float(logprob[0])

    def _retire(self, slot_idx: int) -> Completion:
        slot = self._slots[slot_idx]
        self._slots[slot_idx] = None
        self.stats.completed += 1
        return Completion(
            request_id=slot.request_id,
            request=slot.request,
            result=GenerationResult(
                prompt=list(slot.request.prompt),
                tokens=slot.tokens,
                logprobs=slot.logprobs,
            ),
        )
