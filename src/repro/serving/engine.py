"""Continuous-batching inference engine with pluggable admission scheduling.

:class:`InferenceEngine` serves a *stream* of generation requests with a
fixed-size pool of batch slots.  Each engine step (i) applies the
:class:`~repro.serving.scheduler.Scheduler`'s admission plan -- resuming
in-flight chunked prefills, admitting waiting requests from the
:class:`~repro.serving.queue.RequestQueue` into free slots (prefilling their
prompts with the chunked scan -- the quantized chunk-parallel scan for
lightmamba* models -- and scattering the resulting recurrent state into the
slot), and, if the policy says so, preempting an in-flight prefill back to the
queue -- then (ii) advances every fully-prefilled slot by one decode token in a
single batched model call, and (iii) retires requests that hit their stop token
or length budget, freeing their slots.  Because the Mamba recurrent cache is
fixed-size, admission and eviction are plain ``gather`` / ``scatter`` row
operations on the batched cache -- no paged KV allocator is needed.

Scheduling is policy, results are not: every request reproduces what
:func:`~repro.mamba.generation.greedy_decode` (or ``sample_decode`` with the
request's seed) would produce on its own, no matter which other requests it
shared batches with or which scheduler ordered the admissions.  The default
:class:`~repro.serving.scheduler.FIFOScheduler` additionally reproduces the
pre-scheduler engine's *behavior* bit-for-bit (same prefill segmentation, same
admission order, same stats).

Beyond admission policy the engine provides the serving-layer plumbing the
policies need to be useful: per-request latency accounting
(:class:`RequestLatency`: queue wait, time-to-first-token and decode duration
in engine iterations, wall-clock arrival/admission stamps from the queue's
injected clock), :meth:`InferenceEngine.cancel` for waiting *and* in-flight
requests, per-request admission deadlines (expired requests retire with
``finish_reason="expired"``), and a streaming ``on_token`` callback fired for
every generated token as it is selected.

Failure semantics (the resilience supervisor)
---------------------------------------------
With a :class:`~repro.serving.resilience.ResilienceConfig` (implied by
passing a :class:`~repro.serving.resilience.FaultInjector`), every model call
is *supervised*: the affected slots' recurrent state is snapshotted first
(cheap -- Mamba state is fixed-size, and quantized models checkpoint resident
integer codes + PoT scales directly), the call runs on a working copy, and on
failure the faulting request is isolated (direct attribution for detected
corruption, binary search of the batch for a raising kernel), survivors
commit bit-exactly, and the culprit retries with capped exponential backoff
-- in place for decode, requeued with its ``prefill_pos`` progress preserved
for prefill -- until it recovers, degrades to the sequential oracle, or is
quarantined with ``finish_reason="error"``.  See
``src/repro/serving/README.md`` for the full state machine.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.mamba.cache import InferenceCache
from repro.mamba.generation import GenerationResult
from repro.mamba.model import Mamba2Model
from repro.mamba.sampling import greedy_select, sample_select
from repro.serving.queue import Clock, QueueEntry, RequestQueue
from repro.serving.resilience import (
    FaultInjector,
    IterationTimeout,
    ResilienceConfig,
    ResilienceLog,
    StateCorruptionError,
    cache_unhealthy,
    sequential_fallback,
    unhealthy_rows,
)
from repro.serving.scheduler import (
    AdmissionPlan,
    FIFOScheduler,
    PrefillView,
    Scheduler,
    SchedulerContext,
)

__all__ = [
    "Completion",
    "EngineStats",
    "InferenceEngine",
    "Request",
    "RequestLatency",
    "TokenCallback",
]

#: Streaming callback: ``on_token(request_id, token, logprob)`` is invoked for
#: every generated token the moment it is selected, before the request
#: completes -- the serving layer's token-streaming hook.
TokenCallback = Callable[[int, int, float], None]


@dataclass(frozen=True)
class Request:
    """One generation request submitted to the engine.

    ``temperature is None`` selects greedy decoding; otherwise temperature /
    top-k sampling with the request's own RNG stream (``seed``).
    """

    prompt: Tuple[int, ...]
    max_new_tokens: int
    temperature: Optional[float] = None
    top_k: Optional[int] = None
    stop_token: Optional[int] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "prompt", tuple(int(t) for t in self.prompt))
        if not self.prompt:
            raise ValueError(
                "prompt must be non-empty; encode an empty or whitespace-only "
                "input as a single BOS token"
            )
        if self.max_new_tokens < 0:
            raise ValueError("max_new_tokens must be non-negative")
        if self.temperature is None:
            if self.top_k is not None or self.seed is not None:
                raise ValueError(
                    "top_k / seed only apply to sampling; set a temperature "
                    "(greedy decoding ignores them)"
                )
        elif self.temperature <= 0:
            raise ValueError("temperature must be positive (or None for greedy)")
        if self.top_k is not None and self.top_k <= 0:
            raise ValueError("top_k must be positive when given")


@dataclass
class RequestLatency:
    """Per-request latency record, in engine iterations and wall-clock time.

    Iteration counts are deterministic (they depend only on the workload and
    the scheduling policy, not the machine); wall-clock stamps come from the
    queue's injected clock.  ``None`` step fields mean the event has not
    happened (yet).
    """

    request_id: int
    submitted_step: int
    submitted_at: float
    admitted_step: Optional[int] = None
    admitted_at: Optional[float] = None
    first_token_step: Optional[int] = None
    finished_step: Optional[int] = None
    decode_iterations: int = 0
    finish_reason: Optional[str] = None
    #: repr() of the first exception a user on_token callback raised for this
    #: request; streaming was disabled for the request from that token on.
    callback_error: Optional[str] = None

    @property
    def queue_wait_iterations(self) -> Optional[int]:
        """Full engine iterations spent waiting before first prompt work."""
        if self.admitted_step is None:
            return None
        return self.admitted_step - self.submitted_step - 1

    @property
    def ttft_iterations(self) -> Optional[int]:
        """Engine iterations from submission to the first generated token."""
        if self.first_token_step is None:
            return None
        return self.first_token_step - self.submitted_step - 1


@dataclass(frozen=True)
class Completion:
    """A finished request: its id, the request, result, and why it finished.

    ``finish_reason`` is one of ``"stop"`` (stop token), ``"length"`` (token
    budget, including zero-budget requests), ``"cancelled"``
    (:meth:`InferenceEngine.cancel`), ``"expired"`` (admission deadline
    passed while waiting) or ``"error"`` (the resilience supervisor
    quarantined the request after exhausting its retry budget, or a ``run()``
    guard aborted it; ``error`` then carries the ``repr`` of the final
    exception or the guard's message, and ``result`` keeps any tokens
    generated before the failure).  ``latency`` is the request's
    :class:`RequestLatency` record.
    """

    request_id: int
    request: Request
    result: GenerationResult
    finish_reason: str = "stop"
    latency: Optional[RequestLatency] = None
    error: Optional[str] = None


@dataclass
class EngineStats:
    """Aggregate counters for throughput accounting."""

    admitted: int = 0
    completed: int = 0
    cancelled: int = 0
    expired: int = 0
    preempted: int = 0
    engine_steps: int = 0
    decode_calls: int = 0
    decode_call_rows: int = 0
    decoded_tokens: int = 0
    prefill_calls: int = 0
    prefilled_tokens: int = 0
    # --- resilience ledger (all zero when no supervisor is configured) ---
    #: supervised model calls that failed (raise, corruption, or watchdog)
    faults: int = 0
    #: slot-state restores from a pre-iteration snapshot
    rollbacks: int = 0
    #: retries scheduled (with exponential backoff) after a fault
    retries: int = 0
    #: faulted requests that subsequently resumed cleanly
    recovered: int = 0
    #: faulted prefills requeued with their prefill_pos progress preserved
    requeued_faults: int = 0
    #: requests retired with finish_reason="error" after exhausting retries
    quarantined: int = 0
    #: requests degraded to the sequential-oracle fallback (the degradation
    #: ledger's aggregate; per-event detail in InferenceEngine.resilience_log)
    degraded: int = 0
    #: supervised calls that exceeded the iteration watchdog budget
    watchdog_timeouts: int = 0
    #: requests aborted by a run() guard (max_wall_seconds / max_idle_iterations)
    aborted: int = 0
    #: rows checkpointed by the supervisor, and their resident byte footprint
    snapshot_rows: int = 0
    snapshot_bytes: float = 0.0
    #: user on_token callbacks that raised (streaming then disabled) / were
    #: dropped by an injected fault
    callback_errors: int = 0
    callback_drops: int = 0
    #: batch slots retired from service after attributed corruption
    slots_quarantined: int = 0

    @property
    def tokens_per_decode_call(self) -> float:
        """Average batch occupancy of the decode calls (the batching win).

        Counts only rows actually advanced by batched decode calls; each
        request's first token comes from its prefill logits and is excluded,
        so this never exceeds the slot count.  An engine that never issued a
        decode call (nothing admitted, or only zero-budget requests) reports
        0.0 rather than dividing by zero.
        """
        return self.decode_call_rows / self.decode_calls if self.decode_calls else 0.0


@dataclass
class _Slot:
    """Book-keeping for one active request occupying a batch slot."""

    request_id: int
    request: Request
    rng: Optional[np.random.Generator]
    tokens: List[int] = field(default_factory=list)
    logprobs: List[float] = field(default_factory=list)
    #: Set after the request's on_token callback raises: the request keeps
    #: decoding, but no further tokens are streamed to it.
    streaming_disabled: bool = False


@dataclass
class _Recovery:
    """A decoding slot held in the supervisor's retry loop.

    The slot's committed cache row still holds the pre-fault state (failed
    calls run on working copies); ``snapshot`` is the authoritative 1-row
    checkpoint retries re-derive from, and ``token`` the already-selected
    (and already streamed / appended) token whose state advance failed.
    """

    snapshot: InferenceCache
    token: int
    attempts: int
    retry_step: int
    corruption: bool = False
    error: str = ""


@dataclass
class _PrefillProgress:
    """A request whose prompt is being prefilled across engine iterations.

    The slot is reserved but does not decode until the prompt is fully
    consumed; ``cache`` carries the exact recurrent state after ``pos``
    prompt tokens (the conv window continuation makes segment boundaries
    invisible to the math).  ``entry`` keeps the queue metadata (priority,
    arrival order) so the scheduler can reason about in-flight prefills and a
    preempted request re-enters the queue in its original position.
    """

    entry: QueueEntry
    cache: InferenceCache
    pos: int = 0

    @property
    def request_id(self) -> int:
        return self.entry.request_id

    @property
    def request(self) -> Request:
        return self.entry.request


class InferenceEngine:
    """Continuous batching over a stream of requests.

    Parameters
    ----------
    model:
        The (possibly quantized) Mamba2 model.
    max_batch_size:
        Number of batch slots (maximum concurrently decoding requests).
    seed:
        Base seed for sampled requests that do not carry their own ``seed``
        (request ``i`` then uses ``seed + i``).
    prefill_chunk_tokens:
        Back-compat shorthand for ``scheduler=FIFOScheduler(prefill_chunk_tokens=...)``:
        bounds how many *prompt* tokens the engine processes per iteration
        (chunked-prefill admission).  A long prompt is then prefilled across
        several engine steps -- its slot is reserved but in-flight decodes
        keep advancing every step, so one huge prompt can no longer stall the
        running batch.  ``None`` (default) prefills each admitted prompt in
        full at admission time.  For FP models chunked admission is exact
        regardless of the segment size.  For a quantized chunk-parallel model
        (lightmamba*), segmentation that lands on the model's ``chunk_size``
        boundaries is bit-exact with a one-shot prefill (the PoT state
        re-quantization is idempotent on chunk-aligned states); a
        chunk-aligned budget keeps a request's segments aligned *when it has
        the iteration's budget to itself*, but leftover budget shared with
        another request in the same iteration can still produce an unaligned
        segment, which shifts that prompt's state-quantization points by
        quantization-noise scale (an approximation, not an error).
    scheduler:
        The admission policy (see :mod:`repro.serving.scheduler`).  Defaults
        to :class:`~repro.serving.scheduler.FIFOScheduler`, which reproduces
        the pre-scheduler engine bit-for-bit.  Mutually exclusive with
        ``prefill_chunk_tokens``.
    clock:
        Time source for the request queue (arrival stamps, deadlines).
        Defaults to :func:`time.monotonic`; tests inject a fake clock.
    resilience:
        Supervisor policy (:class:`~repro.serving.resilience.ResilienceConfig`).
        When set (or implied by ``fault_injector``), model calls run
        supervised: snapshot, isolate, roll back, retry/requeue/degrade/
        quarantine (see the module docstring).  ``None`` (default) keeps the
        historical fail-fast behavior -- a model exception propagates out of
        :meth:`step`.
    fault_injector:
        Deterministic fault source for chaos testing
        (:class:`~repro.serving.resilience.FaultInjector`).  Implies a
        default ``resilience`` config when one is not given, since injected
        faults are only meaningful under supervision.
    """

    def __init__(
        self,
        model: Mamba2Model,
        max_batch_size: int = 8,
        seed: int = 0,
        prefill_chunk_tokens: Optional[int] = None,
        scheduler: Optional[Scheduler] = None,
        clock: Optional[Clock] = None,
        resilience: Optional[ResilienceConfig] = None,
        fault_injector: Optional[FaultInjector] = None,
    ):
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if scheduler is not None and prefill_chunk_tokens is not None:
            raise ValueError("pass prefill_chunk_tokens or scheduler, not both")
        self.model = model
        self.max_batch_size = max_batch_size
        self.seed = seed
        self.scheduler: Scheduler = (
            scheduler
            if scheduler is not None
            else FIFOScheduler(prefill_chunk_tokens=prefill_chunk_tokens)
        )
        self.stats = EngineStats()
        self.queue = RequestQueue() if clock is None else RequestQueue(clock=clock)
        self._submit_lock = threading.Lock()
        self._next_id = 0  # guarded-by: _submit_lock
        self._slots: List[Optional[_Slot]] = [None] * max_batch_size
        self._prefilling: Dict[int, _PrefillProgress] = {}
        self._parked: Dict[int, _PrefillProgress] = {}
        self._latency: Dict[int, RequestLatency] = {}  # guarded-by: _submit_lock
        self._pending_completions: List[Completion] = []
        # The model's own cache factory: quantized models with a persistent
        # integer state get a codes-resident slot pool, so admission and
        # eviction move integer codes rather than floats.
        self._cache = model.new_cache(batch_size=max_batch_size)
        self._pending_logits = np.zeros(
            (max_batch_size, model.config.vocab_size), dtype=np.float64
        )
        # --- resilience supervisor state (consumer-thread only) ---
        if resilience is None and fault_injector is not None:
            resilience = ResilienceConfig()
        self.resilience = resilience
        self.fault_injector = fault_injector
        self.resilience_log = ResilienceLog()
        #: decoding slots held in the retry loop (slot_idx -> _Recovery)
        self._recovering: Dict[int, _Recovery] = {}
        #: cumulative fault attempts per request (persists across requeues)
        self._fault_attempts: Dict[int, int] = {}
        #: requests degraded to the sequential-oracle prefill fallback
        self._degraded: Set[int] = set()
        #: slots retired from service after attributed corruption
        self._quarantined_slots: Set[int] = set()

    @property
    def _supervised(self) -> bool:
        return self.resilience is not None

    @property
    def prefill_chunk_tokens(self) -> Optional[int]:
        """The FIFO policy's chunk budget, if the scheduler has one."""
        return getattr(self.scheduler, "prefill_chunk_tokens", None)

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def submit(
        self,
        request: Request,
        *,
        priority: int = 0,
        deadline: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> int:
        """Queue a request; returns its request id.

        ``priority`` (higher = more urgent) is acted on by priority-aware
        schedulers and ignored by FIFO.  ``deadline`` is an absolute queue-clock
        time by which the request must be *admitted*; ``timeout`` is the same
        expressed relative to now.  A request still waiting past its deadline
        retires with ``finish_reason="expired"`` instead of running.

        ``submit`` is thread-safe (producers may call it from other threads,
        matching the queue's contract); :meth:`step` and :meth:`cancel` belong
        to the single consumer thread driving the engine.
        """
        vocab = self.model.config.vocab_size
        if min(request.prompt) < 0 or max(request.prompt) >= vocab:
            # Validate before allocating the id, so a rejected submit does not
            # shift the default per-request sampling seeds (seed + request_id).
            raise ValueError("prompt token id out of range")
        if deadline is not None and timeout is not None:
            raise ValueError("pass deadline or timeout, not both")
        if timeout is not None:
            if timeout < 0:
                raise ValueError("timeout must be non-negative")
            deadline = self.queue.clock() + timeout
        with self._submit_lock:
            request_id = self._next_id
            self._next_id += 1
            entry = self.queue.push(
                request_id, request, priority=priority, deadline=deadline
            )
            self._latency[request_id] = RequestLatency(
                request_id=request_id,
                submitted_step=self.stats.engine_steps,
                submitted_at=entry.arrival_time,
            )
        return request_id

    def cancel(self, request_id: int) -> bool:
        """Cancel a waiting or in-flight request.

        Returns ``True`` if the request was found (its ``"cancelled"``
        completion -- with any tokens generated so far -- is delivered by the
        next :meth:`step`), ``False`` if it is unknown or already finished.
        Cancelling an in-flight request frees its slot immediately.

        A cancel that races the request's *final* decode iteration (e.g. an
        ``on_token`` callback cancelling a request whose just-streamed token
        is its stop token or exhausts its budget) loses the race: the request
        has already finished, so it keeps its true ``"stop"`` / ``"length"``
        completion, is not retired twice, and ``cancel`` returns ``False``.
        """
        entry = self.queue.cancel(request_id)
        if entry is not None:
            # Waiting (possibly with parked preempted-prefill progress).
            self._parked.pop(request_id, None)
            self._finish(request_id, "cancelled")
            self.stats.cancelled += 1
            self._pending_completions.append(
                self._completion(request_id, entry.request, [], [], "cancelled")
            )
            return True
        for slot_idx, progress in list(self._prefilling.items()):
            if progress.request_id == request_id:
                del self._prefilling[slot_idx]
                self._finish(request_id, "cancelled")
                self.stats.cancelled += 1
                self._pending_completions.append(
                    self._completion(request_id, progress.request, [], [], "cancelled")
                )
                return True
        for slot_idx, slot in enumerate(self._slots):
            if slot is not None and slot.request_id == request_id:
                if self._slot_finished(slot):
                    # The request reached its stop token / length budget in
                    # this very iteration and is about to retire with its
                    # true finish reason -- cancelling now would double-retire
                    # the slot and overwrite "stop" with "cancelled".
                    return False
                self._slots[slot_idx] = None
                self._recovering.pop(slot_idx, None)
                self._finish(request_id, "cancelled")
                self.stats.cancelled += 1
                self._pending_completions.append(
                    self._completion(
                        request_id, slot.request, slot.tokens, slot.logprobs, "cancelled"
                    )
                )
                return True
        return False

    @staticmethod
    def _slot_finished(slot: _Slot) -> bool:
        """Whether a decoding slot's request already hit its terminal token.

        True only inside the window between token selection and retirement
        within one :meth:`step` (a finished slot is freed before the step
        returns); :meth:`cancel` uses it so the final decode iteration wins
        the race against a concurrent cancellation.
        """
        if not slot.tokens:
            return False
        request = slot.request
        if request.stop_token is not None and slot.tokens[-1] == request.stop_token:
            return True
        return len(slot.tokens) >= request.max_new_tokens

    def latency(self, request_id: int) -> RequestLatency:
        """The latency record of a submitted request (any lifecycle stage)."""
        with self._submit_lock:
            return self._latency[request_id]

    def clear_finished_latencies(self) -> int:
        """Drop latency records of finished requests; returns how many.

        Records accumulate for the engine's whole lifetime so that
        :meth:`latency` works after completion (benchmarks and tests rely on
        it); a long-running serving loop should call this periodically --
        every completion already carries its own record
        (:attr:`Completion.latency`), so nothing is lost.  Safe to call from
        any thread: the record table is guarded by the submit lock, so a
        sweep cannot race a concurrent :meth:`submit` inserting a record.
        """
        with self._submit_lock:
            finished = [
                request_id
                for request_id, record in self._latency.items()
                if record.finished_step is not None
            ]
            for request_id in finished:
                del self._latency[request_id]
        return len(finished)

    @property
    def num_latency_records(self) -> int:
        """Latency records currently held (finished ones sweep via
        :meth:`clear_finished_latencies`; the serving front-end exposes this
        so record leaks are observable from ``/stats``)."""
        with self._submit_lock:
            return len(self._latency)

    @property
    def num_waiting(self) -> int:
        return len(self.queue)

    @property
    def num_active(self) -> int:
        return sum(slot is not None for slot in self._slots)

    @property
    def num_prefilling(self) -> int:
        """Requests whose prompt is still being chunk-prefilled."""
        return len(self._prefilling)

    @property
    def has_work(self) -> bool:
        return (
            self.num_waiting > 0
            or self.num_active > 0
            or self.num_prefilling > 0
            or bool(self._pending_completions)
        )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    # user-callback: on_token
    def step(self, on_token: Optional[TokenCallback] = None) -> List[Completion]:
        """Run one engine iteration; returns requests retired this step.

        Applies the scheduler's admission plan, advances all fully-prefilled
        slots by one token with a single batched decode call, and retires
        finished requests.  ``on_token`` (if given) is called as
        ``on_token(request_id, token, logprob)`` for every token selected this
        step, before its completion (if any) is returned -- the streaming
        hook.  A raising callback never corrupts engine state: the exception
        is caught, recorded on the request's latency record
        (:attr:`RequestLatency.callback_error`), and streaming is disabled
        for that request only.

        Under a resilience supervisor the step additionally retries faulted
        slots whose backoff has elapsed (before planning, so freed or
        recovered slots are visible to the scheduler and rejoin decode in the
        same iteration) and routes decode through the supervised
        snapshot/rollback path.
        """
        self.stats.engine_steps += 1
        completions: List[Completion] = []
        if self._pending_completions:
            completions.extend(self._pending_completions)
            self._pending_completions.clear()
        completions.extend(self._expire())
        if self._supervised and self._recovering:
            completions.extend(self._retry_recoveries())
        plan = self.scheduler.plan(
            self.queue.entries(engine_step=self.stats.engine_steps), self._context()
        )
        completions.extend(self._apply_plan(plan))
        # Slots in the retry loop already selected (and streamed) a token;
        # they have no fresh logits until their state advance succeeds.
        active = [
            i
            for i, slot in enumerate(self._slots)
            if slot is not None and i not in self._recovering
        ]
        if not active:
            return completions

        chosen = np.zeros(len(active), dtype=np.int64)
        survivors: List[int] = []
        for row, slot_idx in enumerate(active):
            slot = self._slots[slot_idx]
            if slot is None:
                # Cancelled mid-step by an earlier slot's on_token callback;
                # its cancelled completion is already pending.
                continue
            token, logprob = self._select(slot, self._pending_logits[slot_idx])
            slot.tokens.append(token)
            slot.logprobs.append(logprob)
            chosen[row] = token
            self.stats.decoded_tokens += 1
            with self._submit_lock:
                latency = self._latency[slot.request_id]
                if latency.first_token_step is None:
                    latency.first_token_step = self.stats.engine_steps
                latency.decode_iterations += 1
            if on_token is not None and not slot.streaming_disabled:
                if self.fault_injector is not None and self.fault_injector.drop_callback(
                    self.stats.engine_steps, slot.request_id
                ):
                    self.stats.callback_drops += 1
                    self._log("callback_drop", request_id=slot.request_id)
                else:
                    try:
                        on_token(slot.request_id, token, logprob)
                    except Exception as exc:
                        # A user callback must never unwind the engine: record
                        # the failure and stop streaming this request only.
                        slot.streaming_disabled = True
                        self.stats.callback_errors += 1
                        with self._submit_lock:
                            self._latency[slot.request_id].callback_error = repr(exc)
                        self._log(
                            "callback_error", request_id=slot.request_id, detail=repr(exc)
                        )
            if self._slots[slot_idx] is not slot:
                # The callback cancelled this very request: its completion
                # (including the token just streamed) is already pending;
                # don't retire it twice or decode it further.
                continue
            request = slot.request
            stopped = request.stop_token is not None and token == request.stop_token
            done = stopped or len(slot.tokens) >= request.max_new_tokens
            if done:
                completions.append(
                    self._retire(slot_idx, "stop" if stopped else "length")
                )
            else:
                survivors.append(row)

        # A later slot's on_token callback may have cancelled an earlier slot
        # that was already recorded as a survivor; don't decode freed slots.
        survivors = [row for row in survivors if self._slots[active[row]] is not None]
        if survivors:
            slot_indices = [active[row] for row in survivors]
            if self._supervised:
                completions.extend(
                    self._supervised_decode(slot_indices, chosen[survivors])
                )
            elif len(slot_indices) == self.max_batch_size:
                # Full batch: every slot survives, so step the slot cache in
                # place and skip the per-token gather/scatter copies.
                logits = self.model.step(chosen[survivors], self._cache)
                self.stats.decode_calls += 1
                self.stats.decode_call_rows += len(slot_indices)
                self._pending_logits[slot_indices] = logits
            else:
                batch = self._cache.gather(slot_indices)
                logits = self.model.step(chosen[survivors], batch)
                self._cache.scatter(slot_indices, batch)
                self.stats.decode_calls += 1
                self.stats.decode_call_rows += len(slot_indices)
                self._pending_logits[slot_indices] = logits
        return completions

    def run(
        self,
        requests: Optional[Sequence[Request]] = None,
        *,
        on_token: Optional[TokenCallback] = None,
        max_wall_seconds: Optional[float] = None,
        max_idle_iterations: Optional[int] = None,
    ) -> List[Completion]:
        """Submit ``requests`` (if given) and step until the engine drains.

        Returns all completions produced during the drain, ordered by request
        id.  ``on_token`` streams every generated token (see :meth:`step`).

        Two liveness guards bound the drain so a stuck request (or a
        scheduler that stops making progress) can never hang the loop:
        ``max_wall_seconds`` caps the total drain time on the queue's
        (injectable) clock, and ``max_idle_iterations`` caps *consecutive*
        iterations that neither process a token nor retire a request.  When a
        guard trips, every outstanding request -- waiting (including
        backoff-held), prefilling, retrying, or decoding -- is aborted with
        ``finish_reason="error"`` (tokens generated so far are kept in the
        completion), so the drain still terminates with exactly one
        completion per submitted request.  Pick ``max_idle_iterations``
        larger than the supervisor's ``backoff_cap_iterations``: a slot
        waiting out its retry backoff is idle by this definition.
        """
        if max_wall_seconds is not None and max_wall_seconds <= 0:
            raise ValueError("max_wall_seconds must be positive (or None)")
        if max_idle_iterations is not None and max_idle_iterations <= 0:
            raise ValueError("max_idle_iterations must be positive (or None)")
        if requests is not None:
            for request in requests:
                self.submit(request)
        completions: List[Completion] = []
        deadline = (
            None if max_wall_seconds is None else self.queue.clock() + max_wall_seconds
        )
        idle = 0
        while self.has_work:
            before = (self.stats.decoded_tokens, self.stats.prefilled_tokens)
            stepped = self.step(on_token=on_token)
            completions.extend(stepped)
            progressed = bool(stepped) or (
                (self.stats.decoded_tokens, self.stats.prefilled_tokens) != before
            )
            idle = 0 if progressed else idle + 1
            if not self.has_work:
                break
            if max_idle_iterations is not None and idle >= max_idle_iterations:
                completions.extend(
                    self._abort_outstanding(
                        f"engine made no progress for {idle} consecutive iterations"
                    )
                )
                break
            if deadline is not None and self.queue.clock() >= deadline:
                completions.extend(
                    self._abort_outstanding(
                        f"run() exceeded max_wall_seconds={max_wall_seconds}"
                    )
                )
                break
        return sorted(completions, key=lambda c: c.request_id)

    def _abort_outstanding(self, message: str) -> List[Completion]:
        """Retire every outstanding request with ``finish_reason="error"``.

        The ``run()`` guards' termination path: waiting entries (held or
        not), in-flight prefills (parked progress discarded), retrying and
        decoding slots all retire immediately, each keeping any tokens it
        generated.  The engine is drained afterwards (``has_work`` is false
        modulo completions already returned).
        """
        completions: List[Completion] = []
        if self._pending_completions:
            completions.extend(self._pending_completions)
            self._pending_completions.clear()
        for entry in self.queue.entries():
            self.queue.cancel(entry.request_id)
            self._parked.pop(entry.request_id, None)
            self._finish(entry.request_id, "error")
            self.stats.aborted += 1
            completions.append(
                self._completion(
                    entry.request_id, entry.request, [], [], "error", error=message
                )
            )
        for slot_idx, progress in list(self._prefilling.items()):
            del self._prefilling[slot_idx]
            self._finish(progress.request_id, "error")
            self.stats.aborted += 1
            completions.append(
                self._completion(
                    progress.request_id, progress.request, [], [], "error", error=message
                )
            )
        self._recovering.clear()
        for slot_idx, slot in enumerate(self._slots):
            if slot is None:
                continue
            self._slots[slot_idx] = None
            self._finish(slot.request_id, "error")
            self.stats.aborted += 1
            completions.append(
                self._completion(
                    slot.request_id, slot.request, slot.tokens, slot.logprobs, "error",
                    error=message,
                )
            )
        self._log("abort", detail=message)
        return completions

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _context(self) -> SchedulerContext:
        """The engine-state snapshot the scheduler plans against."""
        free = tuple(
            i
            for i in range(self.max_batch_size)
            if self._slots[i] is None
            and i not in self._prefilling
            and i not in self._quarantined_slots
        )
        prefilling = tuple(
            PrefillView(
                slot=slot_idx,
                request_id=progress.request_id,
                remaining_tokens=len(progress.request.prompt) - progress.pos,
                priority=progress.entry.priority,
                arrival_seq=progress.entry.arrival_seq,
            )
            for slot_idx, progress in sorted(self._prefilling.items())
        )
        return SchedulerContext(
            engine_step=self.stats.engine_steps,
            max_batch_size=self.max_batch_size,
            free_slots=free,
            prefilling=prefilling,
            num_decoding=self.num_active,
            quarantined_slots=tuple(sorted(self._quarantined_slots)),
        )

    def _expire(self) -> List[Completion]:
        """Retire waiting requests whose admission deadline has passed."""
        completions: List[Completion] = []
        for entry in self.queue.take_expired():
            self._parked.pop(entry.request_id, None)
            self._finish(entry.request_id, "expired")
            self.stats.expired += 1
            completions.append(
                self._completion(entry.request_id, entry.request, [], [], "expired")
            )
        return completions

    def _apply_plan(self, plan: AdmissionPlan) -> List[Completion]:
        """Mechanically apply one admission plan (no policy decisions here)."""
        completions: List[Completion] = []
        for slot_idx in plan.preempt:
            if slot_idx not in self._prefilling:
                raise ValueError(f"plan preempts slot {slot_idx}, which is not prefilling")
            progress = self._prefilling.pop(slot_idx)
            self._parked[progress.request_id] = progress
            # Record the parked position so schedulers budget only the
            # remaining prompt tokens on re-admission.
            progress.entry.prefill_pos = progress.pos
            self.queue.requeue(progress.entry)
            self.stats.preempted += 1
        for slot_idx, tokens in plan.resume:
            if slot_idx not in self._prefilling:
                raise ValueError(f"plan resumes slot {slot_idx}, which is not prefilling")
            if tokens is not None and tokens <= 0:
                raise ValueError("resume token grants must be positive (or None)")
            completions.extend(self._advance_prefill(slot_idx, tokens))
        free = [
            i
            for i in range(self.max_batch_size)
            if self._slots[i] is None
            and i not in self._prefilling
            and i not in self._quarantined_slots
        ]
        free_iter = iter(free)
        for request_id, tokens in plan.admit:
            if request_id not in self.queue:
                raise ValueError(f"plan admits request {request_id}, which is not queued")
            entry = self.queue.pop(request_id)
            with self._submit_lock:
                latency = self._latency[request_id]
                if latency.admitted_step is None:
                    # First admission only: a preempted-then-re-admitted
                    # request keeps one admitted count and its original
                    # admission stamp.
                    self.stats.admitted += 1
                    latency.admitted_step = self.stats.engine_steps
                    latency.admitted_at = self.queue.clock()
            if entry.request.max_new_tokens == 0:
                # Degenerate request: completes immediately, never holds a slot.
                self.stats.completed += 1
                self._finish(request_id, "length")
                completions.append(
                    self._completion(request_id, entry.request, [], [], "length")
                )
                continue
            try:
                slot_idx = next(free_iter)
            except StopIteration:
                raise ValueError("plan admits more requests than free slots") from None
            progress = self._parked.pop(request_id, None)
            if progress is None:
                progress = _PrefillProgress(entry=entry, cache=self.model.new_cache())
            self._prefilling[slot_idx] = progress
            completions.extend(self._advance_prefill(slot_idx, tokens))
        return completions

    def _advance_prefill(self, slot_idx: int, tokens: Optional[int]) -> List[Completion]:
        """Consume up to ``tokens`` prompt tokens of one in-flight prefill.

        The request's single-sequence cache is continued exactly across
        segments (chunked scan + conv-window carry); when the prompt is
        exhausted the request is installed into its slot with the true
        last-token logits pending, ready to decode this very iteration.

        Under supervision the segment runs against a pre-call snapshot of the
        progress cache: a failing segment (kernel raise, detected corruption,
        watchdog timeout) rolls the cache back and routes through
        :meth:`_handle_prefill_failure` (requeue with backoff, degrade, or
        quarantine -- whose completion is returned).
        """
        progress = self._prefilling[slot_idx]
        prompt = np.asarray(progress.request.prompt, dtype=np.int64)
        remaining = prompt.shape[0] - progress.pos
        take = remaining if tokens is None else min(remaining, tokens)
        if take <= 0:
            return []
        segment = prompt[progress.pos : progress.pos + take]
        if not self._supervised:
            logits, _ = self.model.prefill(segment, cache=progress.cache)
        else:
            request_id = progress.request_id
            snapshot = progress.cache.copy()
            self._record_snapshot(snapshot)
            corrupted = self._apply_corruption(
                "prefill", [request_id], progress.cache
            )
            guard = (
                np.errstate(invalid="ignore", over="ignore")
                if corrupted
                else nullcontext()
            )
            try:
                if request_id in self._degraded:
                    # Graceful degradation: the per-token sequential oracle on
                    # the fake-quant path (no chunked scan, no integer MMU
                    # kernels), still integer-resident at the store.
                    call = partial(
                        self._degraded_prefill, segment, progress.cache
                    )
                else:
                    call = partial(self.model.prefill, segment, cache=progress.cache)
                with guard:
                    logits, _ = self._model_call("prefill", [request_id], call)
                if not np.isfinite(logits).all() or cache_unhealthy(progress.cache):
                    raise StateCorruptionError(
                        f"non-finite state or logits after prefill of request "
                        f"{request_id}"
                    )
            except Exception as exc:
                progress.cache = snapshot
                self.stats.rollbacks += 1
                self._log(
                    "rollback", request_id=request_id, site="prefill", detail=repr(exc)
                )
                return self._handle_prefill_failure(slot_idx, exc)
            if self._fault_attempts.get(request_id):
                self.stats.recovered += 1
                self._fault_attempts[request_id] = 0
                self._log("recovered", request_id=request_id, site="prefill")
        progress.pos += take
        self.stats.prefill_calls += 1
        self.stats.prefilled_tokens += take
        if progress.pos == prompt.shape[0]:
            del self._prefilling[slot_idx]
            self._cache.scatter([slot_idx], InferenceCache.stack([progress.cache]))
            self._pending_logits[slot_idx] = logits
            request = progress.request
            rng = None
            if request.temperature is not None:
                rng_seed = (
                    request.seed
                    if request.seed is not None
                    else self.seed + progress.request_id
                )
                rng = np.random.default_rng(rng_seed)
            self._slots[slot_idx] = _Slot(
                request_id=progress.request_id, request=request, rng=rng
            )
        return []

    # ------------------------------------------------------------------
    # Resilience supervisor (consumer-thread only, like step/cancel)
    # ------------------------------------------------------------------
    def _log(
        self,
        action: str,
        request_id: Optional[int] = None,
        site: Optional[str] = None,
        detail: str = "",
    ) -> None:
        self.resilience_log.record(
            self.stats.engine_steps, action, request_id=request_id, site=site, detail=detail
        )

    def _record_snapshot(self, snapshot: InferenceCache) -> None:
        """Account a pre-iteration checkpoint in the stats ledger."""
        rows = snapshot.batch_size or 1
        self.stats.snapshot_rows += rows
        self.stats.snapshot_bytes += snapshot.resident_state_bytes()

    def _model_call(self, site: str, request_ids: List[int], call):
        """Run one supervised model call: injector hook plus watchdog.

        The injector may stall (advancing an injected clock) or raise before
        the call; the watchdog then converts a call whose wall time (on the
        queue's clock) exceeded the budget into an :class:`IterationTimeout`,
        which flows through the same retry/quarantine path as any failure --
        a stuck step becomes a timed-out retirement instead of a hung run.
        """
        clock = self.queue.clock
        start = clock()
        if self.fault_injector is not None:
            self.fault_injector.on_model_call(site, self.stats.engine_steps, request_ids)
        result = call()
        budget = self.resilience.watchdog_budget_s
        if budget is not None:
            elapsed = clock() - start
            if elapsed > budget:
                self.stats.watchdog_timeouts += 1
                self._log(
                    "watchdog",
                    request_id=request_ids[0] if len(request_ids) == 1 else None,
                    site=site,
                    detail=f"elapsed {elapsed:.3f}s > budget {budget:.3f}s",
                )
                raise IterationTimeout(
                    f"supervised {site} call took {elapsed:.3f}s "
                    f"(watchdog budget {budget:.3f}s)"
                )
        return result

    def _apply_corruption(
        self, site: str, request_ids: List[int], cache: InferenceCache
    ) -> List[int]:
        """Poison working-state rows the injector attributes a corruption to.

        The poison (non-finite conv-window taps) is applied to the *working
        copy* only -- committed slot state is untouched -- and surfaces in
        the post-call health check (:func:`~repro.serving.resilience.unhealthy_rows`),
        which gives the supervisor exact per-row attribution.
        """
        if self.fault_injector is None:
            return []
        rows = self.fault_injector.corrupt_rows(
            site, self.stats.engine_steps, request_ids
        )
        for row in rows:
            for layer in cache.layers:
                if layer.conv_state.ndim == 3:
                    layer.conv_state[row] = np.nan
                else:
                    layer.conv_state[...] = np.nan
            self._log("corrupt", request_id=request_ids[row], site=site)
        return rows

    def _degraded_prefill(self, segment: np.ndarray, cache: InferenceCache):
        """Prefill one segment on the sequential-oracle fallback path."""
        with sequential_fallback(self.model):
            return self.model.prefill(segment, cache=cache, scan_impl="sequential")

    def _supervised_decode(
        self, slot_indices: List[int], tokens: np.ndarray
    ) -> List[Completion]:
        """Advance surviving slots under the supervisor.

        Snapshots the affected rows, runs the batched decode on a working
        copy, and commits (scatter + pending logits) only healthy, successful
        rows -- so survivors of a faulting batch are bit-identical to a
        fault-free run by construction.  A raising call is isolated by
        binary-searching the batch; detected corruption carries its own
        per-row attribution.  Each faulting slot rolls back to its snapshot
        and enters the retry loop (:meth:`_retry_recoveries`) or is
        quarantined once its attempt budget is exhausted.
        """
        snapshot = self._cache.snapshot_rows(slot_indices)
        self._record_snapshot(snapshot)
        failures: List[Tuple[int, BaseException]] = []

        def solve(positions: List[int]) -> None:
            rows = [slot_indices[p] for p in positions]
            request_ids = [self._slots[r].request_id for r in rows]
            batch = snapshot.gather(positions)
            corrupted = self._apply_corruption("decode", request_ids, batch)
            guard = (
                np.errstate(invalid="ignore", over="ignore")
                if corrupted
                else nullcontext()
            )
            try:
                with guard:
                    logits = self._model_call(
                        "decode",
                        request_ids,
                        partial(self.model.step, tokens[positions], batch),
                    )
            except Exception as exc:
                if len(positions) == 1:
                    failures.append((positions[0], exc))
                    return
                # Isolate the culprit: binary-search the batch.  Healthy
                # halves commit on their own call; numerics are unchanged
                # because batch rows are independent (per-row quant grids).
                # A fault that does not reproduce on the halves was
                # transient: every row then commits from its snapshot.
                self._log(
                    "isolate",
                    site="decode",
                    detail=f"{len(positions)} rows, {exc!r}",
                )
                mid = len(positions) // 2
                solve(positions[:mid])
                solve(positions[mid:])
                return
            bad = set(unhealthy_rows(batch, logits))
            good = [i for i in range(len(positions)) if i not in bad]
            if good:
                good_rows = [rows[i] for i in good]
                self._cache.scatter(good_rows, batch.gather(good))
                self._pending_logits[good_rows] = logits[good]
                self.stats.decode_calls += 1
                self.stats.decode_call_rows += len(good)
            for i in sorted(bad):
                failures.append(
                    (
                        positions[i],
                        StateCorruptionError(
                            f"non-finite state or logits for request {request_ids[i]}"
                        ),
                    )
                )

        solve(list(range(len(slot_indices))))
        completions: List[Completion] = []
        for position, exc in failures:
            slot_idx = slot_indices[position]
            completions.extend(
                self._register_decode_failure(
                    slot_idx,
                    snapshot.gather([position]),
                    int(tokens[position]),
                    exc,
                )
            )
        return completions

    def _register_decode_failure(
        self,
        slot_idx: int,
        row_snapshot: InferenceCache,
        token: int,
        exc: BaseException,
    ) -> List[Completion]:
        """Roll one faulted decode row back and schedule its retry.

        The already-selected token stays appended (it was produced from the
        previous, healthy logits); only the state advance is retried.  The
        attempt budget spans the request's whole life (shared with prefill
        faults via ``_fault_attempts``); exhausting it quarantines the
        request immediately.
        """
        slot = self._slots[slot_idx]
        request_id = slot.request_id
        self.stats.faults += 1
        self._log("fault", request_id=request_id, site="decode", detail=repr(exc))
        # The committed row never saw the failed call (it ran on a working
        # copy), but restore explicitly so the invariant "a faulted slot's
        # state equals its snapshot" holds unconditionally.
        self._cache.restore_rows([slot_idx], row_snapshot)
        self.stats.rollbacks += 1
        self._log("rollback", request_id=request_id, site="decode")
        attempts = self._fault_attempts.get(request_id, 0) + 1
        self._fault_attempts[request_id] = attempts
        corruption = isinstance(exc, StateCorruptionError)
        recovery = self._recovering.get(slot_idx)
        if recovery is not None:
            recovery.attempts = attempts
            recovery.corruption = recovery.corruption or corruption
            recovery.error = repr(exc)
        else:
            recovery = _Recovery(
                snapshot=row_snapshot,
                token=token,
                attempts=attempts,
                retry_step=0,  # set below (quarantine path never reads it)
                corruption=corruption,
                error=repr(exc),
            )
            self._recovering[slot_idx] = recovery
        if attempts >= self.resilience.max_attempts:
            return [self._quarantine_active(slot_idx, exc, recovery.corruption)]
        backoff = self.resilience.backoff_iterations(attempts)
        recovery.retry_step = self.stats.engine_steps + backoff
        self.stats.retries += 1
        self._log(
            "backoff",
            request_id=request_id,
            site="decode",
            detail=f"attempt {attempts}, retry at step {recovery.retry_step}",
        )
        return []

    def _retry_recoveries(self) -> List[Completion]:
        """Re-attempt faulted decode slots whose backoff has elapsed.

        Runs before planning, so a recovered slot regains pending logits and
        rejoins the select/decode path in the same iteration, and a
        quarantined slot is visible as free (or quarantined) to the
        scheduler.  Retries re-derive from the slot's bit-exact snapshot,
        feeding the same already-selected token, so a recovered request's
        stream is identical to a fault-free run.
        """
        completions: List[Completion] = []
        step_no = self.stats.engine_steps
        for slot_idx in sorted(self._recovering):
            recovery = self._recovering[slot_idx]
            if recovery.retry_step > step_no:
                continue
            slot = self._slots[slot_idx]
            request_id = slot.request_id
            batch = recovery.snapshot.gather([0])
            corrupted = self._apply_corruption("decode", [request_id], batch)
            guard = (
                np.errstate(invalid="ignore", over="ignore")
                if corrupted
                else nullcontext()
            )
            token = np.asarray([recovery.token], dtype=np.int64)
            try:
                with guard:
                    logits = self._model_call(
                        "decode", [request_id], partial(self.model.step, token, batch)
                    )
                if unhealthy_rows(batch, logits):
                    raise StateCorruptionError(
                        f"non-finite state or logits for request {request_id}"
                    )
            except Exception as exc:
                completions.extend(
                    self._register_decode_failure(
                        slot_idx, recovery.snapshot, recovery.token, exc
                    )
                )
                continue
            self._cache.scatter([slot_idx], batch)
            self._pending_logits[slot_idx] = logits[0]
            self.stats.decode_calls += 1
            self.stats.decode_call_rows += 1
            del self._recovering[slot_idx]
            self.stats.recovered += 1
            self._fault_attempts[request_id] = 0
            self._log("recovered", request_id=request_id, site="decode")
        return completions

    def _quarantine_active(
        self, slot_idx: int, exc: BaseException, corruption: bool
    ) -> Completion:
        """Retire a decoding slot's request with ``finish_reason="error"``."""
        slot = self._slots[slot_idx]
        self._slots[slot_idx] = None
        self._recovering.pop(slot_idx, None)
        request_id = slot.request_id
        self.stats.quarantined += 1
        self._finish(request_id, "error")
        if corruption:
            self._maybe_quarantine_slot(slot_idx)
        self._log("quarantine", request_id=request_id, site="decode", detail=repr(exc))
        return self._completion(
            request_id, slot.request, slot.tokens, slot.logprobs, "error", error=repr(exc)
        )

    def _maybe_quarantine_slot(self, slot_idx: int) -> None:
        """Retire a slot from service after an attributed corruption fault.

        Models a bad memory bank: the slot never re-enters the free list the
        scheduler sees.  At least one slot always stays in service, so the
        engine can still drain its queue (slowly) under a corruption storm.
        """
        if not self.resilience.quarantine_slots:
            return
        if slot_idx in self._quarantined_slots:
            return
        if self.max_batch_size - len(self._quarantined_slots) <= 1:
            return
        self._quarantined_slots.add(slot_idx)
        self.stats.slots_quarantined += 1
        self._log("slot_quarantine", detail=f"slot {slot_idx}")

    def _handle_prefill_failure(
        self, slot_idx: int, exc: BaseException
    ) -> List[Completion]:
        """Requeue (with backoff), degrade, or quarantine a faulted prefill.

        The progress cache was already rolled back by the caller; here the
        request leaves its reserved slot and either re-enters the queue --
        parked progress and ``prefill_pos`` preserved, held invisible to the
        scheduler until its backoff elapses -- or retires with
        ``finish_reason="error"`` once its attempt budget is exhausted.  An
        ``OverflowError`` (the MMU's static overflow guard -- retrying cannot
        fix it) or ``degrade_after`` cumulative failures switch the request
        to the sequential-oracle fallback for all its remaining prefill work.
        """
        progress = self._prefilling.pop(slot_idx)
        request_id = progress.request_id
        self.stats.faults += 1
        self._log("fault", request_id=request_id, site="prefill", detail=repr(exc))
        attempts = self._fault_attempts.get(request_id, 0) + 1
        self._fault_attempts[request_id] = attempts
        corruption = isinstance(exc, StateCorruptionError)
        if request_id not in self._degraded and (
            isinstance(exc, OverflowError) or attempts >= self.resilience.degrade_after
        ):
            self._degraded.add(request_id)
            self.stats.degraded += 1
            self._log(
                "degrade",
                request_id=request_id,
                site="prefill",
                detail="sequential-oracle fallback",
            )
        if attempts >= self.resilience.max_attempts:
            self.stats.quarantined += 1
            self._finish(request_id, "error")
            if corruption:
                self._maybe_quarantine_slot(slot_idx)
            self._log(
                "quarantine", request_id=request_id, site="prefill", detail=repr(exc)
            )
            return [
                self._completion(
                    request_id, progress.request, [], [], "error", error=repr(exc)
                )
            ]
        entry = progress.entry
        entry.prefill_pos = progress.pos
        entry.hold_until_step = (
            self.stats.engine_steps + self.resilience.backoff_iterations(attempts)
        )
        self._parked[request_id] = progress
        self.queue.requeue(entry)
        self.stats.retries += 1
        self.stats.requeued_faults += 1
        self._log(
            "requeue",
            request_id=request_id,
            site="prefill",
            detail=(
                f"attempt {attempts}, prefill_pos {progress.pos}, "
                f"hold until step {entry.hold_until_step}"
            ),
        )
        return []

    def _select(self, slot: _Slot, logits: np.ndarray) -> Tuple[int, float]:
        """Choose the next token for one slot from its pending logits."""
        request = slot.request
        if request.temperature is None:
            token, logprob = greedy_select(logits)
            return int(token), float(logprob)
        picked, logprob = sample_select(
            logits[None, :],
            [slot.rng],
            temperature=request.temperature,
            top_k=request.top_k,
        )
        return int(picked[0]), float(logprob[0])

    def _finish(self, request_id: int, reason: str) -> None:
        with self._submit_lock:
            latency = self._latency[request_id]
            latency.finished_step = self.stats.engine_steps
            latency.finish_reason = reason
        # Per-request fault bookkeeping dies with the request.
        self._fault_attempts.pop(request_id, None)
        self._degraded.discard(request_id)

    def _completion(
        self,
        request_id: int,
        request: Request,
        tokens: List[int],
        logprobs: List[float],
        reason: str,
        error: Optional[str] = None,
    ) -> Completion:
        with self._submit_lock:
            latency = self._latency.get(request_id)
        return Completion(
            request_id=request_id,
            request=request,
            result=GenerationResult(
                prompt=list(request.prompt), tokens=list(tokens), logprobs=list(logprobs)
            ),
            finish_reason=reason,
            latency=latency,
            error=error,
        )

    def _retire(self, slot_idx: int, reason: str) -> Completion:
        slot = self._slots[slot_idx]
        self._slots[slot_idx] = None
        self.stats.completed += 1
        self._finish(slot.request_id, reason)
        return self._completion(
            slot.request_id, slot.request, slot.tokens, slot.logprobs, reason
        )
