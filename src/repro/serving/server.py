"""Asyncio HTTP + SSE serving front-end for the continuous-batching engine.

:class:`MambaServer` turns the :class:`~repro.serving.engine.InferenceEngine`
into an actual network service using nothing but stdlib ``asyncio`` streams --
no web framework, no new dependencies.  Connections speak a small HTTP/1.1
subset; generation responses stream tokens as Server-Sent Events (SSE) the
moment the engine selects them, riding the engine's existing ``on_token``
hook.  The wire protocol is documented in ``src/repro/serving/README.md``.

Endpoints
---------
``POST /v1/generate``
    JSON body ``{"prompt": [ids], "max_new_tokens": n, ...}`` (or
    ``{"text": ...}`` when the server was built with a tokenizer).  With
    ``"stream": true`` (the default) the response is an SSE stream:
    ``start`` -> ``token``* -> ``done``; otherwise a single JSON object once
    the request finishes.  ``X-Priority`` and ``X-Deadline-S`` headers (or
    the equivalent body fields) map onto :meth:`InferenceEngine.submit`'s
    ``priority`` / ``timeout``.
``POST /v1/cancel/<id>``
    Explicit cancellation; the request's stream (if any) receives its
    ``done`` event with ``finish_reason="cancelled"``.
``GET /healthz`` / ``GET /stats``
    Liveness and the full :class:`~repro.serving.engine.EngineStats` counter
    surface plus queue/slot occupancy.
``POST /bench/step``
    Only with ``ServerConfig(bench_mode=True)``: advances the engine by
    exactly one iteration and reports what retired.  The load harness uses
    this to drive the live server in *iteration space*, which is what makes
    its latency metrics deterministic and machine-independent (see
    :mod:`repro.serving.loadgen`).

Concurrency model
-----------------
Everything engine-facing runs on the event-loop thread: the background
engine loop calls :meth:`InferenceEngine.step` synchronously (it never
awaits mid-step), and connection handlers call ``submit`` / ``cancel``
between steps -- asyncio's cooperative scheduling is the lock.  This keeps
the engine's single-consumer contract without adding locks around the hot
path; a CPU-heavy model simply makes individual loop turns longer.  Client
disconnects are observed as EOF on the request socket and translate into
:meth:`InferenceEngine.cancel`, freeing the slot (finish reason
``cancelled``); the server sweeps finished latency records every step
(completions carry their own copies), so a disconnect leaks neither a slot
nor a record.

Graceful drain
--------------
:meth:`MambaServer.shutdown` stops accepting work (new generates get 503),
keeps stepping until in-flight requests retire (bounded by
``drain_grace_s``), lets their streams flush their ``done`` events, and only
then tears the listener down -- every accepted request completes exactly
once, on the wire, even across shutdown.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.serving.engine import Completion, InferenceEngine, Request

__all__ = ["MambaServer", "ServerConfig", "serve_in_thread"]


@dataclass(frozen=True)
class ServerConfig:
    """Front-end configuration (the engine itself is passed separately).

    ``bench_mode`` disables the free-running engine loop: the engine only
    advances via ``POST /bench/step`` (and during drain), giving the load
    harness lockstep control over iteration timing.  ``manual_clock_step``
    advances the engine queue's injected clock by that many ticks after every
    step -- pair it with a
    :class:`~repro.serving.resilience.ManualClock` so deadlines submitted
    over the wire are measured in engine iterations (deterministic) instead
    of wall seconds.
    """

    host: str = "127.0.0.1"
    port: int = 0
    bench_mode: bool = False
    manual_clock_step: Optional[float] = None
    drain_grace_s: float = 30.0
    idle_poll_s: float = 0.05
    max_body_bytes: int = 1 << 20


_REASON = {200: "OK", 400: "Bad Request", 404: "Not Found", 409: "Conflict",
           503: "Service Unavailable"}


class MambaServer:
    """HTTP/SSE front-end over one :class:`InferenceEngine`.

    Use :meth:`start` / :meth:`shutdown` from a running event loop, or the
    synchronous :func:`serve_in_thread` helper which hosts the loop on a
    daemon thread (what the benchmarks, tests and demo use).
    """

    def __init__(
        self,
        engine: InferenceEngine,
        config: Optional[ServerConfig] = None,
        tokenizer=None,
    ):
        self.engine = engine
        self.config = config or ServerConfig()
        self.tokenizer = tokenizer
        self.address: Optional[Tuple[str, int]] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._engine_task: Optional[asyncio.Task] = None
        self._streams: Dict[int, asyncio.Queue] = {}
        self._connections: set = set()
        self._wake: Optional[asyncio.Event] = None
        self._accepting = False
        self._stopping = False
        self._started_at = 0.0
        # server-side counters (event-loop thread only)
        self.requests_accepted = 0
        self.requests_rejected = 0
        self.disconnect_cancels = 0
        self.finish_reasons: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind the listener and start the background engine loop."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._wake = asyncio.Event()
        self._accepting = True
        self._started_at = time.monotonic()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.address = self._server.sockets[0].getsockname()[:2]
        self._engine_task = asyncio.create_task(self._engine_loop())
        return self.address

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, drain in-flight work, flush streams, tear down.

        With ``drain=True`` (default) the engine keeps stepping until every
        in-flight and queued request retires (bounded by
        ``config.drain_grace_s``); their SSE streams receive their ``done``
        events before sockets close.  With ``drain=False`` outstanding
        requests are cancelled first, which still delivers exactly one
        terminal event per accepted request (``finish_reason="cancelled"``).
        """
        self._accepting = False
        if self._server is not None:
            self._server.close()
        if not drain:
            for request_id in list(self._streams):
                self.engine.cancel(request_id)
        deadline = time.monotonic() + self.config.drain_grace_s
        while self.engine.has_work and time.monotonic() < deadline:
            self._step_once()
            # Yield so stream coroutines can flush the events just queued.
            await asyncio.sleep(0)
        self._stopping = True
        if self._wake is not None:
            self._wake.set()
        if self._engine_task is not None:
            with contextlib.suppress(asyncio.CancelledError):
                await self._engine_task
        if self._connections:
            await asyncio.wait(
                list(self._connections),
                timeout=max(0.0, deadline - time.monotonic()) + 1.0,
            )
        if self._server is not None:
            await self._server.wait_closed()

    async def _engine_loop(self) -> None:
        """Free-running drive loop (idle-waits in bench mode)."""
        poll = self.config.idle_poll_s
        while not self._stopping:
            if not self.config.bench_mode and self.engine.has_work:
                self._step_once()
                # One cooperative yield per iteration: accepts, stream
                # writers and disconnect watchers run between engine steps.
                await asyncio.sleep(0)
                continue
            self._wake.clear()
            if self._stopping:
                break
            if not self.config.bench_mode and self.engine.has_work:
                continue  # a submit raced the clear
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._wake.wait(), timeout=poll)

    def _step_once(self) -> List[Completion]:
        """One engine iteration + completion fan-out (event-loop thread)."""
        completions = self.engine.step(on_token=self._on_token)
        for completion in completions:
            self.finish_reasons[completion.finish_reason] = (
                self.finish_reasons.get(completion.finish_reason, 0) + 1
            )
            queue = self._streams.pop(completion.request_id, None)
            if queue is not None:
                queue.put_nowait(("done", self._done_payload(completion)))
        if self.config.bench_mode:
            # Lockstep marker: clients read each open stream until they see
            # this step's marker, so "everything the engine emitted by step
            # N" is observable without wall-clock timeouts.
            for queue in self._streams.values():
                queue.put_nowait(
                    ("step", {"step": self.engine.stats.engine_steps})
                )
        if completions:
            # Completions carry their own latency records; sweeping here
            # bounds the table so long-lived servers (and disconnects) never
            # leak records.
            self.engine.clear_finished_latencies()
        clock_step = self.config.manual_clock_step
        if clock_step is not None:
            self.engine.queue.clock.advance(clock_step)
        return completions

    def _on_token(self, request_id: int, token: int, logprob: float) -> None:
        queue = self._streams.get(request_id)
        if queue is None:
            return
        stats = self.engine.stats
        queue.put_nowait(
            (
                "token",
                {
                    "token": int(token),
                    "logprob": float(logprob),
                    "step": stats.engine_steps,
                    "processed_tokens": stats.prefilled_tokens + stats.decoded_tokens,
                },
            )
        )

    def _done_payload(self, completion: Completion) -> Dict[str, Any]:
        latency = completion.latency
        stats = self.engine.stats
        payload: Dict[str, Any] = {
            "request_id": completion.request_id,
            "finish_reason": completion.finish_reason,
            "tokens": list(completion.result.tokens),
            "n_tokens": len(completion.result.tokens),
            "processed_tokens": stats.prefilled_tokens + stats.decoded_tokens,
        }
        if completion.error is not None:
            payload["error"] = completion.error
        if latency is not None:
            payload["latency"] = {
                "submitted_step": latency.submitted_step,
                "admitted_step": latency.admitted_step,
                "first_token_step": latency.first_token_step,
                "finished_step": latency.finished_step,
                "decode_iterations": latency.decode_iterations,
                "queue_wait_iterations": latency.queue_wait_iterations,
                "ttft_iterations": latency.ttft_iterations,
            }
        return payload

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, path, headers, body = parsed
            await self._route(method, path, headers, body, reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(task)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _read_request(self, reader):
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, path, _ = request_line.decode("latin-1").split(" ", 2)
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > self.config.max_body_bytes:
            raise ConnectionError("request body too large")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    async def _route(self, method, path, headers, body, reader, writer) -> None:
        if method == "GET" and path == "/healthz":
            await self._send_json(writer, 200, self._health())
        elif method == "GET" and path == "/stats":
            await self._send_json(writer, 200, self.stats_snapshot())
        elif method == "POST" and path == "/v1/generate":
            await self._handle_generate(headers, body, reader, writer)
        elif method == "POST" and path.startswith("/v1/cancel/"):
            await self._handle_cancel(path, writer)
        elif method == "POST" and path == "/bench/step":
            await self._handle_bench_step(writer)
        else:
            await self._send_json(writer, 404, {"error": f"no route {method} {path}"})

    def _health(self) -> Dict[str, Any]:
        return {
            "status": "ok" if self._accepting else "draining",
            "waiting": self.engine.num_waiting,
            "active": self.engine.num_active,
            "prefilling": self.engine.num_prefilling,
        }

    def stats_snapshot(self) -> Dict[str, Any]:
        """The ``/stats`` payload (also handy in-process for tests)."""
        stats = self.engine.stats
        engine_counters = {
            name: getattr(stats, name) for name in vars(stats)
        }
        return {
            "uptime_s": time.monotonic() - self._started_at,
            "accepting": self._accepting,
            "engine": engine_counters,
            "queue_depth": self.engine.num_waiting,
            "active_slots": self.engine.num_active,
            "prefilling": self.engine.num_prefilling,
            "open_streams": len(self._streams),
            "latency_records": self.engine.num_latency_records,
            "requests_accepted": self.requests_accepted,
            "requests_rejected": self.requests_rejected,
            "disconnect_cancels": self.disconnect_cancels,
            "finish_reasons": dict(self.finish_reasons),
        }

    def _build_request(self, payload: Dict[str, Any]) -> Request:
        if "prompt" in payload:
            prompt = tuple(int(t) for t in payload["prompt"])
        elif "text" in payload:
            if self.tokenizer is None:
                raise ValueError('"text" prompts need a server-side tokenizer')
            prompt = tuple(self.tokenizer.encode(str(payload["text"])))
        else:
            raise ValueError('body must carry "prompt" (token ids) or "text"')
        return Request(
            prompt=prompt,
            max_new_tokens=int(payload.get("max_new_tokens", 16)),
            temperature=(
                float(payload["temperature"])
                if payload.get("temperature") is not None
                else None
            ),
            top_k=(int(payload["top_k"]) if payload.get("top_k") is not None else None),
            stop_token=(
                int(payload["stop_token"])
                if payload.get("stop_token") is not None
                else None
            ),
            seed=(int(payload["seed"]) if payload.get("seed") is not None else None),
        )

    async def _handle_generate(self, headers, body, reader, writer) -> None:
        if not self._accepting:
            self.requests_rejected += 1
            await self._send_json(writer, 503, {"error": "server is draining"})
            return
        try:
            payload = json.loads(body or b"{}")
            request = self._build_request(payload)
            priority = int(headers.get("x-priority", payload.get("priority", 0)))
            deadline_s = headers.get("x-deadline-s", payload.get("deadline_s"))
            timeout = float(deadline_s) if deadline_s is not None else None
            stream = bool(payload.get("stream", True))
        except (ValueError, TypeError, KeyError, json.JSONDecodeError) as exc:
            await self._send_json(writer, 400, {"error": str(exc)})
            return
        queue: asyncio.Queue = asyncio.Queue()
        # No await between submit and stream registration: the engine loop
        # (same thread, cooperative) cannot step in between, so the stream
        # never misses a token.
        try:
            request_id = self.engine.submit(request, priority=priority, timeout=timeout)
        except ValueError as exc:
            await self._send_json(writer, 400, {"error": str(exc)})
            return
        self._streams[request_id] = queue
        self.requests_accepted += 1
        self._wake.set()
        start = {
            "request_id": request_id,
            "submitted_step": self.engine.stats.engine_steps,
        }
        if stream:
            await self._stream_sse(reader, writer, request_id, queue, start)
        else:
            await self._respond_blocking(writer, queue, start)

    async def _stream_sse(self, reader, writer, request_id, queue, start) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        self._write_event(writer, "start", start)
        # EOF on the request socket is the disconnect signal: a client that
        # goes away mid-generation cancels its request and frees the slot.
        watcher = asyncio.ensure_future(reader.read(1))
        try:
            await writer.drain()
            while True:
                getter = asyncio.ensure_future(queue.get())
                done, _ = await asyncio.wait(
                    {getter, watcher}, return_when=asyncio.FIRST_COMPLETED
                )
                if getter not in done:
                    getter.cancel()
                    self._disconnected(request_id)
                    return
                event, data = getter.result()
                self._write_event(writer, event, data)
                try:
                    await writer.drain()
                except ConnectionError:
                    self._disconnected(request_id)
                    return
                if event == "done":
                    return
                if watcher.done():
                    self._disconnected(request_id)
                    return
        finally:
            watcher.cancel()
            self._streams.pop(request_id, None)

    def _disconnected(self, request_id: int) -> None:
        self._streams.pop(request_id, None)
        if self.engine.cancel(request_id):
            self.disconnect_cancels += 1
            self._wake.set()

    async def _respond_blocking(self, writer, queue, start) -> None:
        events = []
        while True:
            event, data = await queue.get()
            if event == "token":
                events.append(data)
            if event == "done":
                data = dict(data)
                data["submitted_step"] = start["submitted_step"]
                data["token_events"] = events
                await self._send_json(writer, 200, data)
                return

    async def _handle_cancel(self, path: str, writer) -> None:
        try:
            request_id = int(path.rsplit("/", 1)[1])
        except ValueError:
            await self._send_json(writer, 400, {"error": "bad request id"})
            return
        cancelled = self.engine.cancel(request_id)
        if cancelled:
            self._wake.set()
        await self._send_json(writer, 200, {"request_id": request_id, "cancelled": cancelled})

    async def _handle_bench_step(self, writer) -> None:
        if not self.config.bench_mode:
            await self._send_json(
                writer, 409, {"error": "bench stepping requires bench_mode=True"}
            )
            return
        completions = self._step_once()
        await self._send_json(
            writer,
            200,
            {
                "engine_step": self.engine.stats.engine_steps,
                "completed": [c.request_id for c in completions],
                "has_work": self.engine.has_work,
            },
        )

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _write_event(writer, event: str, data: Dict[str, Any]) -> None:
        writer.write(
            f"event: {event}\ndata: {json.dumps(data)}\n\n".encode("utf-8")
        )

    @staticmethod
    async def _send_json(writer, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        writer.write(
            (
                f"HTTP/1.1 {status} {_REASON.get(status, 'OK')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("latin-1")
        )
        writer.write(body)
        await writer.drain()


@dataclass
class ServerHandle:
    """A live server hosted on a background thread (see :func:`serve_in_thread`)."""

    server: MambaServer
    host: str
    port: int
    _loop: asyncio.AbstractEventLoop = field(repr=False, default=None)
    _thread: threading.Thread = field(repr=False, default=None)

    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Gracefully shut the server down and join its thread."""
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(drain=drain), self._loop
        )
        future.result(timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)


@contextlib.contextmanager
def serve_in_thread(
    engine: InferenceEngine,
    config: Optional[ServerConfig] = None,
    tokenizer=None,
    startup_timeout_s: float = 10.0,
) -> Iterator[ServerHandle]:
    """Run a :class:`MambaServer` on a daemon thread; yields its handle.

    The sockets are real localhost TCP -- this is how the load harness, the
    end-to-end tests and the demo drive the server from synchronous code.
    The context manager guarantees a graceful drain-and-join on exit.
    """
    server = MambaServer(engine, config=config, tokenizer=tokenizer)
    started = threading.Event()
    box: Dict[str, Any] = {}

    def _run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        box["loop"] = loop

        async def _start() -> None:
            box["address"] = await server.start()
            started.set()

        try:
            loop.run_until_complete(_start())
            loop.run_forever()
        finally:
            with contextlib.suppress(Exception):
                loop.close()

    thread = threading.Thread(target=_run, name="mamba-server", daemon=True)
    thread.start()
    if not started.wait(timeout=startup_timeout_s):
        raise RuntimeError("server failed to start within the startup timeout")
    host, port = box["address"]
    handle = ServerHandle(
        server=server, host=host, port=port, _loop=box["loop"], _thread=thread
    )
    try:
        yield handle
    finally:
        if thread.is_alive():
            handle.stop()
