"""Repo-specific static verification.

Three rule families turn the repository's load-bearing invariants into
machine-checked properties of the source, gated in CI by
``python -m repro.analysis`` (see the package README for the annotation and
baseline workflow):

- **Guarded-by lock discipline** (:mod:`repro.analysis.locks`, ``GB1xx``):
  attributes annotated ``# guarded-by: <lock>`` must only be touched inside
  ``with self.<lock>:`` or in methods annotated ``# lock-held:`` /
  ``# loop-thread-only``; ``Condition.wait``/``notify`` usage is checked too.
- **Integer-path dtype flow** (:mod:`repro.analysis.dtypeflow`, ``DT2xx``):
  functions annotated ``# integer-resident`` may not materialize float
  tensors except at ``# quant-point:``-sanctioned sites.
- **Static overflow prover** (:mod:`repro.analysis.overflow`, ``OV3xx``):
  every registered integer contraction is proven safe for its accumulator
  width symbolically, with a reported margin -- the offline generalization
  of ``grouped_integer_matmul``'s runtime guard.
"""

from repro.analysis.core import (
    CODES,
    AnalysisReport,
    Baseline,
    Finding,
    SourceModule,
    analyze_paths,
    analyze_repo,
    repo_root,
    sanction_budget_finding,
)
from repro.analysis.dtypeflow import count_quant_points
from repro.analysis.overflow import (
    ContractionSpec,
    default_registry,
    prove,
    prove_default_registry,
)

__all__ = [
    "CODES",
    "AnalysisReport",
    "Baseline",
    "ContractionSpec",
    "Finding",
    "SourceModule",
    "analyze_paths",
    "analyze_repo",
    "count_quant_points",
    "default_registry",
    "prove",
    "prove_default_registry",
    "repo_root",
    "sanction_budget_finding",
]
