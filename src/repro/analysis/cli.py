"""Command-line entry point: ``python -m repro.analysis``.

Runs every rule family (the GB1xx guarded-by checker and DT2xx dtype-flow
lint over the source tree, plus the OV3xx static overflow prover over the
registered configurations) and reports findings in text or JSON.  The exit
code is the CI gate: non-zero iff any finding is neither inline-suppressed
(``# repro-analysis: ignore[CODE]``) nor covered by the committed baseline
(``analysis-baseline.json`` at the repository root).

``--write-baseline`` rewrites the baseline to accept the current active
findings (the escape hatch for landing the analyzer before a fix);
``--output`` duplicates the report into a file so CI can upload it as an
artifact even though the findings also gate the job.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.core import (
    CODES,
    AnalysisReport,
    Baseline,
    Finding,
    analyze_repo,
    repo_root,
    sanction_budget_finding,
)

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-specific static verification (locks, dtype flow, overflow).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file (default: analysis-baseline.json at the repo root)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current active findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the report to this file",
    )
    parser.add_argument(
        "--no-overflow",
        action="store_true",
        help="skip the static overflow prover (AST rules only)",
    )
    parser.add_argument(
        "--list-codes",
        action="store_true",
        help="print every finding code with its summary and exit",
    )
    return parser


def _render_text(
    report: AnalysisReport,
    active: List[Finding],
    suppressed: List[Finding],
    baselined: List[Finding],
) -> str:
    lines: List[str] = []
    for finding in active:
        lines.append(finding.format())
    if report.margins:
        lines.append("")
        lines.append("overflow prover margins (worst-case partial sum vs accumulator):")
        for margin in report.margins:
            verdict = "OVERFLOW" if margin["overflows"] else "ok"
            lines.append(
                f"  {margin['name']}: worst={margin['worst_case']} "
                f"acc=INT{margin['acc_bits']} margin={margin['margin']:.1f}x "
                f"({margin['headroom_bits']:+.2f} bits) [{verdict}]"
            )
    lines.append("")
    if report.sanction_count is not None:
        lines.append(
            f"quant-point sanctions in integer-resident regions: "
            f"{report.sanction_count}"
        )
    lines.append(
        f"{len(active)} finding(s), {len(suppressed)} inline-suppressed, "
        f"{len(baselined)} baselined"
    )
    return "\n".join(lines) + "\n"


def _render_json(
    report: AnalysisReport,
    active: List[Finding],
    suppressed: List[Finding],
    baselined: List[Finding],
) -> str:
    payload = {
        "findings": [f.to_json() for f in active],
        "suppressed": [f.to_json() for f in suppressed],
        "baselined": [f.to_json() for f in baselined],
        "overflow_margins": report.margins,
        "summary": {
            "active": len(active),
            "suppressed": len(suppressed),
            "baselined": len(baselined),
            "sanction_count": report.sanction_count,
        },
    }
    return json.dumps(payload, indent=2) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_codes:
        for code, summary in sorted(CODES.items()):
            print(f"{code}: {summary}")
        return 0

    root = repo_root()
    paths = args.paths or None
    report = analyze_repo(
        paths=paths, root=root, include_overflow=not args.no_overflow
    )

    baseline_path = args.baseline
    if baseline_path is None:
        candidate = root / "analysis-baseline.json"
        baseline_path = candidate if candidate.exists() else None
    elif not baseline_path.exists():
        # A --baseline target that does not exist yet (it is about to be
        # created by --write-baseline) simply contributes nothing.
        baseline_path = None
    baseline = Baseline.load(baseline_path) if baseline_path else None

    active, suppressed, baselined = report.partition(baseline)

    if args.write_baseline:
        target = args.baseline or (root / "analysis-baseline.json")
        Baseline.write(target, active, sanction_budget=report.sanction_count)
        print(
            f"wrote {len(active)} finding(s) to {target} "
            f"(sanction budget {report.sanction_count})"
        )
        return 0

    # The DT204 ratchet compares the live sanction count against the
    # committed budget; it is recomputed every run rather than matched by
    # fingerprint, so it can never be baselined away.
    gate = sanction_budget_finding(
        report.sanction_count, baseline.sanction_budget if baseline else None
    )
    if gate is not None:
        active.append(gate)

    render = _render_json if args.format == "json" else _render_text
    output = render(report, active, suppressed, baselined)
    sys.stdout.write(output)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(output, encoding="utf-8")
    return 1 if active else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
