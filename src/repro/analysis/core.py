"""Shared machinery of the repo-specific static analyzers.

The :mod:`repro.analysis` subsystem is a small AST-walking framework tuned to
this repository's two load-bearing invariants (thread-safety of the serving
layer and integer-residency of the quantized decode path) rather than a
general-purpose linter.  This module owns everything the rule families share:

- :class:`Finding` -- one diagnostic with a stable per-rule code (``GB1xx``
  lock discipline, ``DT2xx`` dtype flow, ``OV3xx`` overflow prover) and a
  line-independent fingerprint used by the committed baseline;
- :class:`SourceModule` -- a parsed source file: AST plus the per-line comment
  map the structured annotations (``# guarded-by:``, ``# lock-held:``,
  ``# integer-resident``, ``# quant-point:``) are read from;
- inline suppressions -- ``# repro-analysis: ignore[CODE]`` on the finding's
  line (or the line directly above) marks it suppressed;
- :class:`Baseline` -- a committed JSON file of accepted findings, matched by
  fingerprint so the baseline survives unrelated edits moving line numbers;
- :func:`analyze_paths` / :func:`analyze_repo` -- the runners the CLI and the
  test suite share.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "CODES",
    "Baseline",
    "Finding",
    "SourceModule",
    "analyze_paths",
    "analyze_repo",
    "repo_root",
    "sanction_budget_finding",
]

#: Every diagnostic code the rule families can emit, with a one-line summary.
#: The README documents each in detail; the CLI prints this table for
#: ``--list-codes``.
CODES: Dict[str, str] = {
    "GB101": "guarded attribute accessed outside its declared lock",
    "GB102": "Condition.wait() outside a predicate while-loop",
    "GB103": "Condition wait/notify without holding the owning lock",
    "GB104": "guarded-by annotation names an unknown lock attribute",
    "CB401": "user callback invoked while holding a contract lock",
    "DT201": "float64 cast/materialization in an integer-resident region",
    "DT202": "float-dtype array allocation in an integer-resident region",
    "DT203": "fake-quant round-trip in an integer-resident region",
    "DT204": "quant-point sanction count exceeds the committed budget (ratchet)",
    "OV301": "provable integer-accumulator overflow for a registered config",
}

_IGNORE_RE = re.compile(r"repro-analysis:\s*ignore\[([A-Z0-9,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule.

    ``symbol`` anchors the finding to a stable program point (usually the
    qualified name of the enclosing class/function, or the contraction name
    for the overflow prover); ``line_text`` is the stripped source line.  The
    two together with ``path`` and ``code`` form the baseline fingerprint, so
    a committed baseline keeps matching when unrelated edits shift lines.
    """

    code: str
    message: str
    path: str
    line: int
    symbol: str = ""
    line_text: str = ""
    suppressed: bool = False

    @property
    def fingerprint(self) -> str:
        return "::".join((self.path, self.code, self.symbol, self.line_text))

    def format(self) -> str:
        location = f"{self.path}:{self.line}" if self.line else self.path
        return f"{location}: {self.code} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "suppressed": self.suppressed,
            "fingerprint": self.fingerprint,
        }


@dataclass
class SourceModule:
    """A parsed python source file plus its comment annotations."""

    path: Path
    display_path: str
    text: str
    tree: ast.AST
    lines: List[str]
    comments: Dict[int, str]

    @classmethod
    def parse(cls, path: Path, root: Optional[Path] = None) -> "SourceModule":
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        comments: Dict[int, str] = {}
        try:
            for tok in tokenize.generate_tokens(io.StringIO(text).readline):
                if tok.type == tokenize.COMMENT:
                    comments[tok.start[0]] = tok.string
        except tokenize.TokenError:  # pragma: no cover - ast.parse catches first
            pass
        display = str(path)
        if root is not None:
            try:
                display = path.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                display = str(path)
        return cls(
            path=path,
            display_path=display,
            text=text,
            tree=tree,
            lines=text.splitlines(),
            comments=comments,
        )

    # ------------------------------------------------------------------
    # Annotation helpers
    # ------------------------------------------------------------------
    def comment(self, line: int) -> str:
        """The comment text on ``line`` (1-based), or an empty string."""
        return self.comments.get(line, "")

    def _standalone_comment(self, line: int) -> bool:
        """Whether ``line`` holds only a comment (no code before it)."""
        return self.line_text(line).startswith("#")

    def marker(self, pattern: re.Pattern, line: int) -> Optional[re.Match]:
        """Match ``pattern`` against the comment on ``line`` or just above.

        Annotations may trail the statement they describe or sit on a
        *standalone* comment line directly above it (a trailing comment on
        the previous statement annotates that statement, not this one).
        """
        match = pattern.search(self.comments.get(line, ""))
        if match is not None:
            return match
        if self._standalone_comment(line - 1):
            return pattern.search(self.comments.get(line - 1, ""))
        return None

    def has_marker_in_range(self, pattern: re.Pattern, start: int, end: int) -> bool:
        """Whether any line of ``[start, end]`` (or a standalone comment line
        directly above) matches."""
        for line in range(start, end + 1):
            if pattern.search(self.comments.get(line, "")):
                return True
        return self._standalone_comment(start - 1) and bool(
            pattern.search(self.comments.get(start - 1, ""))
        )

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def suppressed_codes(self, line: int) -> frozenset:
        """Codes inline-suppressed at ``line`` via ``repro-analysis: ignore``."""
        codes: set = set()
        candidates = [line]
        if self._standalone_comment(line - 1):
            candidates.append(line - 1)
        for candidate in candidates:
            match = _IGNORE_RE.search(self.comments.get(candidate, ""))
            if match is not None:
                codes.update(c.strip() for c in match.group(1).split(","))
        return frozenset(c for c in codes if c)

    def finding(
        self, code: str, message: str, node: ast.AST, symbol: str = ""
    ) -> Finding:
        """Build a finding anchored at ``node``, applying inline suppression."""
        line = getattr(node, "lineno", 0)
        return Finding(
            code=code,
            message=message,
            path=self.display_path,
            line=line,
            symbol=symbol,
            line_text=self.line_text(line),
            suppressed=code in self.suppressed_codes(line),
        )


@dataclass
class Baseline:
    """The committed set of accepted findings, matched by fingerprint.

    ``sanction_budget`` is the committed count of ``# quant-point:`` sanction
    lines inside ``# integer-resident`` regions -- the DT204 ratchet.  A run
    whose live count exceeds it fails; regenerating the baseline records the
    (lower) current count.  ``None`` (absent from the file) disables the
    ratchet, so older baselines keep loading.
    """

    fingerprints: frozenset = frozenset()
    path: Optional[Path] = None
    sanction_budget: Optional[int] = None

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        entries = data.get("findings", [])
        prints = frozenset(
            "::".join(
                (
                    entry["path"],
                    entry["code"],
                    entry.get("symbol", ""),
                    entry.get("line_text", ""),
                )
            )
            for entry in entries
        )
        budget = data.get("sanction_budget")
        return cls(
            fingerprints=prints,
            path=path,
            sanction_budget=None if budget is None else int(budget),
        )

    @staticmethod
    def write(
        path: Path,
        findings: Sequence[Finding],
        sanction_budget: Optional[int] = None,
    ) -> None:
        entries = [
            {
                "path": f.path,
                "code": f.code,
                "symbol": f.symbol,
                "line_text": f.line_text,
            }
            for f in sorted(findings, key=lambda f: (f.path, f.code, f.line))
        ]
        payload: Dict[str, object] = {"version": 1, "findings": entries}
        if sanction_budget is not None:
            payload["sanction_budget"] = int(sanction_budget)
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def contains(self, finding: Finding) -> bool:
        return finding.fingerprint in self.fingerprints


@dataclass
class AnalysisReport:
    """Everything one analyzer run produced.

    ``findings`` carries every diagnostic with its ``suppressed`` flag already
    applied from inline comments; :meth:`partition` additionally splits on the
    baseline.  ``margins`` is the overflow prover's per-contraction headroom
    table (also emitted when every contraction is safe -- the proof is the
    point, not just the failures).  ``sanction_count`` is the live number of
    ``# quant-point:`` sanction lines inside ``# integer-resident`` regions
    (``None`` when the run did not count them), compared against the
    baseline's ``sanction_budget`` by :func:`sanction_budget_finding`.
    """

    findings: List[Finding] = field(default_factory=list)
    margins: List[Dict[str, object]] = field(default_factory=list)
    sanction_count: Optional[int] = None

    def partition(
        self, baseline: Optional[Baseline] = None
    ) -> Tuple[List[Finding], List[Finding], List[Finding]]:
        """Split findings into (active, inline-suppressed, baselined)."""
        active: List[Finding] = []
        suppressed: List[Finding] = []
        baselined: List[Finding] = []
        for finding in self.findings:
            if finding.suppressed:
                suppressed.append(finding)
            elif baseline is not None and baseline.contains(finding):
                baselined.append(finding)
            else:
                active.append(finding)
        return active, suppressed, baselined


def sanction_budget_finding(
    count: Optional[int], budget: Optional[int]
) -> Optional[Finding]:
    """The DT204 ratchet: fail when the live sanction count grew past budget.

    The integer-resident decode path may only get *shorter*: every
    ``# quant-point:`` sanction is a float materialization still waiting to
    be folded onto resident codes, so the committed budget is a one-way
    ratchet.  Returns ``None`` when the count is within budget or either
    side is unknown (no counting ran, or the baseline predates the ratchet).
    """
    if count is None or budget is None or count <= budget:
        return None
    return Finding(
        code="DT204",
        message=(
            f"quant-point sanction count {count} exceeds the committed budget "
            f"{budget}; the integer-resident path may only ratchet shorter -- "
            "fold the new float materialization onto resident codes instead "
            "of sanctioning it"
        ),
        path="repro.analysis.dtypeflow",
        line=0,
        symbol="sanction-budget",
        line_text=f"sanctions={count} budget={budget}",
    )


def repo_root() -> Path:
    """The repository root (three levels above this package)."""
    return Path(__file__).resolve().parents[3]


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def analyze_paths(
    paths: Sequence[Path], root: Optional[Path] = None
) -> List[Finding]:
    """Run every AST rule family over the python files under ``paths``."""
    # Imported here so `core` stays import-cycle free for the rule modules.
    from repro.analysis.dtypeflow import check_dtype_flow
    from repro.analysis.locks import check_lock_discipline

    findings: List[Finding] = []
    for file_path in iter_python_files([Path(p) for p in paths]):
        module = SourceModule.parse(file_path, root=root)
        findings.extend(check_lock_discipline(module))
        findings.extend(check_dtype_flow(module))
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return findings


def analyze_repo(
    paths: Optional[Sequence[Path]] = None,
    root: Optional[Path] = None,
    include_overflow: bool = True,
) -> AnalysisReport:
    """Analyze the repository: AST rules plus the static overflow prover."""
    from repro.analysis.dtypeflow import count_quant_points
    from repro.analysis.overflow import prove_default_registry

    if root is None:
        root = repo_root()
    if paths is None:
        paths = [root / "src" / "repro"]
    report = AnalysisReport(findings=analyze_paths(paths, root=root))
    report.sanction_count = sum(
        count_quant_points(SourceModule.parse(file_path, root=root))
        for file_path in iter_python_files([Path(p) for p in paths])
    )
    if include_overflow:
        overflow_findings, margins = prove_default_registry()
        report.findings.extend(overflow_findings)
        report.margins = margins
    return report
