"""Guarded-by lock-discipline checker (the race-detector rule family, GB1xx).

The serving layer's thread-safety contract is structural: a handful of
attributes are shared between producer threads (``InferenceEngine.submit``)
and the consumer thread driving the engine, and every one of them is supposed
to be touched only under a specific lock.  This checker turns that contract
into machine-checked annotations:

- ``# guarded-by: <lock>`` -- trailing comment on the statement that
  introduces an attribute (a ``self.attr = ...`` assignment, a dataclass
  field line, or a class-level assignment) declares that every read or write
  of ``self.attr`` must happen while ``self.<lock>`` is held.  A class-body
  ``GUARDED_BY = {"attr": "lock"}`` dict literal declares the same thing.
- ``# lock-held: <lock>[, <lock>...]`` -- trailing comment on a ``def`` line
  documents that the method is only called with those locks already held
  (the caller's responsibility); accesses inside it are treated as guarded.
- ``# loop-thread-only`` -- trailing comment on a ``def`` line documents
  that the method runs exclusively on the single consumer/engine thread as
  part of an explicit threading contract; GB101 is not applied inside it.
- ``# user-callback: <name>`` -- comment on (or directly above) a ``def``
  line declares that ``<name>`` -- a parameter or ``self`` attribute -- is a
  *user-supplied* callback: arbitrary foreign code the class promises never
  to invoke while holding one of its locks (a raising or re-entrant callback
  under a held lock deadlocks or corrupts the protected state).

Checks performed on every class that declares at least one guard or user
callback:

``GB101``
    A read or write of a guarded ``self.<attr>`` that is not lexically inside
    ``with self.<lock>:`` (multi-item ``with`` statements count) and not in a
    ``lock-held`` / ``loop-thread-only`` method.  ``__init__`` is exempt:
    construction happens before the object is published to other threads.
``GB102``
    ``self.<cond>.wait(...)`` outside a predicate ``while`` loop -- a bare
    ``wait`` misses both spurious wakeups and a sibling consumer draining the
    queue first.  (``wait_for`` loops internally and is exempt.)
``GB103``
    ``wait`` / ``wait_for`` / ``notify`` / ``notify_all`` on a known lock
    attribute without lexically holding that lock -- all four require the
    owning lock under ``threading.Condition`` semantics.
``GB104``
    A ``guarded-by`` annotation whose lock is never discovered as a
    ``threading.Lock`` / ``RLock`` / ``Condition`` attribute of the class
    (catches typos in the annotations themselves).
``CB401``
    A declared user callback invoked while any of the class's locks is
    lexically held (including locks declared held via ``lock-held``) -- the
    engine must drop its locks before handing control to user code.

The analysis is lexical (it proves containment in a ``with`` block, not a
whole-program happens-before relation), which is exactly the discipline the
serving layer promises: every access site names its lock in the enclosing
source.  Nested functions are conservatively treated as running without the
enclosing locks, since they may escape and run later.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.core import Finding, SourceModule

__all__ = ["check_lock_discipline"]

_GUARDED_BY_RE = re.compile(r"guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
_LOCK_HELD_RE = re.compile(r"lock-held:\s*([A-Za-z0-9_,\s]+)")
_LOOP_THREAD_RE = re.compile(r"loop-thread-only")
_USER_CALLBACK_RE = re.compile(r"user-callback:\s*([A-Za-z_][A-Za-z0-9_]*)")

#: ``threading`` factories whose result makes an attribute a known lock.
_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}
#: The subset that carries Condition wait/notify semantics.
_CONDITION_FACTORIES = {"Condition"}


def _threading_factory(node: ast.AST) -> Optional[str]:
    """The ``threading.<Factory>`` name an expression resolves to, if any.

    Recognises direct constructor calls (``threading.Condition()``), bare
    references in annotations (``threading.Condition``), and dataclass
    defaults (``field(default_factory=threading.Condition)``).
    """
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "field":
            for keyword in node.keywords:
                if keyword.arg == "default_factory":
                    return _threading_factory(keyword.value)
            return None
        return _threading_factory(func)
    if isinstance(node, ast.Attribute) and node.attr in _LOCK_FACTORIES:
        value = node.value
        if isinstance(value, ast.Name) and value.id == "threading":
            return node.attr
    if isinstance(node, ast.Name) and node.id in _LOCK_FACTORIES:
        return node.id
    if isinstance(node, ast.Subscript):
        return _threading_factory(node.value)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotations ("threading.Condition") in `from __future__`
        # modules.
        for factory in _LOCK_FACTORIES:
            if node.value.endswith(factory):
                return factory
    return None


def _assigned_attr(node: ast.AST) -> Optional[str]:
    """The ``X`` of a ``self.X = ...`` / ``self.X: T = ...`` target."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id == "self":
            return node.attr
    return None


@dataclass
class _ClassContract:
    """The declared locking contract of one class."""

    name: str
    node: ast.ClassDef
    guards: Dict[str, str] = field(default_factory=dict)
    guard_lines: Dict[str, int] = field(default_factory=dict)
    locks: Set[str] = field(default_factory=set)
    conditions: Set[str] = field(default_factory=set)
    callbacks: Set[str] = field(default_factory=set)


def _collect_contract(module: SourceModule, cls: ast.ClassDef) -> _ClassContract:
    contract = _ClassContract(name=cls.name, node=cls)

    def note_lock(attr: str, value: ast.AST) -> None:
        factory = _threading_factory(value)
        if factory is not None:
            contract.locks.add(attr)
            if factory in _CONDITION_FACTORIES:
                contract.conditions.add(attr)

    def note_guard(attr: str, line: int) -> None:
        match = module.marker(_GUARDED_BY_RE, line)
        if match is not None:
            contract.guards[attr] = match.group(1)
            contract.guard_lines[attr] = line

    # Class body: dataclass fields, class-level assignments, GUARDED_BY map.
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            attr = stmt.target.id
            note_lock(attr, stmt.annotation)
            if stmt.value is not None:
                note_lock(attr, stmt.value)
            note_guard(attr, stmt.lineno)
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                if target.id == "GUARDED_BY" and isinstance(stmt.value, ast.Dict):
                    for key, value in zip(stmt.value.keys, stmt.value.values):
                        if (
                            isinstance(key, ast.Constant)
                            and isinstance(value, ast.Constant)
                            and isinstance(key.value, str)
                            and isinstance(value.value, str)
                        ):
                            contract.guards[key.value] = value.value
                            contract.guard_lines[key.value] = stmt.lineno
                else:
                    note_lock(target.id, stmt.value)
                    note_guard(target.id, stmt.lineno)

    # Method bodies: `self.X = threading.Lock()` and annotated assignments.
    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        match = module.marker(_USER_CALLBACK_RE, method.lineno)
        if match is not None:
            contract.callbacks.add(match.group(1))
        for node in ast.walk(method):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                attr = _assigned_attr(node.targets[0])
                if attr is not None:
                    note_lock(attr, node.value)
                    note_guard(attr, node.lineno)
            elif isinstance(node, ast.AnnAssign):
                attr = _assigned_attr(node.target)
                if attr is not None:
                    if node.value is not None:
                        note_lock(attr, node.value)
                    note_guard(attr, node.lineno)
    return contract


def _method_markers(module: SourceModule, method: ast.AST) -> tuple:
    """(held_locks, loop_thread_only) declared on a ``def`` line."""
    held: Set[str] = set()
    match = module.marker(_LOCK_HELD_RE, method.lineno)
    if match is not None:
        held.update(name.strip() for name in match.group(1).split(",") if name.strip())
    loop_only = module.marker(_LOOP_THREAD_RE, method.lineno) is not None
    return frozenset(held), loop_only


def _self_attr(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id == "self":
            return node.attr
    return None


class _MethodChecker:
    """Walk one method body tracking lexically held locks."""

    def __init__(
        self,
        module: SourceModule,
        contract: _ClassContract,
        method: ast.AST,
        held: frozenset,
        loop_thread_only: bool,
    ):
        self.module = module
        self.contract = contract
        self.method = method
        self.loop_thread_only = loop_thread_only
        self.findings: List[Finding] = []
        self.qualname = f"{contract.name}.{method.name}"
        self._initial_held = held

    def run(self) -> List[Finding]:
        for stmt in self.method.body:
            self._visit(stmt, self._initial_held, in_predicate_while=False)
        return self.findings

    # ------------------------------------------------------------------
    def _report(self, code: str, message: str, node: ast.AST) -> None:
        self.findings.append(
            self.module.finding(code, message, node, symbol=self.qualname)
        )

    def _visit(self, node: ast.AST, held: frozenset, in_predicate_while: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested function may escape the lock scope; treat its body as
            # running with no locks held (its own `with` blocks still count).
            body = node.body if isinstance(node.body, list) else [node.body]
            for child in body:
                self._visit(child, frozenset(), in_predicate_while=False)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set()
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr is not None and attr in self.contract.locks:
                    acquired.add(attr)
                self._visit(item.context_expr, held, in_predicate_while)
            inner = held | frozenset(acquired)
            for child in node.body:
                self._visit(child, inner, in_predicate_while)
            return
        if isinstance(node, (ast.While,)):
            predicate = not (
                isinstance(node.test, ast.Constant) and bool(node.test.value)
            )
            self._visit(node.test, held, in_predicate_while)
            for child in node.body:
                self._visit(child, held, in_predicate_while or predicate)
            for child in node.orelse:
                self._visit(child, held, in_predicate_while)
            return
        if isinstance(node, ast.Call):
            self._check_call(node, held, in_predicate_while)
            # Fall through to generic traversal for arguments and receiver.
        attr = _self_attr(node)
        if attr is not None and not self.loop_thread_only:
            lock = self.contract.guards.get(attr)
            if lock is not None and lock not in held:
                self._report(
                    "GB101",
                    f"'self.{attr}' is guarded by 'self.{lock}' but accessed "
                    f"without it in {self.qualname}",
                    node,
                )
        for child in ast.iter_child_nodes(node):
            self._visit(child, held, in_predicate_while)

    def _check_call(
        self, node: ast.Call, held: frozenset, in_predicate_while: bool
    ) -> None:
        func = node.func
        callback = None
        if isinstance(func, ast.Name):
            callback = func.id
        elif isinstance(func, ast.Attribute):
            callback = _self_attr(func)
        if callback in self.contract.callbacks and held:
            locks = ", ".join(f"'self.{lock}'" for lock in sorted(held))
            self._report(
                "CB401",
                f"user callback '{callback}' invoked while holding {locks} in "
                f"{self.qualname} (drop engine locks before running user code)",
                node,
            )
        if not isinstance(func, ast.Attribute):
            return
        receiver = _self_attr(func.value)
        if receiver is None or receiver not in self.contract.locks:
            return
        op = func.attr
        if op == "wait" and receiver in self.contract.conditions:
            if not in_predicate_while:
                self._report(
                    "GB102",
                    f"'self.{receiver}.wait()' outside a predicate while-loop "
                    f"in {self.qualname} (spurious wakeups / stolen work "
                    "return an unchecked condition)",
                    node,
                )
        if op in ("wait", "wait_for", "notify", "notify_all"):
            if receiver not in held:
                self._report(
                    "GB103",
                    f"'self.{receiver}.{op}()' without holding "
                    f"'self.{receiver}' in {self.qualname}",
                    node,
                )


def check_lock_discipline(module: SourceModule) -> List[Finding]:
    """Run the GB1xx rule family over one module."""
    findings: List[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        contract = _collect_contract(module, node)
        if not contract.guards and not contract.callbacks:
            continue
        for attr, lock in sorted(contract.guards.items()):
            if lock not in contract.locks:
                line = contract.guard_lines.get(attr, node.lineno)
                findings.append(
                    Finding(
                        code="GB104",
                        message=(
                            f"'{attr}' is declared guarded by '{lock}', which is "
                            f"not a known lock attribute of {contract.name}"
                        ),
                        path=module.display_path,
                        line=line,
                        symbol=f"{contract.name}.{attr}",
                        line_text=module.line_text(line),
                        suppressed="GB104" in module.suppressed_codes(line),
                    )
                )
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in ("__init__", "__post_init__"):
                # Construction happens-before publication to other threads.
                continue
            held, loop_only = _method_markers(module, method)
            checker = _MethodChecker(module, contract, method, held, loop_only)
            findings.extend(checker.run())
    return findings
