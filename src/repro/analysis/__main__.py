"""``python -m repro.analysis`` -- run the repo-specific static analyzers."""

import sys

from repro.analysis.cli import main

sys.exit(main())
