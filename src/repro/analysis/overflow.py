"""Static accumulator-overflow prover (the OV3xx rule family).

:func:`repro.quant.qlinear.grouped_integer_matmul` carries a *runtime* guard:
the worst-case per-group partial sum ``group_len * x_qmax * w_qmax`` is
checked against the INT32 accumulator range on every call, so an unsafe
configuration fails deterministically on first use.  This module generalizes
that guard into an *offline* prover: it enumerates every integer contraction
the repository's registered configurations can execute -- the lightmamba*
:class:`~repro.quant.ssm_quant.SSMQuantConfig` family across its committed
group sizes, the :class:`~repro.quant.qlinear.QuantizedLinear` W4A4/W8A8
paths over the model presets, and the per-platform MMU shapes from
:mod:`repro.hardware` -- and proves INT32/INT16 accumulator safety
symbolically from bit widths and group lengths alone.  No kernel is
executed; the bound arithmetic is exactly the runtime guard's, so the two
agree by construction: :attr:`ContractionSpec.overflows` is true precisely
for the configurations on which ``grouped_integer_matmul`` raises
:class:`OverflowError` (the acceptance contract, pinned by tests).

The prover reports a margin for every contraction (headroom between the
worst-case partial sum and the accumulator capacity, also expressed in
bits), and emits an ``OV301`` finding for any contraction that can provably
overflow -- which fails CI like any other unsuppressed finding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.core import Finding

__all__ = [
    "ContractionSpec",
    "default_registry",
    "prove",
    "prove_default_registry",
]


@dataclass(frozen=True)
class ContractionSpec:
    """One integer contraction, described symbolically.

    Attributes
    ----------
    name:
        Human-readable identifier (also the baseline fingerprint anchor).
    origin:
        Which subsystem the contraction belongs to (``ssm-chunk-body``,
        ``qlinear``, ``mmu``).
    x_bits / w_bits:
        Signed symmetric code widths of the two operands
        (``qmax = 2**(bits-1) - 1``).
    group_len:
        Elements accumulated into one partial sum before the scale is
        applied -- the quantization group length, which is also the longest
        run the MMU accumulates between requantization points.
    acc_bits:
        Accumulator width (32 for the per-group MMU/SSMU paths, 64 for the
        per-channel row-accumulate fallback).
    """

    name: str
    origin: str
    x_bits: int
    w_bits: int
    group_len: int
    acc_bits: int = 32

    @property
    def x_qmax(self) -> int:
        return 2 ** (self.x_bits - 1) - 1

    @property
    def w_qmax(self) -> int:
        return 2 ** (self.w_bits - 1) - 1

    @property
    def worst_case(self) -> int:
        """Largest partial-sum magnitude any data can produce."""
        return self.group_len * self.x_qmax * self.w_qmax

    @property
    def acc_max(self) -> int:
        """Largest magnitude the accumulator holds without wrapping."""
        return 2 ** (self.acc_bits - 1) - 1

    @property
    def overflows(self) -> bool:
        """Provable overflow -- the exact predicate of the runtime guard.

        ``grouped_integer_matmul`` raises when ``worst_case >= 2**31``; for a
        symbolic accumulator width that is ``worst_case > acc_max``.
        """
        return self.worst_case > self.acc_max

    @property
    def margin(self) -> float:
        """How many times the worst case fits the accumulator (> 1 is safe)."""
        return self.acc_max / self.worst_case

    @property
    def headroom_bits(self) -> float:
        """Margin expressed in bits (negative means provable overflow)."""
        return math.log2(self.margin)

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "origin": self.origin,
            "x_bits": self.x_bits,
            "w_bits": self.w_bits,
            "group_len": self.group_len,
            "acc_bits": self.acc_bits,
            "worst_case": self.worst_case,
            "acc_max": self.acc_max,
            "overflows": self.overflows,
            "margin": self.margin,
            "headroom_bits": round(self.headroom_bits, 3),
        }


# ----------------------------------------------------------------------
# Registry enumeration
# ----------------------------------------------------------------------
def _ssm_specs() -> List[ContractionSpec]:
    """The lightmamba* SSM chunk-body contractions.

    Both ``d_state`` contractions of the integer chunk body (the ``C B^T``
    interaction matrix and the carried-state ``h . C`` readout) accumulate at
    most one quantization group per partial sum; ``group_len = group_size``
    is the conservative bound (the runtime clamps to ``min(group, d_state)``,
    which is never larger).  The ``integer_full_chunk`` extension adds the
    two remaining intra-chunk matmuls -- ``gate @ x`` and the state hand-off
    ``wx^T @ B`` -- which contract over the *token* axis; their runtime group
    is ``min(group_size, q_len)``, so ``group_len = group_size`` is again the
    worst case.  The group sizes are the committed ones: the
    :class:`SSMQuantConfig` default (32) and the variants the tests and
    benchmarks pin (8, 128).
    """
    from repro.quant.ssm_quant import SSMQuantConfig

    specs: List[ContractionSpec] = []
    group_sizes = sorted({8, SSMQuantConfig().group_size, 128})
    for group in group_sizes:
        config = SSMQuantConfig(
            group_size=group, integer_chunk_body=True, persistent_state=True
        )
        for contraction, group_len in (
            ("CB^T interaction", min(group, _max_d_state())),
            ("h.C readout", min(group, _max_d_state())),
            ("gate@x intra-chunk", group),
            ("state hand-off", group),
        ):
            specs.append(
                ContractionSpec(
                    name=(
                        f"ssm-chunk-body/{contraction} lightmamba* "
                        f"INT{config.bits} g{group}"
                    ),
                    origin="ssm-chunk-body",
                    x_bits=config.bits,
                    w_bits=config.bits,
                    group_len=group_len,
                    acc_bits=32,
                )
            )
    return specs


def _max_d_state() -> int:
    from repro.mamba.config import MODEL_PRESETS

    return max(preset.d_state for preset in MODEL_PRESETS.values())


def _qlinear_specs() -> List[ContractionSpec]:
    """The quantized linear-layer contractions over the model presets.

    W4A4 runs the per-group INT32 path with the paper's group size (128);
    W8A8 uses per-channel / per-token scales, which the software kernel
    accumulates over the full contraction axis in INT64 (the hardware
    accumulates per tile, which is strictly shorter).
    """
    from repro.mamba.config import MODEL_PRESETS
    from repro.quant.qmodel import QuantConfig, QuantMethod

    w4a4 = QuantConfig.w4a4(QuantMethod.LIGHTMAMBA_STAR)
    specs = [
        ContractionSpec(
            name=f"qlinear W{w4a4.w_bits}A{w4a4.a_bits} per-group g{w4a4.group_size}",
            origin="qlinear",
            x_bits=w4a4.a_bits,
            w_bits=w4a4.w_bits,
            group_len=w4a4.group_size,
            acc_bits=32,
        )
    ]
    max_in_features = max(
        max(preset.d_model, preset.d_inner) for preset in MODEL_PRESETS.values()
    )
    w8a8 = QuantConfig.w8a8(QuantMethod.LIGHTMAMBA)
    specs.append(
        ContractionSpec(
            name=f"qlinear W{w8a8.w_bits}A{w8a8.a_bits} per-channel row (K<={max_in_features})",
            origin="qlinear",
            x_bits=w8a8.a_bits,
            w_bits=w8a8.w_bits,
            group_len=max_in_features,
            acc_bits=64,
        )
    )
    return specs


def _mmu_specs() -> List[ContractionSpec]:
    """The per-platform MMU contractions at their operating precisions.

    Each FPGA platform's default MMU shape accumulates ``din`` products per
    cycle and requantizes at quantization-group boundaries; the longest
    accumulation run between scale applications is therefore
    ``max(din, group_size)`` elements wide at the configured code widths.
    """
    from repro.hardware.accelerator import AcceleratorConfig
    from repro.hardware.platforms import U280, VCK190

    specs: List[ContractionSpec] = []
    for platform in (VCK190, U280):
        for w_bits, a_bits in ((4, 4), (8, 8)):
            config = AcceleratorConfig(
                platform=platform, weight_bits=w_bits, act_bits=a_bits
            )
            mmu = config.mmu_config()
            group_len = max(mmu.din, config.group_size)
            specs.append(
                ContractionSpec(
                    name=(
                        f"mmu {platform.name} din{mmu.din} "
                        f"W{w_bits}A{a_bits} g{config.group_size}"
                    ),
                    origin="mmu",
                    x_bits=a_bits,
                    w_bits=w_bits,
                    group_len=group_len,
                    acc_bits=32,
                )
            )
    return specs


def default_registry() -> List[ContractionSpec]:
    """Every integer contraction the committed configurations can execute."""
    return _ssm_specs() + _qlinear_specs() + _mmu_specs()


# ----------------------------------------------------------------------
# Proving
# ----------------------------------------------------------------------
def prove(
    specs: List[ContractionSpec],
) -> Tuple[List[Finding], List[Dict[str, object]]]:
    """Check every spec; returns (findings, per-contraction margin table)."""
    findings: List[Finding] = []
    margins: List[Dict[str, object]] = []
    for spec in specs:
        margins.append(spec.to_json())
        if spec.overflows:
            findings.append(
                Finding(
                    code="OV301",
                    message=(
                        f"contraction '{spec.name}': worst-case partial sum "
                        f"{spec.worst_case} exceeds the INT{spec.acc_bits} "
                        f"accumulator capacity {spec.acc_max} "
                        f"(headroom {spec.headroom_bits:.2f} bits)"
                    ),
                    path="repro.analysis.overflow",
                    line=0,
                    symbol=spec.name,
                )
            )
    return findings, margins


def prove_default_registry() -> Tuple[List[Finding], List[Dict[str, object]]]:
    return prove(default_registry())
