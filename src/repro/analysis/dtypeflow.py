"""Integer-path dtype-flow lint (the DT2xx rule family).

The quantized decode path claims to be *integer-resident*: between the
sanctioned quantization points, data lives as INT codes + PoT scales and no
float tensor is materialized (the ROADMAP's "never materializes a float
tensor between in-projection and readout" end state).  This lint makes that
claim a property of the source:

- ``# integer-resident`` -- trailing comment on a ``def`` line registers the
  function as an integer-resident region (the ``persistent_state`` decode
  step, the ``integer_chunk_body`` prefill scan, ``grouped_integer_matmul``).
- ``# quant-point: <label>`` -- trailing comment on a statement marks a
  *sanctioned* float materialization: a tracked fake-quant call site (the
  ROADMAP's remaining per-token x/B/C quantizations), a scale-application
  epilogue, or a documented FP sub-path (the decay chain runs on dedicated
  FPGA units).  Every existing materialization in a registered region carries
  one; an edit that adds a new float materialization without a sanction --
  or touches a tracked one away from its marker -- fails the lint.

Checks inside registered regions (nested functions inherit the region):

``DT201``
    A float64 cast or conversion: ``x.astype(np.float64)`` (also ``float`` /
    ``"float64"``), ``np.asarray(..., dtype=np.float64)``,
    ``np.array(..., dtype=np.float64)``.
``DT202``
    An array allocation that produces floats: ``np.zeros`` / ``np.ones`` /
    ``np.empty`` / ``np.full`` (and their ``*_like`` variants) with a float
    dtype or with no dtype at all (numpy's default is float64).
``DT203``
    A fake-quant round-trip: calls to ``quantize`` / ``dequantize`` /
    ``quantize_dequantize``, the step helpers ``self._q`` / ``self._qp``, or
    a ``.dequantize()`` method on a resident state container.

Float *arithmetic* on values that are already float (the softplus/exp decay
chain) is deliberately out of scope: the rule targets materialization
primitives, mirroring the SSMU contract where non-linear operators run on
dedicated floating-point units while every tensor operand stays integer.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional

from repro.analysis.core import Finding, SourceModule

__all__ = ["check_dtype_flow", "count_quant_points"]

_REGION_RE = re.compile(r"integer-resident")
_QUANT_POINT_RE = re.compile(r"quant-point:")

_FLOAT_ALLOCATORS = {
    "zeros",
    "ones",
    "empty",
    "full",
    "zeros_like",
    "ones_like",
    "empty_like",
    "full_like",
}
_ROUND_TRIP_NAMES = {"quantize", "dequantize", "quantize_dequantize", "_q", "_qp"}
_INT_DTYPE_RE = re.compile(r"int|bool")


def _dtype_is_float64(node: ast.AST) -> bool:
    """Whether a dtype expression names float64 (or python float)."""
    if isinstance(node, ast.Attribute):
        return node.attr in ("float64", "double")
    if isinstance(node, ast.Name):
        return node.id == "float"
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in ("float64", "float", "f8", "d")
    return False


def _dtype_is_integer(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute):
        return bool(_INT_DTYPE_RE.search(node.attr))
    if isinstance(node, ast.Name):
        return bool(_INT_DTYPE_RE.search(node.id))
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return bool(_INT_DTYPE_RE.search(node.value))
    return False


def _keyword(call: ast.Call, name: str) -> Optional[ast.AST]:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


class _RegionChecker:
    """Scan one registered integer-resident function body."""

    def __init__(self, module: SourceModule, func: ast.AST, qualname: str):
        self.module = module
        self.func = func
        self.qualname = qualname
        self.findings: List[Finding] = []

    def run(self) -> List[Finding]:
        for stmt in self.func.body:
            self._visit(stmt)
        return self.findings

    def _sanctioned(self, node: ast.AST) -> bool:
        start = getattr(node, "lineno", 0)
        end = getattr(node, "end_lineno", start) or start
        return self.module.has_marker_in_range(_QUANT_POINT_RE, start, end)

    def _report(self, code: str, message: str, node: ast.AST) -> None:
        if self._sanctioned(node):
            return
        self.findings.append(
            self.module.finding(code, message, node, symbol=self.qualname)
        )

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            self._check_call(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _check_call(self, call: ast.Call) -> None:
        func = call.func
        # x.astype(np.float64) and friends.
        if isinstance(func, ast.Attribute) and func.attr == "astype" and call.args:
            target = call.args[0]
            if _dtype_is_float64(target):
                self._report(
                    "DT201",
                    f"float64 cast via .astype() in integer-resident region "
                    f"{self.qualname}; add a '# quant-point:' sanction or keep "
                    "the data on integer codes",
                    call,
                )
            return
        # np.asarray / np.array with a float64 dtype.
        if isinstance(func, ast.Attribute) and func.attr in ("asarray", "array"):
            dtype = _keyword(call, "dtype")
            if dtype is not None and _dtype_is_float64(dtype):
                self._report(
                    "DT201",
                    f"np.{func.attr}(..., dtype=float64) materializes a float "
                    f"tensor in integer-resident region {self.qualname}",
                    call,
                )
            return
        # Float-dtype (or float-default) allocations.
        if isinstance(func, ast.Attribute) and func.attr in _FLOAT_ALLOCATORS:
            dtype = _keyword(call, "dtype")
            if dtype is None or not _dtype_is_integer(dtype):
                self._report(
                    "DT202",
                    f"np.{func.attr}(...) allocates a float array in "
                    f"integer-resident region {self.qualname} (numpy defaults "
                    "to float64; pass an integer dtype or sanction the buffer)",
                    call,
                )
            return
        # Fake-quant round-trips.
        name = None
        if isinstance(func, ast.Name) and func.id in _ROUND_TRIP_NAMES:
            name = func.id
        elif isinstance(func, ast.Attribute) and func.attr in _ROUND_TRIP_NAMES:
            name = func.attr
        if name is not None:
            self._report(
                "DT203",
                f"fake-quant round-trip '{name}' in integer-resident region "
                f"{self.qualname}; track it with '# quant-point:' (ROADMAP: "
                "fold onto resident codes) or remove the round trip",
                call,
            )


def _walk_functions(tree: ast.AST):
    """Yield (qualname, node) for every function, including methods."""

    def visit(node: ast.AST, prefix: str):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, child
                yield from visit(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            else:
                yield from visit(child, prefix)

    yield from visit(tree, "")


def check_dtype_flow(module: SourceModule) -> List[Finding]:
    """Run the DT2xx rule family over one module."""
    findings: List[Finding] = []
    covered: List[ast.AST] = []
    for qualname, func in _walk_functions(module.tree):
        if any(func is c or _contains(c, func) for c in covered):
            # Nested function of a registered region: already scanned.
            continue
        if module.marker(_REGION_RE, func.lineno) is None:
            continue
        covered.append(func)
        findings.extend(_RegionChecker(module, func, qualname).run())
    return findings


def _contains(outer: ast.AST, inner: ast.AST) -> bool:
    for node in ast.walk(outer):
        if node is inner:
            return True
    return False


def count_quant_points(module: SourceModule) -> int:
    """Count the ``# quant-point:`` sanction lines inside registered regions.

    The size of the sanctioned float surface of the integer-resident code:
    each marker line (inline or standalone) within an ``# integer-resident``
    function's extent counts once, deduplicated across overlapping regions
    (a nested registered function shares its enclosing region's lines).
    This number is the subject of the DT204 ratchet -- the committed
    ``sanction_budget`` may only shrink, so every refactor of the integer
    path must fold float materializations onto resident codes rather than
    add new sanctioned ones.
    """
    marker_lines: set = set()
    for _qualname, func in _walk_functions(module.tree):
        if module.marker(_REGION_RE, func.lineno) is None:
            continue
        start = func.lineno
        end = getattr(func, "end_lineno", start) or start
        for line in range(start, end + 1):
            if _QUANT_POINT_RE.search(module.comment(line)):
                marker_lines.add(line)
    return len(marker_lines)
