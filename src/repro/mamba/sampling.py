"""Token-selection primitives shared by the decoders and the serving engine.

Every function operates on next-token logits with an optional leading batch
axis -- ``(vocab,)`` or ``(batch, vocab)`` -- so the single-sequence decoders
in :mod:`repro.mamba.generation` and the batched serving path in
:mod:`repro.serving` select tokens with *identical* arithmetic.  Given the
same logits and RNG stream, batched and per-request decoding therefore make
the same choices.

Two decode-path fixes live here (and are inherited by both paths):

- **Exact top-k.**  The filter keeps *exactly* ``k`` candidates.  Ties at the
  k-th logit are broken stably by token id (lowest id wins), instead of
  retaining every tied candidate as a naive ``logits < kth_value`` mask does.
- **Log-softmax log-probabilities.**  Per-token log-probabilities are computed
  as ``shifted - logsumexp(shifted)`` rather than ``log(softmax(x) + eps)``,
  which biased small probabilities and needed a full-vocabulary softmax in the
  greedy path.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "log_softmax",
    "top_k_filter",
    "greedy_select",
    "sample_select",
]


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax: ``shifted - logsumexp(shifted)``.

    Entries equal to ``-inf`` (e.g. masked by :func:`top_k_filter`) stay
    ``-inf`` in the output.
    """
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    with np.errstate(invalid="ignore"):  # -inf - -inf never occurs: max is finite
        log_z = np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))
    return shifted - log_z


def top_k_filter(logits: np.ndarray, top_k: int) -> np.ndarray:
    """Mask all but exactly ``top_k`` candidates per row to ``-inf``.

    Candidates are ranked by logit; ties at the k-th value are broken by token
    id (lower id kept first), so exactly ``top_k`` entries survive regardless
    of duplicates.  Works on ``(vocab,)`` or ``(batch, vocab)`` inputs.
    """
    logits = np.asarray(logits, dtype=np.float64)
    if top_k <= 0:
        raise ValueError("top_k must be positive")
    if top_k >= logits.shape[-1]:
        return logits.copy()
    # Stable sort on the negated logits: equal values keep ascending token id.
    order = np.argsort(-logits, axis=-1, kind="stable")
    keep = order[..., :top_k]
    out = np.full_like(logits, -np.inf)
    np.put_along_axis(out, keep, np.take_along_axis(logits, keep, axis=-1), axis=-1)
    return out


def greedy_select(logits: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Argmax token per row plus its log-probability.

    Parameters
    ----------
    logits:
        ``(vocab,)`` or ``(batch, vocab)``.

    Returns
    -------
    (tokens, logprobs)
        Integer and float arrays with the leading shape of ``logits``
        (0-d for single-sequence input).
    """
    logits = np.asarray(logits, dtype=np.float64)
    tokens = np.argmax(logits, axis=-1)
    logp = log_softmax(logits)
    logprobs = np.take_along_axis(logp, np.expand_dims(tokens, -1), axis=-1)[..., 0]
    return tokens, logprobs


def _draw(probs: np.ndarray, rng: np.random.Generator) -> int:
    """Inverse-CDF draw of one token id from a probability row."""
    cdf = np.cumsum(probs)
    # Guard against rounding drift at the *last nonzero-probability* bin, so
    # trailing candidates masked by top-k can never absorb the residual mass.
    positive = np.nonzero(probs > 0)[0]
    last = int(positive[-1]) if positive.size else len(probs) - 1
    cdf[last:] = 1.0
    u = rng.random()
    return int(min(np.searchsorted(cdf, u, side="right"), last))


def sample_select(
    logits: np.ndarray,
    rngs: Sequence[np.random.Generator],
    temperature: float = 1.0,
    top_k: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Temperature / top-k sampling over a batch of next-token logits.

    Parameters
    ----------
    logits:
        ``(batch, vocab)`` next-token logits.
    rngs:
        One :class:`numpy.random.Generator` per batch row.  Keeping a
        dedicated stream per request makes batched sampling reproduce
        per-request single-sequence sampling exactly, independent of how
        requests are packed into batches.
    temperature:
        Softmax temperature (> 0).
    top_k:
        Optional exact-k candidate cut (see :func:`top_k_filter`).

    Returns
    -------
    (tokens, logprobs)
        ``(batch,)`` integer token ids and their log-probabilities under the
        *sampling* distribution (after temperature and top-k).
    """
    logits = np.asarray(logits, dtype=np.float64)
    if logits.ndim != 2:
        raise ValueError(f"logits must have shape (batch, vocab), got {logits.shape}")
    if len(rngs) != logits.shape[0]:
        raise ValueError("need exactly one rng per batch row")
    if temperature <= 0:
        raise ValueError("temperature must be positive; use greedy_select for argmax")
    scaled = logits / temperature
    if top_k is not None:
        scaled = top_k_filter(scaled, top_k)
    logp = log_softmax(scaled)
    probs = np.exp(logp)
    tokens = np.empty(logits.shape[0], dtype=np.int64)
    for i, rng in enumerate(rngs):
        tokens[i] = _draw(probs[i], rng)
    logprobs = logp[np.arange(logits.shape[0]), tokens]
    return tokens, logprobs
