"""A minimal byte-level tokenizer.

The LightMamba evaluation uses the GPT-NeoX tokenizer of the published Mamba2
checkpoints.  Since the reproduction works with synthetic models, this module
provides a deterministic byte-level tokenizer that is sufficient for the
examples: every byte maps to one token id, with a small set of reserved
special tokens.  It keeps the examples self-contained without any external
vocabulary files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["ByteTokenizer"]


@dataclass
class ByteTokenizer:
    """Byte-level tokenizer with ``bos`` / ``eos`` / ``pad`` specials.

    Token ids 0..(num_special-1) are reserved for special tokens; byte value
    ``b`` maps to id ``b + num_special``.
    """

    bos_id: int = 0
    eos_id: int = 1
    pad_id: int = 2
    num_special: int = 3

    @property
    def vocab_size(self) -> int:
        return 256 + self.num_special

    def encode(self, text: str, add_bos: bool = True, add_eos: bool = False) -> List[int]:
        """Encode a string to token ids."""
        ids = [b + self.num_special for b in text.encode("utf-8")]
        if add_bos:
            ids = [self.bos_id] + ids
        if add_eos:
            ids = ids + [self.eos_id]
        return ids

    def decode(self, ids) -> str:
        """Decode token ids back to a string (special tokens are dropped)."""
        data = bytes(
            i - self.num_special
            for i in ids
            if self.num_special <= i < self.vocab_size
        )
        return data.decode("utf-8", errors="replace")

    def __len__(self) -> int:
        return self.vocab_size
