"""Mamba2 architecture configuration and the published model-family presets.

The LightMamba paper evaluates the Mamba2 family (130M ... 2.7B).  The presets
here record the published architecture hyper-parameters; the ``tiny`` /
``small`` / ``medium`` presets are scaled-down configurations with identical
structure that run quickly on a CPU and are used throughout the tests,
examples and algorithm-level benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

__all__ = ["Mamba2Config", "MODEL_PRESETS", "get_preset"]


@dataclass(frozen=True)
class Mamba2Config:
    """Hyper-parameters of a Mamba2 model.

    Attributes
    ----------
    name:
        Human-readable preset name.
    d_model:
        Residual-stream width (``D`` in the paper).
    n_layer:
        Number of Mamba2 blocks.
    vocab_size:
        Vocabulary size of the embedding table and LM head.
    d_state:
        SSM state dimension per head (``n`` in Fig. 1).
    d_conv:
        Kernel width of the short causal convolution.
    expand:
        Expansion factor of the inner dimension (``d_inner = expand * d_model``).
    headdim:
        Per-head channel dimension (``p`` in Fig. 1).
    ngroups:
        Number of ``B`` / ``C`` groups shared across heads (Mamba2 uses 1).
    norm_eps:
        Epsilon of the RMSNorm layers.
    tie_embeddings:
        Whether the LM head shares the embedding matrix.
    scan_impl:
        Default prefill scan engine: ``"chunked"`` (the SSD chunked scan,
        matrix-matrix parallel within a chunk -- the production fast path) or
        ``"sequential"`` (the per-token reference recurrence, kept as the
        numerical oracle / escape hatch).  Forward/prefill calls may override
        it per call.  Quantized models whose ``ssm_impl`` advertises
        ``supports_prefill_scan`` (the LightMamba* configurations) serve the
        ``"chunked"`` path through their own quantized chunk-parallel scan;
        ``"sequential"`` remains their per-token oracle as well.
    chunk_size:
        Tokens per chunk of the chunked scan (clamped to the sequence
        length at run time).
    """

    name: str = "custom"
    d_model: int = 768
    n_layer: int = 24
    vocab_size: int = 50288
    d_state: int = 128
    d_conv: int = 4
    expand: int = 2
    headdim: int = 64
    ngroups: int = 1
    norm_eps: float = 1e-5
    tie_embeddings: bool = True
    scan_impl: str = "chunked"
    chunk_size: int = 64

    def __post_init__(self) -> None:
        if self.d_model <= 0 or self.n_layer <= 0 or self.vocab_size <= 0:
            raise ValueError("d_model, n_layer and vocab_size must be positive")
        if self.expand <= 0 or self.headdim <= 0 or self.d_state <= 0:
            raise ValueError("expand, headdim and d_state must be positive")
        if self.d_conv < 1:
            raise ValueError("d_conv must be at least 1")
        if self.scan_impl not in ("chunked", "sequential"):
            raise ValueError("scan_impl must be 'chunked' or 'sequential'")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        if (self.expand * self.d_model) % self.headdim != 0:
            raise ValueError(
                f"d_inner ({self.expand * self.d_model}) must be divisible by "
                f"headdim ({self.headdim})"
            )

    # ------------------------------------------------------------------
    # Derived dimensions
    # ------------------------------------------------------------------
    @property
    def d_inner(self) -> int:
        """Inner (expanded) channel dimension."""
        return self.expand * self.d_model

    @property
    def nheads(self) -> int:
        """Number of SSM heads (``h`` in Fig. 1)."""
        return self.d_inner // self.headdim

    @property
    def d_in_proj(self) -> int:
        """Output width of the input projection: ``[z, x, B, C, dt]``."""
        return 2 * self.d_inner + 2 * self.ngroups * self.d_state + self.nheads

    @property
    def conv_dim(self) -> int:
        """Channel count fed through the causal convolution: ``[x, B, C]``."""
        return self.d_inner + 2 * self.ngroups * self.d_state

    @property
    def d_bc(self) -> int:
        """Width of one ``B`` (or ``C``) group block."""
        return self.ngroups * self.d_state

    # ------------------------------------------------------------------
    # Model statistics used by the hardware model
    # ------------------------------------------------------------------
    def block_linear_params(self) -> int:
        """Weight-parameter count of the two linear projections of one block."""
        return self.d_in_proj * self.d_model + self.d_model * self.d_inner

    def block_other_params(self) -> int:
        """Non-linear-layer parameters of one block (conv, A, D, dt_bias, norms)."""
        conv = self.conv_dim * self.d_conv + self.conv_dim
        small = 3 * self.nheads  # A_log, D, dt_bias
        norms = self.d_model + self.d_inner  # pre-norm + gated norm scales
        return conv + small + norms

    def num_parameters(self, include_embedding: bool = True) -> int:
        """Total parameter count of the model."""
        per_block = self.block_linear_params() + self.block_other_params()
        total = self.n_layer * per_block + self.d_model  # final norm
        if include_embedding:
            total += self.vocab_size * self.d_model
            if not self.tie_embeddings:
                total += self.vocab_size * self.d_model
        return total

    def ssm_state_elements(self) -> int:
        """Number of scalars in the per-layer SSM hidden state ``h`` (h, p, n)."""
        return self.nheads * self.headdim * self.d_state

    def conv_state_elements(self) -> int:
        """Number of scalars in the per-layer convolution state."""
        return self.conv_dim * self.d_conv

    def with_overrides(self, **kwargs) -> "Mamba2Config":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


def _preset(**kwargs) -> Mamba2Config:
    return Mamba2Config(**kwargs)


#: Published Mamba2 model-family presets (as evaluated in Fig. 9b of the paper)
#: plus scaled-down presets for CPU-speed experiments.
MODEL_PRESETS: Dict[str, Mamba2Config] = {
    # Scaled-down presets (structurally identical, CPU-friendly).
    "mamba2-tiny": _preset(
        name="mamba2-tiny",
        d_model=64,
        n_layer=2,
        vocab_size=512,
        d_state=16,
        headdim=16,
        d_conv=4,
    ),
    "mamba2-small": _preset(
        name="mamba2-small",
        d_model=128,
        n_layer=4,
        vocab_size=1024,
        d_state=32,
        headdim=32,
        d_conv=4,
    ),
    "mamba2-medium": _preset(
        name="mamba2-medium",
        d_model=256,
        n_layer=6,
        vocab_size=2048,
        d_state=64,
        headdim=64,
        d_conv=4,
    ),
    # Published family (architecture hyper-parameters of Mamba2).
    "mamba2-130m": _preset(
        name="mamba2-130m", d_model=768, n_layer=24, vocab_size=50288
    ),
    "mamba2-370m": _preset(
        name="mamba2-370m", d_model=1024, n_layer=48, vocab_size=50288
    ),
    "mamba2-780m": _preset(
        name="mamba2-780m", d_model=1536, n_layer=48, vocab_size=50288
    ),
    "mamba2-1.3b": _preset(
        name="mamba2-1.3b", d_model=2048, n_layer=48, vocab_size=50288
    ),
    "mamba2-2.7b": _preset(
        name="mamba2-2.7b", d_model=2560, n_layer=64, vocab_size=50288
    ),
}


def get_preset(name: str) -> Mamba2Config:
    """Return a published or scaled-down preset by name.

    Raises
    ------
    KeyError
        If ``name`` is not a known preset.  The error message lists the
        available preset names.
    """
    try:
        return MODEL_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_PRESETS))
        raise KeyError(f"unknown model preset '{name}'; known presets: {known}") from None
