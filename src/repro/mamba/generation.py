"""Autoregressive generation on top of the Mamba2 decode path.

Decode uses the fixed-size :class:`~repro.mamba.cache.InferenceCache`, so the
per-token cost is independent of how many tokens have been generated -- the
property the LightMamba accelerator exploits (Fig. 9a of the paper).

These are the *single-sequence* decoders.  Token selection is shared with the
batched serving path (:mod:`repro.serving`) through
:mod:`repro.mamba.sampling`, so batched decoding reproduces these results
request for request (up to exact logit ties; batched BLAS kernels may round
the last bits differently).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.mamba.model import Mamba2Model
from repro.mamba.sampling import greedy_select, sample_select

__all__ = ["GenerationResult", "greedy_decode", "sample_decode"]


@dataclass
class GenerationResult:
    """Outcome of an autoregressive generation run.

    Attributes
    ----------
    prompt:
        The prompt token ids.
    tokens:
        The generated token ids (prompt excluded).
    logprobs:
        Log-probability of each generated token under the model.
    """

    prompt: List[int]
    tokens: List[int]
    logprobs: List[float] = field(default_factory=list)

    @property
    def full_sequence(self) -> List[int]:
        return list(self.prompt) + list(self.tokens)

    def __len__(self) -> int:
        return len(self.tokens)


def _check_prompt(prompt, vocab_size: int) -> np.ndarray:
    prompt = np.asarray(prompt, dtype=np.int64)
    if prompt.ndim != 1 or prompt.size == 0:
        raise ValueError("prompt must be a non-empty 1-d sequence of token ids")
    if prompt.min() < 0 or prompt.max() >= vocab_size:
        raise ValueError("prompt token id out of range")
    return prompt


def greedy_decode(
    model: Mamba2Model,
    prompt,
    max_new_tokens: int,
    stop_token: Optional[int] = None,
) -> GenerationResult:
    """Greedy (argmax) decoding.

    Parameters
    ----------
    model:
        The (possibly quantized) Mamba2 model.
    prompt:
        Sequence of prompt token ids.
    max_new_tokens:
        Maximum number of tokens to generate.
    stop_token:
        Optional token id that terminates generation when produced.
    """
    prompt = _check_prompt(prompt, model.config.vocab_size)
    if max_new_tokens < 0:
        raise ValueError("max_new_tokens must be non-negative")
    logits, cache = model.prefill(prompt)
    tokens: List[int] = []
    logprobs: List[float] = []
    for _ in range(max_new_tokens):
        next_token, logprob = greedy_select(logits)
        next_token = int(next_token)
        tokens.append(next_token)
        logprobs.append(float(logprob))
        if stop_token is not None and next_token == stop_token:
            break
        logits = model.step(next_token, cache)
    return GenerationResult(prompt=list(map(int, prompt)), tokens=tokens, logprobs=logprobs)


def sample_decode(
    model: Mamba2Model,
    prompt,
    max_new_tokens: int,
    temperature: float = 1.0,
    top_k: Optional[int] = None,
    seed: int = 0,
    stop_token: Optional[int] = None,
) -> GenerationResult:
    """Temperature / top-k sampling decode.

    Token selection goes through :mod:`repro.mamba.sampling`, so top-k keeps
    exactly ``top_k`` candidates (ties at the k-th logit broken by token id)
    and log-probabilities are computed with a log-softmax.  The batched
    serving path uses the same primitives with one RNG stream per request;
    sampling here with ``seed=s`` therefore matches a batched run in which
    this request's stream is seeded with ``s``.
    """
    prompt = _check_prompt(prompt, model.config.vocab_size)
    if temperature <= 0:
        raise ValueError("temperature must be positive; use greedy_decode for argmax")
    if top_k is not None and top_k <= 0:
        raise ValueError("top_k must be positive when given")
    rng = np.random.default_rng(seed)
    logits, cache = model.prefill(prompt)
    tokens: List[int] = []
    logprobs: List[float] = []
    for _ in range(max_new_tokens):
        picked, logprob = sample_select(
            logits[None, :], [rng], temperature=temperature, top_k=top_k
        )
        next_token = int(picked[0])
        tokens.append(next_token)
        logprobs.append(float(logprob[0]))
        if stop_token is not None and next_token == stop_token:
            break
        logits = model.step(next_token, cache)
    return GenerationResult(prompt=list(map(int, prompt)), tokens=tokens, logprobs=logprobs)
