"""Inference caches for autoregressive decode.

Unlike Transformers, Mamba stores a *fixed-size* recurrent state per layer: a
convolution window and the SSM hidden state.  The paper exploits exactly this
property (Sec. I, Fig. 9a) -- decode cost does not grow with the generated
sequence length, which is also what makes large-batch decode cheap: a batch of
requests is just a leading ``(batch, ...)`` axis on the same fixed-size state.

Both cache classes support an optional batch dimension.  ``zeros(config)``
builds the single-sequence state used by the classic decode API;
``zeros(config, batch_size=b)`` prepends a batch axis to every tensor.  The
serving engine manages request lifetimes with :meth:`gather` (select / compact
rows, e.g. to evict finished requests) and :meth:`scatter` (write rows back,
e.g. to admit a freshly prefilled request into a running batch);
:meth:`stack` / :meth:`row` convert between batched and per-request caches.

Quantized models with a *persistent integer state* (the FPGA keeps ``h``
resident on-chip as INT codes, Sec. V of the paper) use
:class:`QuantizedLayerCache`: its ``ssm_state`` holds a
:class:`QuantizedSSMState` -- integer codes plus per-group scales -- instead of
a float array, and all of the request-lifetime operations above move the codes
directly, so admission / eviction never round-trips the state through floats.
The quantization logic itself lives in :mod:`repro.quant.ssm_quant`; this
module only defines the mechanical containers (pure numpy, no quant imports).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.mamba.config import Mamba2Config

__all__ = ["LayerCache", "InferenceCache", "QuantizedSSMState", "QuantizedLayerCache"]


@dataclass
class QuantizedSSMState:
    """The SSM hidden state ``h`` resident as integer codes + scales.

    This is the software twin of the FPGA's on-chip state buffer: between
    decode steps the state exists only as ``codes`` (INT ``bits`` values
    stored in an int32 array) and ``scales`` (one power-of-two scale per
    ``group_size`` run along the trailing ``d_state`` axis, shaped
    ``(..., nheads, headdim, n_groups, 1)`` so it multiplies the
    group-reshaped view of ``codes``).  The container is purely mechanical --
    producing codes from floats is the quantizer's job
    (:class:`repro.quant.ssm_quant.QuantizedSSMStep`); here we only hold,
    copy, and row-shuffle them for the serving engine's admission / eviction.

    ``codes`` has the exact shape a float ``ssm_state`` would have
    (``(nheads, headdim, d_state)``, plus an optional leading batch axis), so
    every batched row operation is a plain leading-axis index on both arrays.
    """

    codes: np.ndarray
    scales: np.ndarray
    group_size: int
    bits: int = 8

    @property
    def shape(self) -> tuple:
        return self.codes.shape

    @property
    def batch_size(self) -> Optional[int]:
        """Leading batch dimension, or ``None`` for a single-sequence state."""
        return self.codes.shape[0] if self.codes.ndim == 4 else None

    def dequantize(self) -> np.ndarray:
        """Reconstruct the float state (``codes * scales``, group-wise).

        This is the cheap direction -- a multiply, no absmax / rounding -- and
        the only numeric operation the container performs itself.
        """
        d_state = self.codes.shape[-1]
        group = min(self.group_size, d_state)
        n_groups = -(-d_state // group)
        pad = n_groups * group - d_state
        codes = self.codes.astype(np.float64)
        if pad:
            pad_width = [(0, 0)] * (codes.ndim - 1) + [(0, pad)]
            codes = np.pad(codes, pad_width)
        grouped = codes.reshape(*codes.shape[:-1], n_groups, group)
        values = (grouped * self.scales).reshape(*codes.shape[:-1], -1)
        if pad:
            values = values[..., :d_state]
        return values

    def copy(self) -> "QuantizedSSMState":
        return QuantizedSSMState(
            self.codes.copy(), self.scales.copy(), self.group_size, self.bits
        )

    def gather(self, indices) -> "QuantizedSSMState":
        indices = np.asarray(indices, dtype=np.int64)
        return QuantizedSSMState(
            self.codes[indices].copy(),
            self.scales[indices].copy(),
            self.group_size,
            self.bits,
        )

    def scatter(self, indices, src: "QuantizedSSMState") -> None:
        indices = np.asarray(indices, dtype=np.int64)
        self.codes[indices] = src.codes
        self.scales[indices] = src.scales

    def row(self, index: int) -> "QuantizedSSMState":
        return QuantizedSSMState(
            self.codes[index].copy(),
            self.scales[index].copy(),
            self.group_size,
            self.bits,
        )

    @classmethod
    def stack(cls, states: Sequence["QuantizedSSMState"]) -> "QuantizedSSMState":
        first = states[0]
        return cls(
            codes=np.stack([s.codes for s in states]),
            scales=np.stack([s.scales for s in states]),
            group_size=first.group_size,
            bits=first.bits,
        )

    def exact_equal(self, other: "QuantizedSSMState") -> bool:
        """Bit-exact equality of the *resident* representation.

        Compares the integer codes and the stored scales directly -- never
        the dequantized floats -- so two states compare equal iff the
        hardware state buffer would hold identical bits.  This is the
        comparison the serving supervisor's rollback verification uses: a
        restored snapshot must reproduce codes and scales exactly.
        """
        return (
            self.group_size == other.group_size
            and self.bits == other.bits
            and np.array_equal(self.codes, other.codes)
            and np.array_equal(self.scales, other.scales)
        )

    def num_elements(self) -> int:
        """Scalars held by the resident state (codes plus scales)."""
        return int(self.codes.size + self.scales.size)

    def num_bytes(self) -> float:
        """Resident footprint: packed codes plus one exponent byte per scale.

        PoT scales are stored as a signed power-of-two exponent, one byte
        each -- the hardware representation the paper's on-chip state buffer
        uses (re-quantization is a shift, so no mantissa is ever needed).
        """
        return self.codes.size * self.bits / 8.0 + self.scales.size * 1.0


@dataclass
class LayerCache:
    """Recurrent state of one Mamba2 block.

    Attributes
    ----------
    conv_state:
        Rolling convolution window, shape ``(conv_dim, d_conv)`` -- or
        ``(batch, conv_dim, d_conv)`` for a batched cache.
    ssm_state:
        SSM hidden state ``h``, shape ``(nheads, headdim, d_state)`` -- or
        ``(batch, nheads, headdim, d_state)`` for a batched cache.
    """

    conv_state: np.ndarray
    ssm_state: np.ndarray

    @classmethod
    def zeros(cls, config: Mamba2Config, batch_size: Optional[int] = None) -> "LayerCache":
        lead = () if batch_size is None else (batch_size,)
        return cls(
            conv_state=np.zeros(lead + (config.conv_dim, config.d_conv), dtype=np.float64),
            ssm_state=np.zeros(
                lead + (config.nheads, config.headdim, config.d_state), dtype=np.float64
            ),
        )

    @property
    def batch_size(self) -> Optional[int]:
        """Leading batch dimension, or ``None`` for a single-sequence cache."""
        return self.conv_state.shape[0] if self.conv_state.ndim == 3 else None

    def copy(self) -> "LayerCache":
        return LayerCache(self.conv_state.copy(), self.ssm_state.copy())

    def gather(self, indices) -> "LayerCache":
        """Return a new batched cache holding rows ``indices`` (in order)."""
        self._require_batched("gather")
        indices = np.asarray(indices, dtype=np.int64)
        return LayerCache(self.conv_state[indices].copy(), self.ssm_state[indices].copy())

    def scatter(self, indices, src: "LayerCache") -> None:
        """Write the rows of batched cache ``src`` into rows ``indices`` of self."""
        self._require_batched("scatter")
        indices = np.asarray(indices, dtype=np.int64)
        if src.batch_size != indices.size:
            raise ValueError(
                f"scatter needs one src row per index: {indices.size} indices "
                f"but src batch size is {src.batch_size}"
            )
        self.conv_state[indices] = src.conv_state
        self.ssm_state[indices] = src.ssm_state

    def row(self, index: int) -> "LayerCache":
        """Extract one request's state as a single-sequence (unbatched) cache."""
        self._require_batched("row")
        return LayerCache(self.conv_state[index].copy(), self.ssm_state[index].copy())

    @classmethod
    def stack(cls, caches: Sequence["LayerCache"]) -> "LayerCache":
        """Stack single-sequence caches into one batched cache."""
        if not caches:
            raise ValueError("cannot stack an empty sequence of caches")
        if any(c.batch_size is not None for c in caches):
            raise ValueError("stack expects single-sequence (unbatched) caches")
        return cls(
            conv_state=np.stack([c.conv_state for c in caches]),
            ssm_state=np.stack([c.ssm_state for c in caches]),
        )

    def _require_batched(self, op: str) -> None:
        if self.batch_size is None:
            raise ValueError(
                f"{op} requires a batched cache (see LayerCache.zeros(batch_size=...))"
            )

    def state_equal(self, other: "LayerCache") -> bool:
        """Exact value equality of the recurrent state (no tolerance).

        Float arrays compare with :func:`numpy.array_equal`; the quantized
        subclass compares resident codes + scales instead (see
        :meth:`QuantizedLayerCache.state_equal`).  ``NaN`` never compares
        equal, so a corrupted state is never "equal" to a healthy snapshot.
        """
        if type(other) is not type(self):
            return False
        return np.array_equal(self.conv_state, other.conv_state) and np.array_equal(
            self.ssm_state, other.ssm_state
        )

    def num_elements(self) -> int:
        """Total scalars held by this layer's recurrent state."""
        return int(self.conv_state.size + self.ssm_state.size)

    def resident_bytes(self) -> float:
        """Checkpoint footprint of this layer's state, in bytes.

        Matches the accounting of
        :class:`repro.hardware.memory.QuantizedStateMemoryModel`: a float
        cache is stored at FP16 (2 bytes per element); the quantized subclass
        stores packed codes plus one PoT exponent byte per scale (see
        :meth:`QuantizedLayerCache.resident_bytes`).
        """
        return float(self.num_elements()) * 2.0


@dataclass
class QuantizedLayerCache(LayerCache):
    """A :class:`LayerCache` whose SSM state is integer-resident.

    ``conv_state`` stays a float array (the short convolution window is tiny
    and not quantized between steps); ``ssm_state`` holds a
    :class:`QuantizedSSMState` instead of floats.  A model whose blocks carry
    a persistent-state quantized ``ssm_impl``
    (:class:`repro.quant.ssm_quant.QuantizedSSMStep` with
    ``persistent_state=True``) builds these through
    :meth:`Mamba2Model.new_cache <repro.mamba.model.Mamba2Model.new_cache>`;
    the serving engine's gather / scatter / stack / row then carry codes, not
    floats, exactly like the FPGA's on-chip state buffer.
    """

    # ``ssm_state`` (inherited field) holds a QuantizedSSMState here.

    @classmethod
    def zeros(cls, config: Mamba2Config, batch_size: Optional[int] = None) -> "LayerCache":
        raise TypeError(
            "a QuantizedLayerCache is built by the quantized step's "
            "zeros_cache(...) (see Mamba2Model.new_cache): only the quantizer "
            "knows the state grid, so LayerCache.zeros cannot construct one"
        )

    @property
    def batch_size(self) -> Optional[int]:
        return self.conv_state.shape[0] if self.conv_state.ndim == 3 else None

    def copy(self) -> "QuantizedLayerCache":
        return QuantizedLayerCache(self.conv_state.copy(), self.ssm_state.copy())

    def gather(self, indices) -> "QuantizedLayerCache":
        self._require_batched("gather")
        indices = np.asarray(indices, dtype=np.int64)
        return QuantizedLayerCache(
            self.conv_state[indices].copy(), self.ssm_state.gather(indices)
        )

    def scatter(self, indices, src: "LayerCache") -> None:
        self._require_batched("scatter")
        indices = np.asarray(indices, dtype=np.int64)
        if src.batch_size != indices.size:
            raise ValueError(
                f"scatter needs one src row per index: {indices.size} indices "
                f"but src batch size is {src.batch_size}"
            )
        if not isinstance(src.ssm_state, QuantizedSSMState):
            raise TypeError(
                "scatter into a QuantizedLayerCache needs integer-resident "
                "source rows (QuantizedSSMState), not a float state"
            )
        self.conv_state[indices] = src.conv_state
        self.ssm_state.scatter(indices, src.ssm_state)

    def row(self, index: int) -> "QuantizedLayerCache":
        self._require_batched("row")
        return QuantizedLayerCache(
            self.conv_state[index].copy(), self.ssm_state.row(index)
        )

    @classmethod
    def stack(cls, caches: Sequence["LayerCache"]) -> "QuantizedLayerCache":
        if not caches:
            raise ValueError("cannot stack an empty sequence of caches")
        if any(c.batch_size is not None for c in caches):
            raise ValueError("stack expects single-sequence (unbatched) caches")
        return cls(
            conv_state=np.stack([c.conv_state for c in caches]),
            ssm_state=QuantizedSSMState.stack([c.ssm_state for c in caches]),
        )

    def state_equal(self, other: "LayerCache") -> bool:
        """Exact resident equality: codes + scales compared, not floats."""
        if type(other) is not type(self):
            return False
        return np.array_equal(self.conv_state, other.conv_state) and self.ssm_state.exact_equal(
            other.ssm_state
        )

    def num_elements(self) -> int:
        return int(self.conv_state.size) + self.ssm_state.num_elements()

    def resident_bytes(self) -> float:
        """FP16 conv window plus the resident integer state's packed bytes."""
        return float(self.conv_state.size) * 2.0 + self.ssm_state.num_bytes()


@dataclass
class InferenceCache:
    """Recurrent state of the full model (one :class:`LayerCache` per block)."""

    layers: List[LayerCache]

    @classmethod
    def zeros(cls, config: Mamba2Config, batch_size: Optional[int] = None) -> "InferenceCache":
        return cls(
            layers=[LayerCache.zeros(config, batch_size) for _ in range(config.n_layer)]
        )

    @property
    def batch_size(self) -> Optional[int]:
        """Leading batch dimension, or ``None`` for a single-sequence cache."""
        return self.layers[0].batch_size if self.layers else None

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> LayerCache:
        return self.layers[idx]

    def copy(self) -> "InferenceCache":
        return InferenceCache(layers=[layer.copy() for layer in self.layers])

    def gather(self, indices) -> "InferenceCache":
        """Return a new batched cache holding rows ``indices`` of every layer."""
        return InferenceCache(layers=[layer.gather(indices) for layer in self.layers])

    def scatter(self, indices, src: "InferenceCache") -> None:
        """Write the rows of batched cache ``src`` into rows ``indices`` of self."""
        if len(src.layers) != len(self.layers):
            raise ValueError("layer count mismatch between caches")
        for layer, src_layer in zip(self.layers, src.layers):
            layer.scatter(indices, src_layer)

    def row(self, index: int) -> "InferenceCache":
        """Extract one request's state as a single-sequence (unbatched) cache."""
        return InferenceCache(layers=[layer.row(index) for layer in self.layers])

    @classmethod
    def stack(cls, caches: Sequence["InferenceCache"]) -> "InferenceCache":
        """Stack single-sequence caches into one batched cache."""
        if not caches:
            raise ValueError("cannot stack an empty sequence of caches")
        n_layer = len(caches[0].layers)
        if any(len(c.layers) != n_layer for c in caches):
            raise ValueError("all caches must have the same layer count")
        return cls(
            layers=[
                # Dispatch on the concrete layer class so a QuantizedLayerCache
                # stacks into a QuantizedLayerCache (codes stay codes).
                type(caches[0].layers[i]).stack([c.layers[i] for c in caches])
                for i in range(n_layer)
            ]
        )

    # ------------------------------------------------------------------
    # Supervisor snapshot / restore API
    # ------------------------------------------------------------------
    def snapshot_rows(self, indices) -> "InferenceCache":
        """Checkpoint the state of rows ``indices`` (deep copy, all layers).

        The serving supervisor's pre-iteration snapshot: for a quantized
        cache this copies the resident integer codes + PoT scale exponents
        directly (never dequantizing), so :meth:`restore_rows` followed by
        :meth:`state_equal` round-trips bit-exactly.  Equivalent to
        :meth:`gather`; the alias documents intent and pins the contract.
        """
        return self.gather(indices)

    def restore_rows(self, indices, snapshot: "InferenceCache") -> None:
        """Roll rows ``indices`` back to a :meth:`snapshot_rows` checkpoint."""
        self.scatter(indices, snapshot)

    def state_equal(self, other: "InferenceCache") -> bool:
        """Exact state equality across all layers (see :meth:`LayerCache.state_equal`).

        Quantized layers compare resident codes + scales, never dequantized
        floats -- the bit-exact rollback check.
        """
        if len(other.layers) != len(self.layers):
            return False
        return all(
            layer.state_equal(other_layer)
            for layer, other_layer in zip(self.layers, other.layers)
        )

    def num_elements(self) -> int:
        """Total scalars held by the model's recurrent state."""
        return sum(layer.num_elements() for layer in self.layers)

    def resident_state_bytes(self) -> float:
        """Checkpoint footprint in bytes, layer accounting per :meth:`LayerCache.resident_bytes`.

        For a quantized cache this matches
        :class:`repro.hardware.memory.QuantizedStateMemoryModel`'s
        quantized-footprint terms for the recurrent state (packed codes, one
        exponent byte per PoT scale, FP16 conv taps); for a float cache it is
        the FP16 baseline.  The serving supervisor uses it to account
        snapshot bytes in ``EngineStats``.
        """
        return sum(layer.resident_bytes() for layer in self.layers)

    def num_bytes(self, bytes_per_element: int = 2) -> int:
        """Cache footprint in bytes (default FP16 storage)."""
        return self.num_elements() * bytes_per_element
