"""Inference caches for autoregressive decode.

Unlike Transformers, Mamba stores a *fixed-size* recurrent state per layer: a
convolution window and the SSM hidden state.  The paper exploits exactly this
property (Sec. I, Fig. 9a) -- decode cost does not grow with the generated
sequence length, which is also what makes large-batch decode cheap: a batch of
requests is just a leading ``(batch, ...)`` axis on the same fixed-size state.

Both cache classes support an optional batch dimension.  ``zeros(config)``
builds the single-sequence state used by the classic decode API;
``zeros(config, batch_size=b)`` prepends a batch axis to every tensor.  The
serving engine manages request lifetimes with :meth:`gather` (select / compact
rows, e.g. to evict finished requests) and :meth:`scatter` (write rows back,
e.g. to admit a freshly prefilled request into a running batch);
:meth:`stack` / :meth:`row` convert between batched and per-request caches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.mamba.config import Mamba2Config

__all__ = ["LayerCache", "InferenceCache"]


@dataclass
class LayerCache:
    """Recurrent state of one Mamba2 block.

    Attributes
    ----------
    conv_state:
        Rolling convolution window, shape ``(conv_dim, d_conv)`` -- or
        ``(batch, conv_dim, d_conv)`` for a batched cache.
    ssm_state:
        SSM hidden state ``h``, shape ``(nheads, headdim, d_state)`` -- or
        ``(batch, nheads, headdim, d_state)`` for a batched cache.
    """

    conv_state: np.ndarray
    ssm_state: np.ndarray

    @classmethod
    def zeros(cls, config: Mamba2Config, batch_size: Optional[int] = None) -> "LayerCache":
        lead = () if batch_size is None else (batch_size,)
        return cls(
            conv_state=np.zeros(lead + (config.conv_dim, config.d_conv), dtype=np.float64),
            ssm_state=np.zeros(
                lead + (config.nheads, config.headdim, config.d_state), dtype=np.float64
            ),
        )

    @property
    def batch_size(self) -> Optional[int]:
        """Leading batch dimension, or ``None`` for a single-sequence cache."""
        return self.conv_state.shape[0] if self.conv_state.ndim == 3 else None

    def copy(self) -> "LayerCache":
        return LayerCache(self.conv_state.copy(), self.ssm_state.copy())

    def gather(self, indices) -> "LayerCache":
        """Return a new batched cache holding rows ``indices`` (in order)."""
        self._require_batched("gather")
        indices = np.asarray(indices, dtype=np.int64)
        return LayerCache(self.conv_state[indices].copy(), self.ssm_state[indices].copy())

    def scatter(self, indices, src: "LayerCache") -> None:
        """Write the rows of batched cache ``src`` into rows ``indices`` of self."""
        self._require_batched("scatter")
        indices = np.asarray(indices, dtype=np.int64)
        if src.batch_size != indices.size:
            raise ValueError(
                f"scatter needs one src row per index: {indices.size} indices "
                f"but src batch size is {src.batch_size}"
            )
        self.conv_state[indices] = src.conv_state
        self.ssm_state[indices] = src.ssm_state

    def row(self, index: int) -> "LayerCache":
        """Extract one request's state as a single-sequence (unbatched) cache."""
        self._require_batched("row")
        return LayerCache(self.conv_state[index].copy(), self.ssm_state[index].copy())

    @classmethod
    def stack(cls, caches: Sequence["LayerCache"]) -> "LayerCache":
        """Stack single-sequence caches into one batched cache."""
        if not caches:
            raise ValueError("cannot stack an empty sequence of caches")
        if any(c.batch_size is not None for c in caches):
            raise ValueError("stack expects single-sequence (unbatched) caches")
        return cls(
            conv_state=np.stack([c.conv_state for c in caches]),
            ssm_state=np.stack([c.ssm_state for c in caches]),
        )

    def _require_batched(self, op: str) -> None:
        if self.batch_size is None:
            raise ValueError(f"{op} requires a batched cache (see LayerCache.zeros(batch_size=...))")

    def num_elements(self) -> int:
        """Total scalars held by this layer's recurrent state."""
        return int(self.conv_state.size + self.ssm_state.size)


@dataclass
class InferenceCache:
    """Recurrent state of the full model (one :class:`LayerCache` per block)."""

    layers: List[LayerCache]

    @classmethod
    def zeros(cls, config: Mamba2Config, batch_size: Optional[int] = None) -> "InferenceCache":
        return cls(
            layers=[LayerCache.zeros(config, batch_size) for _ in range(config.n_layer)]
        )

    @property
    def batch_size(self) -> Optional[int]:
        """Leading batch dimension, or ``None`` for a single-sequence cache."""
        return self.layers[0].batch_size if self.layers else None

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> LayerCache:
        return self.layers[idx]

    def copy(self) -> "InferenceCache":
        return InferenceCache(layers=[layer.copy() for layer in self.layers])

    def gather(self, indices) -> "InferenceCache":
        """Return a new batched cache holding rows ``indices`` of every layer."""
        return InferenceCache(layers=[layer.gather(indices) for layer in self.layers])

    def scatter(self, indices, src: "InferenceCache") -> None:
        """Write the rows of batched cache ``src`` into rows ``indices`` of self."""
        if len(src.layers) != len(self.layers):
            raise ValueError("layer count mismatch between caches")
        for layer, src_layer in zip(self.layers, src.layers):
            layer.scatter(indices, src_layer)

    def row(self, index: int) -> "InferenceCache":
        """Extract one request's state as a single-sequence (unbatched) cache."""
        return InferenceCache(layers=[layer.row(index) for layer in self.layers])

    @classmethod
    def stack(cls, caches: Sequence["InferenceCache"]) -> "InferenceCache":
        """Stack single-sequence caches into one batched cache."""
        if not caches:
            raise ValueError("cannot stack an empty sequence of caches")
        n_layer = len(caches[0].layers)
        if any(len(c.layers) != n_layer for c in caches):
            raise ValueError("all caches must have the same layer count")
        return cls(
            layers=[
                LayerCache.stack([c.layers[i] for c in caches]) for i in range(n_layer)
            ]
        )

    def num_elements(self) -> int:
        """Total scalars held by the model's recurrent state."""
        return sum(layer.num_elements() for layer in self.layers)

    def num_bytes(self, bytes_per_element: int = 2) -> int:
        """Cache footprint in bytes (default FP16 storage)."""
        return self.num_elements() * bytes_per_element
