"""Inference caches for autoregressive decode.

Unlike Transformers, Mamba stores a *fixed-size* recurrent state per layer: a
convolution window and the SSM hidden state.  The paper exploits exactly this
property (Sec. I, Fig. 9a) -- decode cost does not grow with the generated
sequence length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.mamba.config import Mamba2Config

__all__ = ["LayerCache", "InferenceCache"]


@dataclass
class LayerCache:
    """Recurrent state of one Mamba2 block.

    Attributes
    ----------
    conv_state:
        Rolling convolution window, shape ``(conv_dim, d_conv)``.
    ssm_state:
        SSM hidden state ``h``, shape ``(nheads, headdim, d_state)``.
    """

    conv_state: np.ndarray
    ssm_state: np.ndarray

    @classmethod
    def zeros(cls, config: Mamba2Config) -> "LayerCache":
        return cls(
            conv_state=np.zeros((config.conv_dim, config.d_conv), dtype=np.float64),
            ssm_state=np.zeros(
                (config.nheads, config.headdim, config.d_state), dtype=np.float64
            ),
        )

    def copy(self) -> "LayerCache":
        return LayerCache(self.conv_state.copy(), self.ssm_state.copy())

    def num_elements(self) -> int:
        """Total scalars held by this layer's recurrent state."""
        return int(self.conv_state.size + self.ssm_state.size)


@dataclass
class InferenceCache:
    """Recurrent state of the full model (one :class:`LayerCache` per block)."""

    layers: List[LayerCache]

    @classmethod
    def zeros(cls, config: Mamba2Config) -> "InferenceCache":
        return cls(layers=[LayerCache.zeros(config) for _ in range(config.n_layer)])

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> LayerCache:
        return self.layers[idx]

    def copy(self) -> "InferenceCache":
        return InferenceCache(layers=[layer.copy() for layer in self.layers])

    def num_elements(self) -> int:
        """Total scalars held by the model's recurrent state."""
        return sum(layer.num_elements() for layer in self.layers)

    def num_bytes(self, bytes_per_element: int = 2) -> int:
        """Cache footprint in bytes (default FP16 storage)."""
        return self.num_elements() * bytes_per_element
