"""Mamba2 model substrate.

A numpy implementation of the Mamba2 architecture (Dao & Gu, 2024) as described
in Fig. 1 of the LightMamba paper: each block consists of an input projection,
a short causal 1-d convolution over ``(x, B, C)``, the SSM (state space model)
recurrence, a gated RMSNorm and an output projection.  The model supports both
prefill (summarising a prompt) and autoregressive decode with a fixed-size
recurrent cache.

The implementation favours clarity and testability over raw speed: every layer
is a plain dataclass over numpy arrays with an explicit ``forward``/``step``
method, so quantization passes and the hardware simulator can introspect and
rewrite parameters directly.

Batch convention: every decode-path entry point accepts either the classic
single-sequence shapes or the same shapes with one leading ``(batch, ...)``
axis shared by all arguments (tokens, activations, and cache state alike).
The batched forms advance all requests in lock-step and are numerically
equivalent to running each request alone; :mod:`repro.serving` builds the
batch generator and continuous-batching engine on top of them.
"""

from repro.mamba.config import Mamba2Config, MODEL_PRESETS, get_preset
from repro.mamba.ops import silu, softplus, rms_normalize
from repro.mamba.rmsnorm import RMSNorm, GatedRMSNorm
from repro.mamba.conv1d import CausalConv1d
from repro.mamba.ssm import (
    SSMParams,
    ssm_step,
    ssm_scan,
    ssd_chunked_scan,
    selective_state_update,
)
from repro.mamba.cache import LayerCache, InferenceCache, QuantizedLayerCache, QuantizedSSMState
from repro.mamba.block import MambaBlock
from repro.mamba.model import Mamba2Model
from repro.mamba.generation import greedy_decode, sample_decode, GenerationResult
from repro.mamba.sampling import log_softmax, top_k_filter, greedy_select, sample_select
from repro.mamba.init import InitConfig, OutlierProfile
from repro.mamba.tokenizer import ByteTokenizer

__all__ = [
    "Mamba2Config",
    "MODEL_PRESETS",
    "get_preset",
    "silu",
    "softplus",
    "rms_normalize",
    "RMSNorm",
    "GatedRMSNorm",
    "CausalConv1d",
    "SSMParams",
    "ssm_step",
    "ssm_scan",
    "ssd_chunked_scan",
    "selective_state_update",
    "LayerCache",
    "InferenceCache",
    "QuantizedLayerCache",
    "QuantizedSSMState",
    "MambaBlock",
    "Mamba2Model",
    "greedy_decode",
    "sample_decode",
    "GenerationResult",
    "log_softmax",
    "top_k_filter",
    "greedy_select",
    "sample_select",
    "InitConfig",
    "OutlierProfile",
    "ByteTokenizer",
]
