"""Elementary numerical operators used throughout the Mamba2 model.

These mirror the operator boxes of Fig. 1 in the paper (SiLU, Softplus, Exp,
element-wise multiplication, RMS normalisation).  They are written for numpy
arrays of arbitrary shape and are numerically stable for the ranges produced
by the model.
"""

from __future__ import annotations

import numpy as np

try:  # scipy's expit is a single C ufunc pass; fall back to pure numpy.
    from scipy.special import expit as _expit
except ImportError:  # pragma: no cover - scipy is present in the dev image
    _expit = None

__all__ = [
    "silu",
    "sigmoid",
    "softplus",
    "softmax",
    "rms_normalize",
    "cross_entropy",
]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid.

    Computed from ``z = exp(-|x|)`` (never overflows) as ``1 / (1 + z)`` for
    non-negative inputs and ``z / (1 + z)`` otherwise -- branch-free, which is
    markedly faster than masked assignment on the decode hot path.
    """
    x = np.asarray(x, dtype=np.float64)
    if _expit is not None:
        return _expit(x)
    z = np.exp(-np.abs(x))
    return np.where(x >= 0, 1.0, z) / (1.0 + z)


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU (swish) activation: ``x * sigmoid(x)``."""
    x = np.asarray(x, dtype=np.float64)
    out = sigmoid(x)
    if out.ndim:
        np.multiply(x, out, out=out)  # reuse the sigmoid buffer (hot path)
        return out
    return x * out


def softplus(x: np.ndarray) -> np.ndarray:
    """Numerically stable softplus: ``log(1 + exp(x))``.

    Used to produce the positive step size ``delta`` from the raw ``dt``
    output of the input projection.
    """
    x = np.asarray(x, dtype=np.float64)
    return np.where(x > 20.0, x, np.log1p(np.exp(np.minimum(x, 20.0))))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Softmax along ``axis`` with max subtraction for stability."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    ex = np.exp(shifted)
    return ex / np.sum(ex, axis=axis, keepdims=True)


def rms_normalize(x: np.ndarray, eps: float = 1e-5, axis: int = -1) -> np.ndarray:
    """Root-mean-square normalisation without a learned scale.

    ``x / sqrt(mean(x^2) + eps)`` along ``axis``.  The learned per-channel
    scale is applied by :class:`repro.mamba.rmsnorm.RMSNorm` so that the
    rotation-assisted quantization pass can split it off and fuse it into the
    following linear layer (Sec. IV-A of the paper).
    """
    x = np.asarray(x, dtype=np.float64)
    if axis == -1:
        # Fused sum-of-squares (no squared temporary) on the decode hot path.
        ms = (np.einsum("...i,...i->...", x, x) / x.shape[-1])[..., None]
    else:
        ms = np.mean(np.square(x), axis=axis, keepdims=True)
    return x / np.sqrt(ms + eps)


def cross_entropy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Mean token-level cross entropy (nats).

    Parameters
    ----------
    logits:
        Array of shape ``(seq_len, vocab)``.
    targets:
        Integer array of shape ``(seq_len,)``.
    """
    logits = np.asarray(logits, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-d, got shape {logits.shape}")
    if targets.shape[0] != logits.shape[0]:
        raise ValueError("logits and targets must have matching sequence length")
    shifted = logits - np.max(logits, axis=-1, keepdims=True)
    log_z = np.log(np.sum(np.exp(shifted), axis=-1))
    picked = shifted[np.arange(len(targets)), targets]
    return float(np.mean(log_z - picked))
