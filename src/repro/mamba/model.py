"""The full Mamba2 language model.

``Mamba2Model`` stacks the embedding table, ``n_layer`` Mamba2 blocks, a final
RMSNorm and the LM head (tied to the embedding by default).  It supports:

- :meth:`forward` -- full-sequence evaluation returning per-position logits
  (used for perplexity / calibration);
- :meth:`prefill` + :meth:`step` -- prompt summarisation followed by
  autoregressive single-token decode against a fixed-size
  :class:`~repro.mamba.cache.InferenceCache`;
- activation collection hooks used by calibration and by the figures that
  visualise activation distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.mamba.block import MambaBlock
from repro.mamba.cache import InferenceCache, LayerCache
from repro.mamba.config import Mamba2Config
from repro.mamba.init import InitConfig, init_block_params, init_embedding
from repro.mamba.rmsnorm import RMSNorm

__all__ = ["Mamba2Model"]


@dataclass
class Mamba2Model:
    """A complete Mamba2 language model over numpy parameters."""

    config: Mamba2Config
    embedding: np.ndarray                 # (vocab, d_model)
    blocks: List[MambaBlock]
    norm_f: RMSNorm
    lm_head_weight: Optional[np.ndarray] = None  # (vocab, d_model); None = tied

    def __post_init__(self) -> None:
        cfg = self.config
        self.embedding = np.asarray(self.embedding, dtype=np.float64)
        if self.embedding.shape != (cfg.vocab_size, cfg.d_model):
            raise ValueError(
                f"embedding must have shape ({cfg.vocab_size}, {cfg.d_model}), "
                f"got {self.embedding.shape}"
            )
        if len(self.blocks) != cfg.n_layer:
            raise ValueError(
                f"expected {cfg.n_layer} blocks, got {len(self.blocks)}"
            )
        if self.lm_head_weight is not None:
            self.lm_head_weight = np.asarray(self.lm_head_weight, dtype=np.float64)
            if self.lm_head_weight.shape != (cfg.vocab_size, cfg.d_model):
                raise ValueError("lm_head_weight has the wrong shape")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_config(
        cls, config: Mamba2Config, init: Optional[InitConfig] = None
    ) -> "Mamba2Model":
        """Build a synthetic model from a configuration.

        The initialisation injects the activation-outlier structure described
        in :mod:`repro.mamba.init` unless an explicit ``init`` disables it.
        """
        init = init or InitConfig()
        embedding = init_embedding(config, init)
        blocks = [
            MambaBlock(config=config, layer_idx=i, **init_block_params(config, init, i))
            for i in range(config.n_layer)
        ]
        rng = np.random.default_rng(init.seed + 777)
        norm_f = RMSNorm(
            init.final_norm_scale
            * (np.ones(config.d_model) + 0.05 * rng.normal(size=config.d_model)),
            eps=config.norm_eps,
        )
        lm_head = None
        if not config.tie_embeddings:
            lm_head = rng.normal(
                0.0, 1.0 / np.sqrt(config.d_model), size=(config.vocab_size, config.d_model)
            )
        return cls(
            config=config,
            embedding=embedding,
            blocks=blocks,
            norm_f=norm_f,
            lm_head_weight=lm_head,
        )

    # ------------------------------------------------------------------
    # Heads
    # ------------------------------------------------------------------
    @property
    def head_weight(self) -> np.ndarray:
        """The LM-head weight (the embedding matrix when tied)."""
        if self.lm_head_weight is not None:
            return self.lm_head_weight
        return self.embedding

    def embed(self, tokens: np.ndarray) -> np.ndarray:
        """Look up token embeddings; ``tokens`` is an int array of any shape."""
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.size and (tokens.min() < 0 or tokens.max() >= self.config.vocab_size):
            raise ValueError("token id out of range")
        return self.embedding[tokens]

    def logits_from_hidden(self, hidden: np.ndarray) -> np.ndarray:
        """Apply the final norm and LM head to residual-stream activations."""
        normed = self.norm_f(hidden)
        return normed @ self.head_weight.T

    # ------------------------------------------------------------------
    # Full-sequence evaluation
    # ------------------------------------------------------------------
    def forward(
        self,
        tokens: np.ndarray,
        collect: Optional[List[Dict[str, np.ndarray]]] = None,
        *,
        scan_impl: Optional[str] = None,
        chunk_size: Optional[int] = None,
    ) -> np.ndarray:
        """Evaluate the model on a token sequence.

        Parameters
        ----------
        tokens:
            Integer array of shape ``(seq_len,)``.
        collect:
            Optional list; if provided it receives one dictionary of captured
            activations per block.
        scan_impl, chunk_size:
            Optional per-call override of the prefill scan engine (defaults
            to ``config.scan_impl`` / ``config.chunk_size``; see
            :meth:`MambaBlock.forward <repro.mamba.block.MambaBlock.forward>`).
            Quantized lightmamba* models serve ``"chunked"`` through their
            quantized chunk-parallel scan; ``"sequential"`` selects the
            per-token oracle for FP and quantized models alike.

        Returns
        -------
        Logits of shape ``(seq_len, vocab_size)``.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 1:
            raise ValueError("tokens must be a 1-d integer array")
        hidden = self.embed(tokens)
        for block in self.blocks:
            block_collect: Optional[Dict[str, np.ndarray]] = None
            if collect is not None:
                block_collect = {}
                collect.append(block_collect)
            hidden = block.forward(
                hidden, collect=block_collect, scan_impl=scan_impl, chunk_size=chunk_size
            )
        return self.logits_from_hidden(hidden)

    __call__ = forward

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------
    def new_cache(self, batch_size: Optional[int] = None) -> InferenceCache:
        """A fresh zero inference cache matching each block's state layout.

        Blocks whose ``ssm_impl`` keeps the recurrent state integer-resident
        (``state_resident`` capability -- the persistent-state quantized step)
        receive a :class:`~repro.mamba.cache.QuantizedLayerCache` holding zero
        codes; all other blocks get the float
        :class:`~repro.mamba.cache.LayerCache`.  This is the factory every
        decode entry point (:meth:`prefill`, the serving engine's slot pool)
        uses, so the resident representation is threaded through admission /
        eviction automatically.
        """
        layers = []
        for block in self.blocks:
            impl = block.ssm_impl
            if impl is not None and getattr(impl, "state_resident", False):
                layers.append(impl.zeros_cache(self.config, batch_size))
            else:
                layers.append(LayerCache.zeros(self.config, batch_size))
        return InferenceCache(layers=layers)

    def prefill(
        self,
        tokens: np.ndarray,
        *,
        seq_lens: Optional[np.ndarray] = None,
        cache: Optional[InferenceCache] = None,
        scan_impl: Optional[str] = None,
        chunk_size: Optional[int] = None,
    ) -> tuple[np.ndarray, InferenceCache]:
        """Summarise a prompt and return (last-token logits, cache).

        ``tokens`` of shape ``(seq_len,)`` returns logits ``(vocab,)`` and a
        single-sequence cache; a batch of equal-length prompts of shape
        ``(batch, seq_len)`` returns logits ``(batch, vocab)`` and a batched
        cache (leading ``(batch, ...)`` axis on every state tensor).

        Parameters
        ----------
        seq_lens:
            Optional ``(batch,)`` true prompt lengths for a right-padded
            ragged batch: every row is prefilled in the same padded model
            call, its logits are read at its *true* last token and its cache
            state is the state after that token (pad positions never leak --
            the model is causal).  Pad token ids just need to be valid.
        cache:
            Optional warm cache to continue from (e.g. the next segment of a
            long prompt processed in chunks); a fresh zero cache is created
            when omitted.  Must match the batch shape of ``tokens``.
        scan_impl, chunk_size:
            Optional per-call override of the prefill scan engine (defaults
            to ``config.scan_impl`` / ``config.chunk_size``).  Applies to
            quantized lightmamba* models too: their ``ssm_impl`` serves the
            ``"chunked"`` path chunk-parallel and keeps ``"sequential"`` as
            the per-token oracle.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim not in (1, 2):
            raise ValueError("tokens must have shape (seq_len,) or (batch, seq_len)")
        if tokens.shape[-1] == 0:
            # Guard the zero-length prompt here so callers get a clear error
            # instead of an index error from the last-token logit extraction
            # (an empty prompt should be encoded as BOS-only upstream).
            raise ValueError(
                "prefill needs at least one token per prompt; encode an empty "
                "prompt as a single BOS token instead"
            )
        batch_size = tokens.shape[0] if tokens.ndim == 2 else None
        if cache is None:
            cache = self.new_cache(batch_size=batch_size)
        elif cache.batch_size != batch_size:
            raise ValueError(
                f"cache batch size {cache.batch_size} does not match tokens batch "
                f"size {batch_size}"
            )
        if seq_lens is not None:
            if tokens.ndim != 2:
                raise ValueError("seq_lens requires batched (batch, seq_len) tokens")
            seq_lens = np.asarray(seq_lens, dtype=np.int64)
        hidden = self.embed(tokens)
        for i, block in enumerate(self.blocks):
            hidden = block.forward(
                hidden,
                cache=cache.layers[i],
                scan_impl=scan_impl,
                chunk_size=chunk_size,
                seq_lens=seq_lens,
            )
        if seq_lens is None:
            last = hidden[..., -1, :]
        else:
            last = hidden[np.arange(tokens.shape[0]), seq_lens - 1, :]
        logits = self.logits_from_hidden(last)
        return logits, cache

    def step(
        self,
        token,
        cache: InferenceCache,
        collect: Optional[List[Dict[str, np.ndarray]]] = None,
    ) -> np.ndarray:
        """Decode one token per sequence given the recurrent cache.

        ``token`` is a scalar token id for a single-sequence cache, or an
        integer array of shape ``(batch,)`` advancing every request of a
        batched cache by one token in lock-step.  Returns next-token logits of
        shape ``(vocab,)`` (scalar input) or ``(batch, vocab)``.
        """
        token = np.asarray(token, dtype=np.int64)
        if token.ndim == 0:
            hidden = self.embed(token[None])[0]
        elif token.ndim == 1:
            hidden = self.embed(token)
        else:
            raise ValueError("token must be a scalar or a 1-d (batch,) array")
        for i, block in enumerate(self.blocks):
            block_collect: Optional[Dict[str, np.ndarray]] = None
            if collect is not None:
                block_collect = {}
                collect.append(block_collect)
            hidden = block.step(hidden, cache.layers[i], collect=block_collect)
        return self.logits_from_hidden(hidden)

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------
    def num_parameters(self) -> int:
        """Total parameter count (embedding included, head counted once if tied)."""
        total = int(self.embedding.size + self.norm_f.weight.size)
        if self.lm_head_weight is not None:
            total += int(self.lm_head_weight.size)
        total += sum(block.num_parameters() for block in self.blocks)
        return total

    def copy(self) -> "Mamba2Model":
        """Deep copy of the model (parameters duplicated, hooks by reference)."""
        return Mamba2Model(
            config=self.config,
            embedding=self.embedding.copy(),
            blocks=[block.copy() for block in self.blocks],
            norm_f=self.norm_f.copy(),
            lm_head_weight=None if self.lm_head_weight is None else self.lm_head_weight.copy(),
        )
