"""Short causal depthwise 1-d convolution.

Mamba2 applies a depthwise causal convolution with a small kernel (typically
4) to the concatenated ``[x, B, C]`` channels produced by the input projection
(the ``Conv`` box in Fig. 1 of the paper).  During decode the convolution is
evaluated incrementally against a rolling per-channel state window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mamba.ops import silu

__all__ = ["CausalConv1d"]


@dataclass
class CausalConv1d:
    """Depthwise causal 1-d convolution followed by a SiLU activation.

    Attributes
    ----------
    weight:
        Kernel of shape ``(channels, kernel_size)``; ``weight[:, -1]`` is the
        tap applied to the current time step.
    bias:
        Per-channel bias of shape ``(channels,)``.
    activation:
        If ``True`` (default, matching Mamba2) a SiLU is applied to the output.
    """

    weight: np.ndarray
    bias: np.ndarray
    activation: bool = True

    def __post_init__(self) -> None:
        self.weight = np.asarray(self.weight, dtype=np.float64)
        self.bias = np.asarray(self.bias, dtype=np.float64)
        if self.weight.ndim != 2:
            raise ValueError("conv weight must have shape (channels, kernel_size)")
        if self.bias.shape != (self.weight.shape[0],):
            raise ValueError("conv bias must have shape (channels,)")

    @property
    def channels(self) -> int:
        return self.weight.shape[0]

    @property
    def kernel_size(self) -> int:
        return self.weight.shape[1]

    def forward(self, x: np.ndarray, initial_state: np.ndarray | None = None) -> np.ndarray:
        """Apply the causal convolution to a full sequence.

        Parameters
        ----------
        x:
            Array of shape ``(seq_len, channels)`` or, batched,
            ``(batch, seq_len, channels)``; each batch row is convolved
            independently.
        initial_state:
            Optional rolling window of the inputs *before* this sequence, in
            the :meth:`step` layout ``(..., channels, kernel_size)`` with the
            most recent sample last.  When given, its trailing samples replace
            the zero left-padding so a sequence can be processed in segments
            with exact continuation; an all-zero state reproduces the default.

        Returns
        -------
        Array of the same shape as ``x``.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim not in (2, 3) or x.shape[-1] != self.channels:
            raise ValueError(
                f"expected input of shape (seq_len, {self.channels}) or "
                f"(batch, seq_len, {self.channels}), got {x.shape}"
            )
        seq_len = x.shape[-2]
        k = self.kernel_size
        if initial_state is None:
            pad = np.zeros(x.shape[:-2] + (k - 1, self.channels))
        else:
            initial_state = np.asarray(initial_state, dtype=np.float64)
            if initial_state.shape != x.shape[:-2] + (self.channels, k):
                raise ValueError(
                    "expected initial_state of shape "
                    f"{x.shape[:-2] + (self.channels, k)}, got {initial_state.shape}"
                )
            # The window's last k-1 samples are the left context of token 0.
            pad = np.swapaxes(initial_state[..., 1:], -1, -2)
        padded = np.concatenate([pad, x], axis=-2)
        # Sliding window over time + per-channel dot over the kernel taps in a
        # single contraction (one pass, no per-tap (seq_len, channels)
        # temporaries -- this is on the prefill hot path).
        windows = np.lib.stride_tricks.sliding_window_view(padded, k, axis=-2)
        out = np.einsum("...tck,ck->...tc", windows, self.weight) + self.bias
        if self.activation:
            out = silu(out)
        return out

    def step(self, x_t: np.ndarray, conv_state: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Incremental (decode-time) convolution for one time step.

        Parameters
        ----------
        x_t:
            Current input of shape ``(channels,)`` or ``(batch, channels)``.
        conv_state:
            Rolling window of the most recent ``kernel_size`` inputs, shape
            ``(channels, kernel_size)`` (``(batch, channels, kernel_size)``
            when batched); ``conv_state[..., -1]`` is the most recent sample
            *before* this step.

        Returns
        -------
        (output, new_conv_state)
            ``output`` has the shape of ``x_t`` and ``new_conv_state`` the
            shape of ``conv_state``.
        """
        x_t = np.asarray(x_t, dtype=np.float64)
        conv_state = np.asarray(conv_state, dtype=np.float64)
        if x_t.shape[-1:] != (self.channels,) or x_t.ndim not in (1, 2):
            raise ValueError(
                f"expected x_t of shape ({self.channels},) or (batch, {self.channels}), "
                f"got {x_t.shape}"
            )
        if conv_state.shape != x_t.shape + (self.kernel_size,):
            raise ValueError(
                "expected conv_state of shape "
                f"{x_t.shape + (self.kernel_size,)}, got {conv_state.shape}"
            )
        new_state = np.empty_like(conv_state)
        new_state[..., :-1] = conv_state[..., 1:]
        new_state[..., -1] = x_t
        # Per-channel dot over the window in one fused contraction (the
        # decode hot path; avoids a (..., channels, k) product temporary).
        out = np.einsum("...ck,ck->...c", new_state, self.weight) + self.bias
        if self.activation:
            out = silu(out)
        return out, new_state

    def initial_state(self, batch_size: int | None = None) -> np.ndarray:
        """Return an all-zero convolution state (batched when requested)."""
        lead = () if batch_size is None else (batch_size,)
        return np.zeros(lead + (self.channels, self.kernel_size), dtype=np.float64)

    def copy(self) -> "CausalConv1d":
        return CausalConv1d(
            weight=self.weight.copy(), bias=self.bias.copy(), activation=self.activation
        )
