"""Synthetic model initialisation with controllable activation-outlier structure.

The LightMamba quantization study (Sec. III, Fig. 2, Table II) hinges on a
statistical property of real Mamba2 checkpoints: the input of the *output
projection* contains large activation outliers whose channel position changes
from token to token ("scattered outliers"), whereas Transformer-style outliers
stay in fixed channels.  Since pretrained checkpoints are not available in
this environment, :class:`OutlierProfile` injects that structure into a
synthetic model:

- a heavy-tailed (log-normal) per-channel scale on selected *embedding*
  columns creates token-stable outliers in the residual stream, i.e. in the
  input-projection activation (the Transformer-like case that SmoothQuant can
  handle);
- heavy-tailed rows of the ``z``-gate part of the input projection make
  ``silu(z)`` spike in channels that depend on the current token, which
  produces scattered outliers at the output-projection input (the Mamba
  phenomenon that defeats channel-wise scaling and motivates rotation).

The profile strength is expressed as a multiplicative amplitude over the base
initialisation so the FP model stays numerically well behaved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mamba.config import Mamba2Config
from repro.mamba.conv1d import CausalConv1d
from repro.mamba.rmsnorm import GatedRMSNorm, RMSNorm
from repro.mamba.ssm import SSMParams

__all__ = ["OutlierProfile", "InitConfig", "init_block_params", "init_embedding"]


@dataclass(frozen=True)
class OutlierProfile:
    """Controls the injected activation-outlier structure.

    Attributes
    ----------
    fixed_channel_fraction:
        Fraction of residual-stream channels that carry token-stable outliers
        (Transformer-like structure at the input projection).
    fixed_channel_gain:
        Amplitude multiplier for those channels.
    scattered_fraction:
        Fraction of ``z``-gate rows initialised heavy-tailed, which produces
        token-dependent (scattered) outliers at the output-projection input.
    scattered_gain:
        Amplitude multiplier for the heavy-tailed gate rows.
    heavy_tail_sigma:
        Log-normal sigma of the heavy-tailed draws.
    """

    fixed_channel_fraction: float = 0.02
    fixed_channel_gain: float = 8.0
    scattered_fraction: float = 0.05
    scattered_gain: float = 10.0
    heavy_tail_sigma: float = 1.0

    def __post_init__(self) -> None:
        for name in ("fixed_channel_fraction", "scattered_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.fixed_channel_gain < 0 or self.scattered_gain < 0:
            raise ValueError("gains must be non-negative")

    @classmethod
    def none(cls) -> "OutlierProfile":
        """A profile that injects no outliers (pure Gaussian activations)."""
        return cls(
            fixed_channel_fraction=0.0,
            fixed_channel_gain=1.0,
            scattered_fraction=0.0,
            scattered_gain=1.0,
        )


@dataclass(frozen=True)
class InitConfig:
    """Initialisation settings for a synthetic Mamba2 model.

    ``final_norm_scale`` controls the magnitude of the final RMSNorm scale and
    therefore the sharpness of the output distribution: the default keeps the
    synthetic model's next-token entropy in a natural-language-like range so
    that perplexity / task-accuracy evaluations can discriminate between
    quantization methods (a near-deterministic model would hide their
    differences).
    """

    seed: int = 0
    weight_scale: float = 1.0
    dt_min: float = 0.001
    dt_max: float = 0.1
    a_init_range: tuple = (1.0, 16.0)
    final_norm_scale: float = 0.15
    residual_scale: float | None = None
    outliers: OutlierProfile = OutlierProfile()


def _linear_init(rng: np.random.Generator, out_dim: int, in_dim: int, scale: float) -> np.ndarray:
    """Scaled Gaussian init with fan-in variance scaling."""
    std = scale / np.sqrt(in_dim)
    return rng.normal(0.0, std, size=(out_dim, in_dim))


def init_embedding(config: Mamba2Config, init: InitConfig) -> np.ndarray:
    """Initialise the embedding table, optionally with fixed-channel outliers."""
    rng = np.random.default_rng(init.seed)
    emb = rng.normal(0.0, 1.0, size=(config.vocab_size, config.d_model))
    profile = init.outliers
    n_fixed = int(round(profile.fixed_channel_fraction * config.d_model))
    if n_fixed > 0 and profile.fixed_channel_gain > 1.0:
        channels = rng.choice(config.d_model, size=n_fixed, replace=False)
        gains = profile.fixed_channel_gain * rng.lognormal(
            0.0, profile.heavy_tail_sigma, size=n_fixed
        )
        emb[:, channels] *= gains
    return emb


def init_block_params(
    config: Mamba2Config, init: InitConfig, layer_idx: int
) -> dict:
    """Initialise all parameters of one Mamba2 block.

    Returns a dictionary with keys matching the :class:`~repro.mamba.block.MambaBlock`
    constructor arguments (minus ``config`` / ``layer_idx``).
    """
    cfg = config
    rng = np.random.default_rng(init.seed * 100003 + layer_idx + 1)
    profile = init.outliers

    in_proj = _linear_init(rng, cfg.d_in_proj, cfg.d_model, init.weight_scale)
    # Heavy-tailed z-gate rows -> scattered outliers at the out-proj input.
    n_scattered = int(round(profile.scattered_fraction * cfg.d_inner))
    if n_scattered > 0 and profile.scattered_gain > 1.0:
        rows = rng.choice(cfg.d_inner, size=n_scattered, replace=False)
        gains = profile.scattered_gain * rng.lognormal(
            0.0, profile.heavy_tail_sigma, size=n_scattered
        )
        in_proj[rows, :] *= gains[:, None]

    out_proj = _linear_init(rng, cfg.d_model, cfg.d_inner, init.weight_scale)
    # Residual-branch scale: the default (1 / sqrt(2 * n_layer)) keeps a deep
    # random stack stable; the Table II / III evaluation models use a larger
    # value (e.g. 1.0) so each block contributes strongly and quantization
    # error compounds through depth the way it does in trained checkpoints.
    residual_scale = (
        init.residual_scale
        if init.residual_scale is not None
        else 1.0 / np.sqrt(2.0 * cfg.n_layer)
    )
    out_proj *= residual_scale

    conv_weight = rng.normal(0.0, 1.0 / np.sqrt(cfg.d_conv), size=(cfg.conv_dim, cfg.d_conv))
    conv_bias = np.zeros(cfg.conv_dim)

    # dt_bias such that softplus(dt_bias) is log-uniform in [dt_min, dt_max].
    u = rng.uniform(0.0, 1.0, size=cfg.nheads)
    dt = np.exp(u * (np.log(init.dt_max) - np.log(init.dt_min)) + np.log(init.dt_min))
    dt = np.clip(dt, 1e-4, None)
    dt_bias = dt + np.log(-np.expm1(-dt))  # inverse softplus

    a_low, a_high = init.a_init_range
    A_log = np.log(rng.uniform(a_low, a_high, size=cfg.nheads))
    D = rng.normal(1.0, 0.1, size=cfg.nheads)

    norm_weight = np.ones(cfg.d_model) + 0.05 * rng.normal(size=cfg.d_model)
    gated_weight = np.ones(cfg.d_inner) + 0.05 * rng.normal(size=cfg.d_inner)

    return {
        "norm": RMSNorm(norm_weight, eps=cfg.norm_eps),
        "in_proj_weight": in_proj,
        "conv": CausalConv1d(conv_weight, conv_bias),
        "ssm": SSMParams(A_log=A_log, D=D, dt_bias=dt_bias),
        "gated_norm": GatedRMSNorm(gated_weight, eps=cfg.norm_eps),
        "out_proj_weight": out_proj,
    }
