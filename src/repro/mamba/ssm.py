"""The SSM (selective state space) recurrence of Mamba2.

This module implements the computation graph of the SSM layer exactly as drawn
in Fig. 1 of the LightMamba paper::

    delta  = softplus(dt + dt_bias)            # (h,)
    A_bar  = exp(delta * A)                    # (h,)      Delta (.) A -> Exp
    B_bar  = delta * B                         # (h, n)    Delta (.) B
    h_t    = A_bar (.) h_{t-1} + B_bar (.) x   # (h, p, n) outer products
    y      = h_t . C + D (.) x                 # (h, p)    matrix mul + skip

where ``h`` is the number of heads, ``p`` the head channel dimension and ``n``
the SSM state dimension.  ``ssm_step`` advances one token; ``ssm_scan`` applies
the recurrence over a whole sequence (used for prefill).

All element-wise products of the step are also exposed individually through
:func:`ssm_step_trace` so that the SSM quantization pass
(:mod:`repro.quant.ssm_quant`) and the SSMU hardware model
(:mod:`repro.hardware.ssmu`) can operate on the exact same operator
decomposition the accelerator implements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.mamba.ops import softplus

__all__ = [
    "SSMParams",
    "ssm_decay",
    "ssm_step",
    "ssm_step_trace",
    "ssm_scan",
    "ssd_chunked_scan",
    "selective_state_update",
    "SSM_ELEMENTWISE_OPS",
]


#: Names of the element-wise operators of the SSM layer, matching Fig. 3 of the
#: paper (used by the hardware cost model and the PoT quantization study).
SSM_ELEMENTWISE_OPS = (
    "delta_mul_A",   # Delta (.) A   (argument of the exponential)
    "delta_mul_B",   # Delta (.) B   (B_bar)
    "B_mul_x",       # B_bar (.) x   (state update input, outer product)
    "A_mul_h",       # A_bar (.) h_{t-1}
    "h_mul_C",       # h_t . C       (state readout)
    "x_mul_D",       # D (.) x       (skip connection)
)


@dataclass
class SSMParams:
    """Per-layer SSM parameters.

    Attributes
    ----------
    A_log:
        Shape ``(nheads,)``; the continuous-time decay is ``A = -exp(A_log)``.
    D:
        Skip-connection coefficient, shape ``(nheads,)``.
    dt_bias:
        Bias added to the raw ``dt`` before the softplus, shape ``(nheads,)``.
    """

    A_log: np.ndarray
    D: np.ndarray
    dt_bias: np.ndarray

    def __post_init__(self) -> None:
        self.A_log = np.asarray(self.A_log, dtype=np.float64)
        self.D = np.asarray(self.D, dtype=np.float64)
        self.dt_bias = np.asarray(self.dt_bias, dtype=np.float64)
        if not (self.A_log.shape == self.D.shape == self.dt_bias.shape):
            raise ValueError("A_log, D and dt_bias must all have shape (nheads,)")
        if self.A_log.ndim != 1:
            raise ValueError("SSM parameters must be 1-d (per head)")

    def __setattr__(self, name, value) -> None:
        # Invalidate the cached decay basis whenever A_log is (re)assigned,
        # so the cache cannot go stale through field assignment.  In-place
        # mutation of the A_log *array* is not tracked -- assign a new array
        # (or build a new SSMParams) to change the decay.
        if name == "A_log":
            object.__setattr__(self, "_A", None)
        object.__setattr__(self, name, value)

    @property
    def nheads(self) -> int:
        return self.A_log.shape[0]

    @property
    def A(self) -> np.ndarray:
        """Continuous-time state matrix diagonal (negative, per head).

        Derived lazily and cached: A is read in every decode step of every
        layer, so re-deriving ``-exp(A_log)`` per access would put an exp
        over ``nheads`` into the per-token hot loop.
        """
        if self._A is None:
            self._A = -np.exp(self.A_log)
        return self._A

    def copy(self) -> "SSMParams":
        return SSMParams(self.A_log.copy(), self.D.copy(), self.dt_bias.copy())


def _validate_step_inputs(
    params: SSMParams,
    x: np.ndarray,
    B: np.ndarray,
    C: np.ndarray,
    dt: np.ndarray,
    state: np.ndarray,
) -> bool:
    """Validate step inputs; returns ``True`` when they carry a batch dim.

    Single-sequence shapes are ``x (nheads, headdim)``, ``B/C (d_state,)``,
    ``dt (nheads,)``, ``state (nheads, headdim, d_state)``.  Batched inputs
    prepend a shared leading ``batch`` axis to every argument.
    """
    nheads = params.nheads
    if x.ndim == 2:
        batched = False
    elif x.ndim == 3:
        batched = True
    else:
        raise ValueError(
            f"x must have shape (nheads, headdim) or (batch, nheads, headdim), got {x.shape}"
        )
    lead = x.shape[:1] if batched else ()
    if x.shape[-2] != nheads:
        raise ValueError(f"x must have {nheads} heads, got shape {x.shape}")
    headdim = x.shape[-1]
    if B.shape != C.shape or B.ndim != 1 + batched or B.shape[:-1] != lead:
        raise ValueError("B and C must both have shape (d_state,) (plus the batch axis)")
    d_state = B.shape[-1]
    if dt.shape != lead + (nheads,):
        raise ValueError(f"dt must have shape {lead + (nheads,)}, got {dt.shape}")
    if state.shape != lead + (nheads, headdim, d_state):
        raise ValueError(
            f"state must have shape {lead + (nheads, headdim, d_state)}, got {state.shape}"
        )
    return batched


def ssm_decay(params: SSMParams, dt: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-head step size and decay, computed once per step.

    Returns ``(delta, A_bar)`` with ``delta = softplus(dt + dt_bias)`` and
    ``A_bar = exp(delta * A)``, broadcasting over any leading axes of ``dt``
    (batch, or time for a scan).  This is the single place the decode path
    derives its decay: both the floating-point step and the quantized step
    call it, so the softplus / exp pair is evaluated exactly once per step
    instead of being re-derived by each consumer of the same ``dt`` slice.
    """
    delta = softplus(np.asarray(dt, dtype=np.float64) + params.dt_bias)
    return delta, np.exp(delta * params.A)


def ssm_step_trace(
    params: SSMParams,
    x: np.ndarray,
    B: np.ndarray,
    C: np.ndarray,
    dt: np.ndarray,
    state: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, Dict[str, np.ndarray]]:
    """Advance the SSM recurrence one step, returning all intermediates.

    Parameters
    ----------
    params:
        The per-layer :class:`SSMParams`.
    x:
        Input of shape ``(nheads, headdim)``.
    B, C:
        Input-dependent projections of shape ``(d_state,)`` (``ngroups == 1``).
    dt:
        Raw per-head step size of shape ``(nheads,)`` (before softplus).
    state:
        Previous hidden state ``h_{t-1}`` of shape ``(nheads, headdim, d_state)``.

    Returns
    -------
    (y, new_state, trace)
        ``y`` has shape ``(nheads, headdim)``, ``new_state`` the same shape as
        ``state`` and ``trace`` maps each name in :data:`SSM_ELEMENTWISE_OPS`
        (plus ``"delta"``, ``"A_bar"``) to the corresponding intermediate
        tensor.
    """
    x = np.asarray(x, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    C = np.asarray(C, dtype=np.float64)
    dt = np.asarray(dt, dtype=np.float64)
    state = np.asarray(state, dtype=np.float64)
    if _validate_step_inputs(params, x, B, C, dt, state):
        raise ValueError("ssm_step_trace is single-sequence only; use ssm_step for batches")

    delta = softplus(dt + params.dt_bias)              # (h,)
    delta_mul_A = delta * params.A                     # (h,)
    A_bar = np.exp(delta_mul_A)                        # (h,)
    delta_mul_B = delta[:, None] * B[None, :]          # (h, n)  B_bar
    B_mul_x = delta_mul_B[:, None, :] * x[:, :, None]  # (h, p, n)
    A_mul_h = A_bar[:, None, None] * state             # (h, p, n)
    new_state = A_mul_h + B_mul_x                      # (h, p, n)
    h_mul_C = new_state * C[None, None, :]             # (h, p, n)
    y_ssm = np.sum(h_mul_C, axis=-1)                   # (h, p)
    x_mul_D = params.D[:, None] * x                    # (h, p)
    y = y_ssm + x_mul_D

    trace = {
        "delta": delta,
        "delta_mul_A": delta_mul_A,
        "A_bar": A_bar,
        "delta_mul_B": delta_mul_B,
        "B_mul_x": B_mul_x,
        "A_mul_h": A_mul_h,
        "h_mul_C": h_mul_C,
        "x_mul_D": x_mul_D,
    }
    return y, new_state, trace


def ssm_step(
    params: SSMParams,
    x: np.ndarray,
    B: np.ndarray,
    C: np.ndarray,
    dt: np.ndarray,
    state: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Advance the SSM recurrence one token (without intermediates).

    Unlike :func:`ssm_step_trace` this is a direct implementation that does
    not materialise the per-operator intermediate dictionary (prefill calls
    it once per token), and it accepts an optional leading batch axis:
    ``x (batch, nheads, headdim)``, ``B/C (batch, d_state)``,
    ``dt (batch, nheads)``, ``state (batch, nheads, headdim, d_state)``.
    All batched requests advance in lock-step; single-sequence shapes (no
    batch axis) are accepted unchanged.
    """
    x = np.asarray(x, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    C = np.asarray(C, dtype=np.float64)
    dt = np.asarray(dt, dtype=np.float64)
    state = np.asarray(state, dtype=np.float64)
    _validate_step_inputs(params, x, B, C, dt, state)

    delta, A_bar = ssm_decay(params, dt)                         # (..., h) each
    dB = delta[..., :, None] * B[..., None, :]                   # (..., h, n)  B_bar
    new_state = A_bar[..., :, None, None] * state                # (..., h, p, n)
    new_state += dB[..., :, None, :] * x[..., :, :, None]
    # Readout y = h_t . C as a (stacked) mat-vec over the state axis; the
    # reshape is free because new_state is freshly allocated (contiguous).
    nheads, headdim, d_state = new_state.shape[-3:]
    flat = new_state.reshape(new_state.shape[:-3] + (nheads * headdim, d_state))
    y = np.matmul(flat, C[..., None])[..., 0].reshape(x.shape)   # (..., h, p)
    y += params.D[:, None] * x
    return y, new_state


# Alias matching the naming of the reference Mamba implementation.
selective_state_update = ssm_step


def _validate_seq_lens(seq_lens, batched: bool, batch: int, seq_len: int) -> np.ndarray:
    """Validate per-row true lengths for a padded (ragged) batched scan."""
    if not batched:
        raise ValueError("seq_lens requires a batched input (leading batch axis)")
    seq_lens = np.asarray(seq_lens, dtype=np.int64)
    if seq_lens.shape != (batch,):
        raise ValueError(f"seq_lens must have shape ({batch},), got {seq_lens.shape}")
    if seq_lens.size and (seq_lens.min() < 1 or seq_lens.max() > seq_len):
        raise ValueError(f"seq_lens entries must be in [1, {seq_len}]")
    return seq_lens


def ssm_scan(
    params: SSMParams,
    x: np.ndarray,
    B: np.ndarray,
    C: np.ndarray,
    dt: np.ndarray,
    initial_state: np.ndarray | None = None,
    seq_lens: np.ndarray | None = None,
    step_fn=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run the SSM recurrence over a full sequence (prefill).

    Parameters
    ----------
    x:
        Shape ``(seq_len, nheads, headdim)`` or ``(batch, seq_len, nheads,
        headdim)``; with a batch axis every other argument carries the same
        leading axis and the batch advances token-parallel.
    B, C:
        Shape ``(seq_len, d_state)`` (``(batch, seq_len, d_state)`` batched).
    dt:
        Shape ``(seq_len, nheads)`` (``(batch, seq_len, nheads)`` batched).
    initial_state:
        Optional starting hidden state; zeros if omitted.
    seq_lens:
        Optional per-row true prompt lengths, shape ``(batch,)`` (batched
        input only).  Positions at or beyond a row's length are treated as
        right padding: the returned ``final_state`` row is the state after
        the row's *true* last token, so ragged prompts can share one padded
        scan.  ``y`` is still computed at every position (pad positions carry
        garbage, which is harmless downstream because the model is causal).
    step_fn:
        The per-token step to drive (``ssm_step`` signature, batch-capable
        when the input is batched); defaults to :func:`ssm_step`.  The
        quantized scan passes its own step here, so the token loop and its
        ``seq_lens`` snapshot bookkeeping live in exactly one place.

    Returns
    -------
    (y, final_state)
        ``y`` has the same shape as ``x``; ``final_state`` is
        ``(nheads, headdim, d_state)`` with a leading batch axis if batched.
    """
    step = ssm_step if step_fn is None else step_fn
    x = np.asarray(x, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    C = np.asarray(C, dtype=np.float64)
    dt = np.asarray(dt, dtype=np.float64)
    if x.ndim not in (3, 4):
        raise ValueError(
            "x must have shape (seq_len, nheads, headdim) or (batch, seq_len, nheads, headdim)"
        )
    batched = x.ndim == 4
    seq_len = x.shape[1] if batched else x.shape[0]
    nheads, headdim = x.shape[-2:]
    d_state = B.shape[-1]
    lead = x.shape[:1] if batched else ()
    state_shape = lead + (nheads, headdim, d_state)
    if initial_state is None:
        state = np.zeros(state_shape, dtype=np.float64)
    else:
        state = np.array(initial_state, dtype=np.float64, copy=True)
        if state.shape != state_shape:
            raise ValueError(f"initial_state must have shape {state_shape}, got {state.shape}")
    if seq_lens is not None:
        seq_lens = _validate_seq_lens(seq_lens, batched, x.shape[0], seq_len)
        final = np.zeros_like(state)

    y = np.zeros_like(x)
    for t in range(seq_len):
        if batched:
            y[:, t], state = step(params, x[:, t], B[:, t], C[:, t], dt[:, t], state)
            if seq_lens is not None:
                ending = seq_lens == t + 1
                if ending.any():
                    final[ending] = state[ending]
        else:
            y[t], state = step(params, x[t], B[t], C[t], dt[t], state)
    if seq_lens is not None:
        return y, final
    return y, state


def ssd_chunked_scan(
    params: SSMParams,
    x: np.ndarray,
    B: np.ndarray,
    C: np.ndarray,
    dt: np.ndarray,
    initial_state: np.ndarray | None = None,
    chunk_size: int = 64,
    seq_lens: np.ndarray | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Chunked SSD formulation of the prefill scan (Dao & Gu, 2024).

    Mathematically identical to :func:`ssm_scan` but processes the sequence
    chunk by chunk: within a chunk the output is computed from a dense
    decay-weighted ``C B^T`` interaction matrix (the "quadratic" SSD form),
    and only one recurrent state hand-off happens per chunk.  This is the
    production prefill engine (matrix-matrix parallelism within a chunk, as
    on the accelerator datapath); the tests verify it matches the sequential
    recurrence to numerical precision.

    Parameters
    ----------
    x:
        Shape ``(seq_len, nheads, headdim)`` or, batched,
        ``(batch, seq_len, nheads, headdim)``; with a batch axis every other
        argument carries the same leading axis.
    B, C:
        Shape ``(seq_len, d_state)`` (``(batch, seq_len, d_state)`` batched).
    dt:
        Shape ``(seq_len, nheads)`` (raw, before softplus;
        ``(batch, seq_len, nheads)`` batched).
    initial_state:
        Optional ``(nheads, headdim, d_state)`` starting state (leading batch
        axis when batched).
    chunk_size:
        Tokens per chunk; clamped to the sequence length, so an oversized
        chunk costs exactly one dense chunk and ``chunk_size == 1`` degrades
        gracefully to the sequential recurrence cost.
    seq_lens:
        Optional per-row true prompt lengths, shape ``(batch,)`` (batched
        input only).  See :func:`ssm_scan`: the returned state rows are
        snapshots at each row's true length, enabling one padded scan over
        ragged prompts.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    x = np.asarray(x, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    C = np.asarray(C, dtype=np.float64)
    dt = np.asarray(dt, dtype=np.float64)
    if x.ndim not in (3, 4):
        raise ValueError(
            "x must have shape (seq_len, nheads, headdim) or (batch, seq_len, nheads, headdim)"
        )
    batched = x.ndim == 4
    seq_len, nheads, headdim = x.shape[-3:]
    d_state = B.shape[-1]
    if nheads != params.nheads:
        raise ValueError("head count mismatch between x and params")
    lead = x.shape[:1] if batched else ()
    state_shape = lead + (nheads, headdim, d_state)

    delta = softplus(dt + params.dt_bias)               # (..., T, h)
    log_decay = delta * params.A                        # (..., T, h), negative
    if initial_state is None:
        state = np.zeros(state_shape, dtype=np.float64)
    else:
        state = np.array(initial_state, dtype=np.float64, copy=True)
        if state.shape != state_shape:
            raise ValueError(f"initial_state must have shape {state_shape}, got {state.shape}")
    if seq_lens is not None:
        seq_lens = _validate_seq_lens(seq_lens, batched, x.shape[0], seq_len)
        snapshot = np.zeros_like(state)
    y = np.zeros_like(x)

    chunk = min(chunk_size, seq_len)
    # One causal mask shared by every full chunk (the ragged tail slices it).
    causal_full = np.tril(np.ones((chunk, chunk), dtype=np.float64))
    for start in range(0, seq_len, chunk):
        stop = min(start + chunk, seq_len)
        q_len = stop - start
        xc = x[..., start:stop, :, :]                   # (..., Q, h, p)
        bc = B[..., start:stop, :]                      # (..., Q, n)
        cc = C[..., start:stop, :]                      # (..., Q, n)
        dc = delta[..., start:stop, :]                  # (..., Q, h)
        lc = np.cumsum(log_decay[..., start:stop, :], axis=-2)  # (..., Q, h) inclusive

        # Dense decay-weighted interaction within the chunk, all heads at once:
        #   G[t, s, head] = exp(L_t - L_s) * (C_t . B_s) * delta_s   for s <= t.
        # Contractions are phrased as stacked matmuls (not einsum) so they run
        # on the BLAS kernels -- this is where the prefill throughput lives.
        cb = cc @ np.swapaxes(bc, -1, -2)               # (..., Q, Q)
        causal = causal_full if q_len == chunk else causal_full[:q_len, :q_len]
        diff = lc[..., :, None, :] - lc[..., None, :, :]  # (..., Q, Q, h)
        # L is strictly decreasing, so causal entries (s <= t) have diff <= 0;
        # clamping at 0 leaves them untouched while keeping the exp finite on
        # the upper triangle, which the causal mask then zeroes -- no (Q, Q, h)
        # -inf fill and no masked-lane exp overflow.
        decay = np.exp(np.minimum(diff, 0.0)) * causal[..., :, :, None]
        gate = cb[..., :, :, None] * decay * dc[..., None, :, :]
        # yc[t, h, p] = sum_s gate[t, s, h] * xc[s, h, p], as a per-head matmul.
        yc = np.moveaxis(
            np.moveaxis(gate, -1, -3) @ np.moveaxis(xc, -2, -3), -3, -2
        )                                               # (..., Q, h, p)
        # Contribution of the carried-in state: h_in . C per head.
        readout = state @ np.swapaxes(cc, -1, -2)[..., None, :, :]  # (..., h, p, Q)
        yc += np.exp(lc)[..., None] * np.moveaxis(readout, -1, -3)
        yc += params.D[:, None] * xc
        y[..., start:stop, :, :] = yc

        if seq_lens is not None:
            # Snapshot rows whose true last token falls inside this chunk:
            # the state after local position j is the chunk-carry formula
            # truncated at j (computed from the chunk-entry state).
            for row in np.nonzero((seq_lens > start) & (seq_lens <= stop))[0]:
                j = int(seq_lens[row]) - 1 - start
                carry_j = np.exp(lc[row, j][None, :] - lc[row, : j + 1]) * dc[row, : j + 1]
                wx_j = np.moveaxis(carry_j[:, :, None] * xc[row, : j + 1], 0, -1)
                snapshot[row] = (
                    np.exp(lc[row, j])[:, None, None] * state[row]
                    + wx_j @ bc[row, : j + 1][None, :, :]
                )
        # Chunk-final state hand-off:
        #   h_out = exp(L_last) h_in + sum_q carry[q] x_q B_q^T  (per head).
        last = lc[..., -1, :]                           # (..., h)
        carry = np.exp(last[..., None, :] - lc) * dc    # (..., Q, h)
        wx = np.moveaxis(carry[..., :, :, None] * xc, -3, -1)       # (..., h, p, Q)
        state = np.exp(last)[..., :, None, None] * state + wx @ bc[..., None, :, :]
    if seq_lens is not None:
        return y, snapshot
    return y, state
