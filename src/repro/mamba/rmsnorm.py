"""RMS normalisation layers.

Two variants are used in Mamba2 (Fig. 1 of the paper):

- :class:`RMSNorm` -- the pre-block and final normalisation of the residual
  stream.
- :class:`GatedRMSNorm` -- the normalisation applied to the SSM output after
  gating with ``silu(z)`` and before the output projection.  Its learned scale
  is the one the paper chooses *not* to fuse into the output projection weight
  (Fig. 4b), so the layer exposes the scale separately.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mamba.ops import rms_normalize, silu

__all__ = ["RMSNorm", "GatedRMSNorm"]


@dataclass
class RMSNorm:
    """RMS normalisation with a learned per-channel scale.

    ``y = x / sqrt(mean(x^2) + eps) * weight``
    """

    weight: np.ndarray
    eps: float = 1e-5

    def __post_init__(self) -> None:
        self.weight = np.asarray(self.weight, dtype=np.float64)
        if self.weight.ndim != 1:
            raise ValueError("RMSNorm weight must be 1-d")

    @property
    def dim(self) -> int:
        return self.weight.shape[0]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the normalisation along the last axis."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.dim:
            raise ValueError(
                f"input last dim {x.shape[-1]} does not match norm dim {self.dim}"
            )
        return rms_normalize(x, eps=self.eps) * self.weight

    __call__ = forward

    def copy(self) -> "RMSNorm":
        return RMSNorm(weight=self.weight.copy(), eps=self.eps)


@dataclass
class GatedRMSNorm:
    """Gated RMSNorm used before the output projection in Mamba2.

    ``y = rmsnorm(x * silu(z)) * weight``

    The gate ``z`` comes from the input projection; the normalisation is
    applied after gating (the ``norm_before_gate=False`` convention of the
    reference Mamba2 implementation).
    """

    weight: np.ndarray
    eps: float = 1e-5

    def __post_init__(self) -> None:
        self.weight = np.asarray(self.weight, dtype=np.float64)
        if self.weight.ndim != 1:
            raise ValueError("GatedRMSNorm weight must be 1-d")

    @property
    def dim(self) -> int:
        return self.weight.shape[0]

    def forward(self, x: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Gate ``x`` with ``silu(z)`` and normalise along the last axis."""
        x = np.asarray(x, dtype=np.float64)
        z = np.asarray(z, dtype=np.float64)
        if x.shape != z.shape:
            raise ValueError(f"x and z must have the same shape, got {x.shape} vs {z.shape}")
        if x.shape[-1] != self.dim:
            raise ValueError(
                f"input last dim {x.shape[-1]} does not match norm dim {self.dim}"
            )
        gated = x * silu(z)
        return rms_normalize(gated, eps=self.eps) * self.weight

    __call__ = forward

    def copy(self) -> "GatedRMSNorm":
        return GatedRMSNorm(weight=self.weight.copy(), eps=self.eps)
