"""The Mamba2 block.

A block (Fig. 1 of the paper) computes, for a residual-stream input ``u``::

    r           = RMSNorm(u)
    [z,xBC,dt]  = r @ W_in^T                      # input projection
    xBC         = silu(conv1d(xBC))               # short causal convolution
    x, B, C     = split(xBC)
    y           = SSM(x, B, C, dt)                # recurrence, Fig. 1 right
    g           = GatedRMSNorm(y, z)              # gate with silu(z), normalise
    out         = u + g @ W_out^T                 # output projection + residual

The block exposes three injection points used by the quantization stack and
the hardware co-design:

- ``pre_in_proj`` / ``pre_out_proj`` -- callables applied to the activation
  right before the corresponding matrix multiplication (identity by default).
  The quantized model uses them for activation fake-quantization and for the
  *online Hadamard transform* inserted before the output projection
  (rotation (3) in Fig. 4a).
- ``ssm_impl`` -- an alternative implementation of the SSM step with the same
  signature as :func:`repro.mamba.ssm.ssm_step`; the PoT-quantized SSM plugs
  in here.  An implementation may advertise two optional capabilities:
  ``supports_batched`` (a leading batch axis on the step arguments, used by
  batched decode and the per-token prefill loop) and ``supports_prefill_scan``
  (a ``prefill_scan`` method with the :func:`repro.mamba.ssm.ssd_chunked_scan`
  signature, which ``forward`` routes the ``scan_impl="chunked"`` prefill
  through -- the quantized chunk-parallel fast path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.mamba.cache import LayerCache, QuantizedSSMState
from repro.mamba.config import Mamba2Config
from repro.mamba.conv1d import CausalConv1d
from repro.mamba.rmsnorm import GatedRMSNorm, RMSNorm
from repro.mamba.ssm import SSMParams, ssd_chunked_scan, ssm_scan, ssm_step

__all__ = ["MambaBlock"]

ActivationHook = Callable[[np.ndarray], np.ndarray]
SSMStepFn = Callable[
    [SSMParams, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    Tuple[np.ndarray, np.ndarray],
]


def _identity(x: np.ndarray) -> np.ndarray:
    return x


@dataclass
class MambaBlock:
    """One Mamba2 block with explicit numpy parameters."""

    config: Mamba2Config
    norm: RMSNorm
    in_proj_weight: np.ndarray        # (d_in_proj, d_model)
    conv: CausalConv1d                # over conv_dim channels
    ssm: SSMParams
    gated_norm: GatedRMSNorm
    out_proj_weight: np.ndarray       # (d_model, d_inner)
    layer_idx: int = 0
    in_proj_bias: Optional[np.ndarray] = None   # (d_in_proj,), used by OS+ compensation
    out_proj_bias: Optional[np.ndarray] = None  # (d_model,), used by OS+ compensation
    pre_in_proj: ActivationHook = field(default=_identity)
    pre_out_proj: ActivationHook = field(default=_identity)
    ssm_impl: Optional[SSMStepFn] = None

    def __post_init__(self) -> None:
        cfg = self.config
        self.in_proj_weight = np.asarray(self.in_proj_weight, dtype=np.float64)
        self.out_proj_weight = np.asarray(self.out_proj_weight, dtype=np.float64)
        if self.in_proj_bias is not None:
            self.in_proj_bias = np.asarray(self.in_proj_bias, dtype=np.float64)
            if self.in_proj_bias.shape != (cfg.d_in_proj,):
                raise ValueError("in_proj_bias must have shape (d_in_proj,)")
        if self.out_proj_bias is not None:
            self.out_proj_bias = np.asarray(self.out_proj_bias, dtype=np.float64)
            if self.out_proj_bias.shape != (cfg.d_model,):
                raise ValueError("out_proj_bias must have shape (d_model,)")
        if self.in_proj_weight.shape != (cfg.d_in_proj, cfg.d_model):
            raise ValueError(
                f"in_proj_weight must have shape ({cfg.d_in_proj}, {cfg.d_model}), "
                f"got {self.in_proj_weight.shape}"
            )
        if self.out_proj_weight.shape != (cfg.d_model, cfg.d_inner):
            raise ValueError(
                f"out_proj_weight must have shape ({cfg.d_model}, {cfg.d_inner}), "
                f"got {self.out_proj_weight.shape}"
            )
        if self.conv.channels != cfg.conv_dim:
            raise ValueError("conv channel count does not match config.conv_dim")
        if self.ssm.nheads != cfg.nheads:
            raise ValueError("SSM head count does not match config.nheads")
        if self.norm.dim != cfg.d_model or self.gated_norm.dim != cfg.d_inner:
            raise ValueError("norm dimensions do not match the configuration")

    # ------------------------------------------------------------------
    # Projections
    # ------------------------------------------------------------------
    def _split_in_proj(self, zxbcdt: np.ndarray) -> Tuple[np.ndarray, ...]:
        """Split the input-projection output into ``z, xBC, dt`` (last axis)."""
        cfg = self.config
        z = zxbcdt[..., : cfg.d_inner]
        xbc = zxbcdt[..., cfg.d_inner : cfg.d_inner + cfg.conv_dim]
        dt = zxbcdt[..., cfg.d_inner + cfg.conv_dim :]
        return z, xbc, dt

    def _split_xbc(self, xbc: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        cfg = self.config
        x = xbc[..., : cfg.d_inner]
        b = xbc[..., cfg.d_inner : cfg.d_inner + cfg.d_bc]
        c = xbc[..., cfg.d_inner + cfg.d_bc :]
        return x, b, c

    def _ssm_step(self, *args):
        fn = self.ssm_impl if self.ssm_impl is not None else ssm_step
        return fn(*args)

    # ------------------------------------------------------------------
    # Decode (one token)
    # ------------------------------------------------------------------
    def step(
        self,
        u: np.ndarray,
        cache: LayerCache,
        collect: Optional[Dict[str, np.ndarray]] = None,
    ) -> np.ndarray:
        """Process one token per sequence, updating ``cache`` in place.

        Parameters
        ----------
        u:
            Residual-stream input of shape ``(d_model,)``, or
            ``(batch, d_model)`` to advance a batch of sequences in lock-step
            (``cache`` must then be batched with the same batch size).
        cache:
            The layer's recurrent state; its ``conv_state`` and ``ssm_state``
            are replaced with the post-step values.
        collect:
            Optional dictionary that receives named intermediate activations
            (used by calibration and by the activation-distribution figure).
        """
        cfg = self.config
        u = np.asarray(u, dtype=np.float64)
        if u.shape[-1:] != (cfg.d_model,) or u.ndim not in (1, 2):
            raise ValueError(
                f"expected input of shape ({cfg.d_model},) or (batch, {cfg.d_model}), "
                f"got {u.shape}"
            )
        batched = u.ndim == 2

        residual = u
        r = self.norm(u)
        r_q = self.pre_in_proj(r)
        zxbcdt = r_q @ self.in_proj_weight.T
        if self.in_proj_bias is not None:
            zxbcdt = zxbcdt + self.in_proj_bias
        z, xbc, dt = self._split_in_proj(zxbcdt)
        if batched:
            # The splits are strided views of zxbcdt; the decode hot loop
            # touches them many times, so contiguous copies pay for themselves.
            z, xbc, dt = z.copy(), xbc.copy(), dt.copy()

        xbc_conv, new_conv_state = self.conv.step(xbc, cache.conv_state)
        cache.conv_state = new_conv_state
        x, b, c = self._split_xbc(xbc_conv)
        x_heads = x.reshape(x.shape[:-1] + (cfg.nheads, cfg.headdim))

        if (
            batched
            and self.ssm_impl is not None
            and not getattr(self.ssm_impl, "supports_batched", False)
        ):
            # Single-sequence custom step function: advance each batch row
            # independently (batch-capable implementations take the fast path).
            y_heads = np.empty_like(x_heads)
            new_ssm_state = np.empty_like(cache.ssm_state)
            for i in range(u.shape[0]):
                y_heads[i], new_ssm_state[i] = self.ssm_impl(
                    self.ssm, x_heads[i], b[i], c[i], dt[i], cache.ssm_state[i]
                )
        else:
            y_heads, new_ssm_state = self._ssm_step(
                self.ssm, x_heads, b, c, dt, cache.ssm_state
            )
        cache.ssm_state = new_ssm_state
        y = y_heads.reshape(u.shape[:-1] + (cfg.d_inner,))

        gated = self.gated_norm(y, z)
        gated_q = self.pre_out_proj(gated)
        out = gated_q @ self.out_proj_weight.T
        if self.out_proj_bias is not None:
            out = out + self.out_proj_bias

        if collect is not None:
            collect["in_proj_input"] = r
            collect["out_proj_input"] = gated
            collect["z"] = z
            collect["x"] = x
            collect["B"] = b
            collect["C"] = c
            collect["dt"] = dt
            collect["ssm_output"] = y
            collect["block_output"] = residual + out
        return residual + out

    # ------------------------------------------------------------------
    # Prefill (full sequence)
    # ------------------------------------------------------------------
    def forward(
        self,
        u: np.ndarray,
        cache: Optional[LayerCache] = None,
        collect: Optional[Dict[str, np.ndarray]] = None,
        *,
        scan_impl: Optional[str] = None,
        chunk_size: Optional[int] = None,
        seq_lens: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Process a full sequence of shape ``(seq_len, d_model)``.

        A leading batch axis is also accepted -- ``(batch, seq_len, d_model)``
        -- in which case ``cache`` (if given) must be batched with the same
        batch size and every sequence is prefilled in parallel.

        If ``cache`` is provided it is updated to the state after the last
        token so that decoding can continue from the prompt.  A *warm* cache
        (non-zero state from an earlier segment) is continued exactly: its
        convolution window supplies the left context of the new segment, so a
        long prompt may be prefilled in pieces.

        Parameters
        ----------
        scan_impl:
            ``"chunked"`` (SSD chunked scan, the fast path) or
            ``"sequential"`` (per-token reference recurrence); defaults to
            ``config.scan_impl``.  A custom ``ssm_impl`` advertising
            ``supports_prefill_scan`` (e.g. the quantized chunked scan)
            serves the ``"chunked"`` path through its own ``prefill_scan``;
            other custom implementations, and every implementation under
            ``"sequential"``, step token by token.
        chunk_size:
            Chunk length of the chunked scan; defaults to
            ``config.chunk_size``.
        seq_lens:
            Optional per-row true lengths for a right-padded ragged batch
            (batched input only).  The cache then receives each row's state at
            its *true* last token; output positions past a row's length carry
            garbage, which causality keeps out of every valid position.
        """
        cfg = self.config
        u = np.asarray(u, dtype=np.float64)
        if u.ndim not in (2, 3) or u.shape[-1] != cfg.d_model:
            raise ValueError(
                f"expected input of shape (seq_len, {cfg.d_model}) or "
                f"(batch, seq_len, {cfg.d_model}), got {u.shape}"
            )
        batched = u.ndim == 3
        seq_len = u.shape[-2]
        impl = scan_impl if scan_impl is not None else cfg.scan_impl
        if impl not in ("chunked", "sequential"):
            raise ValueError("scan_impl must be 'chunked' or 'sequential'")
        chunk = chunk_size if chunk_size is not None else cfg.chunk_size
        if seq_lens is not None:
            if not batched:
                raise ValueError("seq_lens requires batched input")
            seq_lens = np.asarray(seq_lens, dtype=np.int64)
            if seq_lens.shape != u.shape[:1]:
                raise ValueError(f"seq_lens must have shape {u.shape[:1]}, got {seq_lens.shape}")
            if seq_lens.size and (seq_lens.min() < 1 or seq_lens.max() > seq_len):
                raise ValueError(f"seq_lens entries must be in [1, {seq_len}]")

        residual = u
        r = self.norm(u)
        r_q = self.pre_in_proj(r)
        zxbcdt = r_q @ self.in_proj_weight.T
        if self.in_proj_bias is not None:
            zxbcdt = zxbcdt + self.in_proj_bias
        z, xbc, dt = self._split_in_proj(zxbcdt)

        conv_initial = None if cache is None else cache.conv_state
        xbc_conv = self.conv.forward(xbc, initial_state=conv_initial)
        x, b, c = self._split_xbc(xbc_conv)
        x_heads = x.reshape(x.shape[:-1] + (cfg.nheads, cfg.headdim))

        if self.ssm_impl is None:
            initial = None if cache is None else cache.ssm_state
            if impl == "chunked":
                y_heads, final_state = ssd_chunked_scan(
                    self.ssm, x_heads, b, c, dt, initial, chunk_size=chunk, seq_lens=seq_lens
                )
            else:
                y_heads, final_state = ssm_scan(
                    self.ssm, x_heads, b, c, dt, initial, seq_lens=seq_lens
                )
        elif impl == "chunked" and getattr(self.ssm_impl, "supports_prefill_scan", False):
            # The installed implementation carries its own chunk-parallel
            # prefill engine (e.g. the quantized SSD scan): one scan call for
            # the whole sequence, same signature as ssd_chunked_scan.  The
            # scan_impl="sequential" override below stays the per-token
            # oracle for these implementations too.
            initial = None if cache is None else cache.ssm_state
            y_heads, final_state = self.ssm_impl.prefill_scan(
                self.ssm,
                x_heads,
                b,
                c,
                dt,
                initial_state=initial,
                chunk_size=chunk,
                seq_lens=seq_lens,
            )
        else:
            # A custom (e.g. quantized) step function without a prefill scan,
            # or the sequential oracle requested: the recurrence steps token
            # by token; a batch-capable implementation advances all rows in
            # one call per token, otherwise fall back to per-row stepping.
            lead = u.shape[:1] if batched else ()
            resident_loop = False
            if cache is None:
                state = np.zeros(lead + (cfg.nheads, cfg.headdim, cfg.d_state))
            elif isinstance(cache.ssm_state, QuantizedSSMState):
                if batched and not getattr(self.ssm_impl, "supports_batched", False):
                    # The per-row fallback below indexes individual state
                    # rows; drive it on the float view (bit-identical under
                    # PoT -- the codes are on-grid) and re-quantize at the
                    # store below.
                    state = cache.ssm_state.dequantize()
                else:
                    # Codes in, codes out: the resident container threads
                    # through the step itself, no dequantize round trip.
                    state = cache.ssm_state
                    resident_loop = True
            else:
                state = cache.ssm_state.copy()
            y_heads = np.zeros_like(x_heads)
            if batched and getattr(self.ssm_impl, "supports_batched", False):
                if seq_lens is None:
                    for t in range(seq_len):
                        y_heads[:, t], state = self.ssm_impl(
                            self.ssm, x_heads[:, t], b[:, t], c[:, t], dt[:, t], state
                        )
                    final_state = state
                else:
                    # Every row's true length is >= 1, so each final row is
                    # overwritten by its snapshot before it is ever read.
                    final_state = state.copy() if resident_loop else np.zeros_like(state)
                    for t in range(seq_len):
                        y_heads[:, t], state = self.ssm_impl(
                            self.ssm, x_heads[:, t], b[:, t], c[:, t], dt[:, t], state
                        )
                        ending = seq_lens == t + 1
                        if ending.any():
                            if resident_loop:
                                rows = np.nonzero(ending)[0]
                                final_state.scatter(rows, state.gather(rows))
                            else:
                                final_state[ending] = state[ending]
            elif batched:
                for i in range(u.shape[0]):
                    stop = seq_len if seq_lens is None else int(seq_lens[i])
                    for t in range(stop):
                        y_heads[i, t], state[i] = self.ssm_impl(
                            self.ssm, x_heads[i, t], b[i, t], c[i, t], dt[i, t], state[i]
                        )
                final_state = state
            else:
                for t in range(seq_len):
                    y_heads[t], state = self.ssm_impl(
                        self.ssm, x_heads[t], b[t], c[t], dt[t], state
                    )
                final_state = state

        y = y_heads.reshape(u.shape[:-1] + (cfg.d_inner,))
        gated = self.gated_norm(y, z)
        gated_q = self.pre_out_proj(gated)
        out = gated_q @ self.out_proj_weight.T
        if self.out_proj_bias is not None:
            out = out + self.out_proj_bias

        if cache is not None:
            if isinstance(cache.ssm_state, QuantizedSSMState) and not isinstance(
                final_state, QuantizedSSMState
            ):
                # The per-token oracle above ran on the float view; hand the
                # state back to the integer-resident cache as codes (exact:
                # on-grid PoT re-quantization is the identity).
                final_state = self.ssm_impl.quantize_state_codes(final_state)
            cache.ssm_state = final_state
            # Roll the convolution window forward: the last d_conv samples of
            # previous-window + new inputs, taken at each row's true length.
            k = cfg.d_conv
            prev = np.swapaxes(cache.conv_state, -1, -2)       # (..., k, conv_dim)
            combined = np.concatenate([prev, xbc], axis=-2)    # (..., k + T, conv_dim)
            if seq_lens is None:
                window = combined[..., -k:, :]
            else:
                rows = np.arange(u.shape[0])[:, None]
                window = combined[rows, seq_lens[:, None] + np.arange(k)[None, :]]
            cache.conv_state = np.ascontiguousarray(np.swapaxes(window, -1, -2))

        if collect is not None:
            collect["in_proj_input"] = r
            collect["out_proj_input"] = gated
            collect["z"] = z
            collect["x"] = x
            collect["B"] = b
            collect["C"] = c
            collect["dt"] = dt
            collect["ssm_output"] = y
            collect["block_output"] = residual + out
        return residual + out

    __call__ = forward

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------
    def copy(self) -> "MambaBlock":
        """Deep copy of the block (hooks are carried over by reference)."""
        return MambaBlock(
            config=self.config,
            norm=self.norm.copy(),
            in_proj_weight=self.in_proj_weight.copy(),
            conv=self.conv.copy(),
            ssm=self.ssm.copy(),
            gated_norm=self.gated_norm.copy(),
            out_proj_weight=self.out_proj_weight.copy(),
            layer_idx=self.layer_idx,
            in_proj_bias=None if self.in_proj_bias is None else self.in_proj_bias.copy(),
            out_proj_bias=None if self.out_proj_bias is None else self.out_proj_bias.copy(),
            pre_in_proj=self.pre_in_proj,
            pre_out_proj=self.pre_out_proj,
            ssm_impl=self.ssm_impl,
        )

    def num_parameters(self) -> int:
        """Parameter count of this block."""
        return int(
            self.in_proj_weight.size
            + self.out_proj_weight.size
            + self.conv.weight.size
            + self.conv.bias.size
            + self.ssm.A_log.size
            + self.ssm.D.size
            + self.ssm.dt_bias.size
            + self.norm.weight.size
            + self.gated_norm.weight.size
        )
