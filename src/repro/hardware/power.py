"""FPGA power model and energy-efficiency helpers.

The paper measures board power with the Xilinx BEAM tool and reports energy
efficiency in tokens/J (Table IV, Fig. 9b).  This model estimates dynamic
power from the resource usage and clock frequency plus a static / interface
term, calibrated so the VCK190 design lands near the published operating
point (7.21 tokens/s at 2.25 tokens/J implies roughly 3.2 W board power).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.resources import ResourceUsage

__all__ = ["FPGAPowerModel", "energy_efficiency"]


@dataclass(frozen=True)
class FPGAPowerModel:
    """Resource-proportional power estimate.

    Dynamic terms are specified at the reference frequency and scale linearly
    with the clock; ``activity`` is the average toggle-rate factor.
    """

    static_w: float = 1.4
    dram_interface_w: float = 1.2
    w_per_dsp: float = 0.0020
    w_per_bram: float = 0.00055
    w_per_uram: float = 0.0016
    w_per_klut: float = 0.0042
    w_per_kff: float = 0.0011
    reference_frequency_hz: float = 400e6
    activity: float = 0.80

    def dynamic_power(self, usage: ResourceUsage, frequency_hz: float) -> float:
        """Dynamic power of the configured logic at the given clock."""
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        at_reference = (
            usage.dsp * self.w_per_dsp
            + usage.bram * self.w_per_bram
            + usage.uram * self.w_per_uram
            + usage.lut / 1000.0 * self.w_per_klut
            + usage.ff / 1000.0 * self.w_per_kff
        )
        return at_reference * self.activity * (frequency_hz / self.reference_frequency_hz)

    def power(self, usage: ResourceUsage, frequency_hz: float) -> float:
        """Total board power (static + DRAM interface + dynamic)."""
        return self.static_w + self.dram_interface_w + self.dynamic_power(usage, frequency_hz)


def energy_efficiency(tokens_per_second: float, power_w: float) -> float:
    """Tokens per joule."""
    if power_w <= 0:
        raise ValueError("power must be positive")
    if tokens_per_second < 0:
        raise ValueError("throughput must be non-negative")
    return tokens_per_second / power_w
