"""Generic tick-accurate pipeline simulator.

The SSMU (Fig. 5c) and the FHT-based HTU (Fig. 5d) are dataflow pipelines:
processing stages with fixed per-cycle throughput connected by FIFOs.  This
module provides a small cycle-by-cycle simulator for such linear pipelines.
It is deliberately value-free -- it tracks element *counts*, which is all
that latency, utilisation and FIFO-depth questions need -- while the
numerical behaviour of the operators is covered by :mod:`repro.quant` and
:mod:`repro.mamba`.

The simulator reports total cycles, per-stage busy cycles (utilisation) and
maximum FIFO occupancy, which the tests use to verify the paper's pipeline
claims (balanced dataflow with minimal FIFO depth, no bubbles in the
fine-grained schedule).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hardware.fifo import Fifo

__all__ = ["PipelineStage", "PipelineResult", "LinearPipeline"]


@dataclass
class PipelineStage:
    """One processing stage of a dataflow pipeline.

    Attributes
    ----------
    name:
        Stage identifier.
    rate:
        Elements consumed (and produced) per cycle when inputs are available.
    latency:
        Pipeline depth in cycles between consuming an element and the result
        becoming available to the next stage.
    """

    name: str
    rate: int
    latency: int = 1
    busy_cycles: int = 0
    processed: int = 0
    _in_flight: List[tuple] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("stage rate must be positive")
        if self.latency < 1:
            raise ValueError("stage latency must be at least 1")

    def reset(self) -> None:
        self.busy_cycles = 0
        self.processed = 0
        self._in_flight = []


@dataclass
class PipelineResult:
    """Outcome of a pipeline simulation."""

    total_cycles: int
    elements: int
    stage_busy_cycles: Dict[str, int]
    stage_utilisation: Dict[str, float]
    fifo_max_occupancy: Dict[str, int]

    @property
    def throughput(self) -> float:
        """Elements per cycle sustained over the run."""
        return self.elements / self.total_cycles if self.total_cycles else 0.0


class LinearPipeline:
    """A source followed by a chain of stages connected with FIFOs."""

    def __init__(
        self,
        stages: List[PipelineStage],
        fifo_capacity: int = 64,
        fifo_capacities: Optional[List[int]] = None,
    ):
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self.stages = stages
        capacities = fifo_capacities or [fifo_capacity] * len(stages)
        if len(capacities) != len(stages):
            raise ValueError("fifo_capacities must have one entry per stage")
        # fifos[i] feeds stages[i]; the last stage drains to an unbounded sink.
        self.fifos = [
            Fifo(name=f"fifo_{stage.name}", capacity=cap)
            for stage, cap in zip(stages, capacities)
        ]

    def run(
        self,
        num_elements: int,
        source_rate: int = 1,
        max_cycles: int = 10_000_000,
    ) -> PipelineResult:
        """Push ``num_elements`` through the pipeline and simulate to drain.

        Parameters
        ----------
        num_elements:
            Total elements produced by the source.
        source_rate:
            Elements the source can emit per cycle (e.g. the MMU output rate).
        max_cycles:
            Safety bound against deadlocks (raises if exceeded).
        """
        if num_elements < 0:
            raise ValueError("num_elements must be non-negative")
        for stage in self.stages:
            stage.reset()
        for fifo in self.fifos:
            fifo.reset()
        if num_elements == 0:
            return self._result(0, 0)

        remaining_source = num_elements
        drained = 0
        cycle = 0
        while drained < num_elements:
            if cycle >= max_cycles:
                raise RuntimeError(
                    f"pipeline did not drain within {max_cycles} cycles "
                    "(likely an unbalanced configuration or too-small FIFOs)"
                )
            # Retire in-flight work whose latency elapsed (downstream first so
            # FIFO space freed this cycle is visible upstream next cycle).
            for idx in range(len(self.stages) - 1, -1, -1):
                stage = self.stages[idx]
                ready = [item for item in stage._in_flight if item[0] <= cycle]
                stage._in_flight = [item for item in stage._in_flight if item[0] > cycle]
                for _, count in ready:
                    if idx + 1 < len(self.stages):
                        accepted = self.fifos[idx + 1].push(count)
                        if accepted < count:
                            # No room downstream: stall by re-queueing the rest.
                            stage._in_flight.append((cycle + 1, count - accepted))
                    else:
                        drained += count

            # Issue new work into each stage from its input FIFO.
            for idx, stage in enumerate(self.stages):
                available = self.fifos[idx].occupancy
                downstream_room = (
                    self.fifos[idx + 1].free_space
                    if idx + 1 < len(self.stages)
                    else stage.rate
                )
                issue = min(stage.rate, available, max(downstream_room, 0))
                if issue > 0:
                    self.fifos[idx].pop(issue)
                    stage._in_flight.append((cycle + stage.latency, issue))
                    stage.busy_cycles += 1
                    stage.processed += issue

            # Source feeds the first FIFO.
            if remaining_source > 0:
                pushed = self.fifos[0].push(min(source_rate, remaining_source))
                remaining_source -= pushed

            cycle += 1
        return self._result(cycle, num_elements)

    def _result(self, cycles: int, elements: int) -> PipelineResult:
        busy = {stage.name: stage.busy_cycles for stage in self.stages}
        util = {
            stage.name: (stage.busy_cycles / cycles if cycles else 0.0)
            for stage in self.stages
        }
        occupancy = {fifo.name: fifo.max_occupancy for fifo in self.fifos}
        return PipelineResult(
            total_cycles=cycles,
            elements=elements,
            stage_busy_cycles=busy,
            stage_utilisation=util,
            fifo_max_occupancy=occupancy,
        )
